//! Multi-tenant service mode: tenant identity, quotas and per-rank admission
//! accounting.
//!
//! The paper's daemon-kernel design assumes one job owns the domain; service
//! mode turns [`crate::DfcclDomain`] into shared infrastructure. A **tenant**
//! is a job sharing the domain: it registers collectives under a
//! [`TenantHandle`] (minted by `DfcclDomain::tenant`), is admitted against a
//! [`TenantQuota`] (max outstanding invocations, residency budget of
//! registered collectives, scheduling weight), and is scheduled from its own
//! task-queue lane by the weighted-fair arbiter
//! ([`crate::task_queue::TenantScheduler`]).
//!
//! Admission failures are **typed backpressure**, not wedges: a tenant at its
//! quota gets [`AdmissionError::AtQuota`] (retryable — resubmit after a
//! completion) while other tenants keep progressing. The per-rank
//! [`TenantTable`] holds the admission counters and the per-tenant lifecycle
//! counters surfaced in [`crate::telemetry::TelemetrySnapshot`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use crate::stats::TenantStats;

/// First-class tenant identity. `TenantId::DEFAULT` (id 0) is the implicit
/// tenant of every registration made without a handle — single-job use of the
/// API is tenant 0 throughout and behaves exactly as before service mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(pub u32);

impl TenantId {
    /// The implicit tenant of handle-less registrations.
    pub const DEFAULT: TenantId = TenantId(0);
}

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tenant{}", self.0)
    }
}

/// Per-tenant quotas and scheduling weight.
///
/// * `max_outstanding` caps invocations submitted-but-not-completed per rank
///   (admission backpressure at `run` time).
/// * `residency_budget` caps registered collectives per rank — registrations
///   consume context-buffer residency and communicator state, so a tenant
///   cannot squat the device with unbounded registrations.
/// * `weight` is the tenant's share under weighted-fair arbitration: per
///   scheduling pass a tenant receives scheduling slices proportional to its
///   weight when lanes contend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantQuota {
    /// Maximum invocations in flight per rank (`u64::MAX` = unlimited).
    pub max_outstanding: u64,
    /// Maximum registered collectives per rank (`u64::MAX` = unlimited).
    pub residency_budget: u64,
    /// Scheduling weight (minimum effective weight is 1).
    pub weight: u32,
}

impl Default for TenantQuota {
    fn default() -> Self {
        TenantQuota {
            max_outstanding: u64::MAX,
            residency_budget: u64::MAX,
            weight: 1,
        }
    }
}

impl TenantQuota {
    /// Cap invocations in flight per rank.
    pub fn with_max_outstanding(mut self, max: u64) -> Self {
        self.max_outstanding = max;
        self
    }

    /// Cap registered collectives per rank.
    pub fn with_residency_budget(mut self, budget: u64) -> Self {
        self.residency_budget = budget;
        self
    }

    /// Set the scheduling weight (values below 1 are treated as 1).
    pub fn with_weight(mut self, weight: u32) -> Self {
        self.weight = weight;
        self
    }

    /// The effective arbitration weight (never 0).
    pub fn effective_weight(&self) -> u32 {
        self.weight.max(1)
    }
}

/// Typed admission backpressure: why a submission or registration was not
/// admitted. Distinct from [`crate::DfcclError::SubmissionQueueFull`] (the
/// rank-wide SQ backpressure signal, which remains its own variant): admission
/// errors are *per-tenant* and carry the quota that tripped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionError {
    /// The tenant is at `max_outstanding`; retry after a completion frees a
    /// slot. This is the backpressure-not-a-wedge guarantee: other tenants
    /// keep progressing while this one waits.
    AtQuota {
        /// The tenant that was refused.
        tenant: TenantId,
        /// Invocations currently in flight for the tenant on this rank.
        outstanding: u64,
        /// The tenant's cap.
        max_outstanding: u64,
    },
    /// The tenant is at its residency budget of registered collectives; not
    /// retryable without raising the budget (there is no unregister).
    ResidencyExhausted {
        /// The tenant that was refused.
        tenant: TenantId,
        /// Collectives currently registered for the tenant on this rank.
        registered: u64,
        /// The tenant's budget.
        residency_budget: u64,
    },
    /// The handle does not belong to this rank's domain.
    UnknownTenant(TenantId),
}

impl AdmissionError {
    /// Whether retrying the same call later can succeed without
    /// reconfiguration (the retry signal: `AtQuota` clears as completions
    /// drain; the other variants need operator action).
    pub fn is_retryable(&self) -> bool {
        matches!(self, AdmissionError::AtQuota { .. })
    }

    /// The tenant the error is about.
    pub fn tenant(&self) -> TenantId {
        match *self {
            AdmissionError::AtQuota { tenant, .. } => tenant,
            AdmissionError::ResidencyExhausted { tenant, .. } => tenant,
            AdmissionError::UnknownTenant(tenant) => tenant,
        }
    }
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            AdmissionError::AtQuota {
                tenant,
                outstanding,
                max_outstanding,
            } => write!(
                f,
                "{tenant} is at its outstanding quota ({outstanding}/{max_outstanding}); \
                 retry after a completion"
            ),
            AdmissionError::ResidencyExhausted {
                tenant,
                registered,
                residency_budget,
            } => write!(
                f,
                "{tenant} exhausted its residency budget ({registered}/{residency_budget} \
                 registered collectives)"
            ),
            AdmissionError::UnknownTenant(tenant) => {
                write!(f, "{tenant} is not registered with this domain")
            }
        }
    }
}

impl std::error::Error for AdmissionError {}

/// A tenant handle minted by `DfcclDomain::tenant`: the capability a job
/// passes to `RankCtx::register_for` to register collectives under its
/// identity and quota. Handles are domain-scoped — a handle from another
/// domain is rejected at registration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantHandle {
    pub(crate) id: TenantId,
    pub(crate) quota: TenantQuota,
}

impl TenantHandle {
    /// The tenant's identity.
    pub fn id(&self) -> TenantId {
        self.id
    }

    /// The tenant's quota.
    pub fn quota(&self) -> TenantQuota {
        self.quota
    }
}

/// Per-rank, per-tenant accounting: admission counters (outstanding,
/// registered), the scheduling-lane depth gauge maintained by the daemon, and
/// lifecycle counters. All fields are relaxed atomics — reads are snapshots.
#[derive(Debug)]
pub struct TenantState {
    id: TenantId,
    quota: TenantQuota,
    outstanding: AtomicU64,
    registered: AtomicU64,
    queue_depth: AtomicU64,
    max_queue_depth: AtomicU64,
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    preempted: AtomicU64,
    recovered: AtomicU64,
}

impl TenantState {
    fn new(id: TenantId, quota: TenantQuota) -> Arc<Self> {
        Arc::new(TenantState {
            id,
            quota,
            outstanding: AtomicU64::new(0),
            registered: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            max_queue_depth: AtomicU64::new(0),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            preempted: AtomicU64::new(0),
            recovered: AtomicU64::new(0),
        })
    }

    /// The tenant this state belongs to.
    pub fn id(&self) -> TenantId {
        self.id
    }

    /// The quota admission checks against.
    pub fn quota(&self) -> TenantQuota {
        self.quota
    }

    /// The effective arbitration weight.
    pub fn weight(&self) -> u32 {
        self.quota.effective_weight()
    }

    /// Invocations in flight for the tenant on this rank.
    pub fn outstanding(&self) -> u64 {
        self.outstanding.load(Ordering::Acquire)
    }

    /// Admit one invocation against `max_outstanding` (CAS loop so concurrent
    /// submitters cannot jointly overshoot the quota).
    pub fn try_admit_run(&self) -> Result<(), AdmissionError> {
        let mut current = self.outstanding.load(Ordering::Acquire);
        loop {
            if current >= self.quota.max_outstanding {
                return Err(AdmissionError::AtQuota {
                    tenant: self.id,
                    outstanding: current,
                    max_outstanding: self.quota.max_outstanding,
                });
            }
            match self.outstanding.compare_exchange_weak(
                current,
                current + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    self.submitted.fetch_add(1, Ordering::Relaxed);
                    return Ok(());
                }
                Err(observed) => current = observed,
            }
        }
    }

    /// Roll back an admission whose SQE never became visible (SQ full).
    pub fn cancel_run(&self) {
        let _ = self
            .outstanding
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |v| {
                Some(v.saturating_sub(1))
            });
        let _ = self
            .submitted
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |v| {
                Some(v.saturating_sub(1))
            });
    }

    /// Admit one registration against `residency_budget`.
    pub fn try_admit_register(&self) -> Result<(), AdmissionError> {
        let mut current = self.registered.load(Ordering::Acquire);
        loop {
            if current >= self.quota.residency_budget {
                return Err(AdmissionError::ResidencyExhausted {
                    tenant: self.id,
                    registered: current,
                    residency_budget: self.quota.residency_budget,
                });
            }
            match self.registered.compare_exchange_weak(
                current,
                current + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Ok(()),
                Err(observed) => current = observed,
            }
        }
    }

    /// A CQE for the tenant was published: one invocation left the system.
    /// Saturating, so completions synthesized for never-admitted ids (e.g.
    /// raw SQEs injected in daemon tests) cannot underflow.
    pub fn on_complete(&self) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        let _ = self
            .outstanding
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |v| {
                Some(v.saturating_sub(1))
            });
    }

    /// One of the tenant's collectives failed (its CQE still counts as a
    /// completion when it is published).
    pub fn on_failed(&self) {
        self.failed.fetch_add(1, Ordering::Relaxed);
    }

    /// One of the tenant's collectives was preempted.
    pub fn on_preempt(&self) {
        self.preempted.fetch_add(1, Ordering::Relaxed);
    }

    /// One of the tenant's invocations was rolled back and re-executed to
    /// completion by the recovery coordinator.
    pub fn on_recovered(&self) {
        self.recovered.fetch_add(1, Ordering::Relaxed);
    }

    /// A registration was removed (elastic membership shrink). Saturating so
    /// removals synthesized for never-admitted registrations cannot
    /// underflow.
    pub fn on_unregister(&self) {
        let _ = self
            .registered
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |v| {
                Some(v.saturating_sub(1))
            });
    }

    /// Update the scheduling-lane depth gauge (daemon, once per pass).
    pub fn record_queue_depth(&self, depth: u64) {
        self.queue_depth.store(depth, Ordering::Relaxed);
        self.max_queue_depth.fetch_max(depth, Ordering::Relaxed);
    }

    /// Point-in-time copy of every counter.
    pub fn stats(&self) -> TenantStats {
        TenantStats {
            tenant: self.id,
            weight: self.weight(),
            outstanding: self.outstanding.load(Ordering::Acquire),
            registered: self.registered.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            max_queue_depth: self.max_queue_depth.load(Ordering::Relaxed),
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            preempted: self.preempted.load(Ordering::Relaxed),
            recovered: self.recovered.load(Ordering::Relaxed),
        }
    }
}

/// The per-rank tenant table: lazily materializes a [`TenantState`] per
/// tenant seen on this rank. The default tenant gets the configured default
/// quota; handle-registered tenants get the handle's quota.
#[derive(Debug)]
pub struct TenantTable {
    default_quota: TenantQuota,
    states: RwLock<HashMap<TenantId, Arc<TenantState>>>,
}

impl TenantTable {
    /// An empty table whose implicitly created tenants use `default_quota`.
    pub fn new(default_quota: TenantQuota) -> Arc<Self> {
        Arc::new(TenantTable {
            default_quota,
            states: RwLock::new(HashMap::new()),
        })
    }

    /// The state for `tenant`, created with the default quota if this rank
    /// has not seen the tenant yet. Never fails: daemon-side lookups for ids
    /// the API layer never admitted (injected SQEs) fall back to a
    /// default-quota state.
    pub fn state(&self, tenant: TenantId) -> Arc<TenantState> {
        if let Some(state) = self.states.read().get(&tenant) {
            return Arc::clone(state);
        }
        let mut states = self.states.write();
        Arc::clone(
            states
                .entry(tenant)
                .or_insert_with(|| TenantState::new(tenant, self.default_quota)),
        )
    }

    /// The state for a handle-registered tenant, created with the handle's
    /// quota on first sight. The quota a rank first sees for a tenant wins
    /// (handles of one tenant are expected to be identical across ranks).
    pub fn state_for(&self, handle: &TenantHandle) -> Arc<TenantState> {
        if let Some(state) = self.states.read().get(&handle.id) {
            return Arc::clone(state);
        }
        let mut states = self.states.write();
        Arc::clone(
            states
                .entry(handle.id)
                .or_insert_with(|| TenantState::new(handle.id, handle.quota)),
        )
    }

    /// Per-tenant snapshots, sorted by tenant id — the service-mode analogue
    /// of `DfcclDomain::cache_stats`.
    pub fn snapshot(&self) -> Vec<TenantStats> {
        let mut all: Vec<TenantStats> = self
            .states
            .read()
            .values()
            .map(|state| state.stats())
            .collect();
        all.sort_by_key(|s| s.tenant);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_quota_is_unlimited_weight_one() {
        let q = TenantQuota::default();
        assert_eq!(q.max_outstanding, u64::MAX);
        assert_eq!(q.residency_budget, u64::MAX);
        assert_eq!(q.effective_weight(), 1);
        assert_eq!(TenantQuota::default().with_weight(0).effective_weight(), 1);
    }

    #[test]
    fn at_quota_is_retryable_backpressure() {
        let table = TenantTable::new(TenantQuota::default());
        let handle = TenantHandle {
            id: TenantId(3),
            quota: TenantQuota::default().with_max_outstanding(2),
        };
        let state = table.state_for(&handle);
        state.try_admit_run().unwrap();
        state.try_admit_run().unwrap();
        let err = state.try_admit_run().unwrap_err();
        assert!(err.is_retryable());
        assert_eq!(err.tenant(), TenantId(3));
        assert!(err.to_string().contains("2/2"), "{err}");
        // A completion frees the slot; retry succeeds.
        state.on_complete();
        state.try_admit_run().unwrap();
        assert_eq!(state.outstanding(), 2);
    }

    #[test]
    fn residency_budget_caps_registrations() {
        let table = TenantTable::new(TenantQuota::default());
        let handle = TenantHandle {
            id: TenantId(7),
            quota: TenantQuota::default().with_residency_budget(1),
        };
        let state = table.state_for(&handle);
        state.try_admit_register().unwrap();
        let err = state.try_admit_register().unwrap_err();
        assert!(!err.is_retryable(), "residency exhaustion is not retryable");
        assert!(matches!(err, AdmissionError::ResidencyExhausted { .. }));
    }

    #[test]
    fn cancel_and_saturating_complete_never_underflow() {
        let table = TenantTable::new(TenantQuota::default().with_max_outstanding(8));
        let state = table.state(TenantId::DEFAULT);
        state.try_admit_run().unwrap();
        state.cancel_run();
        assert_eq!(state.outstanding(), 0);
        state.on_complete(); // completion without admission (injected SQE)
        assert_eq!(state.outstanding(), 0);
        assert_eq!(state.stats().completed, 1);
    }

    #[test]
    fn snapshot_sorts_by_tenant_and_tracks_gauges() {
        let table = TenantTable::new(TenantQuota::default());
        table.state(TenantId(2)).record_queue_depth(5);
        table.state(TenantId(2)).record_queue_depth(1);
        table.state(TenantId(0)).on_preempt();
        let snap = table.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].tenant, TenantId(0));
        assert_eq!(snap[0].preempted, 1);
        assert_eq!(snap[1].tenant, TenantId(2));
        assert_eq!(snap[1].queue_depth, 1, "gauge holds the latest depth");
        assert_eq!(snap[1].max_queue_depth, 5, "high-water mark persists");
    }
}
