//! Runtime statistics: preemptions, context switches, queue lengths, voluntary
//! quits and the Fig. 7 time components.
//!
//! These counters back the paper's evaluation figures: Fig. 7 (workload-
//! independent time overheads), Fig. 11 (per-collective context switches and
//! task-queue lengths), and the Sec. 6.1 deadlock-prevention counts
//! (preemptions per block, voluntary quits).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use parking_lot::Mutex;

use crate::tenant::TenantId;

/// Point-in-time accounting for one tenant on one rank (service mode):
/// admission state (outstanding, registered), the scheduling-lane depth
/// gauge, and lifecycle counters. Produced by
/// [`crate::tenant::TenantTable::snapshot`], surfaced through
/// `RankCtx::tenant_stats` and [`crate::telemetry::TelemetrySnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantStats {
    /// The tenant these counters belong to.
    pub tenant: TenantId,
    /// Effective arbitration weight.
    pub weight: u32,
    /// Invocations in flight (admitted, CQE not yet published).
    pub outstanding: u64,
    /// Collectives registered on this rank.
    pub registered: u64,
    /// Task-queue lane depth at the last scheduling pass.
    pub queue_depth: u64,
    /// High-water mark of the lane depth.
    pub max_queue_depth: u64,
    /// Invocations admitted (successful `run`/`replay` submissions).
    pub submitted: u64,
    /// CQEs published for the tenant (failures included).
    pub completed: u64,
    /// Collectives that failed.
    pub failed: u64,
    /// Preemptions of the tenant's collectives.
    pub preempted: u64,
    /// Invocations of the tenant's collectives re-executed to completion by
    /// the recovery coordinator after a link failure.
    pub recovered: u64,
}

/// A mean accumulated from a sum and a count, stored in nanoseconds.
#[derive(Debug, Default)]
struct NanoMean {
    total_ns: AtomicU64,
    samples: AtomicU64,
}

impl NanoMean {
    fn record(&self, d: Duration) {
        self.total_ns
            .fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
        self.samples.fetch_add(1, Ordering::Relaxed);
    }

    /// Fold a batch of `n` operations that together took `d` into the mean,
    /// as `n` samples of `d / n` each.
    fn record_many(&self, d: Duration, n: u64) {
        if n == 0 {
            return;
        }
        self.total_ns
            .fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
        self.samples.fetch_add(n, Ordering::Relaxed);
    }

    fn mean(&self) -> Option<Duration> {
        let n = self.samples.load(Ordering::Relaxed);
        if n == 0 {
            return None;
        }
        Some(Duration::from_nanos(
            self.total_ns.load(Ordering::Relaxed) / n,
        ))
    }

    fn count(&self) -> u64 {
        self.samples.load(Ordering::Relaxed)
    }
}

/// Per-collective counters (Fig. 11 plots these per collective id).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CollectiveStats {
    /// Times the collective was preempted before completing.
    pub preemptions: u64,
    /// Times the collective completed (it can be re-invoked repeatedly).
    pub completions: u64,
    /// Task-queue length observed right after this collective's SQE was fetched.
    pub queue_len_at_fetch: u64,
}

/// Statistics collected by one daemon kernel (one GPU).
#[derive(Debug, Default)]
pub struct DaemonStats {
    preemptions: AtomicU64,
    context_switches: AtomicU64,
    context_loads: AtomicU64,
    context_saves: AtomicU64,
    lazy_save_skips: AtomicU64,
    voluntary_quits: AtomicU64,
    daemon_starts: AtomicU64,
    sqes_fetched: AtomicU64,
    cqes_written: AtomicU64,
    collectives_completed: AtomicU64,
    primitives_executed: AtomicU64,
    max_queue_len: AtomicU64,
    sqe_read_time: NanoMean,
    preparing_time: NanoMean,
    cqe_write_time: NanoMean,
    primitive_exec_time: NanoMean,
    per_collective: Mutex<HashMap<u64, CollectiveStats>>,
}

/// A point-in-time copy of the aggregate counters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DaemonStatsSnapshot {
    pub preemptions: u64,
    pub context_switches: u64,
    pub context_loads: u64,
    pub context_saves: u64,
    pub lazy_save_skips: u64,
    pub voluntary_quits: u64,
    pub daemon_starts: u64,
    pub sqes_fetched: u64,
    pub cqes_written: u64,
    pub collectives_completed: u64,
    pub primitives_executed: u64,
    pub max_queue_len: u64,
    pub mean_sqe_read: Option<Duration>,
    pub mean_preparing: Option<Duration>,
    pub mean_cqe_write: Option<Duration>,
    pub mean_primitive_exec: Option<Duration>,
}

impl DaemonStats {
    /// Record one preemption of `coll_id`.
    pub fn record_preemption(&self, coll_id: u64) {
        self.preemptions.fetch_add(1, Ordering::Relaxed);
        self.context_switches.fetch_add(1, Ordering::Relaxed);
        self.per_collective
            .lock()
            .entry(coll_id)
            .or_default()
            .preemptions += 1;
    }

    /// Record a completed collective.
    pub fn record_completion(&self, coll_id: u64) {
        self.collectives_completed.fetch_add(1, Ordering::Relaxed);
        self.per_collective
            .lock()
            .entry(coll_id)
            .or_default()
            .completions += 1;
    }

    /// Record the task-queue length right after fetching `coll_id`'s SQE.
    pub fn record_queue_len(&self, coll_id: u64, len: u64) {
        self.max_queue_len.fetch_max(len, Ordering::Relaxed);
        self.per_collective
            .lock()
            .entry(coll_id)
            .or_default()
            .queue_len_at_fetch = len;
    }

    /// Record a context load (and its modelled duration, folded into the
    /// "preparing" component of Fig. 7).
    pub fn record_context_load(&self) {
        self.context_loads.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a context save. `lazy_skip` marks saves avoided by the
    /// lazy-saving optimisation (no progress since the last save).
    pub fn record_context_save(&self, lazy_skip: bool) {
        if lazy_skip {
            self.lazy_save_skips.fetch_add(1, Ordering::Relaxed);
        } else {
            self.context_saves.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record a voluntary quit of the daemon kernel.
    pub fn record_voluntary_quit(&self) {
        self.voluntary_quits.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a (re)start of the daemon kernel.
    pub fn record_daemon_start(&self) {
        self.daemon_starts.fetch_add(1, Ordering::Relaxed);
    }

    /// Record an SQE fetch and the time it took to read it from the SQ.
    pub fn record_sqe_fetch(&self, read_time: Duration) {
        self.sqes_fetched.fetch_add(1, Ordering::Relaxed);
        self.sqe_read_time.record(read_time);
    }

    /// Record a batched fetch of `n` SQEs that together took `read_time`
    /// (per-SQE mean accounting stays comparable with the unbatched path).
    pub fn record_sqe_fetch_batch(&self, read_time: Duration, n: u64) {
        self.sqes_fetched.fetch_add(n, Ordering::Relaxed);
        self.sqe_read_time.record_many(read_time, n);
    }

    /// Record the preparing overhead (SQE parse + context load) of one pass.
    pub fn record_preparing(&self, d: Duration) {
        self.preparing_time.record(d);
    }

    /// Record a CQE write and its duration.
    pub fn record_cqe_write(&self, d: Duration) {
        self.cqes_written.fetch_add(1, Ordering::Relaxed);
        self.cqe_write_time.record(d);
    }

    /// Record a batched publication of `n` CQEs that together took `d`.
    pub fn record_cqe_write_batch(&self, d: Duration, n: u64) {
        self.cqes_written.fetch_add(n, Ordering::Relaxed);
        self.cqe_write_time.record_many(d, n);
    }

    /// Record the execution of one primitive.
    pub fn record_primitive(&self, d: Duration) {
        self.primitives_executed.fetch_add(1, Ordering::Relaxed);
        self.primitive_exec_time.record(d);
    }

    /// Aggregate snapshot.
    pub fn snapshot(&self) -> DaemonStatsSnapshot {
        DaemonStatsSnapshot {
            preemptions: self.preemptions.load(Ordering::Relaxed),
            context_switches: self.context_switches.load(Ordering::Relaxed),
            context_loads: self.context_loads.load(Ordering::Relaxed),
            context_saves: self.context_saves.load(Ordering::Relaxed),
            lazy_save_skips: self.lazy_save_skips.load(Ordering::Relaxed),
            voluntary_quits: self.voluntary_quits.load(Ordering::Relaxed),
            daemon_starts: self.daemon_starts.load(Ordering::Relaxed),
            sqes_fetched: self.sqes_fetched.load(Ordering::Relaxed),
            cqes_written: self.cqes_written.load(Ordering::Relaxed),
            collectives_completed: self.collectives_completed.load(Ordering::Relaxed),
            primitives_executed: self.primitives_executed.load(Ordering::Relaxed),
            max_queue_len: self.max_queue_len.load(Ordering::Relaxed),
            mean_sqe_read: self.sqe_read_time.mean(),
            mean_preparing: self.preparing_time.mean(),
            mean_cqe_write: self.cqe_write_time.mean(),
            mean_primitive_exec: self.primitive_exec_time.mean(),
        }
    }

    /// Per-collective counters, keyed by collective id.
    pub fn per_collective(&self) -> HashMap<u64, CollectiveStats> {
        self.per_collective.lock().clone()
    }

    /// Total preemptions divided by the logical block count — the metric the
    /// paper reports for the Sec. 6.1 deadlock-prevention program ("about
    /// 18,000 preemptions per block").
    pub fn preemptions_per_block(&self, blocks: u32) -> f64 {
        self.preemptions.load(Ordering::Relaxed) as f64 / blocks.max(1) as f64
    }

    /// Number of CQE write samples recorded (used by benches to check coverage).
    pub fn cqe_write_samples(&self) -> u64 {
        self.cqe_write_time.count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = DaemonStats::default();
        s.record_preemption(3);
        s.record_preemption(3);
        s.record_preemption(5);
        s.record_completion(3);
        s.record_queue_len(3, 7);
        s.record_voluntary_quit();
        s.record_daemon_start();
        let snap = s.snapshot();
        assert_eq!(snap.preemptions, 3);
        assert_eq!(snap.context_switches, 3);
        assert_eq!(snap.voluntary_quits, 1);
        assert_eq!(snap.daemon_starts, 1);
        assert_eq!(snap.collectives_completed, 1);
        assert_eq!(snap.max_queue_len, 7);
        let per = s.per_collective();
        assert_eq!(per[&3].preemptions, 2);
        assert_eq!(per[&3].completions, 1);
        assert_eq!(per[&3].queue_len_at_fetch, 7);
        assert_eq!(per[&5].preemptions, 1);
    }

    #[test]
    fn means_are_computed_from_samples() {
        let s = DaemonStats::default();
        assert!(s.snapshot().mean_cqe_write.is_none());
        s.record_cqe_write(Duration::from_micros(2));
        s.record_cqe_write(Duration::from_micros(4));
        let snap = s.snapshot();
        assert_eq!(snap.cqes_written, 2);
        assert_eq!(snap.mean_cqe_write, Some(Duration::from_micros(3)));
        assert_eq!(s.cqe_write_samples(), 2);
    }

    #[test]
    fn batch_recording_counts_entries_and_averages_time() {
        let s = DaemonStats::default();
        s.record_cqe_write_batch(Duration::from_micros(8), 4);
        s.record_sqe_fetch_batch(Duration::from_micros(6), 3);
        s.record_cqe_write_batch(Duration::from_micros(1), 0); // no-op
        let snap = s.snapshot();
        assert_eq!(snap.cqes_written, 4);
        assert_eq!(snap.mean_cqe_write, Some(Duration::from_micros(2)));
        assert_eq!(snap.sqes_fetched, 3);
        assert_eq!(snap.mean_sqe_read, Some(Duration::from_micros(2)));
    }

    #[test]
    fn preemptions_per_block_divides() {
        let s = DaemonStats::default();
        for _ in 0..100 {
            s.record_preemption(1);
        }
        assert_eq!(s.preemptions_per_block(4), 25.0);
        assert_eq!(
            s.preemptions_per_block(0),
            100.0,
            "zero blocks treated as one"
        );
    }

    #[test]
    fn sqe_and_preparing_and_primitive_times_recorded() {
        let s = DaemonStats::default();
        s.record_sqe_fetch(Duration::from_micros(5));
        s.record_preparing(Duration::from_micros(1));
        s.record_primitive(Duration::from_micros(10));
        s.record_context_load();
        s.record_context_save(false);
        s.record_context_save(true);
        let snap = s.snapshot();
        assert_eq!(snap.sqes_fetched, 1);
        assert_eq!(snap.mean_sqe_read, Some(Duration::from_micros(5)));
        assert_eq!(snap.mean_preparing, Some(Duration::from_micros(1)));
        assert_eq!(snap.mean_primitive_exec, Some(Duration::from_micros(10)));
        assert_eq!(snap.context_loads, 1);
        assert_eq!(snap.context_saves, 1);
        assert_eq!(snap.lazy_save_skips, 1);
        assert_eq!(snap.primitives_executed, 1);
    }
}
