//! Tunable parameters of the DFCCL runtime.
//!
//! The defaults follow the values reported or implied by the paper: an initial
//! spin threshold of 100,000 polls for the collective at the front of the task
//! queue, a twenty-fold raise after a successful primitive (Sec. 6.4.1), 13 KB
//! of shared memory and 4 MB of global memory per block for 1,000 registered
//! collectives (Sec. 6.2), and the optimized completion queue (Sec. 5).

use std::time::Duration;

use dfccl_collectives::{AlgorithmKind, AlgorithmSelector, DEFAULT_TREE_THRESHOLD_BYTES};

use crate::tenant::TenantQuota;

/// Charge a modelled host-memory cost by busy-spinning for `ns` nanoseconds
/// (no-op for non-positive costs). The single entry point of the cost model:
/// both the SQ reader and the CQ writers charge through here, so the
/// SQ-vs-CQ cost comparison the benchmarks rely on cannot drift.
pub(crate) fn charge(ns: f64) {
    if ns > 0.0 {
        gpu_sim::busy_spin(Duration::from_nanos(ns as u64));
    }
}

/// Which completion-queue implementation the runtime uses (Sec. 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CqVariant {
    /// Ring buffer with per-slot flags and an explicit memory fence
    /// (≈5 host-memory operations per CQE).
    VanillaRing,
    /// Ring buffer that packs the tail and the collective id into one 64-bit
    /// atomic write, eliminating the fence (4 host-memory operations).
    OptimizedRing,
    /// Slot array written with a single `atomicCAS_system`, abandoning ring
    /// semantics (1 host-memory operation).
    OptimizedSlot,
}

/// How the daemon kernel orders its task queue (Sec. 4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderingPolicy {
    /// Empty the task queue quickly; fetch new SQEs only when the queue is
    /// empty or nothing can progress.
    Fifo,
    /// Check the SQ more frequently and keep the task queue sorted by the
    /// user-specified priority.
    PriorityBased,
}

/// How the daemon arbitrates between per-tenant task-queue lanes in service
/// mode. Within a lane the paper's semantics ([`OrderingPolicy`]) are
/// untouched; arbitration only decides how lanes interleave.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TenantArbitration {
    /// Deficit-round-robin over lanes: per scheduling pass each contending
    /// tenant is granted up to `weight × tenant_quantum` slices, selected by
    /// a rotating cursor over the lane so every queued collective is still
    /// polled within a bounded number of passes (the rotation is what keeps
    /// the capacity-1 deadlock-freedom argument intact — see DESIGN.md §8).
    WeightedFair,
    /// Lanes are ordered by descending weight and fully scheduled each pass.
    /// Pure ordering, no slice caps: a heavy tenant is polled first but can
    /// never exclude a light tenant from the pass.
    StrictPriority,
}

/// How spin thresholds are assigned and adjusted (Sec. 4.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SpinPolicy {
    /// Every primitive of every collective gets the same fixed threshold.
    /// This is the "naive" policy whose throughput collapse Fig. 11 shows.
    Fixed {
        /// The threshold, in poll iterations.
        threshold: u64,
    },
    /// The adaptive stickiness policy: the front of the task queue gets the
    /// largest initial threshold, later entries progressively smaller ones,
    /// and a successful primitive multiplies the threshold of its successors.
    Adaptive {
        /// Initial threshold for the queue-front collective.
        front_threshold: u64,
        /// Lower bound for initial thresholds of collectives deep in the queue.
        min_threshold: u64,
        /// Multiplier applied after a successful primitive.
        success_multiplier: u64,
        /// Upper bound after multiplication.
        max_threshold: u64,
    },
}

impl SpinPolicy {
    /// The adaptive policy with the paper's profiled parameters.
    pub fn adaptive_default() -> Self {
        SpinPolicy::Adaptive {
            front_threshold: 100_000,
            min_threshold: 1_000,
            success_multiplier: 20,
            max_threshold: 10_000_000,
        }
    }

    /// The naive fixed policy used as the ablation baseline in Fig. 11.
    pub fn naive_fixed() -> Self {
        SpinPolicy::Fixed { threshold: 10_000 }
    }

    /// Initial spin threshold for a collective at `position` in the task queue.
    pub fn initial_threshold(&self, position: usize) -> u64 {
        match *self {
            SpinPolicy::Fixed { threshold } => threshold,
            SpinPolicy::Adaptive {
                front_threshold,
                min_threshold,
                ..
            } => {
                // Halve per position, never below the floor.
                let shifted = front_threshold >> position.min(63);
                shifted.max(min_threshold)
            }
        }
    }

    /// New threshold after a primitive of the collective succeeded.
    pub fn on_success(&self, current: u64) -> u64 {
        match *self {
            SpinPolicy::Fixed { threshold } => threshold,
            SpinPolicy::Adaptive {
                success_multiplier,
                max_threshold,
                ..
            } => current
                .saturating_mul(success_multiplier)
                .min(max_threshold),
        }
    }
}

/// Modelled host-memory operation costs used by the CQ variants, so that the
/// Fig. 7(c) comparison has the right shape without real PCIe hardware.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostMemCosts {
    /// One ordinary host-memory read/write issued from the GPU, in nanoseconds.
    pub host_op_ns: f64,
    /// One memory fence covering host memory, in nanoseconds.
    pub fence_ns: f64,
    /// One `atomicCAS_system` on host memory, in nanoseconds.
    pub cas_system_ns: f64,
    /// One host-memory operation of the daemon's SQ reader (Fig. 7(a)'s
    /// "reading SQE" component), in nanoseconds. An unbatched SQE read pays
    /// three of these (head check, slot state, payload); a batched fetch pays
    /// the head check once per batch and two per entry.
    pub sq_read_op_ns: f64,
}

impl Default for HostMemCosts {
    fn default() -> Self {
        // Calibrated so the three CQ variants land near the paper's
        // 6.9 µs / 4.8 µs / 2.0 µs CQE-write times, and an unbatched SQE
        // read near the ~3 µs of Fig. 7(a).
        HostMemCosts {
            host_op_ns: 1_200.0,
            fence_ns: 900.0,
            cas_system_ns: 2_000.0,
            sq_read_op_ns: 1_000.0,
        }
    }
}

impl HostMemCosts {
    /// A cost model that charges nothing (for logic-only tests).
    pub fn free() -> Self {
        HostMemCosts {
            host_op_ns: 0.0,
            fence_ns: 0.0,
            cas_system_ns: 0.0,
            sq_read_op_ns: 0.0,
        }
    }

    /// Uniformly scale every modelled cost (used by benchmarks to shift the
    /// host-memory share of the control path while preserving every ratio).
    pub fn scaled(self, factor: f64) -> Self {
        HostMemCosts {
            host_op_ns: self.host_op_ns * factor,
            fence_ns: self.fence_ns * factor,
            cas_system_ns: self.cas_system_ns * factor,
            sq_read_op_ns: self.sq_read_op_ns * factor,
        }
    }
}

/// Full runtime configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct DfcclConfig {
    /// Maximum elements per connector chunk.
    pub chunk_elems: usize,
    /// Chunk slots per connector.
    pub connector_capacity: usize,
    /// Global collective-algorithm override. `None` lets the selector pick
    /// ring/tree/hierarchical from payload size and topology per collective;
    /// `Some` forces one family whenever it supports the collective. A
    /// per-collective override on the descriptor still wins.
    pub algorithm: Option<AlgorithmKind>,
    /// Payloads at or below this many bytes prefer the latency-optimal tree
    /// schedule (when the collective kind supports it).
    pub tree_threshold_bytes: usize,
    /// Parallel channels every `(src, dst)` edge is striped across: each
    /// channel gets its own connector and its own round-robin share of the
    /// chunk stream, so a large collective fills `K × connector_capacity`
    /// in-flight slots per edge instead of serialising on one chunk queue.
    /// `1` (the default) is the unstriped schedule. A per-collective override
    /// on the descriptor (`CollectiveDescriptor::with_channels`) wins.
    pub channels: usize,
    /// Submission-queue capacity (SQEs).
    pub sq_capacity: usize,
    /// Completion-queue capacity (CQEs).
    pub cq_capacity: usize,
    /// Which CQ implementation to use.
    pub cq_variant: CqVariant,
    /// Modelled host-memory costs for SQ/CQ operations.
    pub host_costs: HostMemCosts,
    /// Task-queue ordering policy.
    pub ordering: OrderingPolicy,
    /// Spin-threshold policy.
    pub spin: SpinPolicy,
    /// Number of consecutive idle passes (no new SQE, no progress) after which
    /// the daemon kernel quits voluntarily.
    pub idle_passes_before_quit: u32,
    /// Of those idle passes, how many are spent cheaply spinning/yielding
    /// before the daemon parks on its wake-up signal (adaptive
    /// spin-then-park: spinning keeps wake latency in the nanoseconds while
    /// bursts are arriving; parking keeps an idle daemon off the CPU).
    pub idle_spin_passes: u32,
    /// Upper bound on a single park while idle, and on the event-driven
    /// retry interval while the device refuses residency (e.g. a pending
    /// synchronization). Wake-up signals cut these waits short.
    pub restart_backoff: Duration,
    /// Maximum SQEs fetched per SQ-cursor lock acquisition. `1` reproduces
    /// the legacy per-entry fetch; larger values amortize the cursor lock and
    /// the SQ head read across a burst of submissions.
    pub sq_fetch_batch: usize,
    /// Completion-batch flush threshold: the daemon buffers CQEs for
    /// completed collectives and publishes them with one batched CQ round
    /// once this many are pending (the batch also flushes at the end of
    /// every scheduling pass, so completions are never delayed across
    /// passes). `1` reproduces the legacy per-entry publication.
    pub cq_write_batch: usize,
    /// Logical grid size of the daemon kernel (number of blocks). Used for
    /// memory accounting and per-block statistics.
    pub daemon_blocks: u32,
    /// Shared memory the daemon kernel reserves per block (task queue + active
    /// context slots), bytes.
    pub shared_mem_per_block: usize,
    /// Global memory reserved per block for the collective context buffer, bytes.
    pub context_buffer_per_block: usize,
    /// Modelled cost of loading one collective context into shared memory, ns.
    pub context_load_ns: f64,
    /// Modelled cost of saving one collective's dynamic context, ns.
    pub context_save_ns: f64,
    /// Number of active context slots kept in shared memory (direct-mapped).
    pub active_context_slots: usize,
    /// Whether the daemon executes registered collectives through their
    /// compiled programs (flat per-channel instruction lanes with
    /// pre-resolved connector indices — the default) or by interpreting the
    /// plan IR step by step (the legacy path, kept as the baseline arm of
    /// the dispatch-cost benchmarks and as a differential-testing oracle).
    pub compiled_dispatch: bool,
    /// Graph-capture fusion threshold: consecutive captured all-reduces of
    /// the same (device set, dtype, operator) shape whose payloads are each
    /// at most this many bytes are coalesced into one fused all-reduce when
    /// the recorded graph is finalized (the DDP gradient-bucketing idiom).
    /// `0` disables fusion;
    /// [`CollectiveDescriptor::with_no_fuse`](dfccl_collectives::CollectiveDescriptor::with_no_fuse)
    /// opts a single collective out.
    pub fusion_threshold_bytes: usize,
    /// Default quota for tenants that never received an explicit one — the
    /// implicit tenant 0 of handle-less registrations, and any tenant whose
    /// handle this rank has not seen. Unlimited by default, so single-job use
    /// is unaffected by service mode.
    pub tenant_quota: TenantQuota,
    /// How per-tenant task-queue lanes are interleaved when more than one
    /// tenant has queued work.
    pub tenant_arbitration: TenantArbitration,
    /// Base scheduling quantum under [`TenantArbitration::WeightedFair`]: a
    /// contending tenant is granted up to `weight × tenant_quantum` slices
    /// per pass. Larger quanta amortize lane switching; `1` gives the
    /// tightest interleaving (used by the fairness tests).
    pub tenant_quantum: u32,
    /// Bypass the staged per-tenant scheduler and run every collective from
    /// one flat task queue with no admission accounting — the pre-service
    /// scheduling path, kept as the baseline arm of the tenancy benchmarks
    /// (like [`DfcclConfig::unbatched`] and [`DfcclConfig::interpreted`]).
    pub flat_scheduling: bool,
    /// Capacity of the per-daemon telemetry event ring
    /// ([`crate::telemetry::Telemetry`]): the most recent this-many
    /// submit/fetch/preempt/resume/complete/chunk-moved events are retained
    /// (older ones are dropped and counted). `0` disables event recording
    /// entirely; the per-kind counters stay on either way (they are plain
    /// atomics and cost nanoseconds).
    pub telemetry_events: usize,
}

impl Default for DfcclConfig {
    fn default() -> Self {
        DfcclConfig {
            chunk_elems: 32 * 1024,
            connector_capacity: 8,
            algorithm: None,
            tree_threshold_bytes: DEFAULT_TREE_THRESHOLD_BYTES,
            channels: 1,
            sq_capacity: 1024,
            cq_capacity: 1024,
            cq_variant: CqVariant::OptimizedSlot,
            host_costs: HostMemCosts::default(),
            ordering: OrderingPolicy::Fifo,
            spin: SpinPolicy::adaptive_default(),
            idle_passes_before_quit: 64,
            idle_spin_passes: 4,
            restart_backoff: Duration::from_micros(100),
            sq_fetch_batch: 64,
            cq_write_batch: 16,
            daemon_blocks: 4,
            shared_mem_per_block: 13 * 1024,
            context_buffer_per_block: 4 * 1024 * 1024,
            context_load_ns: 450.0,
            context_save_ns: 50.0,
            active_context_slots: 8,
            compiled_dispatch: true,
            fusion_threshold_bytes: 64 * 1024,
            tenant_quota: TenantQuota::default(),
            tenant_arbitration: TenantArbitration::WeightedFair,
            tenant_quantum: 4,
            flat_scheduling: false,
            telemetry_events: 4096,
        }
    }
}

impl DfcclConfig {
    /// A configuration with every modelled cost removed — fast, suited to
    /// correctness tests.
    pub fn for_testing() -> Self {
        DfcclConfig {
            host_costs: HostMemCosts::free(),
            context_load_ns: 0.0,
            context_save_ns: 0.0,
            idle_passes_before_quit: 16,
            restart_backoff: Duration::from_micros(20),
            ..Default::default()
        }
    }

    /// Same as [`DfcclConfig::for_testing`] but with very small spin thresholds,
    /// which makes preemption extremely frequent — useful for stress-testing
    /// context save/restore correctness.
    pub fn preemption_stress() -> Self {
        DfcclConfig {
            spin: SpinPolicy::Fixed { threshold: 4 },
            ..Self::for_testing()
        }
    }

    /// Disable SQ/CQ batching (per-entry fetch and publication) — the legacy
    /// hot path, kept as the baseline arm of the scheduling-throughput
    /// benchmarks.
    pub fn unbatched(mut self) -> Self {
        self.sq_fetch_batch = 1;
        self.cq_write_batch = 1;
        self
    }

    /// Interpret the plan IR step by step instead of executing the compiled
    /// per-channel program — the legacy dispatch, kept as the baseline arm
    /// of the dispatch-cost benchmarks and as a differential-testing oracle.
    pub fn interpreted(mut self) -> Self {
        self.compiled_dispatch = false;
        self
    }

    /// Force one collective-algorithm family for every registration (the
    /// per-collective descriptor override still wins).
    pub fn with_algorithm(mut self, algorithm: AlgorithmKind) -> Self {
        self.algorithm = Some(algorithm);
        self
    }

    /// Stripe every registration across `channels` parallel connectors per
    /// edge (the per-collective descriptor override still wins).
    pub fn with_channels(mut self, channels: usize) -> Self {
        self.channels = channels;
        self
    }

    /// Set the telemetry event-ring capacity (`0` disables event recording;
    /// per-kind counters stay on).
    pub fn with_telemetry(mut self, capacity: usize) -> Self {
        self.telemetry_events = capacity;
        self
    }

    /// Set the default quota for tenants without an explicit handle.
    pub fn with_tenant_quota(mut self, quota: TenantQuota) -> Self {
        self.tenant_quota = quota;
        self
    }

    /// Select the lane-arbitration policy for service mode.
    pub fn with_tenant_arbitration(mut self, arbitration: TenantArbitration) -> Self {
        self.tenant_arbitration = arbitration;
        self
    }

    /// Set the weighted-fair base quantum (slices per weight unit per pass).
    pub fn with_tenant_quantum(mut self, quantum: u32) -> Self {
        self.tenant_quantum = quantum.max(1);
        self
    }

    /// Run the pre-service flat scheduling path (single task queue, no
    /// admission accounting) — the baseline arm of the tenancy benchmarks.
    pub fn legacy_flat_scheduling(mut self) -> Self {
        self.flat_scheduling = true;
        self
    }

    /// The algorithm selector this configuration describes.
    pub fn algorithm_selector(&self) -> AlgorithmSelector {
        AlgorithmSelector {
            tree_threshold_bytes: self.tree_threshold_bytes,
            force: self.algorithm,
            channels: self.channels,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_initial_threshold_decreases_with_position() {
        let p = SpinPolicy::adaptive_default();
        let front = p.initial_threshold(0);
        let second = p.initial_threshold(1);
        let deep = p.initial_threshold(40);
        assert!(front > second);
        assert!(second >= deep);
        assert_eq!(front, 100_000);
        assert_eq!(deep, 1_000, "deep positions hit the floor");
    }

    #[test]
    fn adaptive_success_multiplies_and_saturates() {
        let p = SpinPolicy::adaptive_default();
        assert_eq!(p.on_success(1_000), 20_000);
        assert_eq!(p.on_success(9_000_000), 10_000_000);
    }

    #[test]
    fn fixed_policy_never_changes() {
        let p = SpinPolicy::naive_fixed();
        assert_eq!(p.initial_threshold(0), 10_000);
        assert_eq!(p.initial_threshold(17), 10_000);
        assert_eq!(p.on_success(10_000), 10_000);
    }

    #[test]
    fn default_config_matches_paper_constants() {
        let c = DfcclConfig::default();
        assert_eq!(c.shared_mem_per_block, 13 * 1024);
        assert_eq!(c.context_buffer_per_block, 4 * 1024 * 1024);
        assert_eq!(c.cq_variant, CqVariant::OptimizedSlot);
        assert!(matches!(c.spin, SpinPolicy::Adaptive { .. }));
    }

    #[test]
    fn testing_config_is_cost_free() {
        let c = DfcclConfig::for_testing();
        assert_eq!(c.host_costs, HostMemCosts::free());
        assert_eq!(c.context_load_ns, 0.0);
        let s = DfcclConfig::preemption_stress();
        assert_eq!(s.spin, SpinPolicy::Fixed { threshold: 4 });
    }

    #[test]
    fn algorithm_selection_defaults_to_the_topology_aware_policy() {
        let c = DfcclConfig::default();
        assert_eq!(c.algorithm, None);
        assert_eq!(c.tree_threshold_bytes, DEFAULT_TREE_THRESHOLD_BYTES);
        let sel = c.algorithm_selector();
        assert_eq!(sel.force, None);
        assert_eq!(sel.channels, 1, "unstriped by default");
        let forced = DfcclConfig::default().with_algorithm(AlgorithmKind::Ring);
        assert_eq!(forced.algorithm_selector().force, Some(AlgorithmKind::Ring));
        let striped = DfcclConfig::default().with_channels(4);
        assert_eq!(striped.algorithm_selector().channels, 4);
    }

    #[test]
    fn fusion_threshold_defaults_to_ddp_scale_buckets() {
        let c = DfcclConfig::default();
        assert_eq!(c.fusion_threshold_bytes, 64 * 1024);
        let off = DfcclConfig {
            fusion_threshold_bytes: 0,
            ..DfcclConfig::default()
        };
        assert_eq!(off.fusion_threshold_bytes, 0);
    }

    #[test]
    fn unbatched_disables_both_batch_knobs() {
        let c = DfcclConfig::default();
        assert!(
            c.sq_fetch_batch > 1 && c.cq_write_batch > 1,
            "batching on by default"
        );
        let u = c.unbatched();
        assert_eq!(u.sq_fetch_batch, 1);
        assert_eq!(u.cq_write_batch, 1);
    }

    #[test]
    fn tenancy_defaults_leave_single_job_use_unconstrained() {
        let c = DfcclConfig::default();
        assert_eq!(c.tenant_quota, TenantQuota::default());
        assert_eq!(c.tenant_arbitration, TenantArbitration::WeightedFair);
        assert_eq!(c.tenant_quantum, 4);
        assert!(!c.flat_scheduling);
        let flat = DfcclConfig::default().legacy_flat_scheduling();
        assert!(flat.flat_scheduling);
        assert_eq!(
            DfcclConfig::default().with_tenant_quantum(0).tenant_quantum,
            1
        );
    }

    #[test]
    fn host_cost_defaults_reproduce_cq_ordering() {
        let h = HostMemCosts::default();
        let vanilla = 5.0 * h.host_op_ns + h.fence_ns;
        let optimized_ring = 4.0 * h.host_op_ns;
        let optimized_slot = h.cas_system_ns;
        assert!(vanilla > optimized_ring);
        assert!(optimized_ring > optimized_slot);
    }
}
