//! The daemon kernel: execution, preemption and scheduling of collectives
//! (Sec. 4, Algorithm 1).
//!
//! One daemon kernel runs per GPU. In this reproduction it is a dedicated
//! thread that:
//!
//! 1. acquires kernel residency on its [`gpu_sim::GpuDevice`] (so it interacts
//!    with device synchronization exactly like a persistent kernel would);
//! 2. fetches SQEs, maintains the task queue, and orders it by the configured
//!    policy;
//! 3. executes each scheduled collective's primitives in a *two-phase
//!    blocking* manner: a primitive polls its connector conditions up to the
//!    collective's spin threshold and, if it cannot proceed, the collective is
//!    deemed *stuck* and preempted (its dynamic context saved, the next
//!    collective scheduled);
//! 4. writes a CQE for every completed collective;
//! 5. quits voluntarily when idle (releasing the GPU and letting pending
//!    device synchronizations drain) and is restarted event-driven when new
//!    SQEs arrive or completions are still owed.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use dfccl_collectives::{
    execute_ready_step, step_ready, CollectiveDescriptor, PrimitiveStep, StepOutcome,
};
use dfccl_transport::{Communicator, RankChannels};
use gpu_sim::{GpuDevice, GpuId};
use parking_lot::{Mutex, RwLock};

use crate::callback::CallbackMap;
use crate::config::DfcclConfig;
use crate::context::{ContextLoad, ContextStore, DynamicContext};
use crate::cq::{CompletionQueue, Cqe};
use crate::sq::{SqCursor, SubmissionQueue};
use crate::stats::DaemonStats;
use crate::task_queue::TaskQueue;

/// Static context of a registered collective on one rank: everything that is
/// fixed at registration time (Sec. 4.2).
pub struct RegisteredCollective {
    /// The collective id chosen by the user at registration.
    pub coll_id: u64,
    /// The collective's descriptor.
    pub desc: CollectiveDescriptor,
    /// This GPU's rank within the collective's device set.
    pub rank: usize,
    /// The communicator backing the collective.
    pub communicator: Arc<Communicator>,
    /// This rank's connectors.
    pub channels: RankChannels,
    /// This rank's primitive sequence.
    pub plan: Vec<PrimitiveStep>,
}

/// State shared between the API layer, the poller thread and the daemon-kernel
/// thread (and surviving daemon restarts).
pub struct DaemonShared {
    /// The GPU this daemon serves.
    pub gpu: GpuId,
    /// The device model (residency + synchronization interplay).
    pub device: Arc<GpuDevice>,
    /// Runtime configuration.
    pub config: DfcclConfig,
    /// The submission queue.
    pub sq: Arc<SubmissionQueue>,
    /// The completion queue.
    pub cq: Arc<dyn CompletionQueue>,
    /// Completion callbacks.
    pub callbacks: Arc<CallbackMap>,
    /// Registered collectives (static contexts).
    pub registered: RwLock<HashMap<u64, Arc<RegisteredCollective>>>,
    /// Dynamic contexts of pending invocations (the collective context buffer).
    pub contexts: ContextStore,
    /// Statistics.
    pub stats: Arc<DaemonStats>,
    /// Collectives that failed with a protocol error, and why.
    pub errors: Mutex<HashMap<u64, String>>,
    /// Whether a daemon thread is currently alive.
    running: AtomicBool,
    /// Set when the exiting SQE has been read (or destroy was requested).
    final_exit: AtomicBool,
    /// SQ read cursor; persists across daemon restarts.
    sq_cursor: Mutex<SqCursor>,
    /// Invocations submitted but not yet completed.
    pub outstanding: AtomicU64,
}

impl DaemonShared {
    /// Create the shared state for one rank.
    pub fn new(
        gpu: GpuId,
        device: Arc<GpuDevice>,
        config: DfcclConfig,
        sq: Arc<SubmissionQueue>,
        cq: Arc<dyn CompletionQueue>,
        callbacks: Arc<CallbackMap>,
    ) -> Arc<Self> {
        let contexts = ContextStore::new(
            config.active_context_slots,
            config.context_load_ns,
            config.context_save_ns,
        );
        Arc::new(DaemonShared {
            gpu,
            device,
            config,
            sq,
            cq,
            callbacks,
            registered: RwLock::new(HashMap::new()),
            contexts,
            stats: Arc::new(DaemonStats::default()),
            errors: Mutex::new(HashMap::new()),
            running: AtomicBool::new(false),
            final_exit: AtomicBool::new(false),
            sq_cursor: Mutex::new(SqCursor::default()),
            outstanding: AtomicU64::new(0),
        })
    }

    /// Whether the daemon thread is currently alive.
    pub fn is_running(&self) -> bool {
        self.running.load(Ordering::Acquire)
    }

    /// Whether the exiting SQE has been consumed (or exit was forced).
    pub fn final_exit_requested(&self) -> bool {
        self.final_exit.load(Ordering::Acquire)
    }

    /// Invocations submitted but not yet completed.
    pub fn outstanding(&self) -> u64 {
        self.outstanding.load(Ordering::Acquire)
    }
}

/// Starts, restarts and joins daemon-kernel threads for one rank.
pub struct DaemonController {
    shared: Arc<DaemonShared>,
    join: Mutex<Option<JoinHandle<()>>>,
}

impl DaemonController {
    /// Create a controller over shared state.
    pub fn new(shared: Arc<DaemonShared>) -> Arc<Self> {
        Arc::new(DaemonController {
            shared,
            join: Mutex::new(None),
        })
    }

    /// The shared state.
    pub fn shared(&self) -> &Arc<DaemonShared> {
        &self.shared
    }

    /// Start the daemon kernel if it is not already running (event-driven
    /// starting: called on SQE insertion and by the poller while completions
    /// are owed).
    pub fn ensure_running(&self) {
        if self.shared.final_exit_requested() && self.shared.outstanding() == 0 {
            return;
        }
        if self
            .shared
            .running
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return;
        }
        let shared = Arc::clone(&self.shared);
        let handle = std::thread::Builder::new()
            .name(format!("dfccl-daemon-{}", shared.gpu))
            .spawn(move || run_daemon(shared))
            .expect("failed to spawn daemon kernel thread");
        let mut join = self.join.lock();
        // Reap the previous incarnation's handle, if any; it has exited
        // (running was false when we swapped it).
        if let Some(old) = join.take() {
            let _ = old.join();
        }
        *join = Some(handle);
    }

    /// Force the exit flag (used by `dfccl_destroy` alongside the exiting SQE).
    pub fn request_exit(&self) {
        self.shared.final_exit.store(true, Ordering::Release);
    }

    /// Wait until the daemon thread is no longer running, up to `timeout`.
    pub fn wait_idle(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while self.shared.is_running() {
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
        if let Some(h) = self.join.lock().take() {
            let _ = h.join();
        }
        true
    }
}

/// Body of one daemon-kernel incarnation (Algorithm 1).
fn run_daemon(shared: Arc<DaemonShared>) {
    shared.stats.record_daemon_start();

    // Acquire kernel residency; while a device synchronization is pending the
    // device rejects new residents, so back off and retry.
    let residency = loop {
        if shared.final_exit_requested() && shared.contexts.total_pending() == 0 {
            shared.running.store(false, Ordering::Release);
            return;
        }
        match shared.device.try_acquire_residency(
            shared.config.daemon_blocks,
            shared.config.shared_mem_per_block,
        ) {
            Ok(guard) => break guard,
            Err(_) => std::thread::sleep(shared.config.restart_backoff),
        }
    };

    // Rebuild the task queue from contexts that survived the previous
    // incarnation (preempted or never-started invocations).
    let mut task_queue = TaskQueue::new();
    {
        let registered = shared.registered.read();
        for coll_id in shared.contexts.incomplete_ids() {
            let priority = registered
                .get(&coll_id)
                .map(|r| r.desc.priority)
                .unwrap_or(0);
            task_queue.push(coll_id, priority);
        }
    }

    let mut idle_passes: u32 = 0;
    loop {
        let mut fetched_any = false;
        let mut progressed_any = false;

        // ❶ Fetch and parse SQEs.
        loop {
            let read_start = Instant::now();
            let sqe = {
                let mut cursor = shared.sq_cursor.lock();
                shared.sq.read_next(&mut cursor)
            };
            let Some(sqe) = sqe else { break };
            shared.stats.record_sqe_fetch(read_start.elapsed());
            fetched_any = true;
            if sqe.exit {
                shared.final_exit.store(true, Ordering::Release);
                continue;
            }
            let prep_start = Instant::now();
            let priority = shared
                .registered
                .read()
                .get(&sqe.coll_id)
                .map(|r| r.desc.priority)
                .unwrap_or(0);
            shared.contexts.enqueue_invocation(
                sqe.coll_id,
                DynamicContext::new(sqe.seq, sqe.send, sqe.recv),
            );
            if !task_queue.contains(sqe.coll_id) {
                task_queue.push(sqe.coll_id, priority);
            }
            shared
                .stats
                .record_queue_len(sqe.coll_id, task_queue.len() as u64);
            shared.stats.record_preparing(prep_start.elapsed());
        }

        // ❷ Order the task queue and assign initial spin thresholds.
        task_queue.reorder(shared.config.ordering);
        let spin = shared.config.spin;
        task_queue.assign_initial_thresholds(|pos| spin.initial_threshold(pos));

        // ❸ One scheduling pass over the task queue.
        for coll_id in task_queue.order() {
            let Some(reg) = shared.registered.read().get(&coll_id).cloned() else {
                // Unregistered id: drop the invocation and surface an error.
                if shared.contexts.checkout_current(coll_id).is_some() {
                    shared
                        .errors
                        .lock()
                        .insert(coll_id, "collective not registered".to_string());
                    complete_collective(&shared, coll_id);
                }
                task_queue.remove(coll_id);
                continue;
            };
            let prep_start = Instant::now();
            let Some((mut ctx, load)) = shared.contexts.checkout_current(coll_id) else {
                // Nothing pending for this entry (stale); drop it.
                task_queue.remove(coll_id);
                continue;
            };
            shared.stats.record_context_load();
            if load == ContextLoad::CacheMiss {
                shared.stats.record_preparing(prep_start.elapsed());
            }

            let mut threshold = task_queue
                .entry_mut(coll_id)
                .map(|e| e.spin_threshold)
                .unwrap_or_else(|| spin.initial_threshold(0));
            let mut preempted = false;
            let mut failed: Option<String> = None;

            while ctx.next_step < reg.plan.len() {
                let step = &reg.plan[ctx.next_step];
                // Two-phase blocking: poll the connector conditions up to the
                // spin threshold, then either execute or abort the primitive.
                let mut polls: u64 = 0;
                let ready = loop {
                    if step_ready(step, &reg.channels) {
                        break true;
                    }
                    polls += 1;
                    if polls >= threshold {
                        break false;
                    }
                    std::hint::spin_loop();
                };
                if !ready {
                    preempted = true;
                    break;
                }
                let exec_start = Instant::now();
                match execute_ready_step(
                    coll_id,
                    step,
                    &reg.channels,
                    reg.desc.dtype,
                    reg.desc.op,
                    &ctx.send,
                    &ctx.recv,
                ) {
                    Ok(StepOutcome::Completed) => {
                        shared.stats.record_primitive(exec_start.elapsed());
                        ctx.next_step += 1;
                        ctx.progressed_since_save = true;
                        progressed_any = true;
                        // Adaptive stickiness: a successful primitive raises the
                        // threshold of its successors (decentralized dynamic
                        // gang-scheduling).
                        threshold = spin.on_success(threshold);
                        if let Some(entry) = task_queue.entry_mut(coll_id) {
                            entry.spin_threshold = threshold;
                        }
                    }
                    Ok(StepOutcome::NotReady) => {
                        preempted = true;
                        break;
                    }
                    Err(e) => {
                        failed = Some(e.to_string());
                        break;
                    }
                }
            }

            if let Some(reason) = failed {
                shared.errors.lock().insert(coll_id, reason);
                complete_collective(&shared, coll_id);
                if !shared.contexts.has_pending(coll_id) {
                    task_queue.remove(coll_id);
                }
            } else if preempted {
                shared.stats.record_preemption(coll_id);
                let saved = shared.contexts.checkin_incomplete(coll_id, ctx);
                shared.stats.record_context_save(!saved);
            } else {
                // ❹ Completed: emit the CQE.
                complete_collective(&shared, coll_id);
                if !shared.contexts.has_pending(coll_id) {
                    task_queue.remove(coll_id);
                }
                progressed_any = true;
            }
        }

        // ❺ Idle handling: voluntary quitting and final exit.
        if fetched_any || progressed_any {
            idle_passes = 0;
            continue;
        }
        idle_passes += 1;

        let sq_has_pending = {
            let cursor = shared.sq_cursor.lock();
            shared.sq.has_pending(&cursor)
        };
        if shared.final_exit_requested() && task_queue.is_empty() && !sq_has_pending {
            drop(residency);
            shared.running.store(false, Ordering::Release);
            return;
        }
        // Quit early when a device synchronization is blocked on this daemon;
        // otherwise wait out the configured idle period.
        let sync_blocked = shared.device.sync_pending();
        if (sync_blocked && idle_passes >= 2)
            || idle_passes >= shared.config.idle_passes_before_quit
        {
            shared.stats.record_voluntary_quit();
            drop(residency);
            shared.running.store(false, Ordering::Release);
            return;
        }
        std::thread::yield_now();
    }
}

/// Emit the CQE for a completed collective and update accounting.
fn complete_collective(shared: &Arc<DaemonShared>, coll_id: u64) {
    let write_start = Instant::now();
    while !shared.cq.push(Cqe { coll_id }) {
        std::hint::spin_loop();
    }
    shared.stats.record_cqe_write(write_start.elapsed());
    shared.stats.record_completion(coll_id);
    let previous = shared.outstanding.fetch_sub(1, Ordering::AcqRel);
    debug_assert!(previous > 0, "completion without a matching submission");
}

/// The CPU-side poller: drains the CQ, runs the callbacks bound to completed
/// collectives, and restarts the daemon kernel while completions are owed
/// (the second half of DFCCL's event-driven starting rule).
pub fn run_poller(
    shared: Arc<DaemonShared>,
    controller: Arc<DaemonController>,
    stop: Arc<AtomicBool>,
) {
    loop {
        let mut drained = false;
        while let Some(cqe) = shared.cq.pop() {
            drained = true;
            if let Some(cb) = shared.callbacks.take(cqe.coll_id) {
                cb();
            }
        }
        if stop.load(Ordering::Acquire) && shared.cq.is_empty() && shared.outstanding() == 0 {
            return;
        }
        if !drained {
            // Completions are owed but no daemon is running: restart it.
            if shared.outstanding() > 0 && !shared.is_running() {
                controller.ensure_running();
            }
            std::thread::sleep(shared.config.restart_backoff);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DfcclConfig;
    use crate::cq::build_cq;
    use gpu_sim::GpuSpec;

    fn shared_for_test() -> Arc<DaemonShared> {
        let config = DfcclConfig::for_testing();
        let device = GpuDevice::new(GpuId(0), GpuSpec::rtx_3090());
        let sq = Arc::new(SubmissionQueue::new(config.sq_capacity, 1));
        let cq: Arc<dyn CompletionQueue> =
            Arc::from(build_cq(config.cq_variant, config.cq_capacity, config.host_costs));
        DaemonShared::new(GpuId(0), device, config, sq, cq, CallbackMap::new())
    }

    #[test]
    fn daemon_with_no_work_quits_voluntarily() {
        let shared = shared_for_test();
        let controller = DaemonController::new(Arc::clone(&shared));
        controller.ensure_running();
        assert!(controller.wait_idle(Duration::from_secs(5)));
        let snap = shared.stats.snapshot();
        assert_eq!(snap.daemon_starts, 1);
        assert_eq!(snap.voluntary_quits, 1);
        assert!(!shared.is_running());
    }

    #[test]
    fn ensure_running_is_idempotent_while_running() {
        let shared = shared_for_test();
        let controller = DaemonController::new(Arc::clone(&shared));
        controller.ensure_running();
        controller.ensure_running();
        controller.ensure_running();
        assert!(controller.wait_idle(Duration::from_secs(5)));
        // Only one incarnation ran even though ensure_running was called thrice
        // before it had a chance to go idle (the extra calls may or may not
        // have landed after the quit, so allow 1..=3 but require monotonicity).
        let starts = shared.stats.snapshot().daemon_starts;
        assert!((1..=3).contains(&starts), "starts = {starts}");
    }

    #[test]
    fn daemon_exits_after_exit_sqe() {
        let shared = shared_for_test();
        let controller = DaemonController::new(Arc::clone(&shared));
        shared.sq.try_push(crate::sq::Sqe::exit_marker(0)).unwrap();
        controller.ensure_running();
        assert!(controller.wait_idle(Duration::from_secs(5)));
        assert!(shared.final_exit_requested());
        // After final exit with nothing outstanding, ensure_running is a no-op.
        controller.ensure_running();
        assert!(!shared.is_running());
    }

    #[test]
    fn unregistered_collective_is_failed_not_hung() {
        let shared = shared_for_test();
        let controller = DaemonController::new(Arc::clone(&shared));
        shared.outstanding.fetch_add(1, Ordering::Release);
        shared
            .sq
            .try_push(crate::sq::Sqe {
                coll_id: 99,
                seq: 0,
                send: dfccl_collectives::DeviceBuffer::zeroed(4),
                recv: dfccl_collectives::DeviceBuffer::zeroed(4),
                exit: false,
            })
            .unwrap();
        controller.ensure_running();
        assert!(controller.wait_idle(Duration::from_secs(5)));
        assert_eq!(shared.outstanding(), 0);
        assert!(shared.errors.lock().contains_key(&99));
        assert_eq!(shared.cq.pop().unwrap().coll_id, 99);
    }

    #[test]
    fn daemon_quits_when_device_sync_is_pending() {
        let shared = shared_for_test();
        let controller = DaemonController::new(Arc::clone(&shared));
        controller.ensure_running();
        // Give the daemon time to acquire residency, then request a sync.
        std::thread::sleep(Duration::from_millis(20));
        let waiter = shared.device.request_synchronize(gpu_sim::SyncKind::Explicit);
        assert!(
            waiter.wait_timeout(Duration::from_secs(5)),
            "sync must complete once the daemon quits voluntarily"
        );
        controller.wait_idle(Duration::from_secs(5));
    }
}
