//! The daemon kernel: execution, preemption and scheduling of collectives
//! (Sec. 4, Algorithm 1).
//!
//! One daemon kernel runs per GPU. In this reproduction it is a dedicated
//! thread that:
//!
//! 1. acquires kernel residency on its [`gpu_sim::GpuDevice`] (so it interacts
//!    with device synchronization exactly like a persistent kernel would);
//! 2. fetches SQEs in batches (one cursor-lock acquisition and one SQ head
//!    read per burst), maintains the task queue, and orders it by the
//!    configured policy;
//! 3. executes each scheduled collective's primitives in a *two-phase
//!    blocking* manner: a primitive polls its connector conditions up to the
//!    collective's spin threshold and, if it cannot proceed, the collective is
//!    deemed *stuck* and preempted (its dynamic context saved, the next
//!    collective scheduled);
//! 4. buffers CQEs for completed collectives and publishes them with batched
//!    CQ rounds, amortizing the queue-claim atomics and (on the ring
//!    variants) the fence across the batch;
//! 5. quits voluntarily when idle (releasing the GPU and letting pending
//!    device synchronizations drain) and is restarted event-driven when new
//!    SQEs arrive or completions are still owed.
//!
//! ## The event-driven hot path
//!
//! The control path is signal-driven end to end (see [`crate::park::Parker`]):
//! an invoker pushing an SQE signals the daemon's parker; the daemon
//! publishing a CQE batch signals the poller's parker; the daemon announcing
//! its exit signals the idle parker that [`DaemonController::wait_idle`]
//! waits on. Nothing on the steady-state path sleep-polls. When the daemon
//! runs out of work it first spins for a few cheap passes (sub-microsecond
//! wake-up while a burst is still arriving), then parks on its wake-up
//! signal, and finally quits voluntarily once the configured idle budget is
//! exhausted.
//!
//! Steady-state scheduling also takes no locks for static-context lookups:
//! registered collectives are cached in a daemon-local map stamped with the
//! registry generation, and the `RwLock` registry is only consulted when the
//! generation moves (i.e. someone registered a new collective).
//!
//! ## The service-mode pipeline
//!
//! A scheduling pass is four explicit stages (DESIGN.md §8):
//!
//! * **admission** ([`admission_stage`]) — fetch SQE batches, expand graph
//!   replays, and enqueue invocations on their tenant's scheduling lane
//!   (per-tenant quota checks happen API-side at submit time, where the
//!   typed [`crate::tenant::AdmissionError`] backpressure can be returned);
//! * **schedule** ([`schedule_stage`]) — one weighted-fair / strict-priority
//!   arbitration pass over the per-tenant lanes
//!   ([`crate::task_queue::TenantScheduler`]), preserving FIFO/priority
//!   semantics within each tenant;
//! * **execute** ([`execute_stage`]) — unchanged compiled-lane (or
//!   interpreted) dispatch with two-phase blocking per slice;
//! * **complete** ([`complete_stage`]) — batched CQE publication with
//!   per-tenant completion routing and accounting.
//!
//! With one tenant (or `DfcclConfig::flat_scheduling`) the pipeline reduces
//! to the pre-service flat schedule.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use dfccl_collectives::{
    execute_ready_instr, execute_ready_step, flush_pending, flush_pending_compiled, instr_ready,
    step_ready, CollectiveDescriptor, CompiledProgram, GraphOp, Plan, StepOutcome,
};
use dfccl_transport::{Communicator, ConnectorTable, RankChannels};
use gpu_sim::{GpuDevice, GpuId};
use parking_lot::{Mutex, RwLock};

use crate::callback::CallbackMap;
use crate::config::DfcclConfig;
use crate::context::{ContextLoad, ContextStore, DynamicContext, GraphTag};
use crate::cq::{CqKind, Cqe};
use crate::park::Parker;
use crate::sq::{SqCursor, Sqe, SubmissionQueue};
use crate::stats::DaemonStats;
use crate::task_queue::TenantScheduler;
use crate::telemetry::{Telemetry, TelemetryEventKind};
use crate::tenant::{TenantId, TenantState, TenantTable};

/// Static context of a registered collective on one rank: everything that is
/// fixed at registration time (Sec. 4.2).
pub struct RegisteredCollective {
    /// The collective id chosen by the user at registration.
    pub coll_id: u64,
    /// The collective's descriptor.
    pub desc: CollectiveDescriptor,
    /// This GPU's rank within the collective's device set.
    pub rank: usize,
    /// The tenant that registered the collective (service mode); tenant 0
    /// for handle-less registrations.
    pub tenant: TenantId,
    /// The communicator backing the collective.
    pub communicator: Arc<Communicator>,
    /// This rank's connectors, keyed by `(peer, channel)` — the interpreted
    /// dispatch path and diagnostics address connectors through this map.
    pub channels: RankChannels,
    /// This rank's schedule in plan-IR form (shared with the plan cache).
    pub plan: Arc<Plan>,
    /// The plan lowered into its flat per-channel program (shared with the
    /// plan cache): dense instructions with pre-resolved connector indices.
    pub program: Arc<CompiledProgram>,
    /// The program's connector indices bound to this registration's actual
    /// connectors — what the compiled hot loop dereferences per poll.
    pub table: ConnectorTable,
}

/// High bit reserved in the SQE collective-id space for graph replays: an SQE
/// whose `coll_id` has this bit set (and is not the exit marker, which is
/// checked first) names a captured graph, and the daemon expands it into the
/// graph's pre-resolved per-node invocations instead of enqueuing a single
/// collective. Graph ids are rank-local (`GRAPH_ID_BASE | counter`); they
/// never cross the wire, so ranks need not agree on them.
pub const GRAPH_ID_BASE: u64 = 1 << 63;

/// Whether an SQE collective id names a graph replay.
pub fn is_graph_id(coll_id: u64) -> bool {
    coll_id & GRAPH_ID_BASE != 0
}

/// One node of a captured graph: the (possibly fused) recorded operation and
/// its registration, resolved at capture time so replay touches neither the
/// registry lock nor the plan cache.
pub struct GraphNode {
    /// The recorded operation (buffers fixed at capture).
    pub op: GraphOp,
    /// The pre-resolved static context the daemon executes the node with.
    pub reg: Arc<RegisteredCollective>,
}

/// An immutable captured iteration graph, ready for replay. Created by
/// `RankCtx::begin_capture` / `GraphRecorder::finish`; submitted whole by
/// `RankCtx::replay` as one SQE carrying the graph id.
pub struct CapturedGraph {
    /// The replay id (`GRAPH_ID_BASE | counter`, unique per rank).
    pub graph_id: u64,
    /// The GPU whose rank context captured this graph (replay is only valid
    /// on the same rank — the nodes hold that rank's connectors).
    pub gpu: GpuId,
    /// The nodes, in recorded submission order, after the fusion pass.
    pub nodes: Vec<GraphNode>,
    /// Guards against overlapping replays of one graph: the staging buffers
    /// and recorded recv buffers are fixed addresses, so a second in-flight
    /// replay would race the first. Set by `replay`, cleared by the daemon
    /// after the final node's completion (and scatter).
    pub(crate) in_flight: AtomicBool,
}

impl CapturedGraph {
    /// Number of collectives one replay executes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// How many of the recorded collectives were coalesced into fused nodes.
    pub fn fused_nodes(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n.op, GraphOp::Fused(_)))
            .count()
    }
}

/// Countdown state of one in-flight graph replay: lives in [`DaemonShared`]
/// (not the daemon thread) so it survives voluntary quits and restarts.
struct GraphRun {
    graph: Arc<CapturedGraph>,
    /// Nodes not yet completed or failed. At zero the run is torn down and
    /// the graph's single CQE is published.
    remaining: usize,
}

/// State shared between the API layer, the poller thread and the daemon-kernel
/// thread (and surviving daemon restarts).
pub struct DaemonShared {
    /// The GPU this daemon serves.
    pub gpu: GpuId,
    /// The device model (residency + synchronization interplay).
    pub device: Arc<GpuDevice>,
    /// Runtime configuration.
    pub config: DfcclConfig,
    /// The submission queue.
    pub sq: Arc<SubmissionQueue>,
    /// The completion queue (statically dispatched).
    pub cq: Arc<CqKind>,
    /// Completion callbacks.
    pub callbacks: Arc<CallbackMap>,
    /// Registered collectives (static contexts). The daemon thread reads
    /// these through a generation-stamped local cache; see
    /// [`DaemonShared::registry_generation`].
    pub registered: RwLock<HashMap<u64, Arc<RegisteredCollective>>>,
    /// Bumped after every mutation of `registered`; lets the daemon detect
    /// staleness of its lock-free local cache.
    registry_generation: AtomicU64,
    /// Dynamic contexts of pending invocations (the collective context buffer).
    pub contexts: ContextStore,
    /// Captured graphs available for replay, keyed by graph id.
    pub graphs: RwLock<HashMap<u64, Arc<CapturedGraph>>>,
    /// In-flight graph replays keyed by `(graph_id, run)`; like `contexts`,
    /// this survives daemon restarts mid-replay.
    graph_runs: Mutex<HashMap<(u64, u64), GraphRun>>,
    /// Statistics.
    pub stats: Arc<DaemonStats>,
    /// Structured telemetry: lifecycle event ring + always-on counters
    /// (capacity from [`DfcclConfig::telemetry_events`]).
    pub telemetry: Arc<Telemetry>,
    /// Per-tenant admission counters and lifecycle accounting (service
    /// mode). Tenants without an explicit handle get
    /// [`DfcclConfig::tenant_quota`].
    pub tenants: Arc<TenantTable>,
    /// Collectives that failed with a protocol error, and why.
    pub errors: Mutex<HashMap<u64, String>>,
    /// Whether a daemon thread is currently alive.
    running: AtomicBool,
    /// Set when the exiting SQE has been read (or destroy was requested).
    final_exit: AtomicBool,
    /// SQ read cursor; persists across daemon restarts.
    sq_cursor: Mutex<SqCursor>,
    /// Invocations submitted but not yet completed.
    pub outstanding: AtomicU64,
    /// Bumped by the recovery coordinator after it reinstalls rolled-back
    /// contexts: reinstalled invocations arrive without an SQE, so a running
    /// daemon must re-scan the context store to pick them up (an idle daemon
    /// finds them in its restart rebuild instead).
    rescan: AtomicU64,
    /// Wake-up signal for the daemon thread (new SQE, exit request).
    daemon_wake: Parker,
    /// Wake-up signal for the poller thread (CQE batch published, stop).
    cq_ready: Parker,
    /// Signalled when the daemon thread stops running (for `wait_idle`).
    idle_signal: Parker,
}

impl DaemonShared {
    /// Create the shared state for one rank.
    pub fn new(
        gpu: GpuId,
        device: Arc<GpuDevice>,
        config: DfcclConfig,
        sq: Arc<SubmissionQueue>,
        cq: Arc<CqKind>,
        callbacks: Arc<CallbackMap>,
    ) -> Arc<Self> {
        let contexts = ContextStore::new(
            config.active_context_slots,
            config.context_load_ns,
            config.context_save_ns,
        );
        let telemetry = Telemetry::new(config.telemetry_events);
        let tenants = TenantTable::new(config.tenant_quota);
        Arc::new(DaemonShared {
            gpu,
            device,
            config,
            sq,
            cq,
            callbacks,
            registered: RwLock::new(HashMap::new()),
            registry_generation: AtomicU64::new(1),
            contexts,
            graphs: RwLock::new(HashMap::new()),
            graph_runs: Mutex::new(HashMap::new()),
            stats: Arc::new(DaemonStats::default()),
            telemetry,
            tenants,
            errors: Mutex::new(HashMap::new()),
            running: AtomicBool::new(false),
            final_exit: AtomicBool::new(false),
            sq_cursor: Mutex::new(SqCursor::default()),
            outstanding: AtomicU64::new(0),
            rescan: AtomicU64::new(0),
            daemon_wake: Parker::new(),
            cq_ready: Parker::new(),
            idle_signal: Parker::new(),
        })
    }

    /// Whether the daemon thread is currently alive.
    pub fn is_running(&self) -> bool {
        self.running.load(Ordering::Acquire)
    }

    /// Whether the exiting SQE has been consumed (or exit was forced).
    pub fn final_exit_requested(&self) -> bool {
        self.final_exit.load(Ordering::Acquire)
    }

    /// Invocations submitted but not yet completed.
    pub fn outstanding(&self) -> u64 {
        self.outstanding.load(Ordering::Acquire)
    }

    /// Current registry generation (bumped on every registration).
    pub fn registry_generation(&self) -> u64 {
        self.registry_generation.load(Ordering::Acquire)
    }

    /// Announce a registry mutation (called with the write lock released).
    pub fn bump_registry_generation(&self) {
        self.registry_generation.fetch_add(1, Ordering::Release);
    }

    /// Wake the daemon thread: a new SQE is visible or an exit was requested.
    pub fn notify_daemon(&self) {
        self.daemon_wake.signal();
    }

    /// Ask a running daemon to re-scan the context store for pending
    /// invocations it is not tracking (recovery reinstalls rolled-back
    /// contexts without an SQE). A daemon between incarnations picks them up
    /// through its restart rebuild instead.
    pub fn request_rescan(&self) {
        self.rescan.fetch_add(1, Ordering::Release);
        self.daemon_wake.signal();
    }

    fn rescan_generation(&self) -> u64 {
        self.rescan.load(Ordering::Acquire)
    }

    /// Wake the poller thread: CQEs are visible (or a stop was requested).
    pub fn notify_poller(&self) {
        self.cq_ready.signal();
    }

    /// Mark the daemon thread as no longer running and wake `wait_idle`.
    fn mark_not_running(&self) {
        self.running.store(false, Ordering::Release);
        self.idle_signal.signal();
    }
}

/// Starts, restarts and joins daemon-kernel threads for one rank.
pub struct DaemonController {
    shared: Arc<DaemonShared>,
    join: Mutex<Option<JoinHandle<()>>>,
}

impl DaemonController {
    /// Create a controller over shared state.
    pub fn new(shared: Arc<DaemonShared>) -> Arc<Self> {
        Arc::new(DaemonController {
            shared,
            join: Mutex::new(None),
        })
    }

    /// The shared state.
    pub fn shared(&self) -> &Arc<DaemonShared> {
        &self.shared
    }

    /// Start the daemon kernel if it is not already running (event-driven
    /// starting: called on SQE insertion and by the poller while completions
    /// are owed). A daemon that is alive but parked is woken instead.
    pub fn ensure_running(&self) {
        // Wake a parked incarnation first: if the daemon is alive, this is
        // the whole job; if it is mid-exit, the spawn below takes over.
        self.shared.notify_daemon();
        if self.shared.final_exit_requested() && self.shared.outstanding() == 0 {
            return;
        }
        if self
            .shared
            .running
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return;
        }
        let shared = Arc::clone(&self.shared);
        let handle = std::thread::Builder::new()
            .name(format!("dfccl-daemon-{}", shared.gpu))
            .spawn(move || run_daemon(shared))
            .expect("failed to spawn daemon kernel thread");
        let mut join = self.join.lock();
        // Reap the previous incarnation's handle, if any; it has exited
        // (running was false when we swapped it).
        if let Some(old) = join.take() {
            let _ = old.join();
        }
        *join = Some(handle);
    }

    /// Force the exit flag (used by `dfccl_destroy` alongside the exiting SQE)
    /// and wake the daemon so it observes the request immediately.
    pub fn request_exit(&self) {
        self.shared.final_exit.store(true, Ordering::Release);
        self.shared.notify_daemon();
    }

    /// Wait until the daemon thread is no longer running, up to `timeout`.
    /// Event-driven: the daemon signals its exit, so this returns as soon as
    /// the daemon stops instead of discovering it on a 200 µs polling grid.
    pub fn wait_idle(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            let seen = self.shared.idle_signal.generation();
            if !self.shared.is_running() {
                break;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            self.shared
                .idle_signal
                .park_if_unchanged(seen, deadline - now);
        }
        if let Some(h) = self.join.lock().take() {
            let _ = h.join();
        }
        true
    }
}

/// Daemon-local, lock-free cache of the registered-collective table, stamped
/// with the registry generation. Steady-state lookups (the overwhelmingly
/// common case) touch no `RwLock`; the table is re-read only when a
/// registration actually happened.
struct RegistryCache {
    map: HashMap<u64, Arc<RegisteredCollective>>,
    generation: u64,
}

impl RegistryCache {
    fn new() -> Self {
        RegistryCache {
            map: HashMap::new(),
            generation: 0,
        }
    }

    fn get(&mut self, shared: &DaemonShared, coll_id: u64) -> Option<Arc<RegisteredCollective>> {
        let generation = shared.registry_generation();
        if generation != self.generation {
            self.map = shared.registered.read().clone();
            self.generation = generation;
        }
        self.map.get(&coll_id).cloned()
    }
}

/// Daemon-local cache of [`TenantState`] handles, so per-slice accounting
/// (preemptions, failures) costs a `HashMap` hit instead of the table's
/// `RwLock`. States are immutable per tenant, so entries never go stale.
struct TenantCache {
    map: HashMap<TenantId, Arc<TenantState>>,
}

impl TenantCache {
    fn new() -> Self {
        TenantCache {
            map: HashMap::new(),
        }
    }

    fn get(&mut self, shared: &DaemonShared, tenant: TenantId) -> Arc<TenantState> {
        Arc::clone(
            self.map
                .entry(tenant)
                .or_insert_with(|| shared.tenants.state(tenant)),
        )
    }
}

/// Pending CQEs with their owning tenants (parallel vectors — the `Cqe` wire
/// format is unchanged; tenant routing is daemon-side bookkeeping).
struct CompletionBatch {
    cqes: Vec<Cqe>,
    tenants: Vec<TenantId>,
}

impl CompletionBatch {
    fn with_capacity(n: usize) -> Self {
        CompletionBatch {
            cqes: Vec::with_capacity(n),
            tenants: Vec::with_capacity(n),
        }
    }
}

/// Append a completion to the pending CQE batch, flushing when the batch
/// threshold is reached. The `Complete` telemetry event means "a CQE was
/// enqueued" — failed collectives produce a `Failed` event *and* a
/// `Complete` (their failure is still delivered through the CQ).
fn enqueue_completion(
    shared: &Arc<DaemonShared>,
    batch: &mut CompletionBatch,
    coll_id: u64,
    tenant: TenantId,
) {
    shared
        .telemetry
        .record(coll_id, TelemetryEventKind::Complete);
    batch.cqes.push(Cqe { coll_id });
    batch.tenants.push(tenant);
    if batch.cqes.len() >= shared.config.cq_write_batch.max(1) {
        flush_completions(shared, batch);
    }
}

/// The **complete** stage: publish the pending CQE batch with batched CQ
/// rounds, route each completion to its tenant's accounting, update rank-wide
/// accounting and wake the poller. With `cq_write_batch == 1` this
/// degenerates to the legacy per-entry publication (identical modelled cost).
fn flush_completions(shared: &Arc<DaemonShared>, batch: &mut CompletionBatch) {
    if batch.cqes.is_empty() {
        return;
    }
    let write_start = Instant::now();
    let mut offset = 0;
    while offset < batch.cqes.len() {
        let pushed = shared.cq.push_n(&batch.cqes[offset..]);
        offset += pushed;
        if pushed == 0 {
            // CQ full: the poller owns previously published entries, so wake
            // it and yield — on a single core the poller needs this CPU to
            // drain before the push can succeed.
            shared.notify_poller();
            std::thread::yield_now();
        }
    }
    shared
        .stats
        .record_cqe_write_batch(write_start.elapsed(), batch.cqes.len() as u64);
    let flat = shared.config.flat_scheduling;
    for (cqe, tenant) in batch.cqes.iter().zip(batch.tenants.iter()) {
        shared.stats.record_completion(cqe.coll_id);
        let previous = shared.outstanding.fetch_sub(1, Ordering::AcqRel);
        debug_assert!(previous > 0, "completion without a matching submission");
        if !flat {
            shared.tenants.state(*tenant).on_complete();
        }
    }
    batch.cqes.clear();
    batch.tenants.clear();
    shared.notify_poller();
}

/// Enqueue `coll_id` on its tenant's scheduling lane with the configured
/// initial spin threshold for its arrival position (satellite: the threshold
/// comes from [`DfcclConfig::spin`] at push time, not a silent 0).
fn enqueue_task(
    shared: &Arc<DaemonShared>,
    scheduler: &mut TenantScheduler,
    tenant_cache: &mut TenantCache,
    coll_id: u64,
    priority: i32,
    tenant: TenantId,
) {
    let state = tenant_cache.get(shared, tenant);
    let initial_spin = shared.config.spin.initial_threshold(scheduler.len());
    scheduler.push(coll_id, &state, priority, initial_spin);
}

/// Expand a graph-replay SQE (admission): insert the run's countdown state
/// and enqueue one pre-tagged invocation per node, in recorded order, on the
/// registering tenant's lane. The nodes then flow through the ordinary
/// scheduling pass; only their completions are routed differently (see
/// [`complete_graph_node`]).
fn expand_graph(
    shared: &Arc<DaemonShared>,
    scheduler: &mut TenantScheduler,
    tenant_cache: &mut TenantCache,
    completions: &mut CompletionBatch,
    graph_id: u64,
    run: u64,
) {
    let Some(graph) = shared.graphs.read().get(&graph_id).cloned() else {
        // Replay of a graph this rank never captured: fail it like an
        // unregistered collective instead of hanging the submitter.
        shared
            .errors
            .lock()
            .insert(graph_id, "graph not captured on this rank".to_string());
        shared
            .telemetry
            .record(graph_id, TelemetryEventKind::Failed);
        enqueue_completion(shared, completions, graph_id, TenantId::DEFAULT);
        return;
    };
    shared.graph_runs.lock().insert(
        (graph_id, run),
        GraphRun {
            graph: Arc::clone(&graph),
            remaining: graph.nodes.len(),
        },
    );
    for (node, graph_node) in graph.nodes.iter().enumerate() {
        let coll_id = graph_node.op.coll_id();
        let mut ctx = DynamicContext::new(
            run,
            graph_node.op.send_buffer().clone(),
            graph_node.op.recv_buffer().clone(),
        );
        ctx.graph = Some(GraphTag {
            graph_id,
            run,
            node: node as u32,
        });
        shared.contexts.enqueue_invocation(coll_id, ctx);
        if !scheduler.contains(coll_id) {
            enqueue_task(
                shared,
                scheduler,
                tenant_cache,
                coll_id,
                graph_node.reg.desc.priority,
                graph_node.reg.tenant,
            );
        }
        shared
            .stats
            .record_queue_len(coll_id, scheduler.len() as u64);
    }
}

/// Route a graph-tagged invocation's completion (❹): scatter a fused node's
/// result back into its members' recorded recv buffers, count the node down
/// against its run, and — when the run's last node finishes — tear the run
/// down, clear the graph's in-flight guard and publish the graph's single
/// CQE. A failed node records its error under the *graph* id (first failure
/// wins) and still counts down, so the replay's completion always fires.
fn complete_graph_node(
    shared: &Arc<DaemonShared>,
    completions: &mut CompletionBatch,
    tag: GraphTag,
    failed: Option<String>,
) {
    let ok = failed.is_none();
    if let Some(reason) = failed {
        shared.errors.lock().entry(tag.graph_id).or_insert(reason);
    }
    let finished = {
        let mut runs = shared.graph_runs.lock();
        let key = (tag.graph_id, tag.run);
        let Some(state) = runs.get_mut(&key) else {
            debug_assert!(false, "graph node completed without a matching run");
            return;
        };
        if ok {
            if let GraphOp::Fused(fused) = &state.graph.nodes[tag.node as usize].op {
                fused.scatter();
            }
        }
        state.remaining -= 1;
        if state.remaining == 0 {
            Some(runs.remove(&key).expect("run present").graph)
        } else {
            None
        }
    };
    if let Some(graph) = finished {
        graph.in_flight.store(false, Ordering::Release);
        // The replay's single CQE is accounted to the tenant that captured
        // the graph (the first node's registering tenant — capture is
        // rank-local, so all nodes share it in practice).
        let tenant = graph
            .nodes
            .first()
            .map(|n| n.reg.tenant)
            .unwrap_or(TenantId::DEFAULT);
        enqueue_completion(shared, completions, tag.graph_id, tenant);
    }
}

/// Outcome of one scheduling slice (the time a collective holds the daemon
/// between being scheduled and completing, failing or being preempted).
struct SliceRun {
    /// The collective was preempted (spin threshold exhausted mid-plan).
    preempted: bool,
    /// The collective failed with a protocol error.
    failed: Option<String>,
    /// The slice published data or completed primitives (drives the idle
    /// accounting of the pass).
    progressed: bool,
    /// The spin threshold after adaptive raises, to persist in the task
    /// queue for the collective's next slice.
    threshold: u64,
}

/// Execute one slice of `reg` by interpreting the plan IR step by step — the
/// legacy dispatch (`DfcclConfig::compiled_dispatch == false`): one global
/// step cursor, per-poll `BTreeMap` connector lookups, and two-phase
/// blocking per primitive. Kept as the baseline arm of the dispatch-cost
/// benchmarks and as a differential-testing oracle for the compiled path.
fn run_interpreted_slice(
    shared: &Arc<DaemonShared>,
    reg: &RegisteredCollective,
    ctx: &mut DynamicContext,
    spin: crate::config::SpinPolicy,
    mut threshold: u64,
) -> SliceRun {
    let coll_id = reg.coll_id;
    let mut progressed = false;
    let mut preempted = false;
    let mut failed: Option<String> = None;

    while ctx.next_step < reg.plan.len() {
        let step = &reg.plan.steps[ctx.next_step];
        // Two-phase blocking: poll the connector conditions up to the
        // spin threshold, then either execute or abort the primitive.
        // A chunk staged by the previous fused primitive makes the
        // condition "its connector drained"; the executor flushes it
        // before running the step.
        let mut polls: u64 = 0;
        let ready = loop {
            if step_ready(step, &reg.channels, &ctx.pending_sends) {
                break true;
            }
            polls += 1;
            if polls >= threshold {
                break false;
            }
            std::hint::spin_loop();
        };
        if !ready {
            preempted = true;
            break;
        }
        let staged_before = ctx.pending_sends.len();
        let exec_start = Instant::now();
        match execute_ready_step(
            coll_id,
            step,
            &reg.channels,
            reg.desc.dtype,
            reg.desc.op,
            &ctx.send,
            &ctx.recv,
            &mut ctx.pending_sends,
        ) {
            Ok(StepOutcome::Completed) => {
                shared.stats.record_primitive(exec_start.elapsed());
                ctx.next_step += 1;
                ctx.progressed_since_save = true;
                progressed = true;
                // Adaptive stickiness: a successful primitive raises the
                // threshold of its successors (decentralized dynamic
                // gang-scheduling).
                threshold = spin.on_success(threshold);
            }
            Ok(StepOutcome::NotReady) => {
                // The executor may have flushed staged chunks (on any
                // channel) and only then found the step's own conditions
                // unmet: those flushes published data, so the pass made
                // progress even though this collective is preempted.
                if ctx.pending_sends.len() < staged_before {
                    progressed = true;
                }
                preempted = true;
                break;
            }
            Err(e) => {
                failed = Some(e.to_string());
                break;
            }
        }
    }

    // The last primitives may have staged output chunks (one per channel);
    // the collective is only complete once every one is on the wire.
    if failed.is_none() && !preempted && !ctx.pending_sends.is_empty() {
        let mut polls: u64 = 0;
        loop {
            let staged_before = ctx.pending_sends.len();
            match flush_pending(&reg.channels, &mut ctx.pending_sends) {
                Ok(true) => {
                    progressed = true;
                    break;
                }
                Ok(false) => {
                    // A partial flush (some channels drained, others still
                    // full) published data: that is progress even if the
                    // collective ends up preempted here.
                    if ctx.pending_sends.len() < staged_before {
                        progressed = true;
                    }
                    polls += 1;
                    if polls >= threshold {
                        preempted = true;
                        break;
                    }
                    std::hint::spin_loop();
                }
                Err(e) => {
                    failed = Some(e.to_string());
                    break;
                }
            }
        }
    }

    SliceRun {
        preempted,
        failed,
        progressed,
        threshold,
    }
}

/// Execute one slice of `reg` through its compiled program: every pass polls
/// each lane's head instruction (pure index dispatch into the bound
/// connector table — no map lookups) and executes the ready ones, so a
/// stalled channel never head-of-line-blocks a ready one. Two-phase blocking
/// applies to the slice as a whole: a full pass over the lanes with no
/// progress counts as one poll, and the collective is preempted once the
/// spin threshold of fruitless passes is exhausted — with `K = 1` this
/// degenerates to the interpreted path's per-primitive polling.
fn run_compiled_slice(
    shared: &Arc<DaemonShared>,
    reg: &RegisteredCollective,
    ctx: &mut DynamicContext,
    spin: crate::config::SpinPolicy,
    mut threshold: u64,
) -> SliceRun {
    let coll_id = reg.coll_id;
    let program = reg.program.as_ref();
    ctx.ensure_lanes(program.lane_count());
    let mut progressed = false;
    let mut polls: u64 = 0;
    loop {
        let mut advanced = false;
        let mut remaining = false;
        for (li, lane) in program.lanes().iter().enumerate() {
            let cur = ctx.lane_cursors[li] as usize;
            if cur >= lane.len() {
                continue;
            }
            remaining = true;
            let idx = lane.instr_ids()[cur];
            // Phase barrier first (cross-phase local-buffer dependencies may
            // cross lanes), then the connector conditions.
            if !program.instr_eligible(idx, &ctx.lane_cursors)
                || !instr_ready(program, idx, &reg.table, &ctx.pending_sends)
            {
                continue;
            }
            let staged_before = ctx.pending_sends.len();
            let exec_start = Instant::now();
            match execute_ready_instr(
                coll_id,
                program,
                idx,
                &reg.table,
                reg.desc.op,
                &ctx.send,
                &ctx.recv,
                &mut ctx.pending_sends,
            ) {
                Ok(StepOutcome::Completed) => {
                    shared.stats.record_primitive(exec_start.elapsed());
                    ctx.lane_cursors[li] += 1;
                    ctx.next_step += 1;
                    ctx.progressed_since_save = true;
                    advanced = true;
                    // Adaptive stickiness, as in the interpreted path.
                    threshold = spin.on_success(threshold);
                }
                Ok(StepOutcome::NotReady) => {
                    // The executor may still have flushed staged chunks on
                    // other channels — published data is progress.
                    if ctx.pending_sends.len() < staged_before {
                        advanced = true;
                    }
                }
                Err(e) => {
                    return SliceRun {
                        preempted: false,
                        failed: Some(e.to_string()),
                        progressed,
                        threshold,
                    };
                }
            }
        }
        if !remaining {
            // Every lane is done; the collective completes once the staged
            // chunks (at most one per channel) are on the wire.
            let staged_before = ctx.pending_sends.len();
            match flush_pending_compiled(program, &reg.table, &mut ctx.pending_sends) {
                Ok(true) => {
                    return SliceRun {
                        preempted: false,
                        failed: None,
                        progressed: true,
                        threshold,
                    };
                }
                Ok(false) => {
                    if ctx.pending_sends.len() < staged_before {
                        advanced = true;
                    }
                }
                Err(e) => {
                    return SliceRun {
                        preempted: false,
                        failed: Some(e.to_string()),
                        progressed,
                        threshold,
                    };
                }
            }
        }
        if advanced {
            progressed = true;
            polls = 0;
            continue;
        }
        polls += 1;
        if polls >= threshold {
            return SliceRun {
                preempted: true,
                failed: None,
                progressed,
                threshold,
            };
        }
        std::hint::spin_loop();
    }
}

/// Daemon-local state threaded through the pipeline stages of one
/// incarnation.
struct PipelineState {
    registry: RegistryCache,
    scheduler: TenantScheduler,
    tenant_cache: TenantCache,
    completions: CompletionBatch,
    sqe_batch: Vec<Sqe>,
}

/// The **admission** stage: fetch and parse SQEs, a batch per cursor-lock
/// acquisition; expand graph replays; enqueue each invocation on its
/// tenant's scheduling lane. Returns whether anything was fetched.
fn admission_stage(shared: &Arc<DaemonShared>, st: &mut PipelineState) -> bool {
    let PipelineState {
        registry,
        scheduler,
        tenant_cache,
        completions,
        sqe_batch,
    } = st;
    let sq_fetch_batch = shared.config.sq_fetch_batch.max(1);
    let mut fetched_any = false;
    loop {
        let read_start = Instant::now();
        sqe_batch.clear();
        let fetched = {
            let mut cursor = shared.sq_cursor.lock();
            shared
                .sq
                .fetch_batch(&mut cursor, sq_fetch_batch, sqe_batch)
        };
        if fetched == 0 {
            break;
        }
        shared
            .stats
            .record_sqe_fetch_batch(read_start.elapsed(), fetched as u64);
        fetched_any = true;
        let prep_start = Instant::now();
        for sqe in sqe_batch.drain(..) {
            if sqe.exit {
                shared.final_exit.store(true, Ordering::Release);
                continue;
            }
            shared
                .telemetry
                .record(sqe.coll_id, TelemetryEventKind::Fetch);
            if is_graph_id(sqe.coll_id) {
                expand_graph(
                    shared,
                    scheduler,
                    tenant_cache,
                    completions,
                    sqe.coll_id,
                    sqe.seq,
                );
                continue;
            }
            let (priority, tenant) = registry
                .get(shared, sqe.coll_id)
                .map(|r| (r.desc.priority, r.tenant))
                .unwrap_or((0, TenantId::DEFAULT));
            shared.contexts.enqueue_invocation(
                sqe.coll_id,
                DynamicContext::new(sqe.seq, sqe.send, sqe.recv),
            );
            if !scheduler.contains(sqe.coll_id) {
                enqueue_task(
                    shared,
                    scheduler,
                    tenant_cache,
                    sqe.coll_id,
                    priority,
                    tenant,
                );
            }
            shared
                .stats
                .record_queue_len(sqe.coll_id, scheduler.len() as u64);
        }
        shared.stats.record_preparing(prep_start.elapsed());
    }
    fetched_any
}

/// (Re)build the scheduling lanes from the context store: every collective
/// with pending invocations that the scheduler is not already tracking is
/// enqueued on its tenant's lane. Runs at incarnation start and after a
/// recovery rescan request ([`DaemonShared::request_rescan`]).
fn rebuild_lanes(shared: &Arc<DaemonShared>, st: &mut PipelineState) {
    for coll_id in shared.contexts.incomplete_ids() {
        if st.scheduler.contains(coll_id) {
            continue;
        }
        let (priority, tenant) = st
            .registry
            .get(shared, coll_id)
            .map(|r| (r.desc.priority, r.tenant))
            .unwrap_or((0, TenantId::DEFAULT));
        enqueue_task(
            shared,
            &mut st.scheduler,
            &mut st.tenant_cache,
            coll_id,
            priority,
            tenant,
        );
    }
}

/// The **schedule** stage: one arbitration pass over the per-tenant lanes —
/// reorder each lane by the ordering policy, grant slices by weighted-fair /
/// strict-priority arbitration, assign position-based initial spin
/// thresholds. Returns the collective ids to execute, in order.
fn schedule_stage(shared: &Arc<DaemonShared>, st: &mut PipelineState) -> Vec<u64> {
    st.scheduler.schedule(
        shared.config.ordering,
        shared.config.tenant_arbitration,
        shared.config.tenant_quantum,
        shared.config.spin,
    )
}

/// The **execute** stage: run one two-phase-blocking slice per scheduled
/// collective (unchanged compiled-lane or interpreted dispatch), with
/// per-tenant preemption/failure accounting. Returns whether any slice
/// progressed.
fn execute_stage(shared: &Arc<DaemonShared>, st: &mut PipelineState, order: &[u64]) -> bool {
    let PipelineState {
        registry,
        scheduler,
        tenant_cache,
        completions,
        ..
    } = st;
    let flat = shared.config.flat_scheduling;
    let spin = shared.config.spin;
    let mut progressed_any = false;
    for &coll_id in order {
        let Some(reg) = registry.get(shared, coll_id) else {
            // Unregistered id: drop the invocation and surface an error.
            if let Some((ctx, _)) = shared.contexts.checkout_current(coll_id) {
                let reason = "collective not registered".to_string();
                shared.errors.lock().insert(coll_id, reason.clone());
                shared.telemetry.record(coll_id, TelemetryEventKind::Failed);
                match ctx.graph {
                    Some(tag) => complete_graph_node(shared, completions, tag, Some(reason)),
                    None => enqueue_completion(shared, completions, coll_id, TenantId::DEFAULT),
                }
            }
            scheduler.remove(coll_id);
            continue;
        };
        let prep_start = Instant::now();
        let Some((mut ctx, load)) = shared.contexts.checkout_current(coll_id) else {
            // Nothing pending for this entry (stale); drop it.
            scheduler.remove(coll_id);
            continue;
        };
        shared.stats.record_context_load();
        if load == ContextLoad::CacheMiss {
            shared.stats.record_preparing(prep_start.elapsed());
        }
        // A context checked out with primitives already behind it was
        // preempted in an earlier slice: this checkout is a resume.
        if ctx.next_step > 0 {
            shared.telemetry.record(coll_id, TelemetryEventKind::Resume);
        }

        let threshold = scheduler
            .entry_mut(coll_id)
            .map(|e| e.spin_threshold)
            .unwrap_or_else(|| spin.initial_threshold(0));
        let steps_before = ctx.next_step;
        let slice = if shared.config.compiled_dispatch {
            run_compiled_slice(shared, &reg, &mut ctx, spin, threshold)
        } else {
            run_interpreted_slice(shared, &reg, &mut ctx, spin, threshold)
        };
        progressed_any |= slice.progressed;
        // One chunk-moved event summarises the slice (not one per
        // primitive) to bound the telemetry cost of a hot slice.
        let moved = (ctx.next_step - steps_before) as u64;
        if moved > 0 {
            shared
                .telemetry
                .record(coll_id, TelemetryEventKind::ChunkMoved(moved));
        }
        // Persist the adaptively raised threshold for the next slice.
        if let Some(entry) = scheduler.entry_mut(coll_id) {
            entry.spin_threshold = slice.threshold;
        }
        let (preempted, failed) = (slice.preempted, slice.failed);

        if let Some(reason) = failed {
            shared.telemetry.record(coll_id, TelemetryEventKind::Failed);
            if !flat {
                tenant_cache.get(shared, reg.tenant).on_failed();
            }
            match ctx.graph {
                Some(tag) => {
                    shared.errors.lock().insert(coll_id, reason.clone());
                    complete_graph_node(shared, completions, tag, Some(reason));
                }
                None => {
                    shared.errors.lock().insert(coll_id, reason);
                    enqueue_completion(shared, completions, coll_id, reg.tenant);
                }
            }
            if !shared.contexts.has_pending(coll_id) {
                scheduler.remove(coll_id);
            }
        } else if preempted {
            shared.stats.record_preemption(coll_id);
            shared
                .telemetry
                .record(coll_id, TelemetryEventKind::Preempt);
            if !flat {
                tenant_cache.get(shared, reg.tenant).on_preempt();
            }
            let saved = shared.contexts.checkin_incomplete(coll_id, ctx);
            shared.stats.record_context_save(!saved);
        } else {
            // Completed: a graph-tagged invocation counts down its
            // replay (the graph publishes one CQE when the last node
            // finishes); an individual invocation buffers its own CQE. A
            // recovery ghost replay already published its CQE before the
            // failure — it only moves data, so it completes silently.
            if !ctx.silent_replay {
                match ctx.graph {
                    Some(tag) => complete_graph_node(shared, completions, tag, None),
                    None => enqueue_completion(shared, completions, coll_id, reg.tenant),
                }
            }
            // The invocation is done with its context: recycle the
            // cursor/staging storage for the collective's next one.
            shared.contexts.recycle(coll_id, ctx);
            if !shared.contexts.has_pending(coll_id) {
                scheduler.remove(coll_id);
            }
            progressed_any = true;
        }
    }
    progressed_any
}

/// The **complete** stage: publish whatever completions the pass produced
/// (per-tenant routing happens in [`flush_completions`]).
fn complete_stage(shared: &Arc<DaemonShared>, st: &mut PipelineState) {
    flush_completions(shared, &mut st.completions);
}

/// Body of one daemon-kernel incarnation (Algorithm 1), staged as
/// admission → schedule → execute → complete per pass.
fn run_daemon(shared: Arc<DaemonShared>) {
    shared.stats.record_daemon_start();

    // Acquire kernel residency; while a device synchronization is pending the
    // device rejects new residents. Park on the wake-up signal between
    // attempts (an exit request cuts the wait short; sync completion is
    // discovered on the next timed attempt).
    let residency = loop {
        if shared.final_exit_requested() && shared.contexts.total_pending() == 0 {
            shared.mark_not_running();
            return;
        }
        let wake_seen = shared.daemon_wake.generation();
        match shared.device.try_acquire_residency(
            shared.config.daemon_blocks,
            shared.config.shared_mem_per_block,
        ) {
            Ok(guard) => break guard,
            Err(_) => {
                shared
                    .daemon_wake
                    .park_if_unchanged(wake_seen, shared.config.restart_backoff);
            }
        }
    };

    let mut st = PipelineState {
        registry: RegistryCache::new(),
        scheduler: TenantScheduler::new(shared.config.flat_scheduling),
        tenant_cache: TenantCache::new(),
        completions: CompletionBatch::with_capacity(shared.config.cq_write_batch.max(1)),
        sqe_batch: Vec::with_capacity(shared.config.sq_fetch_batch.max(1)),
    };

    // Rebuild the scheduling lanes from contexts that survived the previous
    // incarnation (preempted or never-started invocations). Sample the
    // rescan generation first, so a recovery reinstall racing the rebuild is
    // re-observed on the first pass instead of lost.
    let mut rescan_seen = shared.rescan_generation();
    rebuild_lanes(&shared, &mut st);

    let mut idle_passes: u32 = 0;
    loop {
        // Sample the wake-up generation *before* scanning for work: a signal
        // racing the scan then prevents the end-of-pass park.
        let wake_seen = shared.daemon_wake.generation();

        // Recovery reinstalled contexts without SQEs: re-scan the context
        // store for collectives the scheduler is not tracking.
        let rescan_now = shared.rescan_generation();
        let rescanned = rescan_now != rescan_seen;
        if rescanned {
            rescan_seen = rescan_now;
            rebuild_lanes(&shared, &mut st);
        }

        // The pipeline: admission → schedule → execute → complete. The
        // completions are published before any idle handling — the poller
        // (and destroy) key off `outstanding`, which only moves at flush
        // time.
        let fetched_any = admission_stage(&shared, &mut st);
        let order = schedule_stage(&shared, &mut st);
        let progressed_any = execute_stage(&shared, &mut st, &order);
        complete_stage(&shared, &mut st);

        // Idle handling: voluntary quitting and final exit.
        if fetched_any || progressed_any || rescanned {
            idle_passes = 0;
            continue;
        }
        idle_passes += 1;

        let sq_has_pending = {
            let cursor = shared.sq_cursor.lock();
            shared.sq.has_pending(&cursor)
        };
        if shared.final_exit_requested() && st.scheduler.is_empty() && !sq_has_pending {
            drop(residency);
            shared.mark_not_running();
            return;
        }
        // Quit early when a device synchronization is blocked on this daemon;
        // otherwise spin briefly, then park until a wake-up signal (or the
        // park quantum) and finally quit once the idle budget is exhausted.
        let sync_blocked = shared.device.sync_pending();
        if (sync_blocked && idle_passes >= 2)
            || idle_passes >= shared.config.idle_passes_before_quit
        {
            shared.stats.record_voluntary_quit();
            drop(residency);
            shared.mark_not_running();
            return;
        }
        if idle_passes <= shared.config.idle_spin_passes {
            std::thread::yield_now();
        } else {
            shared
                .daemon_wake
                .park_if_unchanged(wake_seen, shared.config.restart_backoff);
        }
    }
}

/// The CPU-side poller: drains the CQ in batches, runs the callbacks bound to
/// completed collectives, and restarts the daemon kernel while completions
/// are owed (the second half of DFCCL's event-driven starting rule). Parks on
/// the completion signal instead of sleep-polling.
pub fn run_poller(
    shared: Arc<DaemonShared>,
    controller: Arc<DaemonController>,
    stop: Arc<AtomicBool>,
) {
    let mut batch: Vec<Cqe> = Vec::new();
    loop {
        let ready_seen = shared.cq_ready.generation();
        batch.clear();
        shared.cq.drain_into(&mut batch);
        for cqe in &batch {
            if let Some(cb) = shared.callbacks.take(cqe.coll_id) {
                cb();
            }
        }
        if stop.load(Ordering::Acquire) && shared.cq.is_empty() && shared.outstanding() == 0 {
            return;
        }
        if batch.is_empty() {
            // Completions are owed but no daemon is running: restart it.
            if shared.outstanding() > 0 && !shared.is_running() {
                controller.ensure_running();
            }
            shared
                .cq_ready
                .park_if_unchanged(ready_seen, shared.config.restart_backoff);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DfcclConfig;
    use crate::cq::build_cq;
    use gpu_sim::GpuSpec;

    fn shared_with_config(config: DfcclConfig) -> Arc<DaemonShared> {
        let device = GpuDevice::new(GpuId(0), GpuSpec::rtx_3090());
        let sq = Arc::new(SubmissionQueue::with_costs(
            config.sq_capacity,
            1,
            config.host_costs,
        ));
        let cq = Arc::new(build_cq(
            config.cq_variant,
            config.cq_capacity,
            config.host_costs,
        ));
        DaemonShared::new(GpuId(0), device, config, sq, cq, CallbackMap::new())
    }

    fn shared_for_test() -> Arc<DaemonShared> {
        shared_with_config(DfcclConfig::for_testing())
    }

    fn data_sqe(coll_id: u64) -> Sqe {
        Sqe {
            coll_id,
            seq: 0,
            send: dfccl_collectives::DeviceBuffer::zeroed(4),
            recv: dfccl_collectives::DeviceBuffer::zeroed(4),
            exit: false,
        }
    }

    #[test]
    fn daemon_with_no_work_quits_voluntarily() {
        let shared = shared_for_test();
        let controller = DaemonController::new(Arc::clone(&shared));
        controller.ensure_running();
        assert!(controller.wait_idle(Duration::from_secs(5)));
        let snap = shared.stats.snapshot();
        assert_eq!(snap.daemon_starts, 1);
        assert_eq!(snap.voluntary_quits, 1);
        assert!(!shared.is_running());
    }

    #[test]
    fn ensure_running_is_idempotent_while_running() {
        let shared = shared_for_test();
        let controller = DaemonController::new(Arc::clone(&shared));
        controller.ensure_running();
        controller.ensure_running();
        controller.ensure_running();
        assert!(controller.wait_idle(Duration::from_secs(5)));
        // Only one incarnation ran even though ensure_running was called thrice
        // before it had a chance to go idle (the extra calls may or may not
        // have landed after the quit, so allow 1..=3 but require monotonicity).
        let starts = shared.stats.snapshot().daemon_starts;
        assert!((1..=3).contains(&starts), "starts = {starts}");
    }

    #[test]
    fn daemon_exits_after_exit_sqe() {
        let shared = shared_for_test();
        let controller = DaemonController::new(Arc::clone(&shared));
        shared.sq.try_push(crate::sq::Sqe::exit_marker(0)).unwrap();
        controller.ensure_running();
        assert!(controller.wait_idle(Duration::from_secs(5)));
        assert!(shared.final_exit_requested());
        // After final exit with nothing outstanding, ensure_running is a no-op.
        controller.ensure_running();
        assert!(!shared.is_running());
    }

    #[test]
    fn unregistered_collective_is_failed_not_hung() {
        let shared = shared_for_test();
        let controller = DaemonController::new(Arc::clone(&shared));
        shared.outstanding.fetch_add(1, Ordering::Release);
        shared.sq.try_push(data_sqe(99)).unwrap();
        controller.ensure_running();
        assert!(controller.wait_idle(Duration::from_secs(5)));
        assert_eq!(shared.outstanding(), 0);
        assert!(shared.errors.lock().contains_key(&99));
        assert_eq!(shared.cq.pop().unwrap().coll_id, 99);
    }

    #[test]
    fn unknown_graph_replay_is_failed_not_hung() {
        let shared = shared_for_test();
        let controller = DaemonController::new(Arc::clone(&shared));
        let graph_id = GRAPH_ID_BASE | 1;
        assert!(is_graph_id(graph_id));
        shared.outstanding.fetch_add(1, Ordering::Release);
        shared.sq.try_push(data_sqe(graph_id)).unwrap();
        controller.ensure_running();
        assert!(controller.wait_idle(Duration::from_secs(5)));
        assert_eq!(shared.outstanding(), 0, "the failed replay completes once");
        assert!(shared.errors.lock().contains_key(&graph_id));
        assert_eq!(shared.cq.pop().unwrap().coll_id, graph_id);
    }

    #[test]
    fn daemon_quits_when_device_sync_is_pending() {
        let shared = shared_for_test();
        let controller = DaemonController::new(Arc::clone(&shared));
        controller.ensure_running();
        // Give the daemon time to acquire residency, then request a sync.
        std::thread::sleep(Duration::from_millis(20));
        let waiter = shared
            .device
            .request_synchronize(gpu_sim::SyncKind::Explicit);
        assert!(
            waiter.wait_timeout(Duration::from_secs(5)),
            "sync must complete once the daemon quits voluntarily"
        );
        controller.wait_idle(Duration::from_secs(5));
    }

    /// A configuration under which a daemon with no work parks for a long
    /// time instead of quitting: any prompt reaction must come from a
    /// wake-up signal, not from a poll quantum.
    fn parked_config() -> DfcclConfig {
        DfcclConfig {
            idle_passes_before_quit: 1_000_000,
            idle_spin_passes: 2,
            restart_backoff: Duration::from_millis(500),
            ..DfcclConfig::for_testing()
        }
    }

    #[test]
    fn parked_daemon_is_woken_by_new_sqe_within_latency_bound() {
        let shared = shared_with_config(parked_config());
        let controller = DaemonController::new(Arc::clone(&shared));
        controller.ensure_running();
        // Let the daemon exhaust its spin passes and park.
        std::thread::sleep(Duration::from_millis(60));
        assert!(shared.is_running(), "daemon must still be alive (parked)");

        // Submit work the way the API layer does: SQE first, then the signal.
        shared.outstanding.fetch_add(1, Ordering::Release);
        shared.sq.try_push(data_sqe(7)).unwrap();
        let submitted = Instant::now();
        shared.notify_daemon();

        // The daemon errors the unregistered collective and publishes a CQE.
        let woken = loop {
            if !shared.cq.is_empty() {
                break submitted.elapsed();
            }
            assert!(
                submitted.elapsed() < Duration::from_secs(5),
                "daemon never reacted to the SQE"
            );
            std::hint::spin_loop();
        };
        // The park quantum is 500 ms; an event-driven wake-up must beat it by
        // a wide margin even on a loaded CI machine.
        assert!(
            woken < Duration::from_millis(250),
            "wake-up took {woken:?}, within the park quantum — daemon was polling, not signalled"
        );
        controller.request_exit();
        assert!(controller.wait_idle(Duration::from_secs(5)));
    }

    #[test]
    fn wait_idle_returns_promptly_once_the_daemon_exits() {
        let shared = shared_with_config(parked_config());
        let controller = DaemonController::new(Arc::clone(&shared));
        controller.ensure_running();
        std::thread::sleep(Duration::from_millis(60));
        assert!(shared.is_running(), "daemon must still be alive (parked)");

        // Request exit (signals the parked daemon) and time the full
        // park-wake → drain → exit → wait_idle-wake chain.
        let start = Instant::now();
        controller.request_exit();
        assert!(controller.wait_idle(Duration::from_secs(5)));
        let elapsed = start.elapsed();
        // Both the daemon's park (500 ms quantum) and wait_idle itself must
        // be cut short by signals.
        assert!(
            elapsed < Duration::from_millis(250),
            "exit + wait_idle took {elapsed:?} — some stage slept through its quantum"
        );
        assert!(!shared.is_running());
    }

    #[test]
    fn completion_batches_flush_within_a_pass() {
        // Even with a large batch threshold, completions must be published at
        // the end of the pass that produced them (no cross-pass latency).
        let config = DfcclConfig {
            cq_write_batch: 1_000,
            ..DfcclConfig::for_testing()
        };
        let shared = shared_with_config(config);
        let controller = DaemonController::new(Arc::clone(&shared));
        for id in 0..5 {
            shared.outstanding.fetch_add(1, Ordering::Release);
            shared.sq.try_push(data_sqe(id)).unwrap();
        }
        controller.ensure_running();
        assert!(controller.wait_idle(Duration::from_secs(5)));
        assert_eq!(shared.outstanding(), 0);
        let mut out = Vec::new();
        assert_eq!(shared.cq.drain_into(&mut out), 5);
        assert_eq!(shared.stats.snapshot().cqes_written, 5);
    }

    #[test]
    fn registry_cache_sees_collectives_registered_after_daemon_start() {
        // A daemon parked with an unregistered invocation must pick up the
        // registration through the generation-stamped cache. (Full-stack
        // coverage of runtime registration lives in the API tests; here we
        // only check the generation plumbing.)
        let shared = shared_for_test();
        assert_eq!(shared.registry_generation(), 1);
        shared.bump_registry_generation();
        assert_eq!(shared.registry_generation(), 2);
        let mut cache = RegistryCache::new();
        assert!(cache.get(&shared, 42).is_none());
        assert_eq!(
            cache.generation, 2,
            "cache must stamp the observed generation"
        );
    }
}
