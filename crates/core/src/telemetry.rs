//! Structured telemetry: a bounded per-daemon event stream plus always-on
//! counters, exported as one [`TelemetrySnapshot`].
//!
//! The motivation (ROADMAP item 5) is turning "it hung" into "rank 3's
//! inter-node channel 1 stopped moving chunks at step 12": the daemon records
//! lifecycle events (submit / fetch / preempt / resume / complete / failed /
//! chunk-moved) with timestamps into a bounded ring, while cheap per-kind
//! atomic counters stay on even when the ring is disabled. A snapshot joins
//! the event stream with the transport layer's per-edge progress samples
//! ([`dfccl_transport::EdgeSample`]), so a stress test can assert *why* a run
//! stalled, not just that it did.
//!
//! Costs are kept off the hot path: counters are single relaxed atomic
//! increments; events take a short mutex but are recorded per *slice* (one
//! chunk-moved event summarising a scheduling slice, not one per primitive),
//! and `telemetry_events: 0` turns the ring off entirely.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dfccl_transport::EdgeSample;
use parking_lot::Mutex;

use crate::stats::TenantStats;

/// What happened to a collective at one point of its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TelemetryEventKind {
    /// The invoker pushed an SQE for the collective.
    Submit,
    /// The daemon fetched the SQE into its task queue.
    Fetch,
    /// A spin threshold tripped and the collective was preempted
    /// (context saved, moved to the back of the queue).
    Preempt,
    /// A previously preempted collective was checked out again.
    Resume,
    /// The collective finished and its CQE was enqueued.
    Complete,
    /// The collective failed (the error itself lives in the error map).
    Failed,
    /// A scheduling slice moved this many chunks for the collective.
    ChunkMoved(u64),
}

impl TelemetryEventKind {
    fn label(&self) -> &'static str {
        match self {
            TelemetryEventKind::Submit => "submit",
            TelemetryEventKind::Fetch => "fetch",
            TelemetryEventKind::Preempt => "preempt",
            TelemetryEventKind::Resume => "resume",
            TelemetryEventKind::Complete => "complete",
            TelemetryEventKind::Failed => "failed",
            TelemetryEventKind::ChunkMoved(_) => "chunk-moved",
        }
    }
}

/// One recorded event. `at` is the modelled-time offset from telemetry
/// creation (the simulation charges modelled costs by spinning, so wall
/// clock *is* the modelled clock).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryEvent {
    /// Monotone sequence number across the daemon (gaps mean dropped events).
    pub seq: u64,
    /// Offset from the telemetry epoch.
    pub at: Duration,
    /// The collective the event belongs to.
    pub coll_id: u64,
    /// What happened.
    pub kind: TelemetryEventKind,
}

impl std::fmt::Display for TelemetryEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{:>10.3?}] coll {} {}",
            self.at,
            self.coll_id,
            self.kind.label()
        )?;
        if let TelemetryEventKind::ChunkMoved(n) = self.kind {
            write!(f, " x{n}")?;
        }
        Ok(())
    }
}

/// The always-on per-kind counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TelemetryCounters {
    /// SQEs pushed by invokers.
    pub submits: u64,
    /// SQEs fetched into the task queue.
    pub fetches: u64,
    /// Preemptions (spin threshold tripped).
    pub preemptions: u64,
    /// Check-outs of previously preempted collectives.
    pub resumes: u64,
    /// Completions enqueued.
    pub completions: u64,
    /// Failures recorded.
    pub failures: u64,
    /// Chunks moved across all scheduling slices.
    pub chunks_moved: u64,
    /// Recovery passes started for collectives on this rank.
    pub recoveries_attempted: u64,
    /// Recovery passes that rolled back, re-planned and resubmitted.
    pub recoveries_succeeded: u64,
    /// Registrations served a plan that had to avoid a quarantined edge.
    pub plans_degraded: u64,
}

/// Bounded event ring + counters for one daemon.
pub struct Telemetry {
    capacity: usize,
    epoch: Instant,
    next_seq: AtomicU64,
    events: Mutex<VecDeque<TelemetryEvent>>,
    dropped: AtomicU64,
    submits: AtomicU64,
    fetches: AtomicU64,
    preemptions: AtomicU64,
    resumes: AtomicU64,
    completions: AtomicU64,
    failures: AtomicU64,
    chunks_moved: AtomicU64,
    recoveries_attempted: AtomicU64,
    recoveries_succeeded: AtomicU64,
    plans_degraded: AtomicU64,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("capacity", &self.capacity)
            .field("events", &self.events.lock().len())
            .field("dropped", &self.dropped.load(Ordering::Relaxed))
            .finish()
    }
}

impl Telemetry {
    /// Telemetry with an event ring of `capacity` (0 disables the ring; the
    /// counters stay on).
    pub fn new(capacity: usize) -> Arc<Self> {
        Arc::new(Telemetry {
            capacity,
            epoch: Instant::now(),
            next_seq: AtomicU64::new(0),
            events: Mutex::new(VecDeque::with_capacity(capacity.min(4096))),
            dropped: AtomicU64::new(0),
            submits: AtomicU64::new(0),
            fetches: AtomicU64::new(0),
            preemptions: AtomicU64::new(0),
            resumes: AtomicU64::new(0),
            completions: AtomicU64::new(0),
            failures: AtomicU64::new(0),
            chunks_moved: AtomicU64::new(0),
            recoveries_attempted: AtomicU64::new(0),
            recoveries_succeeded: AtomicU64::new(0),
            plans_degraded: AtomicU64::new(0),
        })
    }

    /// Count a recovery pass starting on a collective of this rank.
    pub fn record_recovery_attempt(&self) {
        self.recoveries_attempted.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a recovery pass that re-planned and resubmitted successfully.
    pub fn record_recovery_success(&self) {
        self.recoveries_succeeded.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a registration served a degraded (edge-avoiding) plan.
    pub fn record_plan_degraded(&self) {
        self.plans_degraded.fetch_add(1, Ordering::Relaxed);
    }

    /// Whether the event ring is recording.
    pub fn events_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Record one event: bump the kind's counter (always) and append to the
    /// ring (when enabled), dropping the oldest event once full.
    pub fn record(&self, coll_id: u64, kind: TelemetryEventKind) {
        match kind {
            TelemetryEventKind::Submit => self.submits.fetch_add(1, Ordering::Relaxed),
            TelemetryEventKind::Fetch => self.fetches.fetch_add(1, Ordering::Relaxed),
            TelemetryEventKind::Preempt => self.preemptions.fetch_add(1, Ordering::Relaxed),
            TelemetryEventKind::Resume => self.resumes.fetch_add(1, Ordering::Relaxed),
            TelemetryEventKind::Complete => self.completions.fetch_add(1, Ordering::Relaxed),
            TelemetryEventKind::Failed => self.failures.fetch_add(1, Ordering::Relaxed),
            TelemetryEventKind::ChunkMoved(n) => self.chunks_moved.fetch_add(n, Ordering::Relaxed),
        };
        if self.capacity == 0 {
            return;
        }
        let event = TelemetryEvent {
            seq: self.next_seq.fetch_add(1, Ordering::Relaxed),
            at: self.epoch.elapsed(),
            coll_id,
            kind,
        };
        let mut ring = self.events.lock();
        if ring.len() == self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(event);
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<TelemetryEvent> {
        self.events.lock().iter().copied().collect()
    }

    /// Events evicted from the ring because it was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// A consistent-enough copy of the counters.
    pub fn counters(&self) -> TelemetryCounters {
        TelemetryCounters {
            submits: self.submits.load(Ordering::Relaxed),
            fetches: self.fetches.load(Ordering::Relaxed),
            preemptions: self.preemptions.load(Ordering::Relaxed),
            resumes: self.resumes.load(Ordering::Relaxed),
            completions: self.completions.load(Ordering::Relaxed),
            failures: self.failures.load(Ordering::Relaxed),
            chunks_moved: self.chunks_moved.load(Ordering::Relaxed),
            recoveries_attempted: self.recoveries_attempted.load(Ordering::Relaxed),
            recoveries_succeeded: self.recoveries_succeeded.load(Ordering::Relaxed),
            plans_degraded: self.plans_degraded.load(Ordering::Relaxed),
        }
    }

    /// Export counters + events joined with the caller's per-edge samples
    /// and per-tenant accounting.
    pub fn snapshot(&self, edges: Vec<EdgeSample>, tenants: Vec<TenantStats>) -> TelemetrySnapshot {
        TelemetrySnapshot {
            counters: self.counters(),
            events: self.events(),
            dropped: self.dropped(),
            edges,
            tenants,
        }
    }
}

/// Everything the telemetry layer knows, exported at once: lifecycle
/// counters, the retained event stream, and per-edge link samples.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySnapshot {
    /// Per-kind lifecycle counters.
    pub counters: TelemetryCounters,
    /// Retained events, oldest first.
    pub events: Vec<TelemetryEvent>,
    /// Events evicted because the ring was full.
    pub dropped: u64,
    /// Per-edge progress samples (queued chunks, dead flags, traffic and
    /// rejection counters), stamped with collective ids.
    pub edges: Vec<EdgeSample>,
    /// Per-tenant accounting (service mode), sorted by tenant id. Contains
    /// only tenant 0 for single-job use; empty under flat scheduling.
    pub tenants: Vec<TenantStats>,
}

impl TelemetrySnapshot {
    /// The edges currently marked dead (scripted or unreachable).
    pub fn dead_edges(&self) -> impl Iterator<Item = &EdgeSample> {
        self.edges.iter().filter(|e| e.dead)
    }

    /// The edges whose sends have been bounced by fault injection.
    pub fn faulted_edges(&self) -> impl Iterator<Item = &EdgeSample> {
        self.edges.iter().filter(|e| e.stats.fault_rejections > 0)
    }
}

impl std::fmt::Display for TelemetrySnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let c = &self.counters;
        writeln!(
            f,
            "telemetry: {} submits, {} fetches, {} preemptions, {} resumes, \
             {} completions, {} failures, {} chunks moved",
            c.submits,
            c.fetches,
            c.preemptions,
            c.resumes,
            c.completions,
            c.failures,
            c.chunks_moved
        )?;
        writeln!(
            f,
            "recovery: {} attempted, {} succeeded, {} degraded plans",
            c.recoveries_attempted, c.recoveries_succeeded, c.plans_degraded
        )?;
        writeln!(
            f,
            "events: {} retained, {} dropped",
            self.events.len(),
            self.dropped
        )?;
        for t in &self.tenants {
            writeln!(
                f,
                "{} (w{}): queue {} (max {}), outstanding {}, {} submitted, \
                 {} completed, {} failed, {} preempted",
                t.tenant,
                t.weight,
                t.queue_depth,
                t.max_queue_depth,
                t.outstanding,
                t.submitted,
                t.completed,
                t.failed,
                t.preempted
            )?;
            if t.recovered > 0 {
                writeln!(f, "  {} recovered", t.recovered)?;
            }
        }
        for e in &self.edges {
            write!(
                f,
                "edge {} [{:?}] sent {} recv {} queued {}",
                e.edge, e.link, e.stats.chunks_sent, e.stats.chunks_received, e.queued
            )?;
            if e.stats.fault_rejections > 0 {
                write!(f, " faulted {}", e.stats.fault_rejections)?;
            }
            if e.dead {
                write!(f, " DEAD")?;
            }
            if let Some(id) = e.coll_id {
                write!(f, " (coll {id})")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_track_every_kind() {
        let t = Telemetry::new(16);
        t.record(1, TelemetryEventKind::Submit);
        t.record(1, TelemetryEventKind::Fetch);
        t.record(1, TelemetryEventKind::Preempt);
        t.record(1, TelemetryEventKind::Resume);
        t.record(1, TelemetryEventKind::ChunkMoved(7));
        t.record(1, TelemetryEventKind::Complete);
        t.record(2, TelemetryEventKind::Failed);
        let c = t.counters();
        assert_eq!(c.submits, 1);
        assert_eq!(c.fetches, 1);
        assert_eq!(c.preemptions, 1);
        assert_eq!(c.resumes, 1);
        assert_eq!(c.completions, 1);
        assert_eq!(c.failures, 1);
        assert_eq!(c.chunks_moved, 7);
        assert_eq!(t.events().len(), 7);
    }

    #[test]
    fn recovery_counters_accumulate_and_render() {
        let t = Telemetry::new(4);
        t.record_recovery_attempt();
        t.record_recovery_attempt();
        t.record_recovery_success();
        t.record_plan_degraded();
        let c = t.counters();
        assert_eq!(c.recoveries_attempted, 2);
        assert_eq!(c.recoveries_succeeded, 1);
        assert_eq!(c.plans_degraded, 1);
        let snap = t.snapshot(Vec::new(), Vec::new());
        let s = snap.to_string();
        assert!(s.contains("2 attempted"), "{s}");
        assert!(s.contains("1 succeeded"), "{s}");
        assert!(s.contains("1 degraded plans"), "{s}");
    }

    #[test]
    fn ring_is_bounded_and_drops_oldest() {
        let t = Telemetry::new(3);
        for i in 0..5 {
            t.record(i, TelemetryEventKind::Submit);
        }
        let events = t.events();
        assert_eq!(events.len(), 3);
        assert_eq!(t.dropped(), 2);
        // Oldest two were evicted; retained events are 2, 3, 4 in order.
        assert_eq!(
            events.iter().map(|e| e.coll_id).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
        assert!(events.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn zero_capacity_disables_events_but_not_counters() {
        let t = Telemetry::new(0);
        assert!(!t.events_enabled());
        t.record(1, TelemetryEventKind::Submit);
        t.record(1, TelemetryEventKind::ChunkMoved(3));
        assert!(t.events().is_empty());
        assert_eq!(t.dropped(), 0);
        assert_eq!(t.counters().submits, 1);
        assert_eq!(t.counters().chunks_moved, 3);
    }

    #[test]
    fn snapshot_display_mentions_counters_and_dead_edges() {
        use dfccl_transport::{ChannelId, ConnectorStats, EdgeId, LinkClass};
        use gpu_sim::GpuId;

        let t = Telemetry::new(8);
        t.record(4, TelemetryEventKind::Submit);
        let tenants = {
            let table = crate::tenant::TenantTable::new(crate::tenant::TenantQuota::default());
            table
                .state(crate::tenant::TenantId(2))
                .record_queue_depth(3);
            table.snapshot()
        };
        let snap = t.snapshot(
            vec![EdgeSample {
                coll_id: Some(4),
                edge: EdgeId {
                    src: GpuId(0),
                    dst: GpuId(8),
                    channel: ChannelId(1),
                },
                link: LinkClass::InterNode,
                queued: 2,
                dead: true,
                stats: ConnectorStats {
                    fault_rejections: 5,
                    ..ConnectorStats::default()
                },
            }],
            tenants,
        );
        assert_eq!(snap.dead_edges().count(), 1);
        assert_eq!(snap.faulted_edges().count(), 1);
        assert_eq!(snap.tenants.len(), 1);
        let s = snap.to_string();
        assert!(s.contains("1 submits"), "{s}");
        assert!(s.contains("tenant2 (w1): queue 3"), "{s}");
        assert!(s.contains("gpu0->gpu8/ch1"), "{s}");
        assert!(s.contains("DEAD"), "{s}");
        assert!(s.contains("faulted 5"), "{s}");
        assert!(s.contains("(coll 4)"), "{s}");
    }
}
