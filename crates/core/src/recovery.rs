//! Self-healing collectives: the recovery coordinator that closes the loop
//! from a watchdog [`StallReport`] back to forward progress.
//!
//! The state machine is **detect → quarantine → re-plan → resubmit**
//! (DESIGN.md §7):
//!
//! 1. **Detect** — [`RecoveryCoordinator::supervise`] wraps the transport
//!    watchdog ([`dfccl_transport::supervise_with_probe`]) around a running
//!    workload; a stall deadline expiring with zero progress yields a
//!    [`StallReport`] naming the guilty edges and collectives.
//! 2. **Quarantine** — the report's failed edges are marked dead in the
//!    domain's [`dfccl_transport::LinkHealth`] map. Every downstream consumer
//!    observes the quarantine: the plan cache misses (the health generation
//!    is part of the key), the selector re-plans around the edge, the cost
//!    model refuses schedules that cross it, and the communicator mesh
//!    relabels new connectors onto rerouted physical channels.
//! 3. **Re-plan** — each stalled collective is re-registered through the
//!    plan cache on every rank. Degraded mode either swaps ring for a
//!    double-binary tree or keeps the algorithm and reroutes the striped
//!    channel around the dead edge; either way the schedule is a capacity-1
//!    per-collective structure of the same family, so the paper's
//!    deadlock-freedom argument applies unchanged.
//! 4. **Resubmit** — partially-executed invocations are rolled back and
//!    **re-executed from their source buffers** (chunks already reduced into
//!    the receive buffer cannot be resumed — re-running the full reduction
//!    from the unmodified send buffers is the only bit-exact option). The
//!    rolled-back contexts keep their submission sequence and bound
//!    callbacks, so completion publishes the original CQE and the caller
//!    never observes the failure. Ranks that already completed a round their
//!    peers did not re-execute it as a *silent ghost replay* (no CQE, no
//!    callback) so the collective's rounds stay aligned across ranks.
//!
//! A typed [`RetryPolicy`] (bounded attempts, decorrelated-jitter backoff)
//! governs both the coordinator's resubmission loop and the API-level
//! retryable-admission path ([`crate::RankCtx::run_with_retry`]).

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dfccl_transport::{supervise_with_probe, EdgeId, StallReport, SuperviseOutcome};

use crate::api::{DfcclError, RankCtx};
use crate::context::DynamicContext;

/// Bounded-retry policy with decorrelated-jitter backoff, shared by the
/// recovery coordinator's resubmission loop and
/// [`crate::RankCtx::run_with_retry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts before giving up (minimum 1).
    pub max_attempts: u32,
    /// Lower bound of every backoff draw.
    pub base_backoff: Duration,
    /// Upper clamp of every backoff draw.
    pub max_backoff: Duration,
    /// Seed of the deterministic jitter stream (tests pin it).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_micros(200),
            max_backoff: Duration::from_millis(50),
            seed: 0x9e37_79b9_7f4a_7c15,
        }
    }
}

impl RetryPolicy {
    /// Set the total attempt budget.
    pub fn with_max_attempts(mut self, attempts: u32) -> Self {
        self.max_attempts = attempts;
        self
    }

    /// Set the backoff bounds.
    pub fn with_backoff(mut self, base: Duration, max: Duration) -> Self {
        self.base_backoff = base;
        self.max_backoff = max;
        self
    }

    /// Set the jitter seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// A fresh backoff state for one retry sequence.
    pub fn backoff(&self) -> Backoff {
        Backoff {
            policy: *self,
            prev: self.base_backoff,
            rng: self.seed | 1,
        }
    }

    /// Run `op` until it succeeds, fails non-retryably, or the attempt
    /// budget is spent (the last error is returned). Sleeps a
    /// decorrelated-jitter backoff between attempts.
    pub fn run<T, E>(
        &self,
        mut op: impl FnMut() -> Result<T, E>,
        retryable: impl Fn(&E) -> bool,
    ) -> Result<T, E> {
        let budget = self.max_attempts.max(1);
        let mut backoff = self.backoff();
        let mut attempt = 0;
        loop {
            match op() {
                Ok(v) => return Ok(v),
                Err(e) => {
                    attempt += 1;
                    if attempt >= budget || !retryable(&e) {
                        return Err(e);
                    }
                    std::thread::sleep(backoff.next());
                }
            }
        }
    }
}

/// Decorrelated-jitter backoff state: each delay is drawn uniformly from
/// `[base, 3 * previous]` and clamped to `max` ("decorrelated jitter" —
/// successive delays grow but never synchronize across retriers).
#[derive(Debug, Clone)]
pub struct Backoff {
    policy: RetryPolicy,
    prev: Duration,
    rng: u64,
}

impl Backoff {
    /// The next delay to sleep. Not an `Iterator`: the stream is infinite
    /// and every draw succeeds, so an `Option` wrapper would only obscure
    /// the call sites.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Duration {
        // splitmix64 step for the jitter draw.
        self.rng = self.rng.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;

        let lo = self.policy.base_backoff.as_nanos() as u64;
        let hi = (self.prev.as_nanos() as u64).saturating_mul(3).max(lo);
        let span = hi - lo;
        let drawn = if span == 0 { lo } else { lo + z % (span + 1) };
        let capped = drawn.min(self.policy.max_backoff.as_nanos() as u64);
        self.prev = Duration::from_nanos(capped);
        self.prev
    }
}

/// What one successful [`RecoveryCoordinator::recover`] pass did.
#[derive(Debug, Clone, Default)]
pub struct RecoveryOutcome {
    /// Edges newly quarantined in the domain's link-health map.
    pub quarantined: Vec<EdgeId>,
    /// Collectives that were rolled back and re-planned.
    pub collectives: Vec<u64>,
    /// Invocations rolled back and resubmitted (across all ranks).
    pub rolled_back: usize,
    /// Silent ghost replays injected to re-align rank round counts.
    pub ghost_replays: usize,
    /// Ranks whose re-planned schedule is degraded (avoids a quarantined
    /// edge).
    pub degraded_plans: usize,
}

/// Why a recovery attempt (or a whole supervised run) failed.
#[derive(Debug)]
pub enum RecoveryError {
    /// The retry budget was exhausted; the last stall report is attached.
    Exhausted {
        /// Recovery attempts made.
        attempts: u32,
        /// Human-readable summary of the final stall.
        last_report: String,
    },
    /// A collective's in-flight execution slice did not check its context
    /// back in within the quiesce deadline.
    QuiesceTimeout {
        /// The collective that would not quiesce.
        coll_id: u64,
    },
    /// Re-registration of a rolled-back collective failed.
    Api(DfcclError),
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::Exhausted {
                attempts,
                last_report,
            } => {
                write!(
                    f,
                    "recovery exhausted after {attempts} attempts: {last_report}"
                )
            }
            RecoveryError::QuiesceTimeout { coll_id } => {
                write!(f, "collective {coll_id} did not quiesce for recovery")
            }
            RecoveryError::Api(e) => write!(f, "recovery re-registration failed: {e}"),
        }
    }
}

impl std::error::Error for RecoveryError {}

impl From<DfcclError> for RecoveryError {
    fn from(e: DfcclError) -> Self {
        RecoveryError::Api(e)
    }
}

/// Drives stall recovery for a set of rank contexts of one domain.
pub struct RecoveryCoordinator {
    policy: RetryPolicy,
    /// How long to wait for an in-flight execution slice to check its
    /// context back in before declaring the collective unquiesceable.
    quiesce_deadline: Duration,
}

impl RecoveryCoordinator {
    /// A coordinator with the given retry policy.
    pub fn new(policy: RetryPolicy) -> Self {
        RecoveryCoordinator {
            policy,
            quiesce_deadline: Duration::from_secs(2),
        }
    }

    /// Override the quiesce deadline (tests shorten it).
    pub fn with_quiesce_deadline(mut self, deadline: Duration) -> Self {
        self.quiesce_deadline = deadline;
        self
    }

    /// The retry policy in effect.
    pub fn policy(&self) -> RetryPolicy {
        self.policy
    }

    /// Supervise `done` over the domain of `ranks`: run the transport
    /// watchdog and, on every detected stall, [`RecoveryCoordinator::recover`]
    /// automatically — up to the policy's attempt budget. Returns the number
    /// of recoveries performed (0 for a fault-free run).
    pub fn supervise(
        &self,
        ranks: &[&RankCtx],
        done: &dyn Fn() -> bool,
        stall_deadline: Duration,
    ) -> Result<u32, RecoveryError> {
        let Some(first) = ranks.first() else {
            return Ok(0);
        };
        let domain = Arc::clone(first.domain());
        let probe = move || domain.edge_samples();
        let mut attempts: u32 = 0;
        let mut backoff = self.policy.backoff();
        loop {
            match supervise_with_probe(done, stall_deadline, &probe) {
                SuperviseOutcome::AllCompleted => return Ok(attempts),
                SuperviseOutcome::Stalled(report) => {
                    attempts += 1;
                    if attempts > self.policy.max_attempts.max(1) {
                        return Err(RecoveryError::Exhausted {
                            attempts,
                            last_report: report.to_string(),
                        });
                    }
                    self.recover(ranks, &report)?;
                    std::thread::sleep(backoff.next());
                }
            }
        }
    }

    /// One recovery pass over `ranks` for the stall described by `report`:
    /// quarantine the failed edges, roll back the stalled collectives,
    /// re-plan them around the quarantine, and resubmit the rolled-back
    /// invocations under their original submission sequence (the CQE a
    /// caller eventually sees is the one it was promised at `run` time).
    pub fn recover(
        &self,
        ranks: &[&RankCtx],
        report: &StallReport,
    ) -> Result<RecoveryOutcome, RecoveryError> {
        let Some(first) = ranks.first() else {
            return Ok(RecoveryOutcome::default());
        };
        let mut outcome = RecoveryOutcome::default();

        // 1. Quarantine: mark the guilty edges dead in the domain health
        // map. This bumps the health generation, so every later plan-cache
        // lookup re-plans, and new connectors for those physical labels are
        // rerouted.
        let health = first.domain().link_health();
        for sample in &report.failed_edges {
            if health.quarantine(sample.edge) {
                outcome.quarantined.push(sample.edge);
            }
        }

        // Which collectives to roll back: the report's attribution, falling
        // back to every collective with pending work (a wedge report may
        // carry no attribution).
        let mut colls: BTreeSet<u64> = report.stalled_collectives.iter().copied().collect();
        if colls.is_empty() {
            for ctx in ranks {
                colls.extend(ctx.shared_state().contexts.incomplete_ids());
            }
        }

        // 2. Roll back: drain each stalled collective's pending invocations
        // on every rank and wait for in-flight slices to finish. Drained
        // contexts are keyed by (rank index, coll) for the rebuild below.
        let mut drained: BTreeMap<(usize, u64), Vec<DynamicContext>> = BTreeMap::new();
        for (r, ctx) in ranks.iter().enumerate() {
            let shared = ctx.shared_state();
            for &coll in &colls {
                if !shared.registered.read().contains_key(&coll) {
                    continue;
                }
                shared.telemetry.record_recovery_attempt();
                drained.insert((r, coll), shared.contexts.begin_recovery(coll));
            }
        }
        let quiesce_end = Instant::now() + self.quiesce_deadline;
        for (&(r, coll), bucket) in drained.iter_mut() {
            let shared = ranks[r].shared_state();
            while shared.contexts.in_slice(coll) {
                if Instant::now() >= quiesce_end {
                    return Err(RecoveryError::QuiesceTimeout { coll_id: coll });
                }
                std::thread::yield_now();
            }
            bucket.extend(shared.contexts.take_recovered(coll));
        }

        // 3. Reset transport state: wipe the interrupted round's in-flight
        // chunks and drop connectors labeled with quarantined edges, so the
        // rebind below recreates them on rerouted channels.
        for &coll in &colls {
            let comm = ranks.iter().find_map(|ctx| {
                ctx.shared_state()
                    .registered
                    .read()
                    .get(&coll)
                    .map(|reg| Arc::clone(&reg.communicator))
            });
            if let Some(comm) = comm {
                comm.clear();
                comm.purge_dead();
            }
        }

        // 4. Re-plan: re-register each stalled collective through the plan
        // cache under the new health generation (same id, same tenant, no
        // residency re-charge).
        for ctx in ranks {
            for &coll in &colls {
                if !ctx.shared_state().registered.read().contains_key(&coll) {
                    continue;
                }
                if ctx.reregister_for_recovery(coll)? {
                    outcome.degraded_plans += 1;
                }
            }
        }

        // 5. Resubmit: rebuild each drained invocation as a fresh context
        // (same run_seq and buffers — re-execute, don't resume), prefixed by
        // a silent ghost replay on ranks that completed a round their peers
        // did not.
        for &coll in &colls {
            let participants: Vec<usize> = (0..ranks.len())
                .filter(|&r| drained.contains_key(&(r, coll)))
                .collect();
            let min_done = participants
                .iter()
                .map(|&r| ranks[r].shared_state().contexts.completed_count(coll))
                .min()
                .unwrap_or(0);
            for &r in &participants {
                let shared = ranks[r].shared_state();
                let mut rebuilt = Vec::new();
                if shared.contexts.completed_count(coll) > min_done {
                    if let Some((run_seq, send, recv, _)) = shared.contexts.last_completed(coll) {
                        let mut ghost = DynamicContext::new(run_seq, send, recv);
                        ghost.silent_replay = true;
                        rebuilt.push(ghost);
                        outcome.ghost_replays += 1;
                    }
                }
                let mut bucket = drained.remove(&(r, coll)).unwrap_or_default();
                bucket.sort_by_key(|c| c.run_seq);
                let tenant = shared.registered.read().get(&coll).map(|reg| reg.tenant);
                for old in bucket {
                    let mut fresh = DynamicContext::new(old.run_seq, old.send, old.recv);
                    fresh.graph = old.graph;
                    fresh.silent_replay = old.silent_replay;
                    if !fresh.silent_replay {
                        outcome.rolled_back += 1;
                        if let Some(tenant) = tenant {
                            shared.tenants.state(tenant).on_recovered();
                        }
                    }
                    rebuilt.push(fresh);
                }
                shared.contexts.end_recovery(coll, rebuilt);
                shared.telemetry.record_recovery_success();
            }
            outcome.collectives.push(coll);
        }

        // 6. Wake every rank: a running daemon re-scans the context store; an
        // idle one is restarted and finds the contexts in its rebuild.
        for ctx in ranks {
            ctx.shared_state().request_rescan();
            ctx.daemon_controller().ensure_running();
        }
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_draws_stay_within_bounds_and_are_deterministic() {
        let policy = RetryPolicy::default()
            .with_backoff(Duration::from_micros(100), Duration::from_millis(10))
            .with_seed(42);
        let mut a = policy.backoff();
        let mut b = policy.backoff();
        let mut prev = policy.base_backoff;
        for _ in 0..50 {
            let d = a.next();
            assert_eq!(d, b.next(), "same seed, same stream");
            assert!(d >= policy.base_backoff, "below base: {d:?}");
            assert!(d <= policy.max_backoff, "above clamp: {d:?}");
            // Decorrelated jitter: bounded by 3x the previous draw.
            let cap = Duration::from_nanos(
                (prev.as_nanos() as u64)
                    .saturating_mul(3)
                    .max(policy.base_backoff.as_nanos() as u64)
                    .min(policy.max_backoff.as_nanos() as u64),
            );
            assert!(d <= cap, "{d:?} exceeds decorrelated cap {cap:?}");
            prev = d;
        }
    }

    #[test]
    fn retry_run_respects_budget_and_retryability() {
        let policy = RetryPolicy::default()
            .with_max_attempts(3)
            .with_backoff(Duration::ZERO, Duration::ZERO);
        // Retryable errors are retried up to the budget.
        let mut calls = 0;
        let out: Result<(), &str> = policy.run(
            || {
                calls += 1;
                Err("again")
            },
            |_| true,
        );
        assert!(out.is_err());
        assert_eq!(calls, 3, "budget is total attempts");
        // Non-retryable errors fail fast.
        let mut calls = 0;
        let out: Result<(), &str> = policy.run(
            || {
                calls += 1;
                Err("fatal")
            },
            |_| false,
        );
        assert!(out.is_err());
        assert_eq!(calls, 1);
        // Success on a later attempt stops the loop.
        let mut calls = 0;
        let out: Result<u32, &str> = policy.run(
            || {
                calls += 1;
                if calls < 3 {
                    Err("again")
                } else {
                    Ok(calls)
                }
            },
            |_| true,
        );
        assert_eq!(out.unwrap(), 3);
    }

    #[test]
    fn recover_with_no_ranks_is_a_no_op() {
        let coordinator = RecoveryCoordinator::new(RetryPolicy::default());
        let report = StallReport {
            kind: dfccl_transport::StallKind::Wedge,
            failed_edges: Vec::new(),
            stalled_edges: Vec::new(),
            stalled_collectives: vec![1],
            unfinished: Vec::new(),
        };
        let outcome = coordinator.recover(&[], &report).unwrap();
        assert!(outcome.collectives.is_empty());
        assert_eq!(outcome.rolled_back, 0);
    }
}
