//! The submission queue (SQ): a single-producer / multi-consumer ring buffer.
//!
//! One CPU thread (the invoker) writes SQEs; every block of the daemon kernel
//! reads each SQE. A per-slot read counter tracks how many consumers have seen
//! the entry; when the counter reaches the configured consumer count the slot
//! becomes writable again (Sec. 5, "Implementation Details of the Daemon
//! Kernel"). In this reproduction the daemon thread usually registers as a
//! single consumer, but the protocol is implemented (and tested) for any
//! consumer count.

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};

use dfccl_collectives::DeviceBuffer;
use parking_lot::Mutex;

use crate::config::{charge, HostMemCosts};

/// One submission-queue entry: "run collective `coll_id` on these buffers".
#[derive(Debug, Clone)]
pub struct Sqe {
    /// The registered collective to run.
    pub coll_id: u64,
    /// Monotonic per-rank submission sequence number.
    pub seq: u64,
    /// Send buffer for this invocation.
    pub send: DeviceBuffer,
    /// Recv buffer for this invocation.
    pub recv: DeviceBuffer,
    /// When set, this is the *exiting SQE* inserted by `dfccl_destroy`; the
    /// daemon kernel finally exits after reading it.
    pub exit: bool,
}

impl Sqe {
    /// The exiting SQE.
    pub fn exit_marker(seq: u64) -> Self {
        Sqe {
            coll_id: u64::MAX,
            seq,
            send: DeviceBuffer::zeroed(0),
            recv: DeviceBuffer::zeroed(0),
            exit: true,
        }
    }
}

/// Error returned when the SQ has no writable slot.
#[derive(Debug)]
pub struct SqFull(pub Sqe);

const SLOT_EMPTY: u8 = 0;
const SLOT_FULL: u8 = 1;

struct SqSlot {
    state: AtomicU8,
    readers: AtomicU32,
    /// Sequence number of the producer write occupying this slot.
    write_seq: AtomicU64,
    data: Mutex<Option<Sqe>>,
}

impl SqSlot {
    fn new() -> Self {
        SqSlot {
            state: AtomicU8::new(SLOT_EMPTY),
            readers: AtomicU32::new(0),
            write_seq: AtomicU64::new(0),
            data: Mutex::new(None),
        }
    }
}

/// Cursor owned by one consumer (one daemon-kernel block).
#[derive(Debug, Clone, Copy, Default)]
pub struct SqCursor {
    next: u64,
}

/// The single-producer / multi-consumer submission queue.
pub struct SubmissionQueue {
    slots: Box<[SqSlot]>,
    /// Next write position (monotonic; slot = head % capacity).
    head: AtomicU64,
    consumer_count: u32,
    inserted: AtomicU64,
    /// Modelled cost of the daemon's host-memory reads (the SQ lives in
    /// page-locked host memory; the daemon kernel reads it over PCIe).
    costs: HostMemCosts,
}

impl SubmissionQueue {
    /// Create a queue with `capacity` slots read by `consumer_count` consumers
    /// and no modelled read costs (logic-only use and tests).
    pub fn new(capacity: usize, consumer_count: u32) -> Self {
        Self::with_costs(capacity, consumer_count, HostMemCosts::free())
    }

    /// Create a queue that charges the modelled host-memory read costs: an
    /// unbatched [`SubmissionQueue::read_next`] pays three read operations
    /// (head check, slot state, payload); a batched
    /// [`SubmissionQueue::fetch_batch`] pays the head check once per batch
    /// and two operations per entry.
    pub fn with_costs(capacity: usize, consumer_count: u32, costs: HostMemCosts) -> Self {
        assert!(capacity > 0, "SQ capacity must be positive");
        assert!(consumer_count > 0, "SQ needs at least one consumer");
        SubmissionQueue {
            slots: (0..capacity).map(|_| SqSlot::new()).collect(),
            head: AtomicU64::new(0),
            consumer_count,
            inserted: AtomicU64::new(0),
            costs,
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of consumers each SQE must be read by before its slot is reused.
    pub fn consumer_count(&self) -> u32 {
        self.consumer_count
    }

    /// Total SQEs ever inserted.
    pub fn inserted(&self) -> u64 {
        self.inserted.load(Ordering::Acquire)
    }

    /// Insert an SQE. Only one producer thread may call this at a time (the
    /// single-producer contract); concurrent producers must serialise
    /// externally, which the `RankCtx` API does.
    pub fn try_push(&self, sqe: Sqe) -> Result<(), SqFull> {
        let head = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(head % self.slots.len() as u64) as usize];
        if slot.state.load(Ordering::Acquire) != SLOT_EMPTY {
            return Err(SqFull(sqe));
        }
        *slot.data.lock() = Some(sqe);
        slot.readers.store(0, Ordering::Relaxed);
        slot.write_seq.store(head, Ordering::Relaxed);
        slot.state.store(SLOT_FULL, Ordering::Release);
        self.head.store(head + 1, Ordering::Release);
        self.inserted.fetch_add(1, Ordering::Release);
        Ok(())
    }

    /// Read the next SQE for the consumer owning `cursor`, if one is available.
    /// Every consumer sees every SQE exactly once, in insertion order.
    pub fn read_next(&self, cursor: &mut SqCursor) -> Option<Sqe> {
        if cursor.next >= self.head.load(Ordering::Acquire) {
            return None;
        }
        let pos = cursor.next;
        let slot = &self.slots[(pos % self.slots.len() as u64) as usize];
        if slot.state.load(Ordering::Acquire) != SLOT_FULL
            || slot.write_seq.load(Ordering::Relaxed) != pos
        {
            // The producer has advanced `head` but this consumer lags so far
            // behind that the slot was already recycled — cannot happen while
            // the producer respects the writability protocol.
            return None;
        }
        let sqe = slot.data.lock().clone()?;
        cursor.next = pos + 1;
        let readers = slot.readers.fetch_add(1, Ordering::AcqRel) + 1;
        if readers == self.consumer_count {
            // Last reader marks the slot writable again.
            *slot.data.lock() = None;
            slot.state.store(SLOT_EMPTY, Ordering::Release);
        }
        charge(3.0 * self.costs.sq_read_op_ns);
        Some(sqe)
    }

    /// Read up to `max` SQEs for the consumer owning `cursor` in one protocol
    /// round, appending them to `out`. Returns how many were read.
    ///
    /// The batched fetch reads the producer head **once** and then walks the
    /// published slots, so a daemon pass over a burst of submissions pays one
    /// head load (and, in the daemon, one cursor-lock acquisition) instead of
    /// one per SQE. Entry semantics are identical to repeated
    /// [`SubmissionQueue::read_next`] calls: every consumer sees every SQE
    /// exactly once, in insertion order.
    pub fn fetch_batch(&self, cursor: &mut SqCursor, max: usize, out: &mut Vec<Sqe>) -> usize {
        if max == 0 {
            return 0;
        }
        let head = self.head.load(Ordering::Acquire);
        let mut read = 0usize;
        while read < max && cursor.next < head {
            let pos = cursor.next;
            let slot = &self.slots[(pos % self.slots.len() as u64) as usize];
            if slot.state.load(Ordering::Acquire) != SLOT_FULL
                || slot.write_seq.load(Ordering::Relaxed) != pos
            {
                // The slot for this position is not (or no longer) published;
                // stop the batch and let the caller retry later.
                break;
            }
            let Some(sqe) = slot.data.lock().clone() else {
                break;
            };
            cursor.next = pos + 1;
            let readers = slot.readers.fetch_add(1, Ordering::AcqRel) + 1;
            if readers == self.consumer_count {
                *slot.data.lock() = None;
                slot.state.store(SLOT_EMPTY, Ordering::Release);
            }
            out.push(sqe);
            read += 1;
        }
        if read > 0 {
            // One head check for the whole batch, two reads per entry.
            charge((1.0 + 2.0 * read as f64) * self.costs.sq_read_op_ns);
        }
        read
    }

    /// Whether any SQE is pending for a consumer at `cursor`.
    pub fn has_pending(&self, cursor: &SqCursor) -> bool {
        cursor.next < self.head.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn sqe(id: u64) -> Sqe {
        Sqe {
            coll_id: id,
            seq: id,
            send: DeviceBuffer::zeroed(4),
            recv: DeviceBuffer::zeroed(4),
            exit: false,
        }
    }

    #[test]
    fn single_consumer_sees_entries_in_order() {
        let sq = SubmissionQueue::new(4, 1);
        let mut cur = SqCursor::default();
        assert!(sq.read_next(&mut cur).is_none());
        sq.try_push(sqe(1)).unwrap();
        sq.try_push(sqe(2)).unwrap();
        assert!(sq.has_pending(&cur));
        assert_eq!(sq.read_next(&mut cur).unwrap().coll_id, 1);
        assert_eq!(sq.read_next(&mut cur).unwrap().coll_id, 2);
        assert!(sq.read_next(&mut cur).is_none());
        assert_eq!(sq.inserted(), 2);
    }

    #[test]
    fn queue_full_is_reported_and_entry_returned() {
        let sq = SubmissionQueue::new(2, 1);
        sq.try_push(sqe(1)).unwrap();
        sq.try_push(sqe(2)).unwrap();
        let err = sq.try_push(sqe(3)).unwrap_err();
        assert_eq!(err.0.coll_id, 3);
        // Consuming frees a slot.
        let mut cur = SqCursor::default();
        sq.read_next(&mut cur).unwrap();
        sq.try_push(sqe(3)).unwrap();
    }

    #[test]
    fn slot_reusable_only_after_all_consumers_read() {
        let sq = SubmissionQueue::new(1, 2);
        sq.try_push(sqe(1)).unwrap();
        let mut c0 = SqCursor::default();
        let mut c1 = SqCursor::default();
        assert_eq!(sq.read_next(&mut c0).unwrap().coll_id, 1);
        // Only one of two consumers has read: the single slot is still occupied.
        assert!(sq.try_push(sqe(2)).is_err());
        assert_eq!(sq.read_next(&mut c1).unwrap().coll_id, 1);
        sq.try_push(sqe(2)).unwrap();
        assert_eq!(sq.read_next(&mut c0).unwrap().coll_id, 2);
        assert_eq!(sq.read_next(&mut c1).unwrap().coll_id, 2);
    }

    #[test]
    fn every_consumer_sees_every_entry_under_concurrency() {
        let sq = Arc::new(SubmissionQueue::new(8, 3));
        let n = 200u64;
        let mut readers = Vec::new();
        for _ in 0..3 {
            let sq = Arc::clone(&sq);
            readers.push(std::thread::spawn(move || {
                let mut cur = SqCursor::default();
                let mut seen = Vec::new();
                while seen.len() < n as usize {
                    if let Some(e) = sq.read_next(&mut cur) {
                        seen.push(e.coll_id);
                    } else {
                        std::hint::spin_loop();
                    }
                }
                seen
            }));
        }
        let producer = {
            let sq = Arc::clone(&sq);
            std::thread::spawn(move || {
                for i in 0..n {
                    let mut e = sqe(i);
                    loop {
                        match sq.try_push(e) {
                            Ok(()) => break,
                            Err(SqFull(back)) => {
                                e = back;
                                std::hint::spin_loop();
                            }
                        }
                    }
                }
            })
        };
        producer.join().unwrap();
        let expected: Vec<u64> = (0..n).collect();
        for r in readers {
            assert_eq!(r.join().unwrap(), expected);
        }
    }

    #[test]
    fn fetch_batch_matches_repeated_read_next() {
        let sq = SubmissionQueue::new(16, 1);
        for i in 0..10 {
            sq.try_push(sqe(i)).unwrap();
        }
        let mut batched = SqCursor::default();
        let mut out = Vec::new();
        assert_eq!(sq.fetch_batch(&mut batched, 4, &mut out), 4);
        assert_eq!(sq.fetch_batch(&mut batched, 100, &mut out), 6);
        assert_eq!(sq.fetch_batch(&mut batched, 100, &mut out), 0);
        let ids: Vec<u64> = out.iter().map(|e| e.coll_id).collect();
        assert_eq!(ids, (0..10).collect::<Vec<u64>>());
        // Slots were recycled: the ring accepts a fresh lap.
        for i in 10..20 {
            sq.try_push(sqe(i)).unwrap();
        }
    }

    #[test]
    fn fetch_batch_interoperates_with_multiple_consumers() {
        let sq = SubmissionQueue::new(4, 2);
        for i in 0..3 {
            sq.try_push(sqe(i)).unwrap();
        }
        let mut c0 = SqCursor::default();
        let mut c1 = SqCursor::default();
        let mut out0 = Vec::new();
        assert_eq!(sq.fetch_batch(&mut c0, 8, &mut out0), 3);
        // The second consumer has not read yet, so slots are still occupied.
        sq.try_push(sqe(3)).unwrap();
        assert!(sq.try_push(sqe(4)).is_err());
        let mut out1 = Vec::new();
        assert_eq!(sq.fetch_batch(&mut c1, 8, &mut out1), 4);
        assert_eq!(
            out1.iter().map(|e| e.coll_id).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        sq.try_push(sqe(4)).unwrap();
    }

    #[test]
    fn fetch_batch_with_zero_max_reads_nothing() {
        let sq = SubmissionQueue::new(4, 1);
        sq.try_push(sqe(1)).unwrap();
        let mut cur = SqCursor::default();
        let mut out = Vec::new();
        assert_eq!(sq.fetch_batch(&mut cur, 0, &mut out), 0);
        assert!(out.is_empty());
        assert!(sq.has_pending(&cur));
    }

    #[test]
    fn exit_marker_is_flagged() {
        let e = Sqe::exit_marker(7);
        assert!(e.exit);
        assert_eq!(e.seq, 7);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = SubmissionQueue::new(0, 1);
    }

    #[test]
    #[should_panic(expected = "at least one consumer")]
    fn zero_consumers_rejected() {
        let _ = SubmissionQueue::new(4, 0);
    }
}
