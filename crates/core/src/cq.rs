//! The completion queue (CQ): multi-producer / single-consumer.
//!
//! Blocks of the daemon kernel insert CQEs for completed collectives; a single
//! poller thread on the CPU consumes them. Because the CQ lives in page-locked
//! host memory, every operation issued from the GPU pays a host-memory access.
//! The paper compares three designs (Sec. 5, Fig. 7(c)):
//!
//! * **vanilla ring buffer** — at least five host-memory operations plus a
//!   memory fence per CQE (≈6.9 µs measured);
//! * **optimized ring buffer** — packs the tail and the collective id into one
//!   64-bit atomic word, removing the fence (four operations, ≈4.8 µs);
//! * **optimized slot CQ** — abandons ring semantics; a block publishes a CQE
//!   with a single `atomicCAS_system` into any writable slot (≈2.0 µs).
//!
//! This module implements all three with the same trait so the Fig. 7(c)
//! comparison can be regenerated; the modelled host-memory costs come from
//! [`HostMemCosts`].

use std::sync::atomic::{AtomicU64, Ordering};

use gpu_sim::busy_spin;
use std::time::Duration;

use crate::config::{CqVariant, HostMemCosts};

/// One completion-queue entry: "collective `coll_id` completed".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cqe {
    /// The completed collective.
    pub coll_id: u64,
}

/// Common interface of the CQ variants. Producers call [`CompletionQueue::push`]
/// from the daemon kernel; the single poller thread calls
/// [`CompletionQueue::pop`].
pub trait CompletionQueue: Send + Sync {
    /// Publish a completion. Returns `false` when the queue is full.
    fn push(&self, cqe: Cqe) -> bool;
    /// Consume one completion, if any.
    fn pop(&self) -> Option<Cqe>;
    /// Number of entries currently buffered.
    fn len(&self) -> usize;
    /// Whether no entries are buffered.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Which variant this is.
    fn variant(&self) -> CqVariant;
}

/// Build the CQ variant selected by the configuration.
pub fn build_cq(
    variant: CqVariant,
    capacity: usize,
    costs: HostMemCosts,
) -> Box<dyn CompletionQueue> {
    match variant {
        CqVariant::VanillaRing => Box::new(VanillaRingCq::new(capacity, costs)),
        CqVariant::OptimizedRing => Box::new(OptimizedRingCq::new(capacity, costs)),
        CqVariant::OptimizedSlot => Box::new(OptimizedSlotCq::new(capacity, costs)),
    }
}

fn charge(ns: f64) {
    if ns > 0.0 {
        busy_spin(Duration::from_nanos(ns as u64));
    }
}

const EMPTY_SLOT: u64 = u64::MAX;

/// The vanilla ring-buffer CQ: head/tail indices, per-slot validity words and
/// an explicit fence between the payload write and the tail update.
pub struct VanillaRingCq {
    slots: Box<[AtomicU64]>,
    head: AtomicU64,
    tail: AtomicU64,
    costs: HostMemCosts,
}

impl VanillaRingCq {
    /// Create a vanilla ring CQ with `capacity` slots.
    pub fn new(capacity: usize, costs: HostMemCosts) -> Self {
        assert!(capacity > 0, "CQ capacity must be positive");
        VanillaRingCq {
            slots: (0..capacity).map(|_| AtomicU64::new(EMPTY_SLOT)).collect(),
            head: AtomicU64::new(0),
            tail: AtomicU64::new(0),
            costs,
        }
    }
}

impl CompletionQueue for VanillaRingCq {
    fn push(&self, cqe: Cqe) -> bool {
        // 5 host-memory operations: read head, read tail, claim slot (CAS on
        // tail), write payload, publish validity — plus a fence between the
        // payload write and the tail publication.
        loop {
            let tail = self.tail.load(Ordering::Acquire); // op 1
            let head = self.head.load(Ordering::Acquire); // op 2
            if tail.wrapping_sub(head) >= self.slots.len() as u64 {
                return false;
            }
            // Claim the slot by advancing the tail.
            if self
                .tail
                .compare_exchange(tail, tail + 1, Ordering::AcqRel, Ordering::Relaxed) // op 3
                .is_ok()
            {
                let idx = (tail % self.slots.len() as u64) as usize;
                // Op 4 writes the payload, the fence orders it against op 5
                // (the validity publication). In this reproduction the payload
                // and validity share one word, so a single release store both
                // publishes and stays safe against slot recycling; the full
                // five-operation + fence cost is still charged below.
                std::sync::atomic::fence(Ordering::SeqCst);
                self.slots[idx].store(cqe.coll_id, Ordering::Release);
                charge(5.0 * self.costs.host_op_ns + self.costs.fence_ns);
                return true;
            }
        }
    }

    fn pop(&self) -> Option<Cqe> {
        let head = self.head.load(Ordering::Acquire);
        if head == self.tail.load(Ordering::Acquire) {
            return None;
        }
        let idx = (head % self.slots.len() as u64) as usize;
        let v = self.slots[idx].load(Ordering::Acquire);
        if v == EMPTY_SLOT {
            // The producer claimed the slot but has not published the payload yet.
            return None;
        }
        self.slots[idx].store(EMPTY_SLOT, Ordering::Relaxed);
        self.head.store(head + 1, Ordering::Release);
        Some(Cqe { coll_id: v })
    }

    fn len(&self) -> usize {
        let head = self.head.load(Ordering::Acquire);
        let tail = self.tail.load(Ordering::Acquire);
        tail.saturating_sub(head) as usize
    }

    fn variant(&self) -> CqVariant {
        CqVariant::VanillaRing
    }
}

/// The optimized ring-buffer CQ: the tail index and the collective id are
/// packed into a single 64-bit word per slot, so publication is one atomic
/// write and no fence is needed. The poller validates a slot by comparing the
/// packed tail against its own head.
pub struct OptimizedRingCq {
    slots: Box<[AtomicU64]>,
    head: AtomicU64,
    tail: AtomicU64,
    costs: HostMemCosts,
}

fn pack(tail: u64, coll_id: u64) -> u64 {
    debug_assert!(coll_id < (1 << 32), "collective id must fit in 32 bits");
    (tail << 32) | (coll_id & 0xFFFF_FFFF)
}

fn unpack(word: u64) -> (u64, u64) {
    (word >> 32, word & 0xFFFF_FFFF)
}

impl OptimizedRingCq {
    /// Create an optimized ring CQ with `capacity` slots.
    pub fn new(capacity: usize, costs: HostMemCosts) -> Self {
        assert!(capacity > 0, "CQ capacity must be positive");
        OptimizedRingCq {
            slots: (0..capacity).map(|_| AtomicU64::new(EMPTY_SLOT)).collect(),
            head: AtomicU64::new(0),
            tail: AtomicU64::new(0),
            costs,
        }
    }
}

impl CompletionQueue for OptimizedRingCq {
    fn push(&self, cqe: Cqe) -> bool {
        // 4 host-memory operations, no fence: read head, read/claim tail,
        // single packed payload+validity write.
        loop {
            let tail = self.tail.load(Ordering::Acquire); // op 1
            let head = self.head.load(Ordering::Acquire); // op 2
            if tail.wrapping_sub(head) >= self.slots.len() as u64 {
                return false;
            }
            if self
                .tail
                .compare_exchange(tail, tail + 1, Ordering::AcqRel, Ordering::Relaxed) // op 3
                .is_ok()
            {
                let idx = (tail % self.slots.len() as u64) as usize;
                // op 4: one 64-bit atomic write carries both validity (the
                // packed tail) and the payload (the collective id).
                self.slots[idx].store(pack(tail + 1, cqe.coll_id), Ordering::Release);
                charge(4.0 * self.costs.host_op_ns);
                return true;
            }
        }
    }

    fn pop(&self) -> Option<Cqe> {
        let head = self.head.load(Ordering::Acquire);
        if head == self.tail.load(Ordering::Acquire) {
            return None;
        }
        let idx = (head % self.slots.len() as u64) as usize;
        let word = self.slots[idx].load(Ordering::Acquire);
        if word == EMPTY_SLOT {
            return None;
        }
        let (packed_tail, coll_id) = unpack(word);
        // Validate the CQE: the packed tail must correspond to this head.
        if packed_tail != head + 1 {
            return None;
        }
        self.slots[idx].store(EMPTY_SLOT, Ordering::Relaxed);
        self.head.store(head + 1, Ordering::Release);
        Some(Cqe { coll_id })
    }

    fn len(&self) -> usize {
        let head = self.head.load(Ordering::Acquire);
        let tail = self.tail.load(Ordering::Acquire);
        tail.saturating_sub(head) as usize
    }

    fn variant(&self) -> CqVariant {
        CqVariant::OptimizedRing
    }
}

/// The fully optimized CQ: a slot array without ring semantics. A producer
/// publishes a CQE with a single `atomicCAS_system` into any writable slot;
/// the poller scans the array, reads valid ids and marks the slots writable.
pub struct OptimizedSlotCq {
    slots: Box<[AtomicU64]>,
    costs: HostMemCosts,
}

impl OptimizedSlotCq {
    /// Create a slot CQ with `capacity` slots.
    pub fn new(capacity: usize, costs: HostMemCosts) -> Self {
        assert!(capacity > 0, "CQ capacity must be positive");
        OptimizedSlotCq {
            slots: (0..capacity).map(|_| AtomicU64::new(EMPTY_SLOT)).collect(),
            costs,
        }
    }
}

impl CompletionQueue for OptimizedSlotCq {
    fn push(&self, cqe: Cqe) -> bool {
        debug_assert_ne!(cqe.coll_id, EMPTY_SLOT, "collective id collides with the empty marker");
        for slot in self.slots.iter() {
            // A single CAS publishes the id; failure means the slot is taken.
            if slot
                .compare_exchange(EMPTY_SLOT, cqe.coll_id, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                charge(self.costs.cas_system_ns);
                return true;
            }
        }
        false
    }

    fn pop(&self) -> Option<Cqe> {
        for slot in self.slots.iter() {
            let v = slot.load(Ordering::Acquire);
            if v != EMPTY_SLOT {
                slot.store(EMPTY_SLOT, Ordering::Release);
                return Some(Cqe { coll_id: v });
            }
        }
        None
    }

    fn len(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.load(Ordering::Relaxed) != EMPTY_SLOT)
            .count()
    }

    fn variant(&self) -> CqVariant {
        CqVariant::OptimizedSlot
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn all_variants(capacity: usize) -> Vec<Box<dyn CompletionQueue>> {
        vec![
            Box::new(VanillaRingCq::new(capacity, HostMemCosts::free())),
            Box::new(OptimizedRingCq::new(capacity, HostMemCosts::free())),
            Box::new(OptimizedSlotCq::new(capacity, HostMemCosts::free())),
        ]
    }

    #[test]
    fn push_then_pop_round_trips_on_every_variant() {
        for cq in all_variants(8) {
            assert!(cq.is_empty());
            assert!(cq.push(Cqe { coll_id: 5 }));
            assert_eq!(cq.len(), 1);
            assert_eq!(cq.pop(), Some(Cqe { coll_id: 5 }));
            assert!(cq.pop().is_none());
        }
    }

    #[test]
    fn ring_variants_preserve_fifo_order() {
        for cq in [
            Box::new(VanillaRingCq::new(8, HostMemCosts::free())) as Box<dyn CompletionQueue>,
            Box::new(OptimizedRingCq::new(8, HostMemCosts::free())),
        ] {
            for i in 0..5 {
                cq.push(Cqe { coll_id: i });
            }
            for i in 0..5 {
                assert_eq!(cq.pop().unwrap().coll_id, i);
            }
        }
    }

    #[test]
    fn full_queue_rejects_pushes() {
        for cq in all_variants(2) {
            assert!(cq.push(Cqe { coll_id: 1 }));
            assert!(cq.push(Cqe { coll_id: 2 }));
            assert!(!cq.push(Cqe { coll_id: 3 }), "{:?} accepted overflow", cq.variant());
            cq.pop().unwrap();
            assert!(cq.push(Cqe { coll_id: 3 }));
        }
    }

    #[test]
    fn slot_cq_recovers_all_ids_regardless_of_order() {
        let cq = OptimizedSlotCq::new(16, HostMemCosts::free());
        for i in 0..10 {
            assert!(cq.push(Cqe { coll_id: i }));
        }
        let mut got: Vec<u64> = std::iter::from_fn(|| cq.pop().map(|c| c.coll_id)).collect();
        got.sort_unstable();
        assert_eq!(got, (0..10).collect::<Vec<u64>>());
    }

    #[test]
    fn build_cq_returns_requested_variant() {
        for v in [CqVariant::VanillaRing, CqVariant::OptimizedRing, CqVariant::OptimizedSlot] {
            let cq = build_cq(v, 4, HostMemCosts::free());
            assert_eq!(cq.variant(), v);
        }
    }

    #[test]
    fn concurrent_producers_single_consumer_lose_nothing() {
        for variant in [
            CqVariant::VanillaRing,
            CqVariant::OptimizedRing,
            CqVariant::OptimizedSlot,
        ] {
            let cq: Arc<Box<dyn CompletionQueue>> = Arc::new(build_cq(variant, 32, HostMemCosts::free()));
            let per_producer = 500u64;
            let producers: Vec<_> = (0..4)
                .map(|p| {
                    let cq = Arc::clone(&cq);
                    std::thread::spawn(move || {
                        for i in 0..per_producer {
                            let id = p * per_producer + i;
                            while !cq.push(Cqe { coll_id: id }) {
                                std::hint::spin_loop();
                            }
                        }
                    })
                })
                .collect();
            let mut seen = Vec::new();
            while seen.len() < 4 * per_producer as usize {
                if let Some(c) = cq.pop() {
                    seen.push(c.coll_id);
                } else {
                    std::hint::spin_loop();
                }
            }
            for p in producers {
                p.join().unwrap();
            }
            seen.sort_unstable();
            let expected: Vec<u64> = (0..4 * per_producer).collect();
            assert_eq!(seen, expected, "variant {variant:?} lost completions");
        }
    }

    #[test]
    fn modelled_costs_order_the_variants() {
        // With the default cost model, writing a CQE must be slowest for the
        // vanilla ring and fastest for the slot CQ (the Fig. 7(c) ordering).
        let costs = HostMemCosts::default();
        let time_one_push = |cq: &dyn CompletionQueue| {
            let start = std::time::Instant::now();
            cq.push(Cqe { coll_id: 1 });
            start.elapsed()
        };
        let vanilla = VanillaRingCq::new(8, costs);
        let ring = OptimizedRingCq::new(8, costs);
        let slot = OptimizedSlotCq::new(8, costs);
        let t_vanilla = time_one_push(&vanilla);
        let t_ring = time_one_push(&ring);
        let t_slot = time_one_push(&slot);
        assert!(t_vanilla > t_ring, "vanilla {t_vanilla:?} vs ring {t_ring:?}");
        assert!(t_ring > t_slot, "ring {t_ring:?} vs slot {t_slot:?}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = OptimizedSlotCq::new(0, HostMemCosts::free());
    }
}
