//! The completion queue (CQ): multi-producer / single-consumer.
//!
//! Blocks of the daemon kernel insert CQEs for completed collectives; a single
//! poller thread on the CPU consumes them. Because the CQ lives in page-locked
//! host memory, every operation issued from the GPU pays a host-memory access.
//! The paper compares three designs (Sec. 5, Fig. 7(c)):
//!
//! * **vanilla ring buffer** — at least five host-memory operations plus a
//!   memory fence per CQE (≈6.9 µs measured);
//! * **optimized ring buffer** — packs the tail and the collective id into one
//!   64-bit atomic word, removing the fence (four operations, ≈4.8 µs);
//! * **optimized slot CQ** — abandons ring semantics; a block publishes a CQE
//!   with a single `atomicCAS_system` into any writable slot (≈2.0 µs).
//!
//! This module implements all three behind [`CqKind`], an enum whose inherent
//! methods dispatch statically — the runtime hot path pays no vtable
//! indirection per CQE. The [`CompletionQueue`] trait is kept (and implemented
//! by every variant and by `CqKind` itself) so tests and the Fig. 7(c)
//! harness can still treat the variants uniformly.
//!
//! ## Batched operation
//!
//! On top of the per-entry `push`/`pop` protocol, every variant supports
//! batched draining:
//!
//! * [`CqKind::push_n`] publishes a run of CQEs in one protocol round. The
//!   ring variants claim all `n` slots with a *single* tail CAS, so the
//!   head/tail reads, the claim and (for the vanilla ring) the fence are paid
//!   once per batch instead of once per CQE; only the per-slot payload writes
//!   scale with `n`. The slot CQ cannot amortize — its whole design is that a
//!   publish is already a single `atomicCAS_system` — so its batched cost
//!   stays linear (which is exactly why Fig. 7(c) crowns it for singles).
//! * [`CqKind::drain_into`] consumes every published CQE in one pass, reading
//!   the head once and publishing the new head once. The consumer side runs on
//!   the CPU against local memory, so no modelled host cost is charged.
//!
//! The modelled host-memory costs come from [`HostMemCosts`].

use std::sync::atomic::{AtomicU64, Ordering};

use crate::config::{charge, CqVariant, HostMemCosts};

/// One completion-queue entry: "collective `coll_id` completed".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cqe {
    /// The completed collective.
    pub coll_id: u64,
}

/// Common interface of the CQ variants. Producers call [`CompletionQueue::push`]
/// from the daemon kernel; the single poller thread calls
/// [`CompletionQueue::pop`]. The runtime itself dispatches statically through
/// [`CqKind`]; this trait remains for tests and generic harness code.
pub trait CompletionQueue: Send + Sync {
    /// Publish a completion. Returns `false` when the queue is full.
    fn push(&self, cqe: Cqe) -> bool;
    /// Consume one completion, if any.
    fn pop(&self) -> Option<Cqe>;
    /// Number of entries currently buffered.
    fn len(&self) -> usize;
    /// Whether no entries are buffered.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Which variant this is.
    fn variant(&self) -> CqVariant;
    /// Publish a batch, returning how many entries were accepted (a prefix of
    /// `cqes`). The default just loops `push`.
    fn push_n(&self, cqes: &[Cqe]) -> usize {
        let mut accepted = 0;
        for &cqe in cqes {
            if !self.push(cqe) {
                break;
            }
            accepted += 1;
        }
        accepted
    }
    /// Drain every published entry into `out`, returning how many were moved.
    /// The default just loops `pop`.
    fn drain_into(&self, out: &mut Vec<Cqe>) -> usize {
        let before = out.len();
        while let Some(cqe) = self.pop() {
            out.push(cqe);
        }
        out.len() - before
    }
}

/// The statically dispatched completion queue used by the runtime. Replaces
/// the previous `Box<dyn CompletionQueue>` on the daemon hot path: a `match`
/// on a three-variant enum compiles to a jump the branch predictor learns,
/// and the inner calls inline.
pub enum CqKind {
    /// Five host-memory operations plus a fence per CQE.
    VanillaRing(VanillaRingCq),
    /// Four host-memory operations per CQE, no fence.
    OptimizedRing(OptimizedRingCq),
    /// One `atomicCAS_system` per CQE.
    OptimizedSlot(OptimizedSlotCq),
}

macro_rules! cq_dispatch {
    ($self:expr, $inner:ident => $body:expr) => {
        match $self {
            CqKind::VanillaRing($inner) => $body,
            CqKind::OptimizedRing($inner) => $body,
            CqKind::OptimizedSlot($inner) => $body,
        }
    };
}

impl CqKind {
    /// Publish a completion. Returns `false` when the queue is full.
    #[inline]
    pub fn push(&self, cqe: Cqe) -> bool {
        cq_dispatch!(self, q => q.push(cqe))
    }

    /// Publish a batch, returning how many entries were accepted.
    #[inline]
    pub fn push_n(&self, cqes: &[Cqe]) -> usize {
        cq_dispatch!(self, q => q.push_n(cqes))
    }

    /// Consume one completion, if any.
    #[inline]
    pub fn pop(&self) -> Option<Cqe> {
        cq_dispatch!(self, q => q.pop())
    }

    /// Drain every published entry into `out`, returning how many were moved.
    #[inline]
    pub fn drain_into(&self, out: &mut Vec<Cqe>) -> usize {
        cq_dispatch!(self, q => q.drain_into(out))
    }

    /// Number of entries currently buffered.
    #[inline]
    pub fn len(&self) -> usize {
        cq_dispatch!(self, q => q.len())
    }

    /// Whether no entries are buffered.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Which variant this is.
    pub fn variant(&self) -> CqVariant {
        cq_dispatch!(self, q => q.variant())
    }
}

impl CompletionQueue for CqKind {
    fn push(&self, cqe: Cqe) -> bool {
        CqKind::push(self, cqe)
    }
    fn pop(&self) -> Option<Cqe> {
        CqKind::pop(self)
    }
    fn len(&self) -> usize {
        CqKind::len(self)
    }
    fn variant(&self) -> CqVariant {
        CqKind::variant(self)
    }
    fn push_n(&self, cqes: &[Cqe]) -> usize {
        CqKind::push_n(self, cqes)
    }
    fn drain_into(&self, out: &mut Vec<Cqe>) -> usize {
        CqKind::drain_into(self, out)
    }
}

/// Build the CQ variant selected by the configuration.
pub fn build_cq(variant: CqVariant, capacity: usize, costs: HostMemCosts) -> CqKind {
    match variant {
        CqVariant::VanillaRing => CqKind::VanillaRing(VanillaRingCq::new(capacity, costs)),
        CqVariant::OptimizedRing => CqKind::OptimizedRing(OptimizedRingCq::new(capacity, costs)),
        CqVariant::OptimizedSlot => CqKind::OptimizedSlot(OptimizedSlotCq::new(capacity, costs)),
    }
}

const EMPTY_SLOT: u64 = u64::MAX;

/// The vanilla ring-buffer CQ: head/tail indices, per-slot validity words and
/// an explicit fence between the payload write and the tail update.
pub struct VanillaRingCq {
    slots: Box<[AtomicU64]>,
    head: AtomicU64,
    tail: AtomicU64,
    costs: HostMemCosts,
}

impl VanillaRingCq {
    /// Create a vanilla ring CQ with `capacity` slots.
    pub fn new(capacity: usize, costs: HostMemCosts) -> Self {
        assert!(capacity > 0, "CQ capacity must be positive");
        VanillaRingCq {
            slots: (0..capacity).map(|_| AtomicU64::new(EMPTY_SLOT)).collect(),
            head: AtomicU64::new(0),
            tail: AtomicU64::new(0),
            costs,
        }
    }

    /// Claim `want` consecutive positions by advancing the tail once. Returns
    /// the first claimed position and how many were claimed (possibly fewer
    /// than `want` when the ring is almost full, zero when full).
    fn claim(&self, want: u64) -> Option<(u64, u64)> {
        loop {
            let tail = self.tail.load(Ordering::Acquire);
            let head = self.head.load(Ordering::Acquire);
            let free = (self.slots.len() as u64).saturating_sub(tail.wrapping_sub(head));
            if free == 0 {
                return None;
            }
            let take = want.min(free);
            if self
                .tail
                .compare_exchange(tail, tail + take, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                return Some((tail, take));
            }
        }
    }
}

impl CompletionQueue for VanillaRingCq {
    fn push(&self, cqe: Cqe) -> bool {
        // 5 host-memory operations: read head, read tail, claim slot (CAS on
        // tail), write payload, publish validity — plus a fence between the
        // payload write and the tail publication.
        let Some((pos, _)) = self.claim(1) else {
            return false;
        };
        let idx = (pos % self.slots.len() as u64) as usize;
        // The payload write and the validity publication are ordered by the
        // fence. In this reproduction the payload and validity share one word,
        // so a single release store both publishes and stays safe against slot
        // recycling; the full five-operation + fence cost is still charged.
        std::sync::atomic::fence(Ordering::SeqCst);
        self.slots[idx].store(cqe.coll_id, Ordering::Release);
        charge(5.0 * self.costs.host_op_ns + self.costs.fence_ns);
        true
    }

    fn push_n(&self, cqes: &[Cqe]) -> usize {
        if cqes.is_empty() {
            return 0;
        }
        // Batched protocol round: the head/tail reads, the tail CAS and the
        // fence are paid once for the whole run; only the payload + validity
        // writes (2 ops each) scale with the batch.
        let Some((first, taken)) = self.claim(cqes.len() as u64) else {
            return 0;
        };
        std::sync::atomic::fence(Ordering::SeqCst);
        for (i, cqe) in cqes[..taken as usize].iter().enumerate() {
            let idx = ((first + i as u64) % self.slots.len() as u64) as usize;
            self.slots[idx].store(cqe.coll_id, Ordering::Release);
        }
        charge((3.0 + 2.0 * taken as f64) * self.costs.host_op_ns + self.costs.fence_ns);
        taken as usize
    }

    fn pop(&self) -> Option<Cqe> {
        // The pop protocol is decided by slot validity alone. The previous
        // implementation consulted the tail first and only then the slot,
        // which opened a window — between a producer's tail CAS and its
        // payload publication — where the queue reported entries it refused
        // to pop, and cost an extra host-memory read per poll. A slot is
        // consumed only once its payload is visible, so the head never passes
        // an unpublished claim.
        let head = self.head.load(Ordering::Acquire);
        let idx = (head % self.slots.len() as u64) as usize;
        let v = self.slots[idx].load(Ordering::Acquire);
        if v == EMPTY_SLOT {
            return None;
        }
        // Clear the slot before publishing the new head: a producer only
        // reuses the slot after observing the advanced head (its capacity
        // check acquires `head`), which orders this store before any new
        // payload write.
        self.slots[idx].store(EMPTY_SLOT, Ordering::Release);
        self.head.store(head + 1, Ordering::Release);
        Some(Cqe { coll_id: v })
    }

    fn drain_into(&self, out: &mut Vec<Cqe>) -> usize {
        // Single consumer: read the head once, walk published slots, publish
        // the advanced head once at the end.
        let head = self.head.load(Ordering::Acquire);
        let mut taken = 0u64;
        loop {
            let idx = ((head + taken) % self.slots.len() as u64) as usize;
            let v = self.slots[idx].load(Ordering::Acquire);
            if v == EMPTY_SLOT || taken >= self.slots.len() as u64 {
                break;
            }
            self.slots[idx].store(EMPTY_SLOT, Ordering::Release);
            out.push(Cqe { coll_id: v });
            taken += 1;
        }
        if taken > 0 {
            self.head.store(head + taken, Ordering::Release);
        }
        taken as usize
    }

    fn len(&self) -> usize {
        let head = self.head.load(Ordering::Acquire);
        let tail = self.tail.load(Ordering::Acquire);
        tail.saturating_sub(head) as usize
    }

    fn variant(&self) -> CqVariant {
        CqVariant::VanillaRing
    }
}

/// The optimized ring-buffer CQ: the tail index and the collective id are
/// packed into a single 64-bit word per slot, so publication is one atomic
/// write and no fence is needed. The poller validates a slot by comparing the
/// packed tail against its own head.
pub struct OptimizedRingCq {
    slots: Box<[AtomicU64]>,
    head: AtomicU64,
    tail: AtomicU64,
    costs: HostMemCosts,
}

/// Marker bits of the id space that must survive the 32-bit packing: bit 63
/// flags a graph completion ([`crate::daemon::GRAPH_ID_BASE`]) and bit 62 a
/// fusion-synthesized collective (`FUSED_COLL_ID_BASE`). They fold into bits
/// 31–30 of the packed id field, which caps the payload part of an id at 30
/// bits — plenty for per-rank registration counters, and checked in debug
/// builds.
const MARKER_SHIFT: u64 = 32;
const MARKER_BITS: u64 = 0xC000_0000;
const PAYLOAD_BITS: u64 = 0x3FFF_FFFF;

fn pack(tail: u64, coll_id: u64) -> u64 {
    debug_assert!(
        coll_id & !((MARKER_BITS << MARKER_SHIFT) | PAYLOAD_BITS) == 0,
        "collective id {coll_id:#x} must be a marker bit (62/63) plus 30 payload bits"
    );
    (tail << 32) | ((coll_id >> MARKER_SHIFT) & MARKER_BITS) | (coll_id & PAYLOAD_BITS)
}

fn unpack(word: u64) -> (u64, u64) {
    let id = word & 0xFFFF_FFFF;
    (
        word >> 32,
        ((id & MARKER_BITS) << MARKER_SHIFT) | (id & PAYLOAD_BITS),
    )
}

impl OptimizedRingCq {
    /// Create an optimized ring CQ with `capacity` slots.
    pub fn new(capacity: usize, costs: HostMemCosts) -> Self {
        assert!(capacity > 0, "CQ capacity must be positive");
        OptimizedRingCq {
            slots: (0..capacity).map(|_| AtomicU64::new(EMPTY_SLOT)).collect(),
            head: AtomicU64::new(0),
            tail: AtomicU64::new(0),
            costs,
        }
    }

    fn claim(&self, want: u64) -> Option<(u64, u64)> {
        loop {
            let tail = self.tail.load(Ordering::Acquire);
            let head = self.head.load(Ordering::Acquire);
            let free = (self.slots.len() as u64).saturating_sub(tail.wrapping_sub(head));
            if free == 0 {
                return None;
            }
            let take = want.min(free);
            if self
                .tail
                .compare_exchange(tail, tail + take, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                return Some((tail, take));
            }
        }
    }
}

impl CompletionQueue for OptimizedRingCq {
    fn push(&self, cqe: Cqe) -> bool {
        // 4 host-memory operations, no fence: read head, read/claim tail,
        // single packed payload+validity write.
        let Some((pos, _)) = self.claim(1) else {
            return false;
        };
        let idx = (pos % self.slots.len() as u64) as usize;
        self.slots[idx].store(pack(pos + 1, cqe.coll_id), Ordering::Release);
        charge(4.0 * self.costs.host_op_ns);
        true
    }

    fn push_n(&self, cqes: &[Cqe]) -> usize {
        if cqes.is_empty() {
            return 0;
        }
        // One claim for the whole run; a single packed write per entry.
        let Some((first, taken)) = self.claim(cqes.len() as u64) else {
            return 0;
        };
        for (i, cqe) in cqes[..taken as usize].iter().enumerate() {
            let pos = first + i as u64;
            let idx = (pos % self.slots.len() as u64) as usize;
            self.slots[idx].store(pack(pos + 1, cqe.coll_id), Ordering::Release);
        }
        charge((3.0 + taken as f64) * self.costs.host_op_ns);
        taken as usize
    }

    fn pop(&self) -> Option<Cqe> {
        // Validity comes from the packed tail alone — no tail read, and no
        // head/tail race window (see `VanillaRingCq::pop`).
        let head = self.head.load(Ordering::Acquire);
        let idx = (head % self.slots.len() as u64) as usize;
        let word = self.slots[idx].load(Ordering::Acquire);
        if word == EMPTY_SLOT {
            return None;
        }
        let (packed_tail, coll_id) = unpack(word);
        // Validate the CQE: the packed tail must correspond to this head.
        if packed_tail != head + 1 {
            return None;
        }
        self.slots[idx].store(EMPTY_SLOT, Ordering::Release);
        self.head.store(head + 1, Ordering::Release);
        Some(Cqe { coll_id })
    }

    fn drain_into(&self, out: &mut Vec<Cqe>) -> usize {
        let head = self.head.load(Ordering::Acquire);
        let mut taken = 0u64;
        loop {
            let pos = head + taken;
            let idx = (pos % self.slots.len() as u64) as usize;
            let word = self.slots[idx].load(Ordering::Acquire);
            if word == EMPTY_SLOT || taken >= self.slots.len() as u64 {
                break;
            }
            let (packed_tail, coll_id) = unpack(word);
            if packed_tail != pos + 1 {
                break;
            }
            self.slots[idx].store(EMPTY_SLOT, Ordering::Release);
            out.push(Cqe { coll_id });
            taken += 1;
        }
        if taken > 0 {
            self.head.store(head + taken, Ordering::Release);
        }
        taken as usize
    }

    fn len(&self) -> usize {
        let head = self.head.load(Ordering::Acquire);
        let tail = self.tail.load(Ordering::Acquire);
        tail.saturating_sub(head) as usize
    }

    fn variant(&self) -> CqVariant {
        CqVariant::OptimizedRing
    }
}

/// The fully optimized CQ: a slot array without ring semantics. A producer
/// publishes a CQE with a single `atomicCAS_system` into any writable slot;
/// the poller scans the array, reads valid ids and marks the slots writable.
pub struct OptimizedSlotCq {
    slots: Box<[AtomicU64]>,
    costs: HostMemCosts,
}

impl OptimizedSlotCq {
    /// Create a slot CQ with `capacity` slots.
    pub fn new(capacity: usize, costs: HostMemCosts) -> Self {
        assert!(capacity > 0, "CQ capacity must be positive");
        OptimizedSlotCq {
            slots: (0..capacity).map(|_| AtomicU64::new(EMPTY_SLOT)).collect(),
            costs,
        }
    }
}

impl CompletionQueue for OptimizedSlotCq {
    fn push(&self, cqe: Cqe) -> bool {
        debug_assert_ne!(
            cqe.coll_id, EMPTY_SLOT,
            "collective id collides with the empty marker"
        );
        for slot in self.slots.iter() {
            // A single CAS publishes the id; failure means the slot is taken.
            if slot
                .compare_exchange(EMPTY_SLOT, cqe.coll_id, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                charge(self.costs.cas_system_ns);
                return true;
            }
        }
        false
    }

    fn push_n(&self, cqes: &[Cqe]) -> usize {
        // The slot design's publish is already a single host-memory CAS, so a
        // batch still pays one CAS per entry; batching only saves the repeated
        // scan from slot zero by resuming where the previous entry landed.
        let mut accepted = 0usize;
        let mut start = 0usize;
        'outer: for &cqe in cqes {
            debug_assert_ne!(
                cqe.coll_id, EMPTY_SLOT,
                "collective id collides with the empty marker"
            );
            while start < self.slots.len() {
                if self.slots[start]
                    .compare_exchange(EMPTY_SLOT, cqe.coll_id, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
                {
                    accepted += 1;
                    start += 1;
                    continue 'outer;
                }
                start += 1;
            }
            break;
        }
        charge(accepted as f64 * self.costs.cas_system_ns);
        accepted
    }

    fn pop(&self) -> Option<Cqe> {
        for slot in self.slots.iter() {
            let v = slot.load(Ordering::Acquire);
            if v != EMPTY_SLOT {
                slot.store(EMPTY_SLOT, Ordering::Release);
                return Some(Cqe { coll_id: v });
            }
        }
        None
    }

    fn drain_into(&self, out: &mut Vec<Cqe>) -> usize {
        // One scan recovers every published entry.
        let before = out.len();
        for slot in self.slots.iter() {
            let v = slot.load(Ordering::Acquire);
            if v != EMPTY_SLOT {
                slot.store(EMPTY_SLOT, Ordering::Release);
                out.push(Cqe { coll_id: v });
            }
        }
        out.len() - before
    }

    fn len(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.load(Ordering::Relaxed) != EMPTY_SLOT)
            .count()
    }

    fn variant(&self) -> CqVariant {
        CqVariant::OptimizedSlot
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn all_variants(capacity: usize) -> Vec<Box<dyn CompletionQueue>> {
        vec![
            Box::new(VanillaRingCq::new(capacity, HostMemCosts::free())),
            Box::new(OptimizedRingCq::new(capacity, HostMemCosts::free())),
            Box::new(OptimizedSlotCq::new(capacity, HostMemCosts::free())),
        ]
    }

    const ALL_VARIANTS: [CqVariant; 3] = [
        CqVariant::VanillaRing,
        CqVariant::OptimizedRing,
        CqVariant::OptimizedSlot,
    ];

    #[test]
    fn push_then_pop_round_trips_on_every_variant() {
        for cq in all_variants(8) {
            assert!(cq.is_empty());
            assert!(cq.push(Cqe { coll_id: 5 }));
            assert_eq!(cq.len(), 1);
            assert_eq!(cq.pop(), Some(Cqe { coll_id: 5 }));
            assert!(cq.pop().is_none());
        }
    }

    #[test]
    fn ring_variants_preserve_fifo_order() {
        for cq in [
            Box::new(VanillaRingCq::new(8, HostMemCosts::free())) as Box<dyn CompletionQueue>,
            Box::new(OptimizedRingCq::new(8, HostMemCosts::free())),
        ] {
            for i in 0..5 {
                cq.push(Cqe { coll_id: i });
            }
            for i in 0..5 {
                assert_eq!(cq.pop().unwrap().coll_id, i);
            }
        }
    }

    #[test]
    fn full_queue_rejects_pushes() {
        for cq in all_variants(2) {
            assert!(cq.push(Cqe { coll_id: 1 }));
            assert!(cq.push(Cqe { coll_id: 2 }));
            assert!(
                !cq.push(Cqe { coll_id: 3 }),
                "{:?} accepted overflow",
                cq.variant()
            );
            cq.pop().unwrap();
            assert!(cq.push(Cqe { coll_id: 3 }));
        }
    }

    #[test]
    fn slot_cq_recovers_all_ids_regardless_of_order() {
        let cq = OptimizedSlotCq::new(16, HostMemCosts::free());
        for i in 0..10 {
            assert!(cq.push(Cqe { coll_id: i }));
        }
        let mut got: Vec<u64> = std::iter::from_fn(|| cq.pop().map(|c| c.coll_id)).collect();
        got.sort_unstable();
        assert_eq!(got, (0..10).collect::<Vec<u64>>());
    }

    #[test]
    fn reserved_marker_ids_round_trip_on_every_variant() {
        // Graph and fused collective ids carry marker bits 63 / 62. The
        // optimized ring packs the id into 32 bits, so the markers must fold
        // into the packed word and unfold on pop — a graph completion dropped
        // or truncated here wedges every replay.
        let ids = [
            crate::daemon::GRAPH_ID_BASE | 1,
            dfccl_collectives::FUSED_COLL_ID_BASE | 7,
            (1 << 30) - 1,
        ];
        for v in ALL_VARIANTS {
            let cq = build_cq(v, 8, HostMemCosts::free());
            for &id in &ids {
                assert!(cq.push(Cqe { coll_id: id }));
                assert_eq!(
                    cq.pop(),
                    Some(Cqe { coll_id: id }),
                    "{v:?} mangled id {id:#x}"
                );
            }
        }
    }

    #[test]
    fn build_cq_returns_requested_variant() {
        for v in ALL_VARIANTS {
            let cq = build_cq(v, 4, HostMemCosts::free());
            assert_eq!(cq.variant(), v);
        }
    }

    #[test]
    fn enum_and_trait_dispatch_agree() {
        for v in ALL_VARIANTS {
            let cq = build_cq(v, 8, HostMemCosts::free());
            // Inherent (static) dispatch.
            assert!(cq.push(Cqe { coll_id: 3 }));
            // Trait-object dispatch over the same queue.
            let dynamic: &dyn CompletionQueue = &cq;
            assert_eq!(dynamic.len(), 1);
            assert_eq!(dynamic.pop(), Some(Cqe { coll_id: 3 }));
            assert!(cq.is_empty());
        }
    }

    #[test]
    fn push_n_publishes_batches_and_reports_partial_acceptance() {
        for v in ALL_VARIANTS {
            let cq = build_cq(v, 4, HostMemCosts::free());
            let batch: Vec<Cqe> = (0..6).map(|i| Cqe { coll_id: i }).collect();
            let accepted = cq.push_n(&batch);
            assert_eq!(accepted, 4, "{v:?} must accept exactly the free capacity");
            let mut out = Vec::new();
            assert_eq!(cq.drain_into(&mut out), 4);
            let mut ids: Vec<u64> = out.iter().map(|c| c.coll_id).collect();
            ids.sort_unstable();
            assert_eq!(ids, vec![0, 1, 2, 3], "{v:?} lost a batched entry");
            // The remainder of the batch can be pushed after draining.
            assert_eq!(cq.push_n(&batch[accepted..]), 2);
        }
    }

    #[test]
    fn push_n_on_empty_batch_is_a_no_op() {
        for v in ALL_VARIANTS {
            let cq = build_cq(v, 4, HostMemCosts::free());
            assert_eq!(cq.push_n(&[]), 0);
            assert!(cq.is_empty());
        }
    }

    #[test]
    fn drain_into_preserves_fifo_on_ring_variants() {
        for v in [CqVariant::VanillaRing, CqVariant::OptimizedRing] {
            let cq = build_cq(v, 8, HostMemCosts::free());
            let batch: Vec<Cqe> = (0..5).map(|i| Cqe { coll_id: i }).collect();
            assert_eq!(cq.push_n(&batch), 5);
            let mut out = Vec::new();
            cq.drain_into(&mut out);
            let ids: Vec<u64> = out.iter().map(|c| c.coll_id).collect();
            assert_eq!(ids, vec![0, 1, 2, 3, 4], "{v:?} broke FIFO in drain");
        }
    }

    #[test]
    fn mixed_push_and_push_n_interleave_correctly() {
        let cq = build_cq(CqVariant::OptimizedRing, 16, HostMemCosts::free());
        cq.push(Cqe { coll_id: 0 });
        cq.push_n(&[Cqe { coll_id: 1 }, Cqe { coll_id: 2 }]);
        cq.push(Cqe { coll_id: 3 });
        let mut out = Vec::new();
        cq.drain_into(&mut out);
        assert_eq!(
            out.iter().map(|c| c.coll_id).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
    }

    #[test]
    fn concurrent_producers_single_consumer_lose_nothing() {
        for variant in ALL_VARIANTS {
            let cq: Arc<CqKind> = Arc::new(build_cq(variant, 32, HostMemCosts::free()));
            let per_producer = 500u64;
            let producers: Vec<_> = (0..4)
                .map(|p| {
                    let cq = Arc::clone(&cq);
                    std::thread::spawn(move || {
                        for i in 0..per_producer {
                            let id = p * per_producer + i;
                            while !cq.push(Cqe { coll_id: id }) {
                                std::hint::spin_loop();
                            }
                        }
                    })
                })
                .collect();
            let mut seen = Vec::new();
            while seen.len() < 4 * per_producer as usize {
                if let Some(c) = cq.pop() {
                    seen.push(c.coll_id);
                } else {
                    std::hint::spin_loop();
                }
            }
            for p in producers {
                p.join().unwrap();
            }
            seen.sort_unstable();
            let expected: Vec<u64> = (0..4 * per_producer).collect();
            assert_eq!(seen, expected, "variant {variant:?} lost completions");
        }
    }

    /// The satellite stress test: N producer threads pushing (mixing `push`
    /// and `push_n`) against one popper (mixing `pop` and `drain_into`), on a
    /// deliberately small ring so claimed-but-unpublished windows and slot
    /// recycling are constantly exercised. No CQE may be lost or duplicated.
    #[test]
    fn multi_producer_stress_no_loss_no_duplication() {
        for variant in ALL_VARIANTS {
            let cq: Arc<CqKind> = Arc::new(build_cq(variant, 8, HostMemCosts::free()));
            let producers = 6u64;
            let per_producer = 2_000u64;
            let threads: Vec<_> = (0..producers)
                .map(|p| {
                    let cq = Arc::clone(&cq);
                    std::thread::spawn(move || {
                        let mut next = 0u64;
                        while next < per_producer {
                            let id = |i: u64| p * per_producer + i;
                            if next.is_multiple_of(3) && next + 2 <= per_producer {
                                // Batched publication of two entries.
                                let batch = [
                                    Cqe { coll_id: id(next) },
                                    Cqe {
                                        coll_id: id(next + 1),
                                    },
                                ];
                                let mut done = 0;
                                while done < 2 {
                                    let pushed = cq.push_n(&batch[done..]);
                                    done += pushed;
                                    if pushed == 0 {
                                        // Yield rather than spin: on single-core
                                        // CI machines spinning starves the popper.
                                        std::thread::yield_now();
                                    }
                                }
                                next += 2;
                            } else {
                                while !cq.push(Cqe { coll_id: id(next) }) {
                                    std::thread::yield_now();
                                }
                                next += 1;
                            }
                        }
                    })
                })
                .collect();
            let total = (producers * per_producer) as usize;
            let mut seen: Vec<u64> = Vec::with_capacity(total);
            let mut buf: Vec<Cqe> = Vec::new();
            let mut use_drain = false;
            while seen.len() < total {
                if use_drain {
                    buf.clear();
                    cq.drain_into(&mut buf);
                    seen.extend(buf.iter().map(|c| c.coll_id));
                } else if let Some(c) = cq.pop() {
                    seen.push(c.coll_id);
                }
                use_drain = !use_drain;
            }
            for t in threads {
                t.join().unwrap();
            }
            assert!(cq.is_empty(), "variant {variant:?} left residue");
            seen.sort_unstable();
            let expected: Vec<u64> = (0..producers * per_producer).collect();
            assert_eq!(
                seen, expected,
                "variant {variant:?} lost or duplicated CQEs"
            );
        }
    }

    #[test]
    fn modelled_costs_order_the_variants() {
        // With the default cost model, writing a CQE must be slowest for the
        // vanilla ring and fastest for the slot CQ (the Fig. 7(c) ordering).
        let costs = HostMemCosts::default();
        let time_one_push = |cq: &dyn CompletionQueue| {
            let start = std::time::Instant::now();
            cq.push(Cqe { coll_id: 1 });
            start.elapsed()
        };
        let vanilla = VanillaRingCq::new(8, costs);
        let ring = OptimizedRingCq::new(8, costs);
        let slot = OptimizedSlotCq::new(8, costs);
        let t_vanilla = time_one_push(&vanilla);
        let t_ring = time_one_push(&ring);
        let t_slot = time_one_push(&slot);
        assert!(
            t_vanilla > t_ring,
            "vanilla {t_vanilla:?} vs ring {t_ring:?}"
        );
        assert!(t_ring > t_slot, "ring {t_ring:?} vs slot {t_slot:?}");
    }

    #[test]
    fn batched_push_amortizes_modelled_ring_costs() {
        // Batched publication on the ring variants must charge less per CQE
        // than per-entry publication (the claim and fence amortize), while the
        // slot CQ's cost stays linear in the batch size.
        let costs = HostMemCosts::default();
        let batch: Vec<Cqe> = (0..16).map(|i| Cqe { coll_id: i }).collect();
        let time_batch = |cq: &dyn CompletionQueue| {
            let start = std::time::Instant::now();
            assert_eq!(cq.push_n(&batch), batch.len());
            start.elapsed()
        };
        let time_singles = |cq: &dyn CompletionQueue| {
            let start = std::time::Instant::now();
            for &cqe in &batch {
                assert!(cq.push(cqe));
            }
            start.elapsed()
        };
        for v in [CqVariant::VanillaRing, CqVariant::OptimizedRing] {
            let batched = time_batch(&build_cq(v, 64, costs));
            let singles = time_singles(&build_cq(v, 64, costs));
            assert!(
                batched.as_secs_f64() < 0.8 * singles.as_secs_f64(),
                "{v:?}: batch {batched:?} not cheaper than singles {singles:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = OptimizedSlotCq::new(0, HostMemCosts::free());
    }
}
