//! The daemon kernel's task queue (kept in shared memory on real hardware).
//!
//! Fetched SQEs become task entries. Under the FIFO ordering policy new
//! entries go to the back; under the priority-based policy the queue is kept
//! sorted by the user-specified priority (higher first), with arrival order
//! breaking ties. A preempted collective keeps its queue position (Sec. 4.3).
//!
//! In service mode the flat queue becomes a set of per-tenant **lanes**
//! arbitrated by [`TenantScheduler`]: each tenant keeps its own [`TaskQueue`]
//! (so the paper's FIFO-and-priority semantics hold unchanged within a
//! tenant), and a scheduling pass interleaves lanes by weighted-fair or
//! strict-priority policy. With a single active lane the scheduler is a
//! transparent passthrough to the flat queue — the pre-service path.

use std::cmp::Reverse;
use std::collections::HashMap;
use std::sync::Arc;

use crate::config::{OrderingPolicy, SpinPolicy, TenantArbitration};
use crate::tenant::{TenantId, TenantState};

/// One entry of the task queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskEntry {
    /// The registered collective to execute.
    pub coll_id: u64,
    /// User-specified priority (higher runs earlier under the priority policy).
    pub priority: i32,
    /// Monotonic arrival index (fetch order from the SQ).
    pub arrival: u64,
    /// Current spin threshold assigned to this collective's primitives.
    pub spin_threshold: u64,
}

/// The per-daemon task queue.
#[derive(Debug, Default)]
pub struct TaskQueue {
    entries: Vec<TaskEntry>,
    next_arrival: u64,
}

impl TaskQueue {
    /// Create an empty queue.
    pub fn new() -> Self {
        TaskQueue::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether `coll_id` is already queued.
    pub fn contains(&self, coll_id: u64) -> bool {
        self.entries.iter().any(|e| e.coll_id == coll_id)
    }

    /// Append a new entry (FIFO position) carrying its configured initial
    /// spin threshold (from [`SpinPolicy::initial_threshold`] at the entry's
    /// queue position — no more silent 0 that a scheduling pass had to
    /// repair). Returns the entry's arrival index.
    pub fn push(&mut self, coll_id: u64, priority: i32, initial_spin: u64) -> u64 {
        let arrival = self.next_arrival;
        self.next_arrival += 1;
        self.entries.push(TaskEntry {
            coll_id,
            priority,
            arrival,
            spin_threshold: initial_spin,
        });
        arrival
    }

    /// Remove the entry for `coll_id` (after its completion).
    pub fn remove(&mut self, coll_id: u64) -> Option<TaskEntry> {
        let idx = self.entries.iter().position(|e| e.coll_id == coll_id)?;
        Some(self.entries.remove(idx))
    }

    /// Re-order the queue according to the policy. FIFO keeps arrival order;
    /// the priority policy sorts by descending priority, then arrival.
    pub fn reorder(&mut self, policy: OrderingPolicy) {
        match policy {
            OrderingPolicy::Fifo => self.entries.sort_by_key(|e| e.arrival),
            OrderingPolicy::PriorityBased => self
                .entries
                .sort_by_key(|e| (std::cmp::Reverse(e.priority), e.arrival)),
        }
    }

    /// Entries in current order.
    pub fn entries(&self) -> &[TaskEntry] {
        &self.entries
    }

    /// Mutable access to an entry by collective id.
    pub fn entry_mut(&mut self, coll_id: u64) -> Option<&mut TaskEntry> {
        self.entries.iter_mut().find(|e| e.coll_id == coll_id)
    }

    /// Collective ids in current order (snapshot, for iteration while the
    /// queue itself is mutated by execution).
    pub fn order(&self) -> Vec<u64> {
        self.entries.iter().map(|e| e.coll_id).collect()
    }

    /// Assign initial spin thresholds by queue position using `f(position)`.
    pub fn assign_initial_thresholds(&mut self, f: impl Fn(usize) -> u64) {
        for (pos, e) in self.entries.iter_mut().enumerate() {
            e.spin_threshold = f(pos);
        }
    }
}

/// One tenant's scheduling lane.
#[derive(Debug)]
struct TenantLane {
    /// Lane key (always [`TenantId::DEFAULT`] in flat mode).
    key: TenantId,
    state: Arc<TenantState>,
    queue: TaskQueue,
    /// Rotating selection offset for weighted-fair passes whose slice budget
    /// binds: the next pass resumes where this one stopped, so every queued
    /// collective is polled within ⌈len/budget⌉ passes.
    cursor: usize,
}

/// Per-tenant queue set with weighted-fair / strict-priority arbitration —
/// the **schedule** stage of the service-mode daemon.
///
/// With at most one active lane a pass is byte-for-byte the pre-service
/// schedule: reorder the flat queue, assign position-based spin thresholds,
/// return the full order. Arbitration only engages when tenants contend.
#[derive(Debug)]
pub struct TenantScheduler {
    /// Flat mode collapses every tenant into one lane and skips gauge
    /// accounting — the pre-refactor scheduling path
    /// (`DfcclConfig::flat_scheduling`).
    flat: bool,
    /// Lanes sorted by tenant id.
    lanes: Vec<TenantLane>,
    /// coll_id → lane key for O(1)-ish entry lookups.
    index: HashMap<u64, TenantId>,
}

impl TenantScheduler {
    /// An empty scheduler. `flat` selects the pre-service single-queue path.
    pub fn new(flat: bool) -> Self {
        TenantScheduler {
            flat,
            lanes: Vec::new(),
            index: HashMap::new(),
        }
    }

    /// Total queued collectives across all lanes.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether no collective is queued.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Whether `coll_id` is queued in any lane.
    pub fn contains(&self, coll_id: u64) -> bool {
        self.index.contains_key(&coll_id)
    }

    fn lane_pos(&mut self, key: TenantId, state: &Arc<TenantState>) -> usize {
        match self.lanes.binary_search_by_key(&key, |l| l.key) {
            Ok(pos) => pos,
            Err(pos) => {
                self.lanes.insert(
                    pos,
                    TenantLane {
                        key,
                        state: Arc::clone(state),
                        queue: TaskQueue::new(),
                        cursor: 0,
                    },
                );
                pos
            }
        }
    }

    fn lane_of(&mut self, coll_id: u64) -> Option<&mut TenantLane> {
        let key = *self.index.get(&coll_id)?;
        let pos = self.lanes.binary_search_by_key(&key, |l| l.key).ok()?;
        Some(&mut self.lanes[pos])
    }

    /// Queue `coll_id` on its tenant's lane with the configured initial spin
    /// threshold for its arrival position.
    pub fn push(
        &mut self,
        coll_id: u64,
        state: &Arc<TenantState>,
        priority: i32,
        initial_spin: u64,
    ) {
        let key = if self.flat {
            TenantId::DEFAULT
        } else {
            state.id()
        };
        let pos = self.lane_pos(key, state);
        self.lanes[pos].queue.push(coll_id, priority, initial_spin);
        self.index.insert(coll_id, key);
    }

    /// Remove `coll_id` from its lane (after completion or failure). Empty
    /// lanes are kept: tenants are few and long-lived, and keeping them
    /// preserves cursor state across bursts.
    pub fn remove(&mut self, coll_id: u64) -> Option<TaskEntry> {
        let entry = self.lane_of(coll_id)?.queue.remove(coll_id);
        self.index.remove(&coll_id);
        entry
    }

    /// Mutable access to a queued entry (spin-threshold persistence).
    pub fn entry_mut(&mut self, coll_id: u64) -> Option<&mut TaskEntry> {
        self.lane_of(coll_id)?.queue.entry_mut(coll_id)
    }

    /// The accounting state of the tenant owning `coll_id`. Meaningless in
    /// flat mode (the daemon skips per-tenant accounting there).
    pub fn tenant_state(&mut self, coll_id: u64) -> Option<Arc<TenantState>> {
        self.lane_of(coll_id).map(|lane| Arc::clone(&lane.state))
    }

    /// Per-lane queue depths in tenant-id order (test/diagnostic hook).
    pub fn lane_depths(&self) -> Vec<(TenantId, usize)> {
        self.lanes
            .iter()
            .map(|lane| (lane.key, lane.queue.len()))
            .collect()
    }

    /// Run one scheduling pass: reorder every lane by the ordering policy,
    /// update per-tenant depth gauges, arbitrate between contending lanes,
    /// and assign position-based initial spin thresholds to the scheduled
    /// entries. Returns the collective ids to execute, in order.
    pub fn schedule(
        &mut self,
        ordering: OrderingPolicy,
        arbitration: TenantArbitration,
        quantum: u32,
        spin: SpinPolicy,
    ) -> Vec<u64> {
        let mut active: Vec<usize> = Vec::new();
        for (pos, lane) in self.lanes.iter_mut().enumerate() {
            if !self.flat {
                lane.state.record_queue_depth(lane.queue.len() as u64);
            }
            if !lane.queue.is_empty() {
                lane.queue.reorder(ordering);
                active.push(pos);
            }
        }

        // Zero or one tenant with work: the pre-service flat schedule.
        if active.len() <= 1 {
            return match active.first() {
                Some(&pos) => {
                    let lane = &mut self.lanes[pos];
                    lane.queue
                        .assign_initial_thresholds(|p| spin.initial_threshold(p));
                    lane.queue.order()
                }
                None => Vec::new(),
            };
        }

        let order = match arbitration {
            TenantArbitration::StrictPriority => {
                // Heaviest lane first (id breaks ties); everything scheduled,
                // so liveness is trivial — ordering is the only privilege.
                let mut by_weight = active;
                by_weight.sort_by_key(|&pos| {
                    (Reverse(self.lanes[pos].state.weight()), self.lanes[pos].key)
                });
                let mut order = Vec::with_capacity(self.index.len());
                for pos in by_weight {
                    order.extend(self.lanes[pos].queue.order());
                }
                order
            }
            TenantArbitration::WeightedFair => {
                // Deficit round-robin: each lane is granted up to
                // weight × quantum slices this pass, chosen by the rotating
                // cursor over the lane's policy order, then the grants are
                // interleaved weight entries at a time.
                let quantum = quantum.max(1) as usize;
                let mut grants: Vec<(usize, Vec<u64>)> = Vec::with_capacity(active.len());
                for &pos in &active {
                    let lane = &mut self.lanes[pos];
                    let len = lane.queue.len();
                    let weight = lane.state.weight() as usize;
                    let budget = (weight * quantum).max(1).min(len);
                    let full = lane.queue.order();
                    if budget == len {
                        lane.cursor = 0;
                        grants.push((pos, full));
                    } else {
                        let start = lane.cursor % len;
                        let sel = (0..budget).map(|k| full[(start + k) % len]).collect();
                        lane.cursor = (start + budget) % len;
                        grants.push((pos, sel));
                    }
                }
                let total: usize = grants.iter().map(|(_, sel)| sel.len()).sum();
                let mut order = Vec::with_capacity(total);
                let mut taken = vec![0usize; grants.len()];
                while order.len() < total {
                    for (g, (pos, sel)) in grants.iter().enumerate() {
                        let weight = self.lanes[*pos].state.weight() as usize;
                        let take = weight.min(sel.len() - taken[g]);
                        order.extend_from_slice(&sel[taken[g]..taken[g] + take]);
                        taken[g] += take;
                    }
                }
                order
            }
        };

        // Spin thresholds follow the scheduled position across lanes, exactly
        // as they followed queue position before: the pass front gets the
        // largest threshold (Sec. 4.3), regardless of which tenant owns it.
        for (pos, coll_id) in order.iter().enumerate() {
            if let Some(entry) = self.entry_mut(*coll_id) {
                entry.spin_threshold = spin.initial_threshold(pos);
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tenant::{TenantQuota, TenantTable};

    #[test]
    fn push_and_remove_preserve_identity() {
        let mut q = TaskQueue::new();
        assert!(q.is_empty());
        q.push(10, 0, 0);
        q.push(11, 0, 0);
        assert_eq!(q.len(), 2);
        assert!(q.contains(10));
        let removed = q.remove(10).unwrap();
        assert_eq!(removed.coll_id, 10);
        assert!(!q.contains(10));
        assert!(q.remove(10).is_none());
    }

    #[test]
    fn push_carries_the_configured_initial_spin_threshold() {
        // Satellite: the initial threshold comes from the config's spin
        // policy at push time, not a silent 0.
        let spin = SpinPolicy::adaptive_default();
        let mut q = TaskQueue::new();
        q.push(1, 0, spin.initial_threshold(q.len()));
        q.push(2, 0, spin.initial_threshold(q.len()));
        let t: Vec<u64> = q.entries().iter().map(|e| e.spin_threshold).collect();
        assert_eq!(t, vec![100_000, 50_000]);
    }

    #[test]
    fn fifo_reorder_keeps_arrival_order() {
        let mut q = TaskQueue::new();
        q.push(3, 5, 0);
        q.push(1, 9, 0);
        q.push(2, 1, 0);
        q.reorder(OrderingPolicy::Fifo);
        assert_eq!(q.order(), vec![3, 1, 2]);
    }

    #[test]
    fn priority_reorder_sorts_by_priority_then_arrival() {
        // Pins the tie-break order: higher priority first; among equal
        // priorities, earlier arrival first.
        let mut q = TaskQueue::new();
        q.push(3, 5, 0);
        q.push(1, 9, 0);
        q.push(2, 9, 0);
        q.push(4, 1, 0);
        q.reorder(OrderingPolicy::PriorityBased);
        assert_eq!(q.order(), vec![1, 2, 3, 4]);
        let arrivals: Vec<u64> = q.entries().iter().map(|e| e.arrival).collect();
        assert_eq!(
            arrivals,
            vec![1, 2, 0, 3],
            "equal priorities keep arrival order"
        );
    }

    #[test]
    fn preempted_entry_keeps_its_position_under_fifo() {
        let mut q = TaskQueue::new();
        q.push(1, 0, 0);
        q.push(2, 0, 0);
        q.push(3, 0, 0);
        // Simulate completing 2 and adding 4; 1 and 3 keep relative order.
        q.remove(2);
        q.push(4, 0, 0);
        q.reorder(OrderingPolicy::Fifo);
        assert_eq!(q.order(), vec![1, 3, 4]);
    }

    #[test]
    fn initial_thresholds_follow_position() {
        let mut q = TaskQueue::new();
        q.push(1, 0, 0);
        q.push(2, 0, 0);
        q.push(3, 0, 0);
        q.assign_initial_thresholds(|pos| 100 >> pos);
        let t: Vec<u64> = q.entries().iter().map(|e| e.spin_threshold).collect();
        assert_eq!(t, vec![100, 50, 25]);
        q.entry_mut(2).unwrap().spin_threshold = 999;
        assert_eq!(q.entries()[1].spin_threshold, 999);
    }

    fn table() -> Arc<TenantTable> {
        TenantTable::new(TenantQuota::default())
    }

    fn sched_pass(s: &mut TenantScheduler, arb: TenantArbitration, quantum: u32) -> Vec<u64> {
        s.schedule(
            OrderingPolicy::Fifo,
            arb,
            quantum,
            SpinPolicy::naive_fixed(),
        )
    }

    #[test]
    fn single_lane_is_the_flat_passthrough() {
        let table = table();
        let spin = SpinPolicy::adaptive_default();
        let state = table.state(TenantId(4));
        let mut s = TenantScheduler::new(false);
        s.push(1, &state, 0, 0);
        s.push(2, &state, 5, 0);
        s.push(3, &state, 0, 0);
        let order = s.schedule(
            OrderingPolicy::PriorityBased,
            TenantArbitration::WeightedFair,
            1,
            spin,
        );
        // Exactly the flat queue's priority order with position thresholds.
        assert_eq!(order, vec![2, 1, 3]);
        assert_eq!(s.entry_mut(2).unwrap().spin_threshold, 100_000);
        assert_eq!(s.entry_mut(1).unwrap().spin_threshold, 50_000);
        assert_eq!(s.entry_mut(3).unwrap().spin_threshold, 25_000);
    }

    #[test]
    fn weighted_fair_grants_slices_by_weight() {
        let table = table();
        let heavy = table.state_for(&crate::tenant::TenantHandle {
            id: TenantId(1),
            quota: TenantQuota::default().with_weight(2),
        });
        let light = table.state(TenantId(2));
        let mut s = TenantScheduler::new(false);
        for id in 10..14 {
            s.push(id, &heavy, 0, 0);
        }
        for id in 20..24 {
            s.push(id, &light, 0, 0);
        }
        let order = sched_pass(&mut s, TenantArbitration::WeightedFair, 1);
        // Heavy budget 2, light budget 1, interleaved 2:1.
        assert_eq!(order, vec![10, 11, 20]);
        // Rotation: the next pass starts where this one stopped, so deferred
        // entries are polled within a bounded number of passes (liveness).
        let order = sched_pass(&mut s, TenantArbitration::WeightedFair, 1);
        assert_eq!(order, vec![12, 13, 21]);
        let order = sched_pass(&mut s, TenantArbitration::WeightedFair, 1);
        assert_eq!(order, vec![10, 11, 22]);
    }

    #[test]
    fn weighted_fair_schedules_everything_when_budgets_do_not_bind() {
        let table = table();
        let a = table.state(TenantId(1));
        let b = table.state(TenantId(2));
        let mut s = TenantScheduler::new(false);
        s.push(1, &a, 0, 0);
        s.push(2, &b, 0, 0);
        let order = sched_pass(&mut s, TenantArbitration::WeightedFair, 4);
        assert_eq!(order.len(), 2);
        assert!(order.contains(&1) && order.contains(&2));
    }

    #[test]
    fn strict_priority_orders_heavy_first_but_schedules_all() {
        let table = table();
        let heavy = table.state_for(&crate::tenant::TenantHandle {
            id: TenantId(9),
            quota: TenantQuota::default().with_weight(8),
        });
        let light = table.state(TenantId(1));
        let mut s = TenantScheduler::new(false);
        s.push(100, &light, 0, 0);
        s.push(200, &heavy, 0, 0);
        s.push(201, &heavy, 0, 0);
        let order = sched_pass(&mut s, TenantArbitration::StrictPriority, 1);
        assert_eq!(
            order,
            vec![200, 201, 100],
            "every entry scheduled, heavy lane first"
        );
    }

    #[test]
    fn flat_mode_collapses_tenants_into_one_lane() {
        let table = table();
        let a = table.state(TenantId(1));
        let b = table.state(TenantId(2));
        let mut s = TenantScheduler::new(true);
        s.push(1, &a, 0, 0);
        s.push(2, &b, 0, 0);
        s.push(3, &a, 0, 0);
        assert_eq!(s.lane_depths(), vec![(TenantId::DEFAULT, 3)]);
        let order = sched_pass(&mut s, TenantArbitration::WeightedFair, 1);
        assert_eq!(order, vec![1, 2, 3], "single flat queue in arrival order");
    }

    #[test]
    fn within_lane_priority_semantics_survive_arbitration() {
        let table = table();
        let a = table.state(TenantId(1));
        let b = table.state(TenantId(2));
        let mut s = TenantScheduler::new(false);
        s.push(10, &a, 1, 0);
        s.push(11, &a, 9, 0);
        s.push(20, &b, 0, 0);
        let order = s.schedule(
            OrderingPolicy::PriorityBased,
            TenantArbitration::WeightedFair,
            4,
            SpinPolicy::naive_fixed(),
        );
        let pos = |id: u64| order.iter().position(|&c| c == id).unwrap();
        assert!(
            pos(11) < pos(10),
            "priority order preserved within the lane"
        );
    }

    #[test]
    fn remove_updates_index_and_depths() {
        let table = table();
        let a = table.state(TenantId(1));
        let b = table.state(TenantId(2));
        let mut s = TenantScheduler::new(false);
        s.push(1, &a, 0, 7);
        s.push(2, &b, 0, 7);
        assert_eq!(s.len(), 2);
        let removed = s.remove(1).unwrap();
        assert_eq!(removed.spin_threshold, 7);
        assert!(!s.contains(1));
        assert_eq!(s.len(), 1);
        assert_eq!(s.lane_depths(), vec![(TenantId(1), 0), (TenantId(2), 1)]);
        assert_eq!(s.tenant_state(2).unwrap().id(), TenantId(2));
        assert!(s.tenant_state(1).is_none());
    }
}
