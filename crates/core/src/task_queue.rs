//! The daemon kernel's task queue (kept in shared memory on real hardware).
//!
//! Fetched SQEs become task entries. Under the FIFO ordering policy new
//! entries go to the back; under the priority-based policy the queue is kept
//! sorted by the user-specified priority (higher first), with arrival order
//! breaking ties. A preempted collective keeps its queue position (Sec. 4.3).

use crate::config::OrderingPolicy;

/// One entry of the task queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskEntry {
    /// The registered collective to execute.
    pub coll_id: u64,
    /// User-specified priority (higher runs earlier under the priority policy).
    pub priority: i32,
    /// Monotonic arrival index (fetch order from the SQ).
    pub arrival: u64,
    /// Current spin threshold assigned to this collective's primitives.
    pub spin_threshold: u64,
}

/// The per-daemon task queue.
#[derive(Debug, Default)]
pub struct TaskQueue {
    entries: Vec<TaskEntry>,
    next_arrival: u64,
}

impl TaskQueue {
    /// Create an empty queue.
    pub fn new() -> Self {
        TaskQueue::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether `coll_id` is already queued.
    pub fn contains(&self, coll_id: u64) -> bool {
        self.entries.iter().any(|e| e.coll_id == coll_id)
    }

    /// Append a new entry (FIFO position). Returns its arrival index.
    pub fn push(&mut self, coll_id: u64, priority: i32) -> u64 {
        let arrival = self.next_arrival;
        self.next_arrival += 1;
        self.entries.push(TaskEntry {
            coll_id,
            priority,
            arrival,
            spin_threshold: 0,
        });
        arrival
    }

    /// Remove the entry for `coll_id` (after its completion).
    pub fn remove(&mut self, coll_id: u64) -> Option<TaskEntry> {
        let idx = self.entries.iter().position(|e| e.coll_id == coll_id)?;
        Some(self.entries.remove(idx))
    }

    /// Re-order the queue according to the policy. FIFO keeps arrival order;
    /// the priority policy sorts by descending priority, then arrival.
    pub fn reorder(&mut self, policy: OrderingPolicy) {
        match policy {
            OrderingPolicy::Fifo => self.entries.sort_by_key(|e| e.arrival),
            OrderingPolicy::PriorityBased => self
                .entries
                .sort_by_key(|e| (std::cmp::Reverse(e.priority), e.arrival)),
        }
    }

    /// Entries in current order.
    pub fn entries(&self) -> &[TaskEntry] {
        &self.entries
    }

    /// Mutable access to an entry by collective id.
    pub fn entry_mut(&mut self, coll_id: u64) -> Option<&mut TaskEntry> {
        self.entries.iter_mut().find(|e| e.coll_id == coll_id)
    }

    /// Collective ids in current order (snapshot, for iteration while the
    /// queue itself is mutated by execution).
    pub fn order(&self) -> Vec<u64> {
        self.entries.iter().map(|e| e.coll_id).collect()
    }

    /// Assign initial spin thresholds by queue position using `f(position)`.
    pub fn assign_initial_thresholds(&mut self, f: impl Fn(usize) -> u64) {
        for (pos, e) in self.entries.iter_mut().enumerate() {
            e.spin_threshold = f(pos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_remove_preserve_identity() {
        let mut q = TaskQueue::new();
        assert!(q.is_empty());
        q.push(10, 0);
        q.push(11, 0);
        assert_eq!(q.len(), 2);
        assert!(q.contains(10));
        let removed = q.remove(10).unwrap();
        assert_eq!(removed.coll_id, 10);
        assert!(!q.contains(10));
        assert!(q.remove(10).is_none());
    }

    #[test]
    fn fifo_reorder_keeps_arrival_order() {
        let mut q = TaskQueue::new();
        q.push(3, 5);
        q.push(1, 9);
        q.push(2, 1);
        q.reorder(OrderingPolicy::Fifo);
        assert_eq!(q.order(), vec![3, 1, 2]);
    }

    #[test]
    fn priority_reorder_sorts_by_priority_then_arrival() {
        let mut q = TaskQueue::new();
        q.push(3, 5);
        q.push(1, 9);
        q.push(2, 9);
        q.push(4, 1);
        q.reorder(OrderingPolicy::PriorityBased);
        assert_eq!(q.order(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn preempted_entry_keeps_its_position_under_fifo() {
        let mut q = TaskQueue::new();
        q.push(1, 0);
        q.push(2, 0);
        q.push(3, 0);
        // Simulate completing 2 and adding 4; 1 and 3 keep relative order.
        q.remove(2);
        q.push(4, 0);
        q.reorder(OrderingPolicy::Fifo);
        assert_eq!(q.order(), vec![1, 3, 4]);
    }

    #[test]
    fn initial_thresholds_follow_position() {
        let mut q = TaskQueue::new();
        q.push(1, 0);
        q.push(2, 0);
        q.push(3, 0);
        q.assign_initial_thresholds(|pos| 100 >> pos);
        let t: Vec<u64> = q.entries().iter().map(|e| e.spin_threshold).collect();
        assert_eq!(t, vec![100, 50, 25]);
        q.entry_mut(2).unwrap().spin_threshold = 999;
        assert_eq!(q.entries()[1].spin_threshold, 999);
    }
}
