//! Collective contexts: what survives a preemption.
//!
//! The *static context* of a collective (descriptor, rank, primitive plan,
//! connectors) is fixed at registration time. The *dynamic context* changes as
//! the collective executes — the index of the next primitive to run and the
//! buffers of the current invocation — and is what must be saved when the
//! collective is preempted and reloaded when it is rescheduled (Sec. 4.2).
//!
//! The store models the paper's memory hierarchy: a small direct-mapped cache
//! of *active context slots* ("shared memory") in front of the *collective
//! context buffer* ("global memory"). Loading a context that is not in an
//! active slot charges the modelled load cost; saving charges the save cost,
//! and the *lazy-saving* optimisation skips the save when the collective made
//! no progress since it was loaded.

use std::collections::{HashMap, VecDeque};
use std::time::Duration;

use dfccl_collectives::executor::PendingSends;
use dfccl_collectives::DeviceBuffer;
use gpu_sim::busy_spin;
use parking_lot::Mutex;

/// Which graph replay an invocation belongs to, if any. Carried in the
/// dynamic context so the daemon can route the constituent's completion to
/// the graph's single completion accounting instead of emitting a per-node
/// CQE.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphTag {
    /// The graph's replay id (`GRAPH_ID_BASE | counter`).
    pub graph_id: u64,
    /// Which replay of the graph (its submission sequence number).
    pub run: u64,
    /// This invocation's node index within the graph.
    pub node: u32,
}

/// Dynamic context of one invocation of a collective.
#[derive(Debug, Clone)]
pub struct DynamicContext {
    /// Number of primitives completed so far. Under interpreted dispatch
    /// this doubles as the index of the next primitive of the plan to
    /// execute; under compiled dispatch the per-lane positions live in
    /// `lane_cursors` and this is their sum.
    pub next_step: usize,
    /// Per-lane cursors of the compiled program: `lane_cursors[l]` is the
    /// position of the next instruction to execute on lane `l`. Sized
    /// lazily on first schedule (the daemon knows the program, the invoker
    /// does not) and saved/restored across preemptions alongside the
    /// per-channel `PendingSend`s, so a resumed collective continues every
    /// lane exactly where it stalled.
    pub lane_cursors: Vec<u32>,
    /// Chunks staged by fused primitives while their send connectors were
    /// full, one slot per channel; a channel's slot must be flushed before
    /// the next primitive on that channel (or completion). Survives
    /// preemption like the rest of the context, covering every channel.
    pub pending_sends: PendingSends,
    /// Submission sequence number of this invocation.
    pub run_seq: u64,
    /// Send buffer of this invocation.
    pub send: DeviceBuffer,
    /// Recv buffer of this invocation.
    pub recv: DeviceBuffer,
    /// Whether the collective progressed since its context was last saved
    /// (drives the lazy-saving optimisation).
    pub progressed_since_save: bool,
    /// The graph replay this invocation belongs to, if it was expanded from
    /// a graph SQE rather than submitted individually.
    pub graph: Option<GraphTag>,
    /// Recovery-only ghost replay: this invocation re-executes a round that
    /// already completed on this rank (its CQE was published) so that ranks
    /// which had not finished the round can make progress. Completion of a
    /// silent replay publishes no CQE, runs no callback and releases no
    /// outstanding slot — it only moves data.
    pub silent_replay: bool,
}

impl DynamicContext {
    /// Fresh context for a new invocation.
    pub fn new(run_seq: u64, send: DeviceBuffer, recv: DeviceBuffer) -> Self {
        DynamicContext {
            next_step: 0,
            lane_cursors: Vec::new(),
            pending_sends: PendingSends::default(),
            run_seq,
            send,
            recv,
            progressed_since_save: false,
            graph: None,
            silent_replay: false,
        }
    }

    /// Size the lane cursors for a program with `lanes` lanes. A fresh
    /// context starts every lane at 0; a context restored from a preemption
    /// already carries its positions and is left untouched. Resizing clears
    /// and refills in place, so a recycled context's cursor storage keeps
    /// its capacity instead of reallocating.
    pub fn ensure_lanes(&mut self, lanes: usize) {
        if self.lane_cursors.len() != lanes {
            self.lane_cursors.clear();
            self.lane_cursors.resize(lanes, 0);
        }
    }
}

/// Outcome of a context checkout, reporting whether the modelled active-slot
/// cache hit (no load cost) or missed (load cost charged).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContextLoad {
    /// The context was already in an active slot.
    CacheHit,
    /// The context was loaded from the context buffer in global memory.
    CacheMiss,
}

#[derive(Default)]
struct PerCollective {
    /// Pending invocations in FIFO order; the front is the one currently
    /// being executed or next to execute.
    pending: VecDeque<DynamicContext>,
    /// Cleared lane-cursor and pending-send storage recycled from the last
    /// completed invocation: the next invocation of this collective refills
    /// it instead of allocating (the shapes recur, so the capacity fits).
    spare: Option<(Vec<u32>, PendingSends)>,
    /// The recovery coordinator has quarantined this collective: checkouts
    /// return `None` (the daemon sees an empty queue and drops the task)
    /// until [`ContextStore::end_recovery`] reinstalls the rolled-back
    /// invocations.
    recovering: bool,
    /// The front invocation is currently checked out into an execution
    /// slice. Recovery must wait for this to clear before it owns every
    /// pending context.
    in_slice: bool,
    /// Invocations of this collective completed on this rank (silent
    /// replays excluded). Ranks compare these counts during recovery to
    /// find who ran ahead.
    completed: u64,
    /// Buffers and identity of the last completed (non-silent) round, kept
    /// so a rank that ran ahead can ghost-replay it for stragglers.
    last_completed: Option<(u64, DeviceBuffer, DeviceBuffer, Option<GraphTag>)>,
}

/// The context store shared between daemon-kernel incarnations. It lives in
/// (modelled) global memory, so voluntary quits and restarts of the daemon do
/// not lose preempted collectives.
pub struct ContextStore {
    per_coll: Mutex<HashMap<u64, PerCollective>>,
    /// Direct-mapped active-slot cache: which collective id occupies each slot.
    active_slots: Mutex<Vec<Option<u64>>>,
    load_cost: Duration,
    save_cost: Duration,
}

impl ContextStore {
    /// Create a store with `active_slots` cache slots and the given modelled
    /// load/save costs (nanoseconds).
    pub fn new(active_slots: usize, load_ns: f64, save_ns: f64) -> Self {
        ContextStore {
            per_coll: Mutex::new(HashMap::new()),
            active_slots: Mutex::new(vec![None; active_slots.max(1)]),
            load_cost: Duration::from_nanos(load_ns.max(0.0) as u64),
            save_cost: Duration::from_nanos(save_ns.max(0.0) as u64),
        }
    }

    /// Queue a new invocation of `coll_id`. Returns the number of invocations
    /// now pending for that collective (including this one). A fresh context
    /// adopts the storage recycled from the collective's last completed
    /// invocation, so steady-state invocations allocate no cursor or
    /// staging-slot storage.
    pub fn enqueue_invocation(&self, coll_id: u64, mut ctx: DynamicContext) -> usize {
        let mut map = self.per_coll.lock();
        let entry = map.entry(coll_id).or_default();
        if let Some((cursors, pending_sends)) = entry.spare.take() {
            if ctx.lane_cursors.capacity() == 0 {
                ctx.lane_cursors = cursors;
            }
            if ctx.pending_sends.is_empty() {
                ctx.pending_sends = pending_sends;
            }
        }
        entry.pending.push_back(ctx);
        entry.pending.len()
    }

    /// Take the current (front) invocation of `coll_id` for execution.
    /// Charges the load cost unless the collective is in an active slot.
    /// Returns `None` while the collective is under recovery, so the daemon
    /// parks it until the coordinator reinstalls its contexts.
    pub fn checkout_current(&self, coll_id: u64) -> Option<(DynamicContext, ContextLoad)> {
        let ctx = {
            let mut map = self.per_coll.lock();
            let entry = map.get_mut(&coll_id)?;
            if entry.recovering {
                return None;
            }
            let ctx = entry.pending.pop_front()?;
            entry.in_slice = true;
            ctx
        };
        let load = {
            let mut slots = self.active_slots.lock();
            let idx = (coll_id as usize) % slots.len();
            if slots[idx] == Some(coll_id) {
                ContextLoad::CacheHit
            } else {
                slots[idx] = Some(coll_id);
                ContextLoad::CacheMiss
            }
        };
        if load == ContextLoad::CacheMiss {
            busy_spin(self.load_cost);
        }
        Some((ctx, load))
    }

    /// Put back a preempted, incomplete invocation. Charges the save cost only
    /// if the collective progressed since its last save (lazy saving). Returns
    /// `true` if the save cost was actually paid.
    pub fn checkin_incomplete(&self, coll_id: u64, mut ctx: DynamicContext) -> bool {
        let saved = ctx.progressed_since_save;
        if saved {
            busy_spin(self.save_cost);
            ctx.progressed_since_save = false;
        }
        let mut map = self.per_coll.lock();
        let entry = map.entry(coll_id).or_default();
        entry.pending.push_front(ctx);
        entry.in_slice = false;
        saved
    }

    /// Recycle a completed invocation's context: clear its lane-cursor and
    /// pending-send storage (capacity retained) and stash it for the next
    /// invocation of `coll_id` to adopt in
    /// [`ContextStore::enqueue_invocation`].
    pub fn recycle(&self, coll_id: u64, mut ctx: DynamicContext) {
        ctx.lane_cursors.clear();
        ctx.pending_sends.clear();
        let mut map = self.per_coll.lock();
        let entry = map.entry(coll_id).or_default();
        entry.in_slice = false;
        if !ctx.silent_replay {
            entry.completed += 1;
            entry.last_completed =
                Some((ctx.run_seq, ctx.send.clone(), ctx.recv.clone(), ctx.graph));
        }
        entry.spare = Some((ctx.lane_cursors, ctx.pending_sends));
    }

    /// Whether more invocations are pending for `coll_id`.
    pub fn has_pending(&self, coll_id: u64) -> bool {
        self.per_coll
            .lock()
            .get(&coll_id)
            .map(|e| !e.pending.is_empty())
            .unwrap_or(false)
    }

    /// Collective ids that currently have pending invocations, ordered by the
    /// submission sequence of their front invocation (oldest first). Used to
    /// rebuild the task queue when the daemon kernel restarts.
    pub fn incomplete_ids(&self) -> Vec<u64> {
        let map = self.per_coll.lock();
        let mut ids: Vec<(u64, u64)> = map
            .iter()
            .filter_map(|(&id, e)| e.pending.front().map(|c| (c.run_seq, id)))
            .collect();
        ids.sort_unstable();
        ids.into_iter().map(|(_, id)| id).collect()
    }

    /// Total pending invocations across all collectives.
    pub fn total_pending(&self) -> usize {
        self.per_coll.lock().values().map(|e| e.pending.len()).sum()
    }

    // --- Recovery protocol -------------------------------------------------
    //
    // The coordinator quarantines a stalled collective (`begin_recovery`),
    // waits for any in-flight execution slice to check its context back in,
    // drains what arrived meanwhile (`take_recovered`), rebuilds fresh
    // contexts (partially-reduced chunks cannot be resumed — they are
    // re-executed from the source buffers), and reinstalls them
    // (`end_recovery`). While `recovering` is set, `checkout_current`
    // returns `None`, so the daemon cannot race the rollback.

    /// Quarantine `coll_id` and drain its pending invocations. Subsequent
    /// checkouts return `None` until [`ContextStore::end_recovery`]. An
    /// invocation currently out in an execution slice is *not* included —
    /// poll [`ContextStore::in_slice`] and then [`ContextStore::take_recovered`]
    /// to collect it once the slice ends.
    pub fn begin_recovery(&self, coll_id: u64) -> Vec<DynamicContext> {
        let mut map = self.per_coll.lock();
        let entry = map.entry(coll_id).or_default();
        entry.recovering = true;
        entry.pending.drain(..).collect()
    }

    /// Whether `coll_id`'s front invocation is currently checked out into an
    /// execution slice (recovery must wait for it to return).
    pub fn in_slice(&self, coll_id: u64) -> bool {
        self.per_coll
            .lock()
            .get(&coll_id)
            .map(|e| e.in_slice)
            .unwrap_or(false)
    }

    /// Second drain during recovery: collects the context a mid-slice
    /// execution checked back in after [`ContextStore::begin_recovery`], plus
    /// any new invocations submitted meanwhile.
    pub fn take_recovered(&self, coll_id: u64) -> Vec<DynamicContext> {
        let mut map = self.per_coll.lock();
        match map.get_mut(&coll_id) {
            Some(entry) => entry.pending.drain(..).collect(),
            None => Vec::new(),
        }
    }

    /// Reinstall `contexts` (in order: front first) as `coll_id`'s pending
    /// queue and lift the quarantine. Invocations submitted after the last
    /// drain keep their place behind the reinstalled ones.
    pub fn end_recovery(&self, coll_id: u64, contexts: Vec<DynamicContext>) {
        let mut map = self.per_coll.lock();
        let entry = map.entry(coll_id).or_default();
        for ctx in contexts.into_iter().rev() {
            entry.pending.push_front(ctx);
        }
        entry.recovering = false;
    }

    /// Invocations of `coll_id` completed on this rank (silent replays
    /// excluded). Recovery compares these across ranks to find who ran
    /// ahead.
    pub fn completed_count(&self, coll_id: u64) -> u64 {
        self.per_coll
            .lock()
            .get(&coll_id)
            .map(|e| e.completed)
            .unwrap_or(0)
    }

    /// Identity and buffers of the last completed (non-silent) round of
    /// `coll_id`, for ghost replay on ranks that ran ahead.
    pub fn last_completed(
        &self,
        coll_id: u64,
    ) -> Option<(u64, DeviceBuffer, DeviceBuffer, Option<GraphTag>)> {
        self.per_coll.lock().get(&coll_id)?.last_completed.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(seq: u64) -> DynamicContext {
        DynamicContext::new(seq, DeviceBuffer::zeroed(4), DeviceBuffer::zeroed(4))
    }

    fn store() -> ContextStore {
        ContextStore::new(4, 0.0, 0.0)
    }

    #[test]
    fn enqueue_checkout_round_trip() {
        let s = store();
        assert_eq!(s.enqueue_invocation(1, ctx(0)), 1);
        assert_eq!(s.enqueue_invocation(1, ctx(1)), 2);
        let (c, _) = s.checkout_current(1).unwrap();
        assert_eq!(c.run_seq, 0);
        assert!(s.has_pending(1));
        let (c, _) = s.checkout_current(1).unwrap();
        assert_eq!(c.run_seq, 1);
        assert!(!s.has_pending(1));
        assert!(s.checkout_current(1).is_none());
    }

    #[test]
    fn checkin_restores_front_position() {
        let s = store();
        s.enqueue_invocation(1, ctx(0));
        s.enqueue_invocation(1, ctx(1));
        let (mut c, _) = s.checkout_current(1).unwrap();
        c.next_step = 5;
        c.progressed_since_save = true;
        assert!(s.checkin_incomplete(1, c));
        let (c, _) = s.checkout_current(1).unwrap();
        assert_eq!(c.run_seq, 0, "preempted invocation stays in front");
        assert_eq!(c.next_step, 5);
        assert!(!c.progressed_since_save, "flag reset after save");
    }

    #[test]
    fn lane_cursors_survive_checkin_and_resize_only_when_stale() {
        let s = store();
        s.enqueue_invocation(1, ctx(0));
        let (mut c, _) = s.checkout_current(1).unwrap();
        c.ensure_lanes(3);
        assert_eq!(c.lane_cursors, vec![0, 0, 0]);
        c.lane_cursors = vec![2, 0, 5];
        c.progressed_since_save = true;
        s.checkin_incomplete(1, c);
        let (mut c, _) = s.checkout_current(1).unwrap();
        assert_eq!(c.lane_cursors, vec![2, 0, 5], "cursors restored verbatim");
        // Re-ensuring the same lane count must not reset progress.
        c.ensure_lanes(3);
        assert_eq!(c.lane_cursors, vec![2, 0, 5]);
        // A different program shape resizes from scratch.
        c.ensure_lanes(2);
        assert_eq!(c.lane_cursors, vec![0, 0]);
    }

    #[test]
    fn ensure_lanes_resizes_in_place_without_losing_capacity() {
        let mut c = ctx(0);
        c.ensure_lanes(8);
        let cap = c.lane_cursors.capacity();
        c.lane_cursors[5] = 7;
        c.ensure_lanes(2);
        assert_eq!(c.lane_cursors, vec![0, 0], "stale cursors reset");
        assert!(c.lane_cursors.capacity() >= cap, "capacity retained");
        c.ensure_lanes(8);
        assert_eq!(c.lane_cursors, vec![0; 8], "refill starts lanes at zero");
    }

    #[test]
    fn recycled_storage_is_adopted_by_the_next_invocation() {
        let s = store();
        s.enqueue_invocation(1, ctx(0));
        let (mut c, _) = s.checkout_current(1).unwrap();
        c.ensure_lanes(3);
        let cap = c.lane_cursors.capacity();
        assert!(cap >= 3);
        s.recycle(1, c);
        s.enqueue_invocation(1, ctx(1));
        let (mut c, _) = s.checkout_current(1).unwrap();
        assert!(c.lane_cursors.is_empty(), "adopted storage arrives cleared");
        assert_eq!(c.lane_cursors.capacity(), cap, "allocation reused");
        c.ensure_lanes(3);
        assert_eq!(c.lane_cursors, vec![0, 0, 0]);
        assert!(c.pending_sends.is_empty());
    }

    #[test]
    fn lazy_saving_skips_unprogressed_contexts() {
        let s = store();
        s.enqueue_invocation(2, ctx(0));
        let (c, _) = s.checkout_current(2).unwrap();
        assert!(!s.checkin_incomplete(2, c), "no progress, no save cost");
    }

    #[test]
    fn cache_hits_after_first_load() {
        let s = store();
        s.enqueue_invocation(3, ctx(0));
        let (c, load) = s.checkout_current(3).unwrap();
        assert_eq!(load, ContextLoad::CacheMiss);
        s.checkin_incomplete(3, c);
        let (_, load) = s.checkout_current(3).unwrap();
        assert_eq!(load, ContextLoad::CacheHit);
    }

    #[test]
    fn direct_mapped_slots_conflict_on_collisions() {
        let s = ContextStore::new(2, 0.0, 0.0);
        // Collective ids 0 and 2 both map to slot 0.
        s.enqueue_invocation(0, ctx(0));
        s.enqueue_invocation(2, ctx(0));
        let (c0, l0) = s.checkout_current(0).unwrap();
        assert_eq!(l0, ContextLoad::CacheMiss);
        s.checkin_incomplete(0, c0);
        let (c2, l2) = s.checkout_current(2).unwrap();
        assert_eq!(l2, ContextLoad::CacheMiss, "conflicting id evicts the slot");
        s.checkin_incomplete(2, c2);
        let (_, l0_again) = s.checkout_current(0).unwrap();
        assert_eq!(l0_again, ContextLoad::CacheMiss, "evicted id misses again");
    }

    #[test]
    fn recovery_quarantines_drains_and_reinstalls() {
        let s = store();
        s.enqueue_invocation(1, ctx(0));
        s.enqueue_invocation(1, ctx(1));
        // One invocation is mid-slice when recovery begins.
        let (mid, _) = s.checkout_current(1).unwrap();
        assert!(s.in_slice(1));
        let drained = s.begin_recovery(1);
        assert_eq!(drained.len(), 1, "mid-slice context is not drained");
        assert_eq!(drained[0].run_seq, 1);
        // Quarantined: nothing can be checked out, but check-ins still land.
        assert!(s.checkout_current(1).is_none());
        s.checkin_incomplete(1, mid);
        assert!(!s.in_slice(1));
        let late = s.take_recovered(1);
        assert_eq!(late.len(), 1);
        assert_eq!(late[0].run_seq, 0);
        // Reinstall in submission order; quarantine lifts.
        s.end_recovery(1, vec![ctx(0), ctx(1)]);
        let (c, _) = s.checkout_current(1).unwrap();
        assert_eq!(c.run_seq, 0);
        let (c, _) = s.checkout_current(1).unwrap();
        assert_eq!(c.run_seq, 1);
    }

    #[test]
    fn completed_counts_skip_silent_replays() {
        let s = store();
        s.enqueue_invocation(1, ctx(7));
        let (c, _) = s.checkout_current(1).unwrap();
        s.recycle(1, c);
        assert_eq!(s.completed_count(1), 1);
        let (seq, _, _, graph) = s.last_completed(1).unwrap();
        assert_eq!(seq, 7);
        assert!(graph.is_none());
        // A ghost replay completes without advancing the count.
        let mut ghost = ctx(7);
        ghost.silent_replay = true;
        s.enqueue_invocation(1, ghost);
        let (c, _) = s.checkout_current(1).unwrap();
        assert!(c.silent_replay);
        s.recycle(1, c);
        assert_eq!(s.completed_count(1), 1, "silent replay not counted");
        assert!(!s.in_slice(1));
    }

    #[test]
    fn incomplete_ids_ordered_by_submission() {
        let s = store();
        s.enqueue_invocation(9, ctx(5));
        s.enqueue_invocation(4, ctx(2));
        s.enqueue_invocation(7, ctx(8));
        assert_eq!(s.incomplete_ids(), vec![4, 9, 7]);
        assert_eq!(s.total_pending(), 3);
    }
}
