//! Callback map and poller: how completion notifications reach the invoker.
//!
//! When a collective is invoked, the invoker records a `(collective id,
//! callback)` pair in the callback map (step ❷ of Fig. 4). The poller thread
//! monitors the CQ; when it finds a CQE it runs the callback tied to that
//! collective (steps ❻–❼), notifying the invoker in a user-defined way.
//! Because the same collective can be invoked repeatedly, callbacks are queued
//! per collective in FIFO order.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

/// A user-supplied completion callback.
pub type Callback = Box<dyn FnOnce() + Send + 'static>;

/// Token identifying one bound callback, for targeted rollback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BindToken(u64);

/// FIFO map from collective id to pending completion callbacks.
#[derive(Default)]
pub struct CallbackMap {
    inner: Mutex<HashMap<u64, VecDeque<(u64, Callback)>>>,
    next_token: AtomicU64,
}

impl CallbackMap {
    /// Create an empty map.
    pub fn new() -> Arc<Self> {
        Arc::new(CallbackMap::default())
    }

    /// Bind a callback to the next completion of `coll_id`. The returned
    /// token identifies this binding for [`CallbackMap::unbind`].
    pub fn bind(&self, coll_id: u64, cb: Callback) -> BindToken {
        let token = self.next_token.fetch_add(1, Ordering::Relaxed);
        self.inner
            .lock()
            .entry(coll_id)
            .or_default()
            .push_back((token, cb));
        BindToken(token)
    }

    /// Take the oldest pending callback for `coll_id`, if any.
    pub fn take(&self, coll_id: u64) -> Option<Callback> {
        let mut map = self.inner.lock();
        let queue = map.get_mut(&coll_id)?;
        let cb = queue.pop_front().map(|(_, cb)| cb);
        if queue.is_empty() {
            map.remove(&coll_id);
        }
        cb
    }

    /// Unbind exactly the callback `token` identifies — the rollback for a
    /// submission that failed right after binding. Targeting by token keeps
    /// concurrent submitters of the same collective id paired with their own
    /// callbacks: popping either end of the queue instead could steal another
    /// in-flight invocation's callback and mis-pair every later completion.
    pub fn unbind(&self, coll_id: u64, token: BindToken) -> Option<Callback> {
        let mut map = self.inner.lock();
        let queue = map.get_mut(&coll_id)?;
        let pos = queue.iter().position(|(t, _)| *t == token.0)?;
        let cb = queue.remove(pos).map(|(_, cb)| cb);
        if queue.is_empty() {
            map.remove(&coll_id);
        }
        cb
    }

    /// Number of callbacks currently pending across all collectives.
    pub fn pending(&self) -> usize {
        self.inner.lock().values().map(VecDeque::len).sum()
    }
}

/// A waitable completion handle, returned by the `run_*_awaitable` APIs.
/// Internally it is just a callback that flips a flag.
#[derive(Clone, Default)]
pub struct CompletionHandle {
    shared: Arc<(Mutex<u64>, Condvar)>,
}

impl CompletionHandle {
    /// Create a fresh handle with zero recorded completions.
    pub fn new() -> Self {
        CompletionHandle::default()
    }

    /// Produce the callback that marks one completion on this handle.
    pub fn completion_callback(&self) -> Callback {
        let shared = Arc::clone(&self.shared);
        Box::new(move || {
            let (count, cv) = &*shared;
            *count.lock() += 1;
            cv.notify_all();
        })
    }

    /// Number of completions recorded so far.
    pub fn completions(&self) -> u64 {
        *self.shared.0.lock()
    }

    /// Wait until at least `n` completions have been recorded.
    pub fn wait_for(&self, n: u64) {
        let (count, cv) = &*self.shared;
        let mut c = count.lock();
        while *c < n {
            cv.wait(&mut c);
        }
    }

    /// Wait until at least `n` completions have been recorded or `timeout`
    /// expires. Returns `true` if the target was reached.
    pub fn wait_for_timeout(&self, n: u64, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        let (count, cv) = &*self.shared;
        let mut c = count.lock();
        while *c < n {
            if cv.wait_until(&mut c, deadline).timed_out() {
                return *c >= n;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn callbacks_fire_in_fifo_order_per_collective() {
        let map = CallbackMap::new();
        let order = Arc::new(Mutex::new(Vec::new()));
        for i in 0..3 {
            let order = Arc::clone(&order);
            map.bind(7, Box::new(move || order.lock().push(i)));
        }
        assert_eq!(map.pending(), 3);
        for _ in 0..3 {
            (map.take(7).unwrap())();
        }
        assert!(map.take(7).is_none());
        assert_eq!(*order.lock(), vec![0, 1, 2]);
        assert_eq!(map.pending(), 0);
    }

    #[test]
    fn unbind_removes_exactly_the_tokened_callback() {
        // The submission-rollback path: invocations 0 and 2 are in flight
        // when invocation 1 fails to submit. The rollback must remove
        // invocation 1's callback only, whatever its queue position, so the
        // surviving invocations stay paired with their own callbacks.
        let map = CallbackMap::new();
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut tokens = Vec::new();
        for i in 0..3 {
            let order = Arc::clone(&order);
            tokens.push(map.bind(7, Box::new(move || order.lock().push(i))));
        }
        (map.unbind(7, tokens[1]).unwrap())();
        assert_eq!(*order.lock(), vec![1], "rollback must pop its own bind");
        // A second rollback with the same token finds nothing.
        assert!(map.unbind(7, tokens[1]).is_none());
        (map.take(7).unwrap())();
        (map.take(7).unwrap())();
        assert_eq!(*order.lock(), vec![1, 0, 2]);
        assert!(map.unbind(7, tokens[0]).is_none(), "already consumed");
        assert_eq!(map.pending(), 0);
    }

    #[test]
    fn callbacks_are_keyed_by_collective() {
        let map = CallbackMap::new();
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        map.bind(
            1,
            Box::new(move || {
                h.fetch_add(1, Ordering::SeqCst);
            }),
        );
        assert!(map.take(2).is_none());
        (map.take(1).unwrap())();
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn completion_handle_counts_and_waits() {
        let handle = CompletionHandle::new();
        assert_eq!(handle.completions(), 0);
        let cb = handle.completion_callback();
        cb();
        assert_eq!(handle.completions(), 1);
        assert!(handle.wait_for_timeout(1, Duration::from_millis(1)));
        assert!(!handle.wait_for_timeout(2, Duration::from_millis(10)));
    }

    #[test]
    fn completion_handle_wakes_waiting_thread() {
        let handle = CompletionHandle::new();
        let waiter = handle.clone();
        let t = std::thread::spawn(move || {
            waiter.wait_for(2);
            waiter.completions()
        });
        std::thread::sleep(Duration::from_millis(10));
        (handle.completion_callback())();
        (handle.completion_callback())();
        assert_eq!(t.join().unwrap(), 2);
    }
}
