//! The user-facing DFCCL API (Listing 1 of the paper).
//!
//! * [`DfcclDomain`] — cluster-level state shared by all ranks in this
//!   process: topology, link model, GPU device models and the communicator
//!   pool. In the real system this state is implicit in the machine; here it
//!   is explicit so tests and benchmarks can build arbitrary clusters.
//! * [`RankCtx`] — the per-GPU rank context created by [`dfccl_init`]. It owns
//!   the SQ/CQ pair, the callback map, the poller thread and the daemon-kernel
//!   controller for that GPU.
//! * [`dfccl_register_all_reduce`]-style functions register a collective once;
//!   [`dfccl_run_all_reduce`]-style functions invoke it repeatedly, each time
//!   with a callback that is run by the poller when the collective completes.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::thread::JoinHandle;
use std::time::Duration;

use dfccl_collectives::{
    plan_fusion, validate_buffers, AlgorithmKind, CollectiveDescriptor, CollectiveError, DataType,
    DeviceBuffer, GraphOp, PlanCache, RecordedCollective, ReduceOp, FUSED_COLL_ID_BASE,
};
use dfccl_transport::{
    Communicator, CommunicatorPool, EdgeSample, FaultInjector, LinkHealth, LinkModel, Topology,
    TransportError,
};
use gpu_sim::{GpuDevice, GpuId, GpuSpec, MemoryUsage, SyncKind};
use parking_lot::Mutex;

use crate::callback::{Callback, CallbackMap, CompletionHandle};
use crate::config::DfcclConfig;
use crate::cq::{build_cq, CqKind};
use crate::daemon::{
    run_poller, CapturedGraph, DaemonController, DaemonShared, GraphNode, RegisteredCollective,
    GRAPH_ID_BASE,
};
use crate::recovery::RetryPolicy;
use crate::sq::{Sqe, SubmissionQueue};
use crate::stats::{CollectiveStats, DaemonStatsSnapshot, TenantStats};
use crate::telemetry::{TelemetryEventKind, TelemetrySnapshot};
use crate::tenant::{AdmissionError, TenantHandle, TenantId, TenantQuota};

/// Errors returned by the DFCCL API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DfcclError {
    /// The collective id was not registered on this rank.
    NotRegistered(u64),
    /// The collective id was already registered on this rank.
    AlreadyRegistered(u64),
    /// The GPU passed to `dfccl_init` is not part of the domain topology.
    UnknownGpu(GpuId),
    /// This rank's GPU is not in the collective's device set.
    RankNotInDeviceSet { gpu: GpuId, coll_id: u64 },
    /// Two ranks registered the same collective id with different device sets.
    DeviceSetMismatch(u64),
    /// The submission queue is full.
    SubmissionQueueFull,
    /// Typed per-tenant admission backpressure (service mode): the tenant is
    /// at a quota. [`AdmissionError::is_retryable`] distinguishes
    /// backpressure that clears as completions drain (`AtQuota`) from states
    /// needing operator action. Distinct from
    /// [`DfcclError::SubmissionQueueFull`], the rank-wide SQ signal.
    Admission(AdmissionError),
    /// The rank context has been destroyed.
    Destroyed,
    /// The collective id has one of the top two bits set — that space is
    /// reserved for graph replay ids and capture-generated fused collectives.
    ReservedCollectiveId(u64),
    /// A graph capture ended with no recorded collectives.
    EmptyGraph,
    /// The graph already has a replay in flight; its staging and recv buffers
    /// are fixed addresses, so replays of one graph must not overlap.
    GraphReplayInFlight(u64),
    /// The graph was captured on a different rank; its nodes hold that rank's
    /// connectors and cannot be replayed here.
    GraphForeignRank { gpu: GpuId, graph_id: u64 },
    /// A collective-level validation error.
    Collective(CollectiveError),
    /// A transport-level error.
    Transport(TransportError),
    /// The GPU was removed from the domain's elastic membership
    /// ([`DfcclDomain::remove_rank`]); ranks cannot be initialised on it and
    /// device sets cannot include it until [`DfcclDomain::add_rank`].
    NotMember(GpuId),
    /// The GPU is already a member of the domain.
    AlreadyMember(GpuId),
    /// The GPU cannot be removed while `coll_id` (a collective or an
    /// in-flight graph replay touching it) still has work pending; quiesce
    /// the domain between iterations and retry.
    MembershipBusy {
        /// The GPU whose removal was refused.
        gpu: GpuId,
        /// The collective or graph with in-flight work.
        coll_id: u64,
    },
}

impl std::fmt::Display for DfcclError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DfcclError::NotRegistered(id) => write!(f, "collective {id} is not registered"),
            DfcclError::AlreadyRegistered(id) => write!(f, "collective {id} is already registered"),
            DfcclError::UnknownGpu(gpu) => write!(f, "{gpu} is not part of the domain topology"),
            DfcclError::RankNotInDeviceSet { gpu, coll_id } => {
                write!(f, "{gpu} is not in the device set of collective {coll_id}")
            }
            DfcclError::DeviceSetMismatch(id) => {
                write!(
                    f,
                    "collective {id} was registered with a different device set elsewhere"
                )
            }
            DfcclError::SubmissionQueueFull => write!(f, "submission queue is full"),
            DfcclError::Admission(e) => write!(f, "{e}"),
            DfcclError::Destroyed => write!(f, "rank context has been destroyed"),
            DfcclError::ReservedCollectiveId(id) => {
                write!(f, "collective id {id:#x} lies in the reserved graph space")
            }
            DfcclError::EmptyGraph => write!(f, "graph capture recorded no collectives"),
            DfcclError::GraphReplayInFlight(id) => {
                write!(f, "graph {id:#x} already has a replay in flight")
            }
            DfcclError::GraphForeignRank { gpu, graph_id } => {
                write!(f, "graph {graph_id:#x} was not captured on {gpu}")
            }
            DfcclError::Collective(e) => write!(f, "{e}"),
            DfcclError::Transport(e) => write!(f, "{e}"),
            DfcclError::NotMember(gpu) => {
                write!(f, "{gpu} was removed from the domain membership")
            }
            DfcclError::AlreadyMember(gpu) => {
                write!(f, "{gpu} is already a member of the domain")
            }
            DfcclError::MembershipBusy { gpu, coll_id } => {
                write!(
                    f,
                    "{gpu} cannot be removed: collective {coll_id} has work in flight"
                )
            }
        }
    }
}

impl DfcclError {
    /// Whether retrying the same call later can succeed without operator
    /// action: rank-wide SQ backpressure and per-tenant
    /// [`AdmissionError::AtQuota`] both clear as completions drain.
    /// [`RankCtx::run_with_retry`] keys off this.
    pub fn is_retryable(&self) -> bool {
        match self {
            DfcclError::SubmissionQueueFull => true,
            DfcclError::Admission(e) => e.is_retryable(),
            _ => false,
        }
    }
}

impl std::error::Error for DfcclError {}

impl From<CollectiveError> for DfcclError {
    fn from(e: CollectiveError) -> Self {
        DfcclError::Collective(e)
    }
}

impl From<TransportError> for DfcclError {
    fn from(e: TransportError) -> Self {
        DfcclError::Transport(e)
    }
}

impl From<AdmissionError> for DfcclError {
    fn from(e: AdmissionError) -> Self {
        DfcclError::Admission(e)
    }
}

/// Snapshot of the domain plan cache's counters, as reported by
/// [`DfcclDomain::cache_stats`] and surfaced in the registration benchmark
/// panel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups that found an already-compiled plan.
    pub hits: u64,
    /// Lookups that had to build and compile a plan.
    pub misses: u64,
    /// Distinct (shape, rank) plans currently cached.
    pub size: usize,
}

/// Cluster-level state shared by every rank created in this process.
pub struct DfcclDomain {
    topology: Arc<Topology>,
    #[allow(dead_code)]
    link_model: Arc<LinkModel>,
    pool: Arc<CommunicatorPool>,
    devices: HashMap<GpuId, Arc<GpuDevice>>,
    config: DfcclConfig,
    communicators: Mutex<HashMap<u64, Arc<Communicator>>>,
    /// Memoized plan building + compilation, keyed by collective shape.
    /// Repeat registrations of an identical shape (per-layer collectives,
    /// re-registration after teardown) share one `Arc<Plan>` and one
    /// `Arc<CompiledProgram>` and skip plan construction entirely. Safe to
    /// scope to the domain because every cache input besides the key —
    /// topology, chunk granularity — is fixed for the domain's lifetime.
    plan_cache: PlanCache,
    /// Tenant handles minted by this domain: id → quota. Consulted when a
    /// handle is presented at registration time, so a handle forged for (or
    /// minted by) another domain is rejected with `UnknownTenant` instead of
    /// silently creating accounting state.
    tenants: Mutex<HashMap<TenantId, TenantQuota>>,
    next_tenant_id: AtomicU64,
    /// Elastic membership: the GPUs ranks may currently be initialised on
    /// and device sets may currently include. Starts as the full topology;
    /// [`DfcclDomain::remove_rank`] / [`DfcclDomain::add_rank`] shrink and
    /// grow it between iterations (the topology itself never changes — a
    /// removed GPU's links stay modelled, they are just not planned over).
    membership: Mutex<HashSet<GpuId>>,
    /// Weak handles to every rank's daemon-shared state, so membership
    /// changes can sweep registrations and captured graphs across live
    /// ranks without the domain keeping dead ranks alive.
    rank_shareds: Mutex<Vec<(GpuId, Weak<DaemonShared>)>>,
}

impl DfcclDomain {
    /// Build a domain over an arbitrary topology, link model and GPU spec.
    pub fn new(
        topology: Topology,
        link_model: LinkModel,
        gpu_spec: GpuSpec,
        config: DfcclConfig,
    ) -> Arc<Self> {
        let topology = Arc::new(topology);
        let link_model = Arc::new(link_model);
        let pool = CommunicatorPool::new(
            Arc::clone(&topology),
            Arc::clone(&link_model),
            config.connector_capacity,
        );
        let devices = topology
            .gpus()
            .into_iter()
            .map(|g| (g, GpuDevice::new(g, gpu_spec.clone())))
            .collect();
        let membership = topology.gpus().into_iter().collect();
        Arc::new(DfcclDomain {
            topology,
            link_model,
            pool,
            devices,
            config,
            communicators: Mutex::new(HashMap::new()),
            plan_cache: PlanCache::new(),
            tenants: Mutex::new(HashMap::new()),
            next_tenant_id: AtomicU64::new(1),
            membership: Mutex::new(membership),
            rank_shareds: Mutex::new(Vec::new()),
        })
    }

    /// A flat `n`-GPU domain with zero-cost links — the fastest configuration
    /// for correctness tests and examples.
    pub fn flat_for_testing(n: usize) -> Arc<Self> {
        DfcclDomain::new(
            Topology::flat(n),
            LinkModel::zero_cost(),
            GpuSpec::rtx_3090(),
            DfcclConfig::for_testing(),
        )
    }

    /// The Table 2 single eight-GPU server with the modelled link costs.
    pub fn single_server(config: DfcclConfig) -> Arc<Self> {
        DfcclDomain::new(
            Topology::single_server(),
            LinkModel::table2_testbed(),
            GpuSpec::rtx_3090(),
            config,
        )
    }

    /// The configuration in effect.
    pub fn config(&self) -> &DfcclConfig {
        &self.config
    }

    /// The topology of the domain.
    pub fn topology(&self) -> &Arc<Topology> {
        &self.topology
    }

    /// The device model for `gpu`, if it exists in the topology.
    pub fn device(&self, gpu: GpuId) -> Option<Arc<GpuDevice>> {
        self.devices.get(&gpu).cloned()
    }

    /// The domain's plan cache (hit/miss counters are exposed for tests and
    /// the registration benchmarks).
    pub fn plan_cache(&self) -> &PlanCache {
        &self.plan_cache
    }

    /// Hit/miss/size counters of the domain plan cache, in one consistent-ish
    /// snapshot (the counters are independent atomics, so a concurrent
    /// registration may skew them by one — fine for benchmarks and tests).
    pub fn cache_stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.plan_cache.hits(),
            misses: self.plan_cache.misses(),
            size: self.plan_cache.len(),
        }
    }

    /// Mint a tenant handle with `quota`. Collectives registered through
    /// [`RankCtx::register_for`] with this handle are admitted, scheduled and
    /// accounted under it on every rank of the domain. Ids are unique within
    /// the domain; the implicit default tenant (`TenantId::DEFAULT`) carries
    /// the domain-wide `DfcclConfig::tenant_quota` and is what plain
    /// [`RankCtx::register`] uses.
    pub fn tenant(&self, quota: TenantQuota) -> TenantHandle {
        let id = TenantId(self.next_tenant_id.fetch_add(1, Ordering::Relaxed) as u32);
        self.tenants.lock().insert(id, quota);
        TenantHandle { id, quota }
    }

    /// The implicit tenant that un-tenanted registrations run under, carrying
    /// the domain-wide quota from the config.
    pub fn default_tenant(&self) -> TenantHandle {
        TenantHandle {
            id: TenantId::DEFAULT,
            quota: self.config.tenant_quota,
        }
    }

    fn tenant_quota(&self, id: TenantId) -> Option<TenantQuota> {
        if id == TenantId::DEFAULT {
            return Some(self.config.tenant_quota);
        }
        self.tenants.lock().get(&id).copied()
    }

    /// The domain's fault injector: every connector of every communicator the
    /// domain allocates consults it, so scripting an edge here affects all
    /// collectives crossing that edge.
    pub fn fault_injector(&self) -> Arc<FaultInjector> {
        Arc::clone(self.pool.fault_injector())
    }

    /// The domain's link-health map: edges quarantined here are avoided by
    /// the algorithm selector and the cost model, force plan-cache misses
    /// (the health generation is part of the plan key) and are rerouted in
    /// the connector mesh. Healthy domains never mutate it, so the fast
    /// paths stay branch-predictable.
    pub fn link_health(&self) -> Arc<LinkHealth> {
        Arc::clone(self.pool.link_health())
    }

    /// The GPUs currently in the elastic membership, sorted.
    pub fn members(&self) -> Vec<GpuId> {
        let mut members: Vec<GpuId> = self.membership.lock().iter().copied().collect();
        members.sort();
        members
    }

    /// Reject device sets that reach outside the current membership.
    fn require_members(&self, devices: &[GpuId]) -> Result<(), DfcclError> {
        let membership = self.membership.lock();
        match devices.iter().find(|d| !membership.contains(d)) {
            Some(&gone) => Err(DfcclError::NotMember(gone)),
            None => Ok(()),
        }
    }

    /// Shrink the elastic membership: remove `gpu` from the domain between
    /// iterations. Refused with [`DfcclError::MembershipBusy`] while any
    /// collective or in-flight graph replay touching the GPU still has work
    /// pending (quiesce first). On success, every registration and captured
    /// graph whose device set includes the GPU is dropped on every live rank
    /// (their tenants' residency is released), intersecting plan-cache
    /// shapes are invalidated, and idle pooled communicators touching the
    /// GPU are evicted. Returns the number of registrations dropped.
    pub fn remove_rank(&self, gpu: GpuId) -> Result<usize, DfcclError> {
        if !self.topology.contains(gpu) {
            return Err(DfcclError::UnknownGpu(gpu));
        }
        if !self.membership.lock().contains(&gpu) {
            return Err(DfcclError::NotMember(gpu));
        }
        let shareds: Vec<Arc<DaemonShared>> = {
            let mut ranks = self.rank_shareds.lock();
            ranks.retain(|(_, weak)| weak.strong_count() > 0);
            ranks
                .iter()
                .filter_map(|(_, weak)| weak.upgrade())
                .collect()
        };
        // Validate quiescence first so a refused removal leaves no partial
        // state behind.
        for shared in &shareds {
            for (&coll_id, reg) in shared.registered.read().iter() {
                let busy =
                    shared.contexts.has_pending(coll_id) || shared.contexts.in_slice(coll_id);
                if reg.desc.devices.contains(&gpu) && busy {
                    return Err(DfcclError::MembershipBusy { gpu, coll_id });
                }
            }
            for graph in shared.graphs.read().values() {
                let touches = graph
                    .nodes
                    .iter()
                    .any(|n| n.reg.desc.devices.contains(&gpu));
                if touches && graph.in_flight.load(Ordering::Acquire) {
                    return Err(DfcclError::MembershipBusy {
                        gpu,
                        coll_id: graph.graph_id,
                    });
                }
            }
        }
        let mut removed = 0;
        for shared in &shareds {
            let mut dropped: Vec<TenantId> = Vec::new();
            shared.registered.write().retain(|_, reg| {
                if reg.desc.devices.contains(&gpu) {
                    dropped.push(reg.tenant);
                    false
                } else {
                    true
                }
            });
            if !dropped.is_empty() {
                if !self.config.flat_scheduling {
                    for tenant in &dropped {
                        shared.tenants.state(*tenant).on_unregister();
                    }
                }
                shared.bump_registry_generation();
                removed += dropped.len();
            }
            // Captured graphs whose device sets intersect the change hold
            // pre-resolved registrations; drop them so a later capture
            // rebuilds against the shrunk domain.
            shared
                .graphs
                .write()
                .retain(|_, g| !g.nodes.iter().any(|n| n.reg.desc.devices.contains(&gpu)));
        }
        self.plan_cache.invalidate_device(gpu);
        self.pool.evict_device(gpu);
        self.communicators
            .lock()
            .retain(|_, comm| !comm.devices().contains(&gpu));
        self.membership.lock().remove(&gpu);
        Ok(removed)
    }

    /// Grow the elastic membership back: re-admit `gpu` (which must be part
    /// of the topology). Communicator meshes and plans over the restored
    /// GPU are rebuilt lazily at the next registration.
    pub fn add_rank(&self, gpu: GpuId) -> Result<(), DfcclError> {
        if !self.topology.contains(gpu) {
            return Err(DfcclError::UnknownGpu(gpu));
        }
        if !self.membership.lock().insert(gpu) {
            return Err(DfcclError::AlreadyMember(gpu));
        }
        Ok(())
    }

    /// Per-edge progress samples over every communicator the domain has
    /// allocated, stamped with the owning collective id and sorted by
    /// `(coll_id, edge)` — the probe fed to the failure-aware watchdog.
    pub fn edge_samples(&self) -> Vec<EdgeSample> {
        let comms = self.communicators.lock();
        let mut samples = Vec::new();
        for (&coll_id, comm) in comms.iter() {
            for mut s in comm.edge_samples() {
                s.coll_id = Some(coll_id);
                samples.push(s);
            }
        }
        drop(comms);
        samples.sort_by_key(|a| (a.coll_id, a.edge));
        samples
    }

    /// Get (or create) the communicator backing collective `coll_id` over
    /// `devices`. All ranks registering the same id must pass the same ordered
    /// device set.
    fn communicator_for(
        &self,
        coll_id: u64,
        devices: &[GpuId],
    ) -> Result<Arc<Communicator>, DfcclError> {
        let mut comms = self.communicators.lock();
        if let Some(existing) = comms.get(&coll_id) {
            if existing.devices() != devices {
                return Err(DfcclError::DeviceSetMismatch(coll_id));
            }
            return Ok(Arc::clone(existing));
        }
        let comm = self.pool.allocate(devices)?;
        comms.insert(coll_id, Arc::clone(&comm));
        Ok(comm)
    }

    /// Initialise a rank context for `gpu` (the `dfcclInit` call).
    pub fn init_rank(self: &Arc<Self>, gpu: GpuId) -> Result<RankCtx, DfcclError> {
        let device = self.device(gpu).ok_or(DfcclError::UnknownGpu(gpu))?;
        if !self.membership.lock().contains(&gpu) {
            return Err(DfcclError::NotMember(gpu));
        }
        let config = self.config.clone();
        let sq = Arc::new(SubmissionQueue::with_costs(
            config.sq_capacity,
            1,
            config.host_costs,
        ));
        let cq: Arc<CqKind> = Arc::new(build_cq(
            config.cq_variant,
            config.cq_capacity,
            config.host_costs,
        ));
        let callbacks = CallbackMap::new();
        let shared = DaemonShared::new(
            gpu,
            Arc::clone(&device),
            config.clone(),
            Arc::clone(&sq),
            cq,
            Arc::clone(&callbacks),
        );
        // Account for the daemon kernel's global-memory footprint (collective
        // context buffer per block, plus the completion counters and other
        // shared bookkeeping — 11 KB in the paper).
        let context_buffer = device
            .alloc_global(
                config.context_buffer_per_block * config.daemon_blocks as usize + 11 * 1024,
            )
            .ok();
        // Track the rank for elastic-membership sweeps (pruning entries
        // whose shared state is gone keeps the registry bounded).
        {
            let mut ranks = self.rank_shareds.lock();
            ranks.retain(|(_, weak)| weak.strong_count() > 0);
            ranks.push((gpu, Arc::downgrade(&shared)));
        }
        let controller = DaemonController::new(Arc::clone(&shared));
        let poller_stop = Arc::new(AtomicBool::new(false));
        let poller = {
            let shared = Arc::clone(&shared);
            let controller = Arc::clone(&controller);
            let stop = Arc::clone(&poller_stop);
            std::thread::Builder::new()
                .name(format!("dfccl-poller-{gpu}"))
                .spawn(move || run_poller(shared, controller, stop))
                .expect("failed to spawn poller thread")
        };
        Ok(RankCtx {
            domain: Arc::clone(self),
            gpu,
            device,
            shared,
            controller,
            callbacks,
            sq,
            poller: Mutex::new(Some(poller)),
            poller_stop,
            next_seq: AtomicU64::new(0),
            next_graph_id: AtomicU64::new(1),
            destroyed: AtomicBool::new(false),
            _context_buffer: context_buffer,
        })
    }
}

/// The per-GPU rank context (`rankCtx_t` in Listing 1).
pub struct RankCtx {
    domain: Arc<DfcclDomain>,
    gpu: GpuId,
    device: Arc<GpuDevice>,
    shared: Arc<DaemonShared>,
    controller: Arc<DaemonController>,
    callbacks: Arc<CallbackMap>,
    sq: Arc<SubmissionQueue>,
    poller: Mutex<Option<JoinHandle<()>>>,
    poller_stop: Arc<AtomicBool>,
    next_seq: AtomicU64,
    next_graph_id: AtomicU64,
    destroyed: AtomicBool,
    _context_buffer: Option<gpu_sim::device::GlobalAllocation>,
}

impl RankCtx {
    /// The GPU this rank runs on.
    pub fn gpu(&self) -> GpuId {
        self.gpu
    }

    /// The domain this rank belongs to.
    pub fn domain(&self) -> &Arc<DfcclDomain> {
        &self.domain
    }

    /// The device model of this rank's GPU.
    pub fn device(&self) -> &Arc<GpuDevice> {
        &self.device
    }

    fn check_alive(&self) -> Result<(), DfcclError> {
        if self.destroyed.load(Ordering::Acquire) {
            Err(DfcclError::Destroyed)
        } else {
            Ok(())
        }
    }

    /// Register a collective described by `desc` under `coll_id`
    /// (the `dfcclRegister*` family). Registration may also happen during
    /// runtime, after other collectives have already run. Ids with either of
    /// the top two bits set are reserved for graph replays and
    /// capture-generated fused collectives and are rejected here.
    pub fn register(&self, coll_id: u64, desc: CollectiveDescriptor) -> Result<(), DfcclError> {
        if coll_id & (GRAPH_ID_BASE | FUSED_COLL_ID_BASE) != 0 {
            return Err(DfcclError::ReservedCollectiveId(coll_id));
        }
        self.register_resolved(coll_id, desc, TenantId::DEFAULT)
            .map(|_| ())
    }

    /// Register a collective under a tenant minted by
    /// [`DfcclDomain::tenant`]. The collective counts against the tenant's
    /// residency budget now and against its outstanding quota on every
    /// [`RankCtx::run`], and is scheduled in the tenant's own lane by the
    /// service-mode arbiter. A handle not minted by this domain is rejected
    /// with [`AdmissionError::UnknownTenant`].
    pub fn register_for(
        &self,
        tenant: &TenantHandle,
        coll_id: u64,
        desc: CollectiveDescriptor,
    ) -> Result<(), DfcclError> {
        if coll_id & (GRAPH_ID_BASE | FUSED_COLL_ID_BASE) != 0 {
            return Err(DfcclError::ReservedCollectiveId(coll_id));
        }
        match self.domain.tenant_quota(tenant.id()) {
            Some(quota) if quota == tenant.quota() => {}
            _ => {
                return Err(DfcclError::Admission(AdmissionError::UnknownTenant(
                    tenant.id(),
                )))
            }
        }
        // Materialise the rank-side accounting state with the handle's quota
        // before admission, so the first registration is checked against it.
        self.shared.tenants.state_for(tenant);
        self.register_resolved(coll_id, desc, tenant.id())
            .map(|_| ())
    }

    /// The shared registration path: validates, compiles (through the plan
    /// cache), binds connectors and publishes the registration, returning the
    /// resolved [`RegisteredCollective`]. Used by both [`RankCtx::register`]
    /// and the capture path, which registers fused collectives in the
    /// reserved id space.
    fn register_resolved(
        &self,
        coll_id: u64,
        desc: CollectiveDescriptor,
        tenant: TenantId,
    ) -> Result<Arc<RegisteredCollective>, DfcclError> {
        self.check_alive()?;
        desc.validate()?;
        self.domain.require_members(&desc.devices)?;
        if self.shared.registered.read().contains_key(&coll_id) {
            return Err(DfcclError::AlreadyRegistered(coll_id));
        }
        let rank = desc.devices.iter().position(|&d| d == self.gpu).ok_or(
            DfcclError::RankNotInDeviceSet {
                gpu: self.gpu,
                coll_id,
            },
        )?;
        // Select the algorithm (payload/topology policy, overridable per
        // collective and globally), build + validate + compile the rank's
        // plan — all through the domain's plan cache, so a repeat
        // registration of an identical shape reuses the shared plan and
        // program without building anything — then materialise exactly the
        // connectors the plan addresses out of the mesh and bind the
        // program's connector indices to them.
        let selector = self.domain.config.algorithm_selector();
        let cached = self.domain.plan_cache.get_or_compile(
            &selector,
            &desc,
            rank,
            self.domain.config.chunk_elems,
            self.domain.topology(),
            self.domain.pool.link_health(),
        )?;
        if cached.degraded {
            self.shared.telemetry.record_plan_degraded();
        }
        let communicator = self.domain.communicator_for(coll_id, &desc.devices)?;
        let channels =
            communicator.channels(rank, cached.plan.send_edges(), cached.plan.recv_edges())?;
        let table = cached.program.bind(&channels)?;
        // Admission: the residency check is the last fallible step, so a
        // rejected registration leaves no partial state behind (connectors
        // bound above are shared, communicator allocation is idempotent).
        if !self.domain.config.flat_scheduling {
            self.shared.tenants.state(tenant).try_admit_register()?;
        }
        let reg = Arc::new(RegisteredCollective {
            coll_id,
            desc,
            rank,
            tenant,
            communicator,
            channels,
            plan: cached.plan,
            program: cached.program,
            table,
        });
        self.shared
            .registered
            .write()
            .insert(coll_id, Arc::clone(&reg));
        // Invalidate the daemon's lock-free registry cache.
        self.shared.bump_registry_generation();
        Ok(reg)
    }

    /// Resolve (registering on first use) the fused collective a capture
    /// produced. Fused ids are deterministic functions of their first
    /// constituent, so a later capture of the same step finds the id already
    /// registered: reuse it when the descriptor matches, reject the capture
    /// when it does not (same leading collective fused into a different
    /// bucket — replaying both graphs would disagree about the wire format).
    fn resolve_fused(
        &self,
        coll_id: u64,
        desc: &CollectiveDescriptor,
        tenant: TenantId,
    ) -> Result<Arc<RegisteredCollective>, DfcclError> {
        if let Some(existing) = self.shared.registered.read().get(&coll_id) {
            if existing.desc == *desc {
                return Ok(Arc::clone(existing));
            }
            return Err(DfcclError::AlreadyRegistered(coll_id));
        }
        self.register_resolved(coll_id, desc.clone(), tenant)
    }

    /// Register an all-reduce (`dfcclRegisterAllReduce`).
    pub fn register_all_reduce(
        &self,
        coll_id: u64,
        count: usize,
        dtype: DataType,
        op: ReduceOp,
        devices: Vec<GpuId>,
        priority: i32,
    ) -> Result<(), DfcclError> {
        self.register(
            coll_id,
            CollectiveDescriptor::all_reduce(count, dtype, op, devices).with_priority(priority),
        )
    }

    /// Register an all-reduce under a tenant handle (service mode).
    #[allow(clippy::too_many_arguments)]
    pub fn register_all_reduce_for(
        &self,
        tenant: &TenantHandle,
        coll_id: u64,
        count: usize,
        dtype: DataType,
        op: ReduceOp,
        devices: Vec<GpuId>,
        priority: i32,
    ) -> Result<(), DfcclError> {
        self.register_for(
            tenant,
            coll_id,
            CollectiveDescriptor::all_reduce(count, dtype, op, devices).with_priority(priority),
        )
    }

    /// Register an all-gather.
    pub fn register_all_gather(
        &self,
        coll_id: u64,
        count: usize,
        dtype: DataType,
        devices: Vec<GpuId>,
        priority: i32,
    ) -> Result<(), DfcclError> {
        self.register(
            coll_id,
            CollectiveDescriptor::all_gather(count, dtype, devices).with_priority(priority),
        )
    }

    /// Register a reduce-scatter.
    pub fn register_reduce_scatter(
        &self,
        coll_id: u64,
        count: usize,
        dtype: DataType,
        op: ReduceOp,
        devices: Vec<GpuId>,
        priority: i32,
    ) -> Result<(), DfcclError> {
        self.register(
            coll_id,
            CollectiveDescriptor::reduce_scatter(count, dtype, op, devices).with_priority(priority),
        )
    }

    /// Register a rooted reduce.
    #[allow(clippy::too_many_arguments)]
    pub fn register_reduce(
        &self,
        coll_id: u64,
        count: usize,
        dtype: DataType,
        op: ReduceOp,
        root: usize,
        devices: Vec<GpuId>,
        priority: i32,
    ) -> Result<(), DfcclError> {
        self.register(
            coll_id,
            CollectiveDescriptor::reduce(count, dtype, op, root, devices).with_priority(priority),
        )
    }

    /// Register a broadcast.
    pub fn register_broadcast(
        &self,
        coll_id: u64,
        count: usize,
        dtype: DataType,
        root: usize,
        devices: Vec<GpuId>,
        priority: i32,
    ) -> Result<(), DfcclError> {
        self.register(
            coll_id,
            CollectiveDescriptor::broadcast(count, dtype, root, devices).with_priority(priority),
        )
    }

    /// Register an all-to-all (`count` elements per rank pair): the dense-mesh
    /// collective behind MoE expert parallelism.
    pub fn register_all_to_all(
        &self,
        coll_id: u64,
        count: usize,
        dtype: DataType,
        devices: Vec<GpuId>,
        priority: i32,
    ) -> Result<(), DfcclError> {
        self.register(
            coll_id,
            CollectiveDescriptor::all_to_all(count, dtype, devices).with_priority(priority),
        )
    }

    /// Register a point-to-point transfer of `count` elements from `src` to
    /// `dst`. Both endpoints register the same id; the daemon schedules it
    /// like any other collective (preemptible, priority-ordered).
    pub fn register_send_recv(
        &self,
        coll_id: u64,
        count: usize,
        dtype: DataType,
        src: GpuId,
        dst: GpuId,
        priority: i32,
    ) -> Result<(), DfcclError> {
        self.register(
            coll_id,
            CollectiveDescriptor::send_recv(count, dtype, src, dst).with_priority(priority),
        )
    }

    /// Invoke a registered collective (`dfcclRun*`). The callback runs on the
    /// poller thread once the collective completes on this rank.
    pub fn run(
        &self,
        coll_id: u64,
        send: DeviceBuffer,
        recv: DeviceBuffer,
        callback: Callback,
    ) -> Result<(), DfcclError> {
        self.check_alive()?;
        let reg = self
            .shared
            .registered
            .read()
            .get(&coll_id)
            .cloned()
            .ok_or(DfcclError::NotRegistered(coll_id))?;
        validate_buffers(&reg.desc, reg.rank, &send, &recv)?;
        // Admission stage (service mode): charge the invocation against the
        // owning tenant's outstanding quota before anything observable
        // happens. At quota the caller gets typed, retryable backpressure —
        // nothing was bound or queued, so a later retry starts clean.
        let admitted = if self.domain.config.flat_scheduling {
            None
        } else {
            let state = self.shared.tenants.state(reg.tenant);
            state.try_admit_run()?;
            Some(state)
        };
        let bind_token = self.callbacks.bind(coll_id, callback);
        self.shared.outstanding.fetch_add(1, Ordering::AcqRel);
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let sqe = Sqe {
            coll_id,
            seq,
            send,
            recv,
            exit: false,
        };
        if self.sq.try_push(sqe).is_err() {
            self.shared.outstanding.fetch_sub(1, Ordering::AcqRel);
            // Drop exactly the callback we just bound so it does not fire
            // spuriously; other in-flight invocations of the same collective
            // (from this or any other thread) keep theirs.
            let _ = self.callbacks.unbind(coll_id, bind_token);
            if let Some(state) = &admitted {
                state.cancel_run();
            }
            return Err(DfcclError::SubmissionQueueFull);
        }
        self.shared
            .telemetry
            .record(coll_id, TelemetryEventKind::Submit);
        self.controller.ensure_running();
        Ok(())
    }

    /// Invoke a registered collective and get a waitable handle back.
    pub fn run_awaitable(
        &self,
        coll_id: u64,
        send: DeviceBuffer,
        recv: DeviceBuffer,
    ) -> Result<CompletionHandle, DfcclError> {
        let handle = CompletionHandle::new();
        self.run(coll_id, send, recv, handle.completion_callback())?;
        Ok(handle)
    }

    /// Invoke a registered collective, retrying typed backpressure under
    /// `policy`: rank-wide [`DfcclError::SubmissionQueueFull`] and retryable
    /// per-tenant admission errors ([`AdmissionError::AtQuota`]) are retried
    /// with decorrelated-jitter backoff; every other error fails fast.
    /// Returns the completion handle of the admitted invocation.
    pub fn run_with_retry(
        &self,
        policy: &RetryPolicy,
        coll_id: u64,
        send: &DeviceBuffer,
        recv: &DeviceBuffer,
    ) -> Result<CompletionHandle, DfcclError> {
        policy.run(
            || {
                let handle = CompletionHandle::new();
                self.run(
                    coll_id,
                    send.clone(),
                    recv.clone(),
                    handle.completion_callback(),
                )?;
                Ok(handle)
            },
            DfcclError::is_retryable,
        )
    }

    /// The rank's daemon-shared state (recovery-coordinator plumbing).
    pub(crate) fn shared_state(&self) -> &Arc<DaemonShared> {
        &self.shared
    }

    /// The rank's daemon controller (recovery-coordinator plumbing).
    pub(crate) fn daemon_controller(&self) -> &Arc<DaemonController> {
        &self.controller
    }

    /// Recovery-path re-registration: re-plan a registered collective under
    /// the current link-health generation and swap the registration in
    /// place. Same collective id, same tenant, no residency re-charge — the
    /// caller's handle to the collective is untouched. Returns whether the
    /// re-planned schedule is degraded (selected around a quarantined edge).
    pub(crate) fn reregister_for_recovery(&self, coll_id: u64) -> Result<bool, DfcclError> {
        let old = self
            .shared
            .registered
            .read()
            .get(&coll_id)
            .cloned()
            .ok_or(DfcclError::NotRegistered(coll_id))?;
        let selector = self.domain.config.algorithm_selector();
        let cached = self.domain.plan_cache.get_or_compile(
            &selector,
            &old.desc,
            old.rank,
            self.domain.config.chunk_elems,
            self.domain.topology(),
            self.domain.pool.link_health(),
        )?;
        let degraded = cached.degraded;
        if degraded {
            self.shared.telemetry.record_plan_degraded();
        }
        // Rebinding materialises exactly the connectors the new plan
        // addresses; labels quarantined since the original registration were
        // purged by the coordinator, so these come back rerouted.
        let channels = old.communicator.channels(
            old.rank,
            cached.plan.send_edges(),
            cached.plan.recv_edges(),
        )?;
        let table = cached.program.bind(&channels)?;
        let reg = Arc::new(RegisteredCollective {
            coll_id,
            desc: old.desc.clone(),
            rank: old.rank,
            tenant: old.tenant,
            communicator: Arc::clone(&old.communicator),
            channels,
            plan: cached.plan,
            program: cached.program,
            table,
        });
        self.shared.registered.write().insert(coll_id, reg);
        self.shared.bump_registry_generation();
        Ok(degraded)
    }

    /// Start capturing an iteration graph: record the step's collective
    /// invocations once with [`GraphRecorder::record`], then
    /// [`GraphRecorder::finish`] compiles them (including the small-all-reduce
    /// fusion pass) into an immutable [`CapturedGraph`] that
    /// [`RankCtx::replay`] submits whole.
    pub fn begin_capture(&self) -> Result<GraphRecorder<'_>, DfcclError> {
        self.check_alive()?;
        Ok(GraphRecorder {
            ctx: self,
            records: Vec::new(),
        })
    }

    /// Replay a captured graph: one SQE submission, one completion callback
    /// for the whole iteration. The buffers are the ones recorded at capture
    /// time, so a graph admits at most one replay in flight
    /// ([`DfcclError::GraphReplayInFlight`] otherwise).
    pub fn replay(&self, graph: &Arc<CapturedGraph>, callback: Callback) -> Result<(), DfcclError> {
        self.check_alive()?;
        if graph.gpu != self.gpu {
            return Err(DfcclError::GraphForeignRank {
                gpu: self.gpu,
                graph_id: graph.graph_id,
            });
        }
        if graph
            .in_flight
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return Err(DfcclError::GraphReplayInFlight(graph.graph_id));
        }
        // Admission stage: a replay counts as one outstanding invocation of
        // the tenant that captured the graph (attributed to its first node,
        // matching how the daemon routes the graph's completion).
        let tenant = graph
            .nodes
            .first()
            .map(|n| n.reg.tenant)
            .unwrap_or(TenantId::DEFAULT);
        let admitted = if self.domain.config.flat_scheduling {
            None
        } else {
            let state = self.shared.tenants.state(tenant);
            if let Err(e) = state.try_admit_run() {
                graph.in_flight.store(false, Ordering::Release);
                return Err(e.into());
            }
            Some(state)
        };
        // Stage fused inputs on the invoker thread, before the SQE becomes
        // visible: the daemon may start executing nodes the moment it drains
        // the queue.
        for node in &graph.nodes {
            if let GraphOp::Fused(fused) = &node.op {
                fused.gather();
            }
        }
        let bind_token = self.callbacks.bind(graph.graph_id, callback);
        self.shared.outstanding.fetch_add(1, Ordering::AcqRel);
        // `seq` doubles as the replay's run number: the daemon keys the
        // run's countdown state by (graph_id, seq).
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let sqe = Sqe {
            coll_id: graph.graph_id,
            seq,
            send: DeviceBuffer::zeroed(0),
            recv: DeviceBuffer::zeroed(0),
            exit: false,
        };
        if self.sq.try_push(sqe).is_err() {
            self.shared.outstanding.fetch_sub(1, Ordering::AcqRel);
            let _ = self.callbacks.unbind(graph.graph_id, bind_token);
            graph.in_flight.store(false, Ordering::Release);
            if let Some(state) = &admitted {
                state.cancel_run();
            }
            return Err(DfcclError::SubmissionQueueFull);
        }
        self.shared
            .telemetry
            .record(graph.graph_id, TelemetryEventKind::Submit);
        self.controller.ensure_running();
        Ok(())
    }

    /// Replay a captured graph and get a waitable handle back. The handle
    /// completes once — when every node of the graph has completed.
    pub fn replay_awaitable(
        &self,
        graph: &Arc<CapturedGraph>,
    ) -> Result<CompletionHandle, DfcclError> {
        let handle = CompletionHandle::new();
        self.replay(graph, handle.completion_callback())?;
        Ok(handle)
    }

    /// Issue a `cudaDeviceSynchronize()`-style synchronization on this rank's
    /// GPU and wait for it (bounded by `timeout`). Returns whether the
    /// synchronization completed. With DFCCL the daemon kernel quits
    /// voluntarily so the synchronization always eventually completes.
    pub fn device_synchronize(&self, timeout: Duration) -> bool {
        let waiter = self.device.request_synchronize(SyncKind::Explicit);
        waiter.wait_timeout(timeout)
    }

    /// Issue an implicit synchronization (e.g. a pinned-host-memory allocation)
    /// and wait for it.
    pub fn implicit_synchronize(&self, kind: SyncKind, timeout: Duration) -> bool {
        let waiter = self.device.request_synchronize(kind);
        waiter.wait_timeout(timeout)
    }

    /// The algorithm the selector chose for a registered collective.
    pub fn algorithm_of(&self, coll_id: u64) -> Option<AlgorithmKind> {
        self.shared
            .registered
            .read()
            .get(&coll_id)
            .map(|r| r.plan.algorithm)
    }

    /// The number of parallel channels a registered collective's compiled
    /// plan actually stripes across (at most the configured K; fewer when
    /// the payload has fewer chunks than channels).
    pub fn channels_of(&self, coll_id: u64) -> Option<usize> {
        self.shared
            .registered
            .read()
            .get(&coll_id)
            .map(|r| r.plan.channel_count())
    }

    /// Aggregate daemon statistics for this rank.
    pub fn stats(&self) -> DaemonStatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// Per-collective statistics for this rank (Fig. 11 data).
    pub fn per_collective_stats(&self) -> HashMap<u64, CollectiveStats> {
        self.shared.stats.per_collective()
    }

    /// Preemptions per logical daemon block (the Sec. 6.1 metric).
    pub fn preemptions_per_block(&self) -> f64 {
        self.shared
            .stats
            .preemptions_per_block(self.domain.config.daemon_blocks)
    }

    /// Memory usage of this rank's GPU (Sec. 6.2 accounting).
    pub fn memory_usage(&self) -> MemoryUsage {
        self.device.memory_usage()
    }

    /// Errors recorded against collectives on this rank (empty in healthy runs).
    pub fn collective_errors(&self) -> HashMap<u64, String> {
        self.shared.errors.lock().clone()
    }

    /// Export this rank's telemetry: lifecycle counters, the retained event
    /// ring, and per-edge link samples of every collective registered on this
    /// rank (stamped with the collective id, sorted by `(coll_id, edge)`).
    pub fn telemetry(&self) -> TelemetrySnapshot {
        let mut edges = Vec::new();
        for (&coll_id, reg) in self.shared.registered.read().iter() {
            for mut s in reg.communicator.edge_samples() {
                s.coll_id = Some(coll_id);
                edges.push(s);
            }
        }
        edges.sort_by_key(|a| (a.coll_id, a.edge));
        self.shared
            .telemetry
            .snapshot(edges, self.shared.tenants.snapshot())
    }

    /// Per-tenant accounting on this rank — the service-mode analogue of
    /// [`DfcclDomain::cache_stats`]: task-queue depth (current and
    /// high-water), outstanding invocations, registered collectives and
    /// lifecycle counters, sorted by tenant id. Also embedded in
    /// [`RankCtx::telemetry`] snapshots.
    pub fn tenant_stats(&self) -> Vec<TenantStats> {
        self.shared.tenants.snapshot()
    }

    /// Number of invocations submitted but not yet completed on this rank.
    pub fn outstanding(&self) -> u64 {
        self.shared.outstanding()
    }

    /// Destroy the rank context (`dfcclDestroy`): inserts the exiting SQE,
    /// waits for the daemon kernel to exit and stops the poller.
    pub fn destroy(&self) {
        if self.destroyed.swap(true, Ordering::AcqRel) {
            return;
        }
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        // Push the exiting SQE; retry briefly if the SQ is momentarily full.
        let mut sqe = Sqe::exit_marker(seq);
        for _ in 0..1_000 {
            match self.sq.try_push(sqe) {
                Ok(()) => break,
                Err(crate::sq::SqFull(back)) => {
                    sqe = back;
                    std::thread::sleep(Duration::from_micros(100));
                }
            }
        }
        self.controller.request_exit();
        self.controller.ensure_running();
        // Let the daemon drain outstanding work and read the exiting SQE.
        let _ = self.controller.wait_idle(Duration::from_secs(30));
        self.poller_stop.store(true, Ordering::Release);
        // Wake a parked poller so it observes the stop flag immediately.
        self.shared.notify_poller();
        if let Some(p) = self.poller.lock().take() {
            let _ = p.join();
        }
    }
}

impl Drop for RankCtx {
    fn drop(&mut self) {
        self.destroy();
    }
}

/// Records one iteration's collective invocations for graph replay.
///
/// Created by [`RankCtx::begin_capture`]. Each [`GraphRecorder::record`] call
/// is validated exactly like [`RankCtx::run`] (registration + buffer sizes)
/// but submits nothing; [`GraphRecorder::finish`] runs the fusion pass over
/// the recorded sequence, pre-resolves every node's registration and connector
/// table, and publishes the immutable [`CapturedGraph`] to the daemon.
pub struct GraphRecorder<'a> {
    ctx: &'a RankCtx,
    records: Vec<RecordedCollective>,
}

impl GraphRecorder<'_> {
    /// Record one invocation of registered collective `coll_id` with the
    /// buffers every replay of the graph will use.
    pub fn record(
        &mut self,
        coll_id: u64,
        send: DeviceBuffer,
        recv: DeviceBuffer,
    ) -> Result<(), DfcclError> {
        self.ctx.check_alive()?;
        let reg = self
            .ctx
            .shared
            .registered
            .read()
            .get(&coll_id)
            .cloned()
            .ok_or(DfcclError::NotRegistered(coll_id))?;
        validate_buffers(&reg.desc, reg.rank, &send, &recv)?;
        self.records.push(RecordedCollective {
            coll_id,
            desc: reg.desc.clone(),
            send,
            recv,
        });
        Ok(())
    }

    /// Number of collectives recorded so far (before fusion).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Compile the recorded sequence into a replayable graph.
    ///
    /// Runs the fusion pass (consecutive small same-shape all-reduces fuse
    /// into one striped collective, see
    /// [`dfccl_collectives::plan_fusion`]), registers each fused collective
    /// under its deterministic reserved id — every rank capturing the same
    /// step derives the same id, so the fused communicators line up across
    /// ranks without coordination — and resolves every node's registration so
    /// replay touches neither the registry write lock nor the plan cache.
    pub fn finish(self) -> Result<Arc<CapturedGraph>, DfcclError> {
        let ctx = self.ctx;
        ctx.check_alive()?;
        if self.records.is_empty() {
            return Err(DfcclError::EmptyGraph);
        }
        let threshold = ctx.domain.config.fusion_threshold_bytes;
        let ops = plan_fusion(self.records, threshold);
        let mut nodes = Vec::with_capacity(ops.len());
        for op in ops {
            let coll_id = op.coll_id();
            let reg = match &op {
                GraphOp::Single(_) => ctx
                    .shared
                    .registered
                    .read()
                    .get(&coll_id)
                    .cloned()
                    .ok_or(DfcclError::NotRegistered(coll_id))?,
                GraphOp::Fused(fused) => {
                    // A fused bucket inherits the tenant of its first member:
                    // fusion only groups consecutive same-shape collectives,
                    // and a tenant's iteration step is captured as one graph.
                    let tenant = fused
                        .segments
                        .first()
                        .and_then(|seg| {
                            ctx.shared
                                .registered
                                .read()
                                .get(&seg.coll_id)
                                .map(|r| r.tenant)
                        })
                        .unwrap_or(TenantId::DEFAULT);
                    ctx.resolve_fused(coll_id, &fused.desc, tenant)?
                }
            };
            nodes.push(GraphNode { op, reg });
        }
        let graph_id = GRAPH_ID_BASE | ctx.next_graph_id.fetch_add(1, Ordering::Relaxed);
        let graph = Arc::new(CapturedGraph {
            graph_id,
            gpu: ctx.gpu,
            nodes,
            in_flight: AtomicBool::new(false),
        });
        ctx.shared
            .graphs
            .write()
            .insert(graph_id, Arc::clone(&graph));
        Ok(graph)
    }
}

// ---------------------------------------------------------------------------
// Free functions mirroring Listing 1.
// ---------------------------------------------------------------------------

/// `dfcclInit`: initialise the rank context of a GPU.
pub fn dfccl_init(domain: &Arc<DfcclDomain>, gpu: GpuId) -> Result<RankCtx, DfcclError> {
    domain.init_rank(gpu)
}

/// `dfcclRegisterAllReduce`: register an all-reduce and prepare its data structures.
#[allow(clippy::too_many_arguments)]
pub fn dfccl_register_all_reduce(
    ctx: &RankCtx,
    count: usize,
    dtype: DataType,
    op: ReduceOp,
    coll_id: u64,
    devices: Vec<GpuId>,
    priority: i32,
) -> Result<(), DfcclError> {
    ctx.register_all_reduce(coll_id, count, dtype, op, devices, priority)
}

/// `dfcclRunAllReduce`: invoke a registered all-reduce with a completion callback.
pub fn dfccl_run_all_reduce(
    ctx: &RankCtx,
    send: DeviceBuffer,
    recv: DeviceBuffer,
    coll_id: u64,
    callback: Callback,
) -> Result<(), DfcclError> {
    ctx.run(coll_id, send, recv, callback)
}

/// `dfcclRegisterAllToAll`: register an all-to-all and prepare its data structures.
pub fn dfccl_register_all_to_all(
    ctx: &RankCtx,
    count: usize,
    dtype: DataType,
    coll_id: u64,
    devices: Vec<GpuId>,
    priority: i32,
) -> Result<(), DfcclError> {
    ctx.register_all_to_all(coll_id, count, dtype, devices, priority)
}

/// `dfcclDestroy`: destroy the rank context and release its resources.
pub fn dfccl_destroy(ctx: RankCtx) {
    ctx.destroy();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpus(n: usize) -> Vec<GpuId> {
        (0..n).map(GpuId).collect()
    }

    #[test]
    fn init_rejects_unknown_gpu() {
        let domain = DfcclDomain::flat_for_testing(2);
        assert!(matches!(
            domain.init_rank(GpuId(9)),
            Err(DfcclError::UnknownGpu(GpuId(9)))
        ));
    }

    #[test]
    fn register_validates_membership_and_duplicates() {
        let domain = DfcclDomain::flat_for_testing(4);
        let ctx = domain.init_rank(GpuId(0)).unwrap();
        ctx.register_all_reduce(1, 16, DataType::F32, ReduceOp::Sum, gpus(4), 0)
            .unwrap();
        assert!(matches!(
            ctx.register_all_reduce(1, 16, DataType::F32, ReduceOp::Sum, gpus(4), 0),
            Err(DfcclError::AlreadyRegistered(1))
        ));
        assert!(matches!(
            ctx.register_all_reduce(
                2,
                16,
                DataType::F32,
                ReduceOp::Sum,
                vec![GpuId(1), GpuId(2)],
                0
            ),
            Err(DfcclError::RankNotInDeviceSet { .. })
        ));
        ctx.destroy();
    }

    #[test]
    fn mismatched_device_sets_for_same_id_are_rejected() {
        let domain = DfcclDomain::flat_for_testing(4);
        let ctx0 = domain.init_rank(GpuId(0)).unwrap();
        let ctx1 = domain.init_rank(GpuId(1)).unwrap();
        ctx0.register_all_reduce(7, 8, DataType::F32, ReduceOp::Sum, gpus(4), 0)
            .unwrap();
        let err = ctx1
            .register_all_reduce(
                7,
                8,
                DataType::F32,
                ReduceOp::Sum,
                vec![GpuId(1), GpuId(0)],
                0,
            )
            .unwrap_err();
        assert_eq!(err, DfcclError::DeviceSetMismatch(7));
        ctx0.destroy();
        ctx1.destroy();
    }

    #[test]
    fn run_requires_registration_and_valid_buffers() {
        let domain = DfcclDomain::flat_for_testing(2);
        let ctx = domain.init_rank(GpuId(0)).unwrap();
        let send = DeviceBuffer::from_f32(&[1.0; 8]);
        let recv = DeviceBuffer::zeroed(32);
        assert!(matches!(
            ctx.run_awaitable(5, send.clone(), recv.clone()),
            Err(DfcclError::NotRegistered(5))
        ));
        ctx.register_all_reduce(5, 8, DataType::F32, ReduceOp::Sum, gpus(2), 0)
            .unwrap();
        let tiny = DeviceBuffer::zeroed(4);
        assert!(matches!(
            ctx.run_awaitable(5, send, tiny),
            Err(DfcclError::Collective(
                CollectiveError::BufferSizeMismatch { .. }
            ))
        ));
        ctx.destroy();
    }

    #[test]
    fn two_rank_all_reduce_end_to_end() {
        let domain = DfcclDomain::flat_for_testing(2);
        let count = 64;
        let mut ranks = Vec::new();
        for g in 0..2 {
            let ctx = domain.init_rank(GpuId(g)).unwrap();
            ctx.register_all_reduce(1, count, DataType::F32, ReduceOp::Sum, gpus(2), 0)
                .unwrap();
            ranks.push(ctx);
        }
        let mut handles = Vec::new();
        let mut recvs = Vec::new();
        for (g, ctx) in ranks.iter().enumerate() {
            let send = DeviceBuffer::from_f32(&vec![(g + 1) as f32; count]);
            let recv = DeviceBuffer::zeroed(count * 4);
            recvs.push(recv.clone());
            handles.push(ctx.run_awaitable(1, send, recv).unwrap());
        }
        for h in &handles {
            assert!(
                h.wait_for_timeout(1, Duration::from_secs(20)),
                "all-reduce timed out"
            );
        }
        for recv in &recvs {
            assert_eq!(recv.to_f32_vec(), vec![3.0f32; count]);
        }
        for ctx in &ranks {
            assert!(ctx.collective_errors().is_empty());
            assert_eq!(ctx.outstanding(), 0);
        }
        for ctx in ranks {
            ctx.destroy();
        }
    }

    #[test]
    fn four_rank_all_to_all_end_to_end() {
        // The dense-mesh collective through the full daemon stack: every rank
        // submits once, every rank ends up with the transposed slices, and the
        // selector picked the pairwise family without any override.
        let domain = DfcclDomain::flat_for_testing(4);
        let n = 4;
        let count = 8; // elements per (rank, peer) pair
        let ranks: Vec<_> = (0..n)
            .map(|g| domain.init_rank(GpuId(g)).unwrap())
            .collect();
        for ctx in &ranks {
            ctx.register_all_to_all(1, count, DataType::F32, gpus(n), 0)
                .unwrap();
            assert_eq!(
                ctx.algorithm_of(1),
                Some(AlgorithmKind::Pairwise),
                "selector must route all-to-all to the pairwise family"
            );
        }
        let inputs: Vec<Vec<f32>> = (0..n)
            .map(|r| (0..count * n).map(|i| (1000 * r + i) as f32).collect())
            .collect();
        let mut handles = Vec::new();
        let mut recvs = Vec::new();
        for (g, ctx) in ranks.iter().enumerate() {
            let send = DeviceBuffer::from_f32(&inputs[g]);
            let recv = DeviceBuffer::zeroed(count * n * 4);
            recvs.push(recv.clone());
            handles.push(ctx.run_awaitable(1, send, recv).unwrap());
        }
        for h in &handles {
            assert!(
                h.wait_for_timeout(1, Duration::from_secs(30)),
                "all-to-all timed out"
            );
        }
        for (rank, recv) in recvs.iter().enumerate() {
            let expected: Vec<f32> = (0..n)
                .flat_map(|src| inputs[src][rank * count..(rank + 1) * count].to_vec())
                .collect();
            assert_eq!(recv.to_f32_vec(), expected, "rank {rank}");
        }
        for ctx in ranks {
            assert!(ctx.collective_errors().is_empty());
            ctx.destroy();
        }
    }

    #[test]
    fn point_to_point_send_recv_end_to_end() {
        let domain = DfcclDomain::flat_for_testing(2);
        let count = 16;
        let sender = domain.init_rank(GpuId(0)).unwrap();
        let receiver = domain.init_rank(GpuId(1)).unwrap();
        for ctx in [&sender, &receiver] {
            ctx.register_send_recv(1, count, DataType::F32, GpuId(0), GpuId(1), 0)
                .unwrap();
            assert_eq!(ctx.algorithm_of(1), Some(AlgorithmKind::Pairwise));
        }
        let payload: Vec<f32> = (0..count).map(|i| i as f32 * 0.5).collect();
        let out = DeviceBuffer::zeroed(count * 4);
        let hs = sender
            .run_awaitable(1, DeviceBuffer::from_f32(&payload), DeviceBuffer::zeroed(4))
            .unwrap();
        let hr = receiver
            .run_awaitable(1, DeviceBuffer::zeroed(4), out.clone())
            .unwrap();
        assert!(hs.wait_for_timeout(1, Duration::from_secs(20)));
        assert!(hr.wait_for_timeout(1, Duration::from_secs(20)));
        assert_eq!(out.to_f32_vec(), payload);
        sender.destroy();
        receiver.destroy();
    }

    #[test]
    fn two_rank_all_reduce_with_unbatched_config() {
        // The legacy per-entry SQ/CQ path (batch sizes forced to 1) must stay
        // a correct configuration: it is the baseline arm of the
        // scheduling-throughput benchmarks.
        use dfccl_transport::{LinkModel, Topology};
        use gpu_sim::GpuSpec;
        let domain = DfcclDomain::new(
            Topology::flat(2),
            LinkModel::zero_cost(),
            GpuSpec::rtx_3090(),
            DfcclConfig::for_testing().unbatched(),
        );
        let count = 32;
        let ranks: Vec<_> = (0..2)
            .map(|g| domain.init_rank(GpuId(g)).unwrap())
            .collect();
        for ctx in &ranks {
            ctx.register_all_reduce(1, count, DataType::F32, ReduceOp::Sum, gpus(2), 0)
                .unwrap();
        }
        let mut handles = Vec::new();
        let mut recvs = Vec::new();
        for (g, ctx) in ranks.iter().enumerate() {
            let send = DeviceBuffer::from_f32(&vec![(g + 1) as f32; count]);
            let recv = DeviceBuffer::zeroed(count * 4);
            recvs.push(recv.clone());
            handles.push(ctx.run_awaitable(1, send, recv).unwrap());
        }
        for h in &handles {
            assert!(
                h.wait_for_timeout(1, Duration::from_secs(20)),
                "unbatched all-reduce timed out"
            );
        }
        for recv in &recvs {
            assert_eq!(recv.to_f32_vec(), vec![3.0f32; count]);
        }
        for ctx in ranks {
            ctx.destroy();
        }
    }

    #[test]
    fn collective_with_many_more_chunks_than_connector_slots_completes() {
        // Regression test for the flow-control deadlock: with step-major
        // plans, a collective whose per-slice chunk count exceeds the
        // connector capacity wedged permanently (both ranks filled their send
        // rings before reaching the step that drains the peer's). Chunk-major
        // plans keep the in-flight window O(1), so 32 chunks over 2-slot
        // connectors must complete.
        use dfccl_transport::{LinkModel, Topology};
        use gpu_sim::GpuSpec;
        let config = DfcclConfig {
            chunk_elems: 4,
            connector_capacity: 2,
            ..DfcclConfig::for_testing()
        };
        let domain = DfcclDomain::new(
            Topology::flat(2),
            LinkModel::zero_cost(),
            GpuSpec::rtx_3090(),
            config,
        );
        let count = 256; // 128 elems per slice = 32 chunks of 4, capacity 2.
        let ranks: Vec<_> = (0..2)
            .map(|g| domain.init_rank(GpuId(g)).unwrap())
            .collect();
        for ctx in &ranks {
            ctx.register_all_reduce(1, count, DataType::F32, ReduceOp::Sum, gpus(2), 0)
                .unwrap();
        }
        let mut handles = Vec::new();
        let mut recvs = Vec::new();
        for (g, ctx) in ranks.iter().enumerate() {
            let send = DeviceBuffer::from_f32(&vec![(g + 1) as f32; count]);
            let recv = DeviceBuffer::zeroed(count * 4);
            recvs.push(recv.clone());
            handles.push(ctx.run_awaitable(1, send, recv).unwrap());
        }
        for h in &handles {
            assert!(
                h.wait_for_timeout(1, Duration::from_secs(30)),
                "deep-chunked all-reduce wedged on tiny connectors"
            );
        }
        for recv in &recvs {
            assert_eq!(recv.to_f32_vec(), vec![3.0f32; count]);
        }
        for ctx in ranks {
            ctx.destroy();
        }
    }

    #[test]
    fn striped_all_reduce_end_to_end_with_tiny_connectors() {
        // The tentpole through the full daemon stack: a 3-channel stripe over
        // 1-slot connectors, with far more chunks per macro step than any
        // single connector could hold. Per-channel chunk-major order keeps it
        // deadlock-free; the result must match the unstriped sum.
        use dfccl_transport::{LinkModel, Topology};
        use gpu_sim::GpuSpec;
        let config = DfcclConfig {
            chunk_elems: 4,
            connector_capacity: 1,
            channels: 3,
            ..DfcclConfig::for_testing()
        };
        let domain = DfcclDomain::new(
            Topology::flat(2),
            LinkModel::zero_cost(),
            GpuSpec::rtx_3090(),
            config,
        );
        let count = 96; // 48 elems per slice = 12 chunks of 4 across 3 channels
        let ranks: Vec<_> = (0..2)
            .map(|g| domain.init_rank(GpuId(g)).unwrap())
            .collect();
        for ctx in &ranks {
            ctx.register_all_reduce(1, count, DataType::F32, ReduceOp::Sum, gpus(2), 0)
                .unwrap();
            assert_eq!(ctx.channels_of(1), Some(3), "global K=3 must stripe");
            // A per-collective override beats the global setting.
            ctx.register(
                2,
                CollectiveDescriptor::all_reduce(count, DataType::F32, ReduceOp::Sum, gpus(2))
                    .with_channels(2),
            )
            .unwrap();
            assert_eq!(ctx.channels_of(2), Some(2), "descriptor override wins");
        }
        for coll in [1u64, 2] {
            let mut handles = Vec::new();
            let mut recvs = Vec::new();
            for (g, ctx) in ranks.iter().enumerate() {
                let send = DeviceBuffer::from_f32(&vec![(g + 1) as f32; count]);
                let recv = DeviceBuffer::zeroed(count * 4);
                recvs.push(recv.clone());
                handles.push(ctx.run_awaitable(coll, send, recv).unwrap());
            }
            for h in &handles {
                assert!(
                    h.wait_for_timeout(1, Duration::from_secs(30)),
                    "striped all-reduce (coll {coll}) wedged on tiny connectors"
                );
            }
            for recv in &recvs {
                assert_eq!(recv.to_f32_vec(), vec![3.0f32; count], "coll {coll}");
            }
        }
        for ctx in ranks {
            assert!(ctx.collective_errors().is_empty());
            ctx.destroy();
        }
    }

    #[test]
    fn duplicate_devices_are_rejected_at_registration() {
        // The validation bugfix surfaces through the API: a duplicated GpuId
        // must fail registration instead of building a self-edged plan.
        let domain = DfcclDomain::flat_for_testing(4);
        let ctx = domain.init_rank(GpuId(0)).unwrap();
        let err = ctx
            .register_all_reduce(
                1,
                16,
                DataType::F32,
                ReduceOp::Sum,
                vec![GpuId(0), GpuId(1), GpuId(1)],
                0,
            )
            .unwrap_err();
        assert_eq!(
            err,
            DfcclError::Collective(CollectiveError::DuplicateDevice(GpuId(1)))
        );
        ctx.destroy();
    }

    #[test]
    fn collective_registered_after_first_runs_is_usable() {
        // Runtime registration must invalidate the daemon's registry cache:
        // a collective registered *after* the daemon has been scheduling for
        // a while still executes correctly.
        let domain = DfcclDomain::flat_for_testing(2);
        let count = 16;
        let ranks: Vec<_> = (0..2)
            .map(|g| domain.init_rank(GpuId(g)).unwrap())
            .collect();
        for ctx in &ranks {
            ctx.register_all_reduce(1, count, DataType::F32, ReduceOp::Sum, gpus(2), 0)
                .unwrap();
        }
        // Warm the daemons (and their caches) with the first collective.
        let warm: Vec<_> = ranks
            .iter()
            .map(|ctx| {
                ctx.run_awaitable(
                    1,
                    DeviceBuffer::from_f32(&vec![1.0; count]),
                    DeviceBuffer::zeroed(count * 4),
                )
                .unwrap()
            })
            .collect();
        for h in &warm {
            assert!(h.wait_for_timeout(1, Duration::from_secs(20)));
        }
        // Register a second collective at runtime and use it immediately.
        for ctx in &ranks {
            ctx.register_all_reduce(2, count, DataType::F32, ReduceOp::Sum, gpus(2), 0)
                .unwrap();
        }
        let mut handles = Vec::new();
        let mut recvs = Vec::new();
        for (g, ctx) in ranks.iter().enumerate() {
            let send = DeviceBuffer::from_f32(&vec![(g + 2) as f32; count]);
            let recv = DeviceBuffer::zeroed(count * 4);
            recvs.push(recv.clone());
            handles.push(ctx.run_awaitable(2, send, recv).unwrap());
        }
        for h in &handles {
            assert!(
                h.wait_for_timeout(1, Duration::from_secs(20)),
                "late-registered collective hung"
            );
        }
        for recv in &recvs {
            assert_eq!(recv.to_f32_vec(), vec![5.0f32; count]);
        }
        for ctx in &ranks {
            assert!(ctx.collective_errors().is_empty());
            ctx.destroy();
        }
    }

    #[test]
    fn destroy_is_idempotent_and_blocks_further_use() {
        let domain = DfcclDomain::flat_for_testing(2);
        let ctx = domain.init_rank(GpuId(0)).unwrap();
        ctx.destroy();
        ctx.destroy();
        assert!(matches!(
            ctx.register_all_reduce(1, 4, DataType::F32, ReduceOp::Sum, gpus(2), 0),
            Err(DfcclError::Destroyed)
        ));
        let send = DeviceBuffer::zeroed(16);
        let recv = DeviceBuffer::zeroed(16);
        assert!(matches!(
            ctx.run_awaitable(1, send, recv),
            Err(DfcclError::Destroyed)
        ));
    }

    #[test]
    fn listing1_free_functions_work() {
        let domain = DfcclDomain::flat_for_testing(2);
        let ctx0 = dfccl_init(&domain, GpuId(0)).unwrap();
        let ctx1 = dfccl_init(&domain, GpuId(1)).unwrap();
        for ctx in [&ctx0, &ctx1] {
            dfccl_register_all_reduce(ctx, 16, DataType::F32, ReduceOp::Sum, 3, gpus(2), 0)
                .unwrap();
        }
        let handle = CompletionHandle::new();
        let recv0 = DeviceBuffer::zeroed(64);
        dfccl_run_all_reduce(
            &ctx0,
            DeviceBuffer::from_f32(&[1.0; 16]),
            recv0.clone(),
            3,
            handle.completion_callback(),
        )
        .unwrap();
        let h1 = ctx1
            .run_awaitable(
                3,
                DeviceBuffer::from_f32(&[2.0; 16]),
                DeviceBuffer::zeroed(64),
            )
            .unwrap();
        handle.wait_for(1);
        h1.wait_for(1);
        assert_eq!(recv0.to_f32_vec(), vec![3.0f32; 16]);
        dfccl_destroy(ctx0);
        dfccl_destroy(ctx1);
    }

    #[test]
    fn reserved_collective_ids_are_rejected() {
        let domain = DfcclDomain::flat_for_testing(2);
        let ctx = domain.init_rank(GpuId(0)).unwrap();
        for id in [GRAPH_ID_BASE, FUSED_COLL_ID_BASE, GRAPH_ID_BASE | 7] {
            assert!(matches!(
                ctx.register_all_reduce(id, 8, DataType::F32, ReduceOp::Sum, gpus(2), 0),
                Err(DfcclError::ReservedCollectiveId(_))
            ));
        }
        ctx.destroy();
    }

    #[test]
    fn empty_capture_is_rejected() {
        let domain = DfcclDomain::flat_for_testing(2);
        let ctx = domain.init_rank(GpuId(0)).unwrap();
        let rec = ctx.begin_capture().unwrap();
        assert!(rec.is_empty());
        assert!(matches!(rec.finish(), Err(DfcclError::EmptyGraph)));
        ctx.destroy();
    }

    #[test]
    fn capture_fuses_small_all_reduces_and_replay_matches_individual_runs() {
        // Three small same-shape all-reduces and one large one: the capture
        // fuses the small ones into a single node, replays produce exactly the
        // sums individual submission would, and each replay costs one
        // completion per rank.
        let domain = DfcclDomain::flat_for_testing(2);
        let n = 2;
        let counts = [8usize, 12, 4, 50_000]; // last exceeds the 64 KiB threshold
        let ranks: Vec<_> = (0..n)
            .map(|g| domain.init_rank(GpuId(g)).unwrap())
            .collect();
        for ctx in &ranks {
            for (i, &count) in counts.iter().enumerate() {
                ctx.register_all_reduce(
                    i as u64 + 1,
                    count,
                    DataType::F32,
                    ReduceOp::Sum,
                    gpus(n),
                    0,
                )
                .unwrap();
            }
        }
        // Per-rank recorded buffers, fixed for the graph's lifetime.
        let mut sends = Vec::new();
        let mut recvs = Vec::new();
        let mut graphs = Vec::new();
        for (r, ctx) in ranks.iter().enumerate() {
            let mut rec = ctx.begin_capture().unwrap();
            let mut rank_sends = Vec::new();
            let mut rank_recvs = Vec::new();
            for (i, &count) in counts.iter().enumerate() {
                let data: Vec<f32> = (0..count)
                    .map(|j| ((r * 31 + i * 7 + j) % 101) as f32)
                    .collect();
                let send = DeviceBuffer::from_f32(&data);
                let recv = DeviceBuffer::zeroed(count * 4);
                rec.record(i as u64 + 1, send.clone(), recv.clone())
                    .unwrap();
                rank_sends.push(data);
                rank_recvs.push(recv);
            }
            assert_eq!(rec.len(), counts.len());
            let graph = rec.finish().unwrap();
            // 3 small all-reduces fuse into one node; the large one stays.
            assert_eq!(graph.len(), 2);
            assert_eq!(graph.fused_nodes(), 1);
            sends.push(rank_sends);
            recvs.push(rank_recvs);
            graphs.push(graph);
        }
        for round in 0..3 {
            let handles: Vec<_> = ranks
                .iter()
                .zip(&graphs)
                .map(|(ctx, g)| ctx.replay_awaitable(g).unwrap())
                .collect();
            for h in &handles {
                assert!(
                    h.wait_for_timeout(1, Duration::from_secs(30)),
                    "graph replay round {round} timed out"
                );
            }
            for (r, rank_recvs) in recvs.iter().enumerate() {
                for (i, recv) in rank_recvs.iter().enumerate() {
                    let expected: Vec<f32> = (0..counts[i])
                        .map(|j| (0..n).map(|src| sends[src][i][j]).sum())
                        .collect();
                    assert_eq!(
                        recv.to_f32_vec(),
                        expected,
                        "rank {r} collective {i} round {round}"
                    );
                }
            }
        }
        for ctx in &ranks {
            assert!(ctx.collective_errors().is_empty());
            assert_eq!(ctx.outstanding(), 0);
        }
        for ctx in ranks {
            ctx.destroy();
        }
    }

    #[test]
    fn replay_guards_foreign_rank_and_overlap() {
        let domain = DfcclDomain::flat_for_testing(2);
        let ranks: Vec<_> = (0..2)
            .map(|g| domain.init_rank(GpuId(g)).unwrap())
            .collect();
        for ctx in &ranks {
            ctx.register_all_reduce(1, 8, DataType::F32, ReduceOp::Sum, gpus(2), 0)
                .unwrap();
        }
        let mut rec = ranks[0].begin_capture().unwrap();
        rec.record(
            1,
            DeviceBuffer::from_f32(&[1.0; 8]),
            DeviceBuffer::zeroed(32),
        )
        .unwrap();
        let graph = rec.finish().unwrap();
        // A graph captured on rank 0 cannot replay on rank 1.
        assert!(matches!(
            ranks[1].replay_awaitable(&graph),
            Err(DfcclError::GraphForeignRank { .. })
        ));
        // Simulate an in-flight replay: the second submission must bounce.
        graph.in_flight.store(true, Ordering::Release);
        assert!(matches!(
            ranks[0].replay_awaitable(&graph),
            Err(DfcclError::GraphReplayInFlight(_))
        ));
        graph.in_flight.store(false, Ordering::Release);
        for ctx in ranks {
            ctx.destroy();
        }
    }

    #[test]
    fn cache_stats_reflect_hits_and_misses() {
        let domain = DfcclDomain::flat_for_testing(2);
        let ctx0 = domain.init_rank(GpuId(0)).unwrap();
        let ctx1 = domain.init_rank(GpuId(1)).unwrap();
        assert_eq!(
            domain.cache_stats(),
            PlanCacheStats {
                hits: 0,
                misses: 0,
                size: 0
            }
        );
        ctx0.register_all_reduce(1, 16, DataType::F32, ReduceOp::Sum, gpus(2), 0)
            .unwrap();
        let after_miss = domain.cache_stats();
        assert_eq!(
            (after_miss.hits, after_miss.misses, after_miss.size),
            (0, 1, 1)
        );
        // Same shape, different id, same rank: a pure hit.
        ctx0.register_all_reduce(2, 16, DataType::F32, ReduceOp::Sum, gpus(2), 0)
            .unwrap();
        // Same shape on the peer rank: a miss (plans are per-rank).
        ctx1.register_all_reduce(1, 16, DataType::F32, ReduceOp::Sum, gpus(2), 0)
            .unwrap();
        let stats = domain.cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.size), (1, 2, 2));
        ctx0.destroy();
        ctx1.destroy();
    }

    #[test]
    fn telemetry_traces_an_all_reduce_end_to_end() {
        let domain = DfcclDomain::flat_for_testing(2);
        let count = 64;
        let ranks: Vec<_> = (0..2)
            .map(|g| domain.init_rank(GpuId(g)).unwrap())
            .collect();
        for ctx in &ranks {
            ctx.register_all_reduce(1, count, DataType::F32, ReduceOp::Sum, gpus(2), 0)
                .unwrap();
        }
        let handles: Vec<_> = ranks
            .iter()
            .map(|ctx| {
                ctx.run_awaitable(
                    1,
                    DeviceBuffer::from_f32(&vec![1.0; count]),
                    DeviceBuffer::zeroed(count * 4),
                )
                .unwrap()
            })
            .collect();
        for h in &handles {
            assert!(h.wait_for_timeout(1, Duration::from_secs(20)));
        }
        for (r, ctx) in ranks.iter().enumerate() {
            let snap = ctx.telemetry();
            assert_eq!(snap.counters.submits, 1, "rank {r}");
            assert_eq!(snap.counters.fetches, 1, "rank {r}");
            assert_eq!(snap.counters.completions, 1, "rank {r}");
            assert_eq!(snap.counters.failures, 0, "rank {r}");
            assert!(snap.counters.chunks_moved > 0, "rank {r}");
            // Submit precedes fetch precedes complete in the event stream.
            let pos = |kind| snap.events.iter().position(|e| e.kind == kind);
            let submit = pos(TelemetryEventKind::Submit).expect("submit event");
            let fetch = pos(TelemetryEventKind::Fetch).expect("fetch event");
            let complete = pos(TelemetryEventKind::Complete).expect("complete event");
            assert!(submit < fetch && fetch < complete, "rank {r}");
            // Edge samples name the collective and both directions moved data.
            assert!(!snap.edges.is_empty(), "rank {r}");
            assert!(snap.edges.iter().all(|e| e.coll_id == Some(1)));
            assert!(snap.edges.iter().any(|e| e.stats.chunks_sent > 0));
            assert_eq!(snap.dead_edges().count(), 0, "rank {r}");
        }
        // The domain-level probe covers the same edges without coll stamps
        // from any particular rank's registry.
        assert!(!domain.edge_samples().is_empty());
        assert!(domain.fault_injector().scripted().is_empty());
        for ctx in ranks {
            ctx.destroy();
        }
    }

    #[test]
    fn memory_usage_reflects_context_buffer_allocation() {
        let domain = DfcclDomain::flat_for_testing(2);
        let ctx = domain.init_rank(GpuId(0)).unwrap();
        let usage = ctx.memory_usage();
        let config = domain.config();
        let expected = config.context_buffer_per_block * config.daemon_blocks as usize + 11 * 1024;
        assert_eq!(usage.global_allocated, expected);
        ctx.destroy();
    }
}
