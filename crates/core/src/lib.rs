//! # DFCCL — a deadlock-free GPU collective communication library
//!
//! This crate is the core contribution of the reproduced paper
//! (*Comprehensive Deadlock Prevention for GPU Collective Communication*,
//! EuroSys 2025): a collective communication library that prevents GPU
//! collective deadlocks by making collectives **preemptible** inside a
//! persistent **daemon kernel**, while keeping NCCL-class performance through
//! on-GPU control logic and adaptive, decentralized gang-scheduling.
//!
//! ## Architecture (Fig. 4 of the paper)
//!
//! * The **invoker** (your thread) registers collectives once
//!   ([`RankCtx::register_all_reduce`] …) and invokes them repeatedly
//!   ([`RankCtx::run`] …). Each invocation pushes an SQE into the
//!   [`sq::SubmissionQueue`] and records a completion callback.
//! * The **daemon kernel** ([`daemon`]) — one per GPU — fetches SQEs, keeps a
//!   task queue, executes each collective's primitive sequence under spin
//!   thresholds, preempts collectives that are stuck, saves/restores their
//!   dynamic context, emits CQEs, and quits voluntarily when idle so device
//!   synchronizations can drain.
//! * The **poller** thread drains the [`cq`] and runs the callbacks.
//!
//! ## Quick start
//!
//! ```
//! use dfccl::{DfcclDomain, DfcclConfig};
//! use dfccl_collectives::{DataType, DeviceBuffer, ReduceOp};
//! use gpu_sim::GpuId;
//!
//! // A 2-GPU domain with zero-cost links (fast, for demonstration).
//! let domain = DfcclDomain::flat_for_testing(2);
//! let devices: Vec<GpuId> = vec![GpuId(0), GpuId(1)];
//!
//! let rank0 = domain.init_rank(GpuId(0)).unwrap();
//! let rank1 = domain.init_rank(GpuId(1)).unwrap();
//! for rank in [&rank0, &rank1] {
//!     rank.register_all_reduce(1, 8, DataType::F32, ReduceOp::Sum, devices.clone(), 0)
//!         .unwrap();
//! }
//!
//! let out0 = DeviceBuffer::zeroed(32);
//! let out1 = DeviceBuffer::zeroed(32);
//! let h0 = rank0.run_awaitable(1, DeviceBuffer::from_f32(&[1.0; 8]), out0.clone()).unwrap();
//! let h1 = rank1.run_awaitable(1, DeviceBuffer::from_f32(&[2.0; 8]), out1.clone()).unwrap();
//! h0.wait_for(1);
//! h1.wait_for(1);
//! assert_eq!(out0.to_f32_vec(), vec![3.0; 8]);
//! assert_eq!(out1.to_f32_vec(), vec![3.0; 8]);
//! # rank0.destroy(); rank1.destroy();
//! ```

pub mod api;
pub mod callback;
pub mod config;
pub mod context;
pub mod cq;
pub mod daemon;
pub mod park;
pub mod recovery;
pub mod sq;
pub mod stats;
pub mod task_queue;
pub mod telemetry;
pub mod tenant;

pub use api::{
    dfccl_destroy, dfccl_init, dfccl_register_all_reduce, dfccl_run_all_reduce, DfcclDomain,
    DfcclError, GraphRecorder, PlanCacheStats, RankCtx,
};
pub use callback::{Callback, CallbackMap, CompletionHandle};
pub use config::{
    CqVariant, DfcclConfig, HostMemCosts, OrderingPolicy, SpinPolicy, TenantArbitration,
};
pub use cq::{build_cq, CompletionQueue, CqKind, Cqe};
pub use daemon::{
    is_graph_id, CapturedGraph, DaemonController, DaemonShared, GraphNode, RegisteredCollective,
    GRAPH_ID_BASE,
};
pub use park::Parker;
pub use recovery::{Backoff, RecoveryCoordinator, RecoveryError, RecoveryOutcome, RetryPolicy};
pub use sq::{Sqe, SubmissionQueue};
pub use stats::{CollectiveStats, DaemonStats, DaemonStatsSnapshot, TenantStats};
pub use task_queue::{TaskEntry, TaskQueue, TenantScheduler};
pub use telemetry::{
    Telemetry, TelemetryCounters, TelemetryEvent, TelemetryEventKind, TelemetrySnapshot,
};
pub use tenant::{AdmissionError, TenantHandle, TenantId, TenantQuota};
