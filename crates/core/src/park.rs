//! The wake-up parker: the primitive behind DFCCL's event-driven control
//! path.
//!
//! The daemon kernel and the CPU-side poller used to discover new work by
//! sleep-polling (a 200 µs quantum in `wait_idle`, a fixed `restart_backoff`
//! sleep in the poller). A [`Parker`] replaces those sleeps with an
//! edge-triggered signal:
//!
//! * Producers call [`Parker::signal`] after making work visible (an SQE
//!   pushed, a CQE batch published, an exit requested). Signalling is one
//!   relaxed-cost atomic increment on the hot path; the mutex + condvar are
//!   only touched when a consumer is actually parked.
//! * The consumer samples [`Parker::generation`] *before* scanning for work
//!   and parks with [`Parker::park_if_unchanged`] only if no signal arrived
//!   since the sample. A signal that raced the scan makes the park return
//!   immediately, so wake-ups are never lost.
//!
//! Every park takes a timeout, so even an unexpected protocol hole degrades
//! to the old bounded polling rather than a hang.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

/// An edge-triggered wake-up signal with a lost-wakeup-free park protocol.
#[derive(Default)]
pub struct Parker {
    generation: AtomicU64,
    parked: AtomicBool,
    mutex: Mutex<()>,
    cv: Condvar,
}

impl Parker {
    /// Create a parker with no signals recorded.
    pub fn new() -> Self {
        Parker::default()
    }

    /// Current signal generation. Sample this *before* scanning for work.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Record a signal and wake the consumer if it is parked.
    ///
    /// The generation bump is ordered before the `parked` check: either the
    /// consumer observes the new generation in its pre-park re-check, or it
    /// is already parked and the (mutex-serialized) notification reaches it.
    pub fn signal(&self) {
        // SeqCst on the bump *and* the parked check pairs with the SeqCst
        // store/load in `park_if_unchanged`: without it, StoreLoad reordering
        // (the consumer's parked-store sitting in its store buffer past its
        // generation re-check) lets both sides read stale values and drop the
        // wake-up — the same discipline as `std::thread::park`.
        self.generation.fetch_add(1, Ordering::SeqCst);
        if self.parked.load(Ordering::SeqCst) {
            let _guard = self.mutex.lock();
            self.cv.notify_all();
        }
    }

    /// Park for up to `timeout` unless a signal arrived after `seen` was
    /// sampled. Returns `true` if the park timed out (no signal).
    pub fn park_if_unchanged(&self, seen: u64, timeout: Duration) -> bool {
        let mut guard = self.mutex.lock();
        self.parked.store(true, Ordering::SeqCst);
        // Re-check under the lock: a signal between the caller's work scan
        // and this point must not be slept through. SeqCst (paired with
        // `signal`) makes the parked-store globally visible before this load.
        let timed_out = if self.generation.load(Ordering::SeqCst) != seen {
            false
        } else {
            self.cv.wait_for(&mut guard, timeout).timed_out()
        };
        self.parked.store(false, Ordering::Release);
        timed_out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn signal_before_park_prevents_sleeping() {
        let p = Parker::new();
        let seen = p.generation();
        p.signal();
        let start = Instant::now();
        let timed_out = p.park_if_unchanged(seen, Duration::from_secs(5));
        assert!(!timed_out);
        assert!(
            start.elapsed() < Duration::from_secs(1),
            "must not actually park"
        );
    }

    #[test]
    fn park_times_out_without_signal() {
        let p = Parker::new();
        let seen = p.generation();
        assert!(p.park_if_unchanged(seen, Duration::from_millis(10)));
    }

    #[test]
    fn signal_wakes_a_parked_thread_promptly() {
        let p = Arc::new(Parker::new());
        let p2 = Arc::clone(&p);
        let seen = p.generation();
        let t = std::thread::spawn(move || {
            let start = Instant::now();
            let timed_out = p2.park_if_unchanged(seen, Duration::from_secs(10));
            (timed_out, start.elapsed())
        });
        std::thread::sleep(Duration::from_millis(30));
        p.signal();
        let (timed_out, waited) = t.join().unwrap();
        assert!(
            !timed_out,
            "wake-up must come from the signal, not the timeout"
        );
        assert!(waited < Duration::from_secs(5), "waited {waited:?}");
    }

    #[test]
    fn generation_advances_per_signal() {
        let p = Parker::new();
        let g0 = p.generation();
        p.signal();
        p.signal();
        assert_eq!(p.generation(), g0 + 2);
    }
}
