//! Kernels: the unit of work launched on a device through the [`crate::DeviceEngine`].
//!
//! The NCCL-like baseline implements each collective as one blocking kernel
//! (busy-waiting until all peers are ready); DFCCL instead runs a single
//! persistent daemon kernel per device and never launches per-collective
//! kernels. Both styles sit on top of this abstraction.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::device::GpuId;

/// Result of running a kernel to the end of its `run` method.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelOutcome {
    /// The kernel finished its work.
    Completed,
    /// The kernel observed an abort request and stopped early.
    Aborted,
    /// The kernel failed with an error message.
    Failed(String),
}

/// Externally observable status of a launched kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelStatus {
    /// Queued on a stream, not yet started.
    Queued,
    /// Currently executing on the device.
    Running,
    /// Finished successfully.
    Completed,
    /// Stopped after an abort request.
    Aborted,
    /// Failed with an error message.
    Failed(String),
}

impl KernelStatus {
    /// Whether the kernel has reached a terminal state.
    pub fn is_terminal(&self) -> bool {
        !matches!(self, KernelStatus::Queued | KernelStatus::Running)
    }
}

/// Execution context handed to a running kernel.
#[derive(Debug, Clone)]
pub struct KernelCtx {
    /// Device the kernel runs on.
    pub device: GpuId,
    /// Launch sequence number on that device's engine.
    pub seq: u64,
    abort: Arc<AtomicBool>,
}

impl KernelCtx {
    pub(crate) fn new(device: GpuId, seq: u64, abort: Arc<AtomicBool>) -> Self {
        KernelCtx { device, seq, abort }
    }

    /// Whether an abort has been requested (e.g. by the deadlock watchdog).
    /// Long-running or busy-waiting kernels must poll this.
    pub fn should_abort(&self) -> bool {
        self.abort.load(Ordering::Relaxed)
    }
}

/// A unit of GPU work.
pub trait Kernel: Send + 'static {
    /// Human-readable name, used in diagnostics.
    fn name(&self) -> String;

    /// Number of blocks in the launch grid.
    fn grid_blocks(&self) -> u32 {
        1
    }

    /// Shared memory requested per block, in bytes.
    fn shared_mem_per_block(&self) -> usize {
        0
    }

    /// Execute the kernel. Implementations that busy-wait must poll
    /// [`KernelCtx::should_abort`] so that deadlocked scenarios can be torn down.
    fn run(self: Box<Self>, ctx: &KernelCtx) -> KernelOutcome;
}

/// A kernel built from a closure; convenient for tests and simple workloads.
pub struct FnKernel<F> {
    name: String,
    blocks: u32,
    shared_mem: usize,
    f: F,
}

impl<F> FnKernel<F>
where
    F: FnOnce(&KernelCtx) -> KernelOutcome + Send + 'static,
{
    /// Create a closure-backed kernel with a 1-block grid.
    pub fn new(name: impl Into<String>, f: F) -> Self {
        FnKernel {
            name: name.into(),
            blocks: 1,
            shared_mem: 0,
            f,
        }
    }

    /// Set the grid size.
    pub fn with_blocks(mut self, blocks: u32) -> Self {
        self.blocks = blocks;
        self
    }

    /// Set the per-block shared-memory requirement.
    pub fn with_shared_mem(mut self, bytes: usize) -> Self {
        self.shared_mem = bytes;
        self
    }
}

impl<F> Kernel for FnKernel<F>
where
    F: FnOnce(&KernelCtx) -> KernelOutcome + Send + 'static,
{
    fn name(&self) -> String {
        self.name.clone()
    }

    fn grid_blocks(&self) -> u32 {
        self.blocks
    }

    fn shared_mem_per_block(&self) -> usize {
        self.shared_mem
    }

    fn run(self: Box<Self>, ctx: &KernelCtx) -> KernelOutcome {
        (self.f)(ctx)
    }
}

pub(crate) struct KernelShared {
    pub(crate) status: Mutex<KernelStatus>,
    pub(crate) cv: Condvar,
    pub(crate) abort: Arc<AtomicBool>,
}

impl KernelShared {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(KernelShared {
            status: Mutex::new(KernelStatus::Queued),
            cv: Condvar::new(),
            abort: Arc::new(AtomicBool::new(false)),
        })
    }

    pub(crate) fn set_status(&self, status: KernelStatus) {
        let mut s = self.status.lock();
        *s = status;
        self.cv.notify_all();
    }
}

/// Handle to a launched kernel: observe status, wait for completion, request abort.
///
/// The name is a shared `Arc<str>`: the engine hands it to the queue entry,
/// the handle and the worker without re-allocating the string per launch.
#[derive(Clone)]
pub struct KernelHandle {
    pub(crate) shared: Arc<KernelShared>,
    pub(crate) seq: u64,
    pub(crate) name: Arc<str>,
    pub(crate) device: GpuId,
}

impl std::fmt::Debug for KernelHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KernelHandle")
            .field("seq", &self.seq)
            .field("name", &self.name)
            .field("device", &self.device)
            .field("status", &self.status())
            .finish()
    }
}

impl KernelHandle {
    /// Launch sequence number of the kernel on its engine.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Kernel name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The GPU whose engine owns this kernel — lets supervisors scope
    /// teardown to the engines that actually hold unfinished work.
    pub fn device(&self) -> GpuId {
        self.device
    }

    /// Current status.
    pub fn status(&self) -> KernelStatus {
        self.shared.status.lock().clone()
    }

    /// Request the kernel to abort. Cooperative: the kernel must poll
    /// [`KernelCtx::should_abort`].
    pub fn request_abort(&self) {
        self.shared.abort.store(true, Ordering::Relaxed);
    }

    /// Block until the kernel reaches a terminal state.
    pub fn wait(&self) -> KernelStatus {
        let mut s = self.shared.status.lock();
        while !s.is_terminal() {
            self.shared.cv.wait(&mut s);
        }
        s.clone()
    }

    /// Block until the kernel reaches a terminal state or `timeout` elapses.
    pub fn wait_timeout(&self, timeout: Duration) -> KernelStatus {
        let deadline = std::time::Instant::now() + timeout;
        let mut s = self.shared.status.lock();
        while !s.is_terminal() {
            if self.shared.cv.wait_until(&mut s, deadline).timed_out() {
                break;
            }
        }
        s.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_kernel_reports_configuration() {
        let k = FnKernel::new("k", |_ctx| KernelOutcome::Completed)
            .with_blocks(8)
            .with_shared_mem(1024);
        assert_eq!(k.name(), "k");
        assert_eq!(k.grid_blocks(), 8);
        assert_eq!(k.shared_mem_per_block(), 1024);
    }

    #[test]
    fn fn_kernel_runs_closure() {
        let k = Box::new(FnKernel::new("k", |ctx: &KernelCtx| {
            assert_eq!(ctx.device, GpuId(3));
            KernelOutcome::Completed
        }));
        let ctx = KernelCtx::new(GpuId(3), 7, Arc::new(AtomicBool::new(false)));
        assert_eq!(k.run(&ctx), KernelOutcome::Completed);
    }

    #[test]
    fn status_terminality() {
        assert!(!KernelStatus::Queued.is_terminal());
        assert!(!KernelStatus::Running.is_terminal());
        assert!(KernelStatus::Completed.is_terminal());
        assert!(KernelStatus::Aborted.is_terminal());
        assert!(KernelStatus::Failed("x".into()).is_terminal());
    }

    #[test]
    fn handle_abort_flag_reaches_ctx() {
        let shared = KernelShared::new();
        let handle = KernelHandle {
            shared: Arc::clone(&shared),
            seq: 0,
            name: "k".into(),
            device: GpuId(0),
        };
        let ctx = KernelCtx::new(GpuId(0), 0, Arc::clone(&shared.abort));
        assert!(!ctx.should_abort());
        handle.request_abort();
        assert!(ctx.should_abort());
    }

    #[test]
    fn handle_wait_timeout_returns_nonterminal_on_timeout() {
        let shared = KernelShared::new();
        let handle = KernelHandle {
            shared,
            seq: 0,
            name: "k".into(),
            device: GpuId(0),
        };
        let st = handle.wait_timeout(Duration::from_millis(10));
        assert_eq!(st, KernelStatus::Queued);
    }

    #[test]
    fn handle_wait_unblocks_on_terminal_status() {
        let shared = KernelShared::new();
        let handle = KernelHandle {
            shared: Arc::clone(&shared),
            seq: 0,
            name: "k".into(),
            device: GpuId(0),
        };
        let t = std::thread::spawn(move || handle.wait());
        std::thread::sleep(Duration::from_millis(20));
        shared.set_status(KernelStatus::Completed);
        assert_eq!(t.join().unwrap(), KernelStatus::Completed);
    }
}
