//! # gpu-sim — a software model of a CUDA-like GPU
//!
//! This crate is the hardware substrate substitution for the DFCCL reproduction
//! (see `DESIGN.md` at the repository root). It models the pieces of the CUDA
//! execution environment that GPU-collective deadlocks depend on:
//!
//! * [`GpuDevice`] — a device with a bounded number of *resident kernel* slots
//!   (streaming-multiprocessor resources), shared/global memory accounting and
//!   device-wide synchronization semantics.
//! * [`DeviceEngine`] — a CUDA-style launch engine: per-stream FIFO ordering,
//!   cross-stream concurrency bounded by the device's residency slots, and
//!   synchronization barriers that prevent later-launched kernels from starting
//!   until all earlier kernels drain.
//! * [`Kernel`] — the unit of work launched on a stream. The NCCL-like baseline
//!   implements collectives as blocking kernels; DFCCL's daemon kernel instead
//!   acquires residency on the [`GpuDevice`] directly and cooperates with
//!   synchronization by *voluntarily quitting*.
//!
//! The model deliberately reproduces the three conditions that make GPU
//! collectives deadlock-prone (Sec. 2.3 of the paper): mutual exclusion of
//! residency slots, hold-and-wait of running kernels, and the absence of
//! preemption at this layer.

pub mod clock;
pub mod device;
pub mod engine;
pub mod kernel;
pub mod stream;
pub mod sync;

pub use clock::{busy_spin, Stopwatch, TimeScale};
pub use device::{GpuDevice, GpuId, GpuSpec, MemoryUsage, ResidencyGuard};
pub use engine::{DeviceEngine, LaunchError};
pub use kernel::{FnKernel, Kernel, KernelCtx, KernelHandle, KernelOutcome, KernelStatus};
pub use stream::StreamId;
pub use sync::{SyncKind, SyncWaiter};

/// Errors produced by the GPU model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GpuError {
    /// A global-memory allocation exceeded the device capacity.
    OutOfGlobalMemory { requested: usize, available: usize },
    /// A shared-memory request exceeded the per-block capacity.
    OutOfSharedMemory { requested: usize, available: usize },
    /// Kernel residency could not be acquired (all slots busy or sync pending).
    ResidencyUnavailable,
    /// The engine has been shut down.
    EngineShutdown,
}

impl std::fmt::Display for GpuError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GpuError::OutOfGlobalMemory {
                requested,
                available,
            } => write!(
                f,
                "out of global memory: requested {requested} bytes, {available} available"
            ),
            GpuError::OutOfSharedMemory {
                requested,
                available,
            } => write!(
                f,
                "out of shared memory: requested {requested} bytes, {available} available per block"
            ),
            GpuError::ResidencyUnavailable => write!(f, "kernel residency unavailable"),
            GpuError::EngineShutdown => write!(f, "device engine has been shut down"),
        }
    }
}

impl std::error::Error for GpuError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let e = GpuError::OutOfGlobalMemory {
            requested: 10,
            available: 5,
        };
        assert!(e.to_string().contains("global memory"));
        let e = GpuError::OutOfSharedMemory {
            requested: 10,
            available: 5,
        };
        assert!(e.to_string().contains("shared memory"));
        assert!(GpuError::ResidencyUnavailable
            .to_string()
            .contains("residency"));
        assert!(GpuError::EngineShutdown.to_string().contains("shut down"));
    }
}
