//! GPU synchronization operations.
//!
//! The paper distinguishes *explicit* synchronization (`cudaDeviceSynchronize()`)
//! from *implicit* synchronization (default-stream commands, page-locked host
//! memory allocation, CPU-initiated GPU memory operations). All of them suspend
//! a GPU until every kernel in every stream completes, which is the mechanism
//! behind the synchronization-related deadlock of Fig. 1(d).

use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

/// The kind of synchronization operation issued on a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SyncKind {
    /// `cudaDeviceSynchronize()`.
    Explicit,
    /// A command issued on the default stream, which synchronizes with all
    /// other streams.
    ImplicitDefaultStream,
    /// Page-locked (pinned) host memory allocation (`cudaMallocHost` and
    /// friends), reported in PyTorch issue #31095 as a deadlock trigger.
    ImplicitPinnedAlloc,
    /// A CPU-initiated GPU memory operation (e.g. IOMMU-related transfers).
    ImplicitMemOp,
}

impl SyncKind {
    /// Whether the synchronization is implicit (not an explicit user call).
    pub fn is_implicit(&self) -> bool {
        !matches!(self, SyncKind::Explicit)
    }
}

/// Shared completion state of one synchronization operation.
#[derive(Debug)]
pub struct SyncShared {
    pub(crate) kind: SyncKind,
    done: Mutex<bool>,
    cv: Condvar,
}

impl SyncShared {
    pub(crate) fn new(kind: SyncKind) -> Self {
        SyncShared {
            kind,
            done: Mutex::new(false),
            cv: Condvar::new(),
        }
    }

    pub(crate) fn complete(&self) {
        let mut d = self.done.lock();
        *d = true;
        self.cv.notify_all();
    }
}

/// Handle used to wait for a synchronization operation to complete.
#[derive(Debug, Clone)]
pub struct SyncWaiter {
    shared: Arc<SyncShared>,
}

impl SyncWaiter {
    pub(crate) fn new(shared: Arc<SyncShared>) -> Self {
        SyncWaiter { shared }
    }

    /// The kind of synchronization this waiter corresponds to.
    pub fn kind(&self) -> SyncKind {
        self.shared.kind
    }

    /// Whether the synchronization has completed.
    pub fn is_complete(&self) -> bool {
        *self.shared.done.lock()
    }

    /// Block until the synchronization completes.
    pub fn wait(&self) {
        let mut d = self.shared.done.lock();
        while !*d {
            self.shared.cv.wait(&mut d);
        }
    }

    /// Block until the synchronization completes or `timeout` elapses.
    /// Returns `true` if the synchronization completed.
    pub fn wait_timeout(&self, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        let mut d = self.shared.done.lock();
        while !*d {
            if self.shared.cv.wait_until(&mut d, deadline).timed_out() {
                return *d;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sync_kind_classification() {
        assert!(!SyncKind::Explicit.is_implicit());
        assert!(SyncKind::ImplicitDefaultStream.is_implicit());
        assert!(SyncKind::ImplicitPinnedAlloc.is_implicit());
        assert!(SyncKind::ImplicitMemOp.is_implicit());
    }

    #[test]
    fn waiter_completes_after_complete_call() {
        let shared = Arc::new(SyncShared::new(SyncKind::Explicit));
        let waiter = SyncWaiter::new(Arc::clone(&shared));
        assert!(!waiter.is_complete());
        assert!(!waiter.wait_timeout(Duration::from_millis(10)));
        shared.complete();
        assert!(waiter.is_complete());
        waiter.wait();
        assert!(waiter.wait_timeout(Duration::from_millis(1)));
        assert_eq!(waiter.kind(), SyncKind::Explicit);
    }

    #[test]
    fn waiter_wakes_a_blocked_thread() {
        let shared = Arc::new(SyncShared::new(SyncKind::ImplicitMemOp));
        let waiter = SyncWaiter::new(Arc::clone(&shared));
        let t = std::thread::spawn(move || {
            waiter.wait();
            true
        });
        std::thread::sleep(Duration::from_millis(20));
        shared.complete();
        assert!(t.join().unwrap());
    }
}
