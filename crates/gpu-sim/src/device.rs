//! The GPU device model: residency slots, memory accounting and device-wide
//! synchronization.
//!
//! A *resident kernel* occupies one of the device's concurrent-kernel slots
//! (the stand-in for streaming-multiprocessor resources). Residency is the
//! resource that is mutually exclusive and held while a collective busy-waits,
//! which is what makes disordered collectives deadlock (Sec. 2.3 of the paper).
//!
//! Device-wide synchronization ([`GpuDevice::request_synchronize`]) models
//! `cudaDeviceSynchronize()` and the implicit synchronization operations
//! (page-locked host memory allocation, CPU-initiated GPU memory operations):
//! the synchronization completes only when every currently-resident kernel has
//! released its residency, and **no new residency can be acquired while a
//! synchronization is pending**. DFCCL's daemon kernel observes
//! [`GpuDevice::sync_pending`] and voluntarily quits so the synchronization can
//! drain (Sec. 4.4).

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::sync::{SyncKind, SyncShared, SyncWaiter};
use crate::GpuError;

/// Identifier of a GPU in the simulated cluster. Globally unique.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GpuId(pub usize);

impl std::fmt::Display for GpuId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "gpu{}", self.0)
    }
}

/// Static description of a GPU model.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuSpec {
    /// Human-readable model name.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub sm_count: u32,
    /// Maximum number of kernels that can be resident at the same time.
    /// This is the resource that gets depleted in the "resource depletion"
    /// deadlock situation of Fig. 1(c).
    pub max_resident_kernels: u32,
    /// Shared memory available to one block, in bytes.
    pub shared_mem_per_block: usize,
    /// Total global (device) memory in bytes.
    pub global_mem: usize,
}

impl GpuSpec {
    /// NVIDIA GeForce RTX 3080 Ti (12 GB) — the "3080ti-server" GPUs of Table 2.
    pub fn rtx_3080ti() -> Self {
        GpuSpec {
            name: "RTX 3080 Ti".to_string(),
            sm_count: 80,
            max_resident_kernels: 4,
            shared_mem_per_block: 100 * 1024,
            global_mem: 12 * 1024 * 1024 * 1024,
        }
    }

    /// NVIDIA GeForce RTX 3090 (24 GB) — the "3090-server" GPUs of Table 2.
    pub fn rtx_3090() -> Self {
        GpuSpec {
            name: "RTX 3090".to_string(),
            sm_count: 82,
            max_resident_kernels: 4,
            shared_mem_per_block: 100 * 1024,
            global_mem: 24 * 1024 * 1024 * 1024,
        }
    }

    /// A tiny GPU useful for unit tests that exercise resource depletion.
    pub fn tiny(max_resident_kernels: u32) -> Self {
        GpuSpec {
            name: "tiny-test-gpu".to_string(),
            sm_count: 4,
            max_resident_kernels,
            shared_mem_per_block: 48 * 1024,
            global_mem: 64 * 1024 * 1024,
        }
    }
}

/// Snapshot of the device memory accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoryUsage {
    /// Bytes of global (device) memory currently allocated.
    pub global_allocated: usize,
    /// Bytes of shared memory currently reserved across resident blocks.
    pub shared_allocated: usize,
    /// High-water mark of global memory.
    pub global_peak: usize,
    /// High-water mark of shared memory.
    pub shared_peak: usize,
}

/// Counters describing scheduling activity on a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeviceCounters {
    /// Number of residencies acquired over the device lifetime.
    pub residencies_acquired: u64,
    /// Number of synchronization operations requested.
    pub syncs_requested: u64,
    /// Number of synchronization operations that have completed.
    pub syncs_completed: u64,
    /// Number of failed residency acquisitions (slot exhaustion or pending sync).
    pub residency_rejections: u64,
}

struct PendingSync {
    waits_for: HashSet<u64>,
    shared: Arc<SyncShared>,
}

struct DeviceState {
    next_residency: u64,
    resident: HashSet<u64>,
    resident_shared_bytes: usize,
    pending_syncs: Vec<PendingSync>,
    counters: DeviceCounters,
}

/// A simulated GPU device. Cheap to share via [`Arc`].
pub struct GpuDevice {
    id: GpuId,
    spec: GpuSpec,
    state: Mutex<DeviceState>,
    residency_cv: Condvar,
    global_allocated: AtomicUsize,
    global_peak: AtomicUsize,
    shared_peak: AtomicUsize,
    syncs_completed: AtomicU64,
}

impl std::fmt::Debug for GpuDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GpuDevice")
            .field("id", &self.id)
            .field("spec", &self.spec.name)
            .finish()
    }
}

impl GpuDevice {
    /// Create a new device with the given identifier and specification.
    pub fn new(id: GpuId, spec: GpuSpec) -> Arc<Self> {
        Arc::new(GpuDevice {
            id,
            spec,
            state: Mutex::new(DeviceState {
                next_residency: 0,
                resident: HashSet::new(),
                resident_shared_bytes: 0,
                pending_syncs: Vec::new(),
                counters: DeviceCounters::default(),
            }),
            residency_cv: Condvar::new(),
            global_allocated: AtomicUsize::new(0),
            global_peak: AtomicUsize::new(0),
            shared_peak: AtomicUsize::new(0),
            syncs_completed: AtomicU64::new(0),
        })
    }

    /// Create a cluster of `n` identical devices with ids `first_id..first_id+n`.
    pub fn cluster(first_id: usize, n: usize, spec: GpuSpec) -> Vec<Arc<Self>> {
        (0..n)
            .map(|i| GpuDevice::new(GpuId(first_id + i), spec.clone()))
            .collect()
    }

    /// Device identifier.
    pub fn id(&self) -> GpuId {
        self.id
    }

    /// Device specification.
    pub fn spec(&self) -> &GpuSpec {
        &self.spec
    }

    /// Try to acquire a kernel-residency slot without blocking.
    ///
    /// Fails if all residency slots are busy, if the requested shared memory
    /// does not fit, or if a device synchronization is pending (new work may
    /// not start until the synchronization drains).
    pub fn try_acquire_residency(
        self: &Arc<Self>,
        blocks: u32,
        shared_mem_per_block: usize,
    ) -> Result<ResidencyGuard, GpuError> {
        if shared_mem_per_block > self.spec.shared_mem_per_block {
            return Err(GpuError::OutOfSharedMemory {
                requested: shared_mem_per_block,
                available: self.spec.shared_mem_per_block,
            });
        }
        let mut st = self.state.lock();
        if !st.pending_syncs.is_empty()
            || st.resident.len() >= self.spec.max_resident_kernels as usize
        {
            st.counters.residency_rejections += 1;
            return Err(GpuError::ResidencyUnavailable);
        }
        let id = st.next_residency;
        st.next_residency += 1;
        st.resident.insert(id);
        let shared_bytes = shared_mem_per_block.saturating_mul(blocks as usize);
        st.resident_shared_bytes += shared_bytes;
        let peak = st.resident_shared_bytes;
        st.counters.residencies_acquired += 1;
        drop(st);
        self.shared_peak.fetch_max(peak, Ordering::Relaxed);
        Ok(ResidencyGuard {
            device: Arc::clone(self),
            id,
            shared_bytes,
        })
    }

    /// Acquire residency, blocking up to `timeout`. Returns `None` on timeout.
    pub fn acquire_residency_timeout(
        self: &Arc<Self>,
        blocks: u32,
        shared_mem_per_block: usize,
        timeout: Duration,
    ) -> Option<ResidencyGuard> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            match self.try_acquire_residency(blocks, shared_mem_per_block) {
                Ok(g) => return Some(g),
                Err(GpuError::ResidencyUnavailable) => {
                    let mut st = self.state.lock();
                    let now = std::time::Instant::now();
                    if now >= deadline {
                        return None;
                    }
                    // Re-check under the lock to avoid missing a wakeup.
                    if st.pending_syncs.is_empty()
                        && st.resident.len() < self.spec.max_resident_kernels as usize
                    {
                        continue;
                    }
                    self.residency_cv.wait_until(&mut st, deadline);
                }
                Err(_) => return None,
            }
        }
    }

    /// Number of kernels currently resident.
    pub fn resident_kernels(&self) -> usize {
        self.state.lock().resident.len()
    }

    /// Whether a device synchronization is pending (some earlier kernels have
    /// not yet drained). The DFCCL daemon kernel polls this to decide when to
    /// quit voluntarily.
    pub fn sync_pending(&self) -> bool {
        !self.state.lock().pending_syncs.is_empty()
    }

    /// Request a device-wide synchronization of the given kind.
    ///
    /// The returned waiter completes once every kernel resident at the moment
    /// of the request has released its residency. While any synchronization is
    /// pending, new residency acquisitions are rejected.
    pub fn request_synchronize(&self, kind: SyncKind) -> SyncWaiter {
        let mut st = self.state.lock();
        st.counters.syncs_requested += 1;
        let shared = Arc::new(SyncShared::new(kind));
        if st.resident.is_empty() {
            shared.complete();
            self.syncs_completed.fetch_add(1, Ordering::Relaxed);
            let mut counters = st.counters;
            counters.syncs_completed += 1;
            st.counters = counters;
        } else {
            let waits_for = st.resident.clone();
            st.pending_syncs.push(PendingSync {
                waits_for,
                shared: Arc::clone(&shared),
            });
        }
        SyncWaiter::new(shared)
    }

    /// Memory usage snapshot.
    pub fn memory_usage(&self) -> MemoryUsage {
        let st = self.state.lock();
        MemoryUsage {
            global_allocated: self.global_allocated.load(Ordering::Relaxed),
            shared_allocated: st.resident_shared_bytes,
            global_peak: self.global_peak.load(Ordering::Relaxed),
            shared_peak: self.shared_peak.load(Ordering::Relaxed),
        }
    }

    /// Scheduling counters snapshot.
    pub fn counters(&self) -> DeviceCounters {
        self.state.lock().counters
    }

    /// Allocate `bytes` of global (device) memory. The allocation is released
    /// when the returned guard is dropped.
    pub fn alloc_global(self: &Arc<Self>, bytes: usize) -> Result<GlobalAllocation, GpuError> {
        let mut current = self.global_allocated.load(Ordering::Relaxed);
        loop {
            let new = current + bytes;
            if new > self.spec.global_mem {
                return Err(GpuError::OutOfGlobalMemory {
                    requested: bytes,
                    available: self.spec.global_mem.saturating_sub(current),
                });
            }
            match self.global_allocated.compare_exchange(
                current,
                new,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.global_peak.fetch_max(new, Ordering::Relaxed);
                    return Ok(GlobalAllocation {
                        device: Arc::clone(self),
                        bytes,
                    });
                }
                Err(actual) => current = actual,
            }
        }
    }

    fn release_residency(&self, id: u64, shared_bytes: usize) {
        let mut st = self.state.lock();
        st.resident.remove(&id);
        st.resident_shared_bytes = st.resident_shared_bytes.saturating_sub(shared_bytes);
        let mut completed = 0u64;
        st.pending_syncs.retain(|sync| {
            let mut waits_for = sync.waits_for.clone();
            waits_for.remove(&id);
            if waits_for.is_empty() {
                sync.shared.complete();
                completed += 1;
                false
            } else {
                true
            }
        });
        // `retain` above cloned the wait sets; remove `id` from the surviving ones too.
        for sync in &mut st.pending_syncs {
            sync.waits_for.remove(&id);
        }
        st.counters.syncs_completed += completed;
        drop(st);
        self.syncs_completed.fetch_add(completed, Ordering::Relaxed);
        self.residency_cv.notify_all();
    }
}

/// RAII guard representing one resident kernel. Dropping it releases the
/// residency slot and may complete pending synchronizations.
pub struct ResidencyGuard {
    device: Arc<GpuDevice>,
    id: u64,
    shared_bytes: usize,
}

impl std::fmt::Debug for ResidencyGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResidencyGuard")
            .field("device", &self.device.id())
            .field("id", &self.id)
            .finish()
    }
}

impl ResidencyGuard {
    /// The device this residency belongs to.
    pub fn device(&self) -> &Arc<GpuDevice> {
        &self.device
    }
}

impl Drop for ResidencyGuard {
    fn drop(&mut self) {
        self.device.release_residency(self.id, self.shared_bytes);
    }
}

/// RAII guard for a global-memory allocation.
pub struct GlobalAllocation {
    device: Arc<GpuDevice>,
    bytes: usize,
}

impl GlobalAllocation {
    /// Size of the allocation in bytes.
    pub fn bytes(&self) -> usize {
        self.bytes
    }
}

impl Drop for GlobalAllocation {
    fn drop(&mut self) {
        self.device
            .global_allocated
            .fetch_sub(self.bytes, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn residency_slots_are_bounded() {
        let dev = GpuDevice::new(GpuId(0), GpuSpec::tiny(2));
        let a = dev.try_acquire_residency(1, 0).unwrap();
        let _b = dev.try_acquire_residency(1, 0).unwrap();
        assert!(dev.try_acquire_residency(1, 0).is_err());
        assert_eq!(dev.resident_kernels(), 2);
        drop(a);
        assert!(dev.try_acquire_residency(1, 0).is_ok());
    }

    #[test]
    fn shared_memory_request_is_bounded_per_block() {
        let dev = GpuDevice::new(GpuId(0), GpuSpec::tiny(2));
        let too_big = dev.spec().shared_mem_per_block + 1;
        assert!(matches!(
            dev.try_acquire_residency(1, too_big),
            Err(GpuError::OutOfSharedMemory { .. })
        ));
    }

    #[test]
    fn sync_completes_immediately_when_idle() {
        let dev = GpuDevice::new(GpuId(0), GpuSpec::tiny(2));
        let w = dev.request_synchronize(SyncKind::Explicit);
        assert!(w.is_complete());
        assert!(!dev.sync_pending());
    }

    #[test]
    fn sync_waits_for_resident_kernels_and_blocks_new_ones() {
        let dev = GpuDevice::new(GpuId(0), GpuSpec::tiny(4));
        let guard = dev.try_acquire_residency(1, 0).unwrap();
        let w = dev.request_synchronize(SyncKind::Explicit);
        assert!(!w.is_complete());
        assert!(dev.sync_pending());
        // New residency is rejected while the sync is pending.
        assert!(dev.try_acquire_residency(1, 0).is_err());
        drop(guard);
        assert!(w.wait_timeout(Duration::from_secs(1)));
        assert!(!dev.sync_pending());
        assert!(dev.try_acquire_residency(1, 0).is_ok());
    }

    #[test]
    fn sync_only_waits_for_kernels_resident_at_request_time() {
        let dev = GpuDevice::new(GpuId(0), GpuSpec::tiny(4));
        let g1 = dev.try_acquire_residency(1, 0).unwrap();
        let w = dev.request_synchronize(SyncKind::ImplicitPinnedAlloc);
        drop(g1);
        assert!(w.wait_timeout(Duration::from_millis(200)));
    }

    #[test]
    fn acquire_residency_timeout_blocks_until_released() {
        let dev = GpuDevice::new(GpuId(0), GpuSpec::tiny(1));
        let g = dev.try_acquire_residency(1, 0).unwrap();
        let dev2 = Arc::clone(&dev);
        let t = std::thread::spawn(move || {
            dev2.acquire_residency_timeout(1, 0, Duration::from_secs(2))
                .is_some()
        });
        std::thread::sleep(Duration::from_millis(50));
        drop(g);
        assert!(t.join().unwrap());
    }

    #[test]
    fn acquire_residency_timeout_times_out() {
        let dev = GpuDevice::new(GpuId(0), GpuSpec::tiny(1));
        let _g = dev.try_acquire_residency(1, 0).unwrap();
        assert!(dev
            .acquire_residency_timeout(1, 0, Duration::from_millis(50))
            .is_none());
    }

    #[test]
    fn global_memory_accounting() {
        let dev = GpuDevice::new(GpuId(0), GpuSpec::tiny(1));
        let total = dev.spec().global_mem;
        let a = dev.alloc_global(total / 2).unwrap();
        assert_eq!(dev.memory_usage().global_allocated, total / 2);
        assert!(dev.alloc_global(total).is_err());
        drop(a);
        assert_eq!(dev.memory_usage().global_allocated, 0);
        assert_eq!(dev.memory_usage().global_peak, total / 2);
    }

    #[test]
    fn shared_memory_accounting_tracks_blocks() {
        let dev = GpuDevice::new(GpuId(0), GpuSpec::tiny(4));
        let g = dev.try_acquire_residency(4, 1024).unwrap();
        assert_eq!(dev.memory_usage().shared_allocated, 4096);
        drop(g);
        assert_eq!(dev.memory_usage().shared_allocated, 0);
        assert_eq!(dev.memory_usage().shared_peak, 4096);
    }

    #[test]
    fn counters_track_activity() {
        let dev = GpuDevice::new(GpuId(0), GpuSpec::tiny(1));
        let g = dev.try_acquire_residency(1, 0).unwrap();
        let _ = dev.try_acquire_residency(1, 0);
        let w = dev.request_synchronize(SyncKind::Explicit);
        drop(g);
        w.wait();
        let c = dev.counters();
        assert_eq!(c.residencies_acquired, 1);
        assert_eq!(c.residency_rejections, 1);
        assert_eq!(c.syncs_requested, 1);
        assert_eq!(c.syncs_completed, 1);
    }

    #[test]
    fn cluster_creates_sequential_ids() {
        let devs = GpuDevice::cluster(4, 4, GpuSpec::rtx_3090());
        let ids: Vec<usize> = devs.iter().map(|d| d.id().0).collect();
        assert_eq!(ids, vec![4, 5, 6, 7]);
    }
}
