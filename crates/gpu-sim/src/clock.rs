//! Timing utilities: calibrated busy-spinning and scaled durations.
//!
//! The transport link model injects synthetic per-chunk transfer delays to shape
//! bandwidth/latency curves like the paper's testbed. Delays are implemented by
//! busy-spinning (not sleeping) because the granularity is often well below the
//! OS scheduler quantum, and because busy-waiting matches how real collective
//! kernels occupy the GPU while waiting for data.

use std::time::{Duration, Instant};

/// Busy-spin for approximately `d`. Spinning (rather than `thread::sleep`)
/// keeps sub-10µs delays accurate and mirrors the busy-wait execution mode of
/// GPU collective kernels.
pub fn busy_spin(d: Duration) {
    if d.is_zero() {
        return;
    }
    let start = Instant::now();
    while start.elapsed() < d {
        std::hint::spin_loop();
    }
}

/// A global multiplier applied to modelled durations, so that benchmarks that
/// model large transfers (or thousands of iterations) finish in reasonable
/// wall-clock time while preserving *relative* magnitudes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeScale {
    /// Multiplier applied to modelled nanoseconds. `1.0` = real scale.
    pub factor: f64,
}

impl Default for TimeScale {
    fn default() -> Self {
        TimeScale { factor: 1.0 }
    }
}

impl TimeScale {
    /// A scale that compresses modelled time by `1/n`.
    pub fn compressed(n: f64) -> Self {
        assert!(n > 0.0, "compression factor must be positive");
        TimeScale { factor: 1.0 / n }
    }

    /// Apply the scale to a modelled duration expressed in nanoseconds.
    pub fn scale_nanos(&self, nanos: f64) -> Duration {
        let scaled = (nanos * self.factor).max(0.0);
        Duration::from_nanos(scaled as u64)
    }

    /// Apply the scale to a [`Duration`].
    pub fn scale(&self, d: Duration) -> Duration {
        self.scale_nanos(d.as_nanos() as f64)
    }
}

/// A simple stopwatch used by the instrumentation in the daemon kernel and in
/// the benchmark harness.
#[derive(Debug, Clone)]
pub struct Stopwatch {
    start: Instant,
    laps: Vec<(String, Duration)>,
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::new()
    }
}

impl Stopwatch {
    /// Start a new stopwatch.
    pub fn new() -> Self {
        Stopwatch {
            start: Instant::now(),
            laps: Vec::new(),
        }
    }

    /// Restart the stopwatch, clearing laps.
    pub fn restart(&mut self) {
        self.start = Instant::now();
        self.laps.clear();
    }

    /// Elapsed time since the last restart.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Record a named lap (elapsed since start).
    pub fn lap(&mut self, name: impl Into<String>) {
        self.laps.push((name.into(), self.start.elapsed()));
    }

    /// Recorded laps as `(name, elapsed-at-lap)` pairs.
    pub fn laps(&self) -> &[(String, Duration)] {
        &self.laps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_spin_waits_at_least_requested() {
        let d = Duration::from_micros(200);
        let start = Instant::now();
        busy_spin(d);
        assert!(start.elapsed() >= d);
    }

    #[test]
    fn busy_spin_zero_returns_immediately() {
        let start = Instant::now();
        busy_spin(Duration::ZERO);
        assert!(start.elapsed() < Duration::from_millis(5));
    }

    #[test]
    fn time_scale_compresses() {
        let ts = TimeScale::compressed(10.0);
        let scaled = ts.scale(Duration::from_micros(100));
        assert_eq!(scaled, Duration::from_micros(10));
    }

    #[test]
    fn time_scale_default_is_identity() {
        let ts = TimeScale::default();
        assert_eq!(
            ts.scale(Duration::from_nanos(1234)),
            Duration::from_nanos(1234)
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn time_scale_rejects_zero_compression() {
        let _ = TimeScale::compressed(0.0);
    }

    #[test]
    fn stopwatch_records_laps_in_order() {
        let mut sw = Stopwatch::new();
        sw.lap("a");
        busy_spin(Duration::from_micros(50));
        sw.lap("b");
        assert_eq!(sw.laps().len(), 2);
        assert!(sw.laps()[1].1 >= sw.laps()[0].1);
        sw.restart();
        assert!(sw.laps().is_empty());
    }
}
