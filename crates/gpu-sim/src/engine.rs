//! The device launch engine: CUDA-style kernel dispatch.
//!
//! Semantics modelled here (the ones the deadlock analysis of Sec. 2.3 relies on):
//!
//! * **Per-stream FIFO** — a kernel starts only when it is at the head of its
//!   stream.
//! * **Bounded concurrency** — a kernel starts only if the device can grant a
//!   residency slot ([`crate::GpuDevice::try_acquire_residency`]); otherwise it
//!   waits while *holding its queue position* (hold-and-wait).
//! * **Synchronization barriers** — [`DeviceEngine::synchronize`] blocks the
//!   calling thread until every previously launched kernel completes, and
//!   prevents kernels launched *after* the barrier from starting until then.
//! * **No preemption** — once started, a kernel runs until it returns; the only
//!   escape hatch is the cooperative abort flag used by the deadlock watchdog.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::device::{GpuDevice, ResidencyGuard};
use crate::kernel::{Kernel, KernelCtx, KernelHandle, KernelOutcome, KernelShared, KernelStatus};
use crate::stream::StreamId;
use crate::sync::SyncKind;
use crate::GpuError;

/// Errors returned by kernel launches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LaunchError {
    /// The engine has been shut down.
    Shutdown,
    /// The kernel's static requirements can never be satisfied on this device.
    Unsatisfiable(GpuError),
}

impl std::fmt::Display for LaunchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LaunchError::Shutdown => write!(f, "device engine has been shut down"),
            LaunchError::Unsatisfiable(e) => write!(f, "launch can never succeed: {e}"),
        }
    }
}

impl std::error::Error for LaunchError {}

struct QueuedKernel {
    seq: u64,
    kernel: Box<dyn Kernel>,
    shared: Arc<KernelShared>,
    name: Arc<str>,
    blocks: u32,
    shared_mem: usize,
}

struct Barrier {
    seq: u64,
    #[allow(dead_code)]
    kind: SyncKind,
    done: Arc<(Mutex<bool>, Condvar)>,
}

#[derive(Default)]
struct EngineState {
    next_seq: u64,
    streams: BTreeMap<StreamId, VecDeque<QueuedKernel>>,
    /// Streams that currently have a kernel executing. Same-stream kernels are
    /// serialized: the next one starts only after the previous completes.
    busy_streams: BTreeSet<StreamId>,
    /// Launched (queued or running) kernels that have not completed yet.
    incomplete: BTreeSet<u64>,
    barriers: Vec<Barrier>,
    running_handles: Vec<KernelHandle>,
    worker_joins: Vec<JoinHandle<()>>,
    shutdown: bool,
}

struct EngineInner {
    device: Arc<GpuDevice>,
    state: Mutex<EngineState>,
    work_cv: Condvar,
}

impl EngineInner {
    /// A barrier with sequence number `b` is satisfied when no incomplete
    /// kernel has a smaller sequence number.
    fn barrier_satisfied(incomplete: &BTreeSet<u64>, barrier_seq: u64) -> bool {
        incomplete
            .iter()
            .next()
            .is_none_or(|&min| min >= barrier_seq)
    }

    fn release_satisfied_barriers(state: &mut EngineState) {
        let incomplete = &state.incomplete;
        state.barriers.retain(|b| {
            if Self::barrier_satisfied(incomplete, b.seq) {
                let (lock, cv) = &*b.done;
                *lock.lock() = true;
                cv.notify_all();
                false
            } else {
                true
            }
        });
    }

    /// Whether a kernel with sequence number `seq` may start with respect to
    /// the pending synchronization barriers.
    fn allowed_by_barriers(state: &EngineState, seq: u64) -> bool {
        state
            .barriers
            .iter()
            .all(|b| b.seq > seq || Self::barrier_satisfied(&state.incomplete, b.seq))
    }
}

/// A per-device kernel dispatch engine.
pub struct DeviceEngine {
    inner: Arc<EngineInner>,
    dispatcher: Mutex<Option<JoinHandle<()>>>,
    shutdown_flag: Arc<AtomicBool>,
}

impl DeviceEngine {
    /// Create an engine for `device` and start its dispatcher thread.
    pub fn new(device: Arc<GpuDevice>) -> Arc<Self> {
        let inner = Arc::new(EngineInner {
            device,
            state: Mutex::new(EngineState::default()),
            work_cv: Condvar::new(),
        });
        let shutdown_flag = Arc::new(AtomicBool::new(false));
        let engine = Arc::new(DeviceEngine {
            inner: Arc::clone(&inner),
            dispatcher: Mutex::new(None),
            shutdown_flag: Arc::clone(&shutdown_flag),
        });
        let dispatcher_inner = Arc::clone(&inner);
        let dispatcher_shutdown = Arc::clone(&shutdown_flag);
        let handle = std::thread::Builder::new()
            .name(format!("gpu-dispatch-{}", inner.device.id()))
            .spawn(move || Self::dispatch_loop(dispatcher_inner, dispatcher_shutdown))
            .expect("failed to spawn dispatcher thread");
        *engine.dispatcher.lock() = Some(handle);
        engine
    }

    /// The device this engine drives.
    pub fn device(&self) -> &Arc<GpuDevice> {
        &self.inner.device
    }

    /// Launch `kernel` on `stream`. Returns a handle for status observation.
    pub fn launch(
        &self,
        stream: StreamId,
        kernel: Box<dyn Kernel>,
    ) -> Result<KernelHandle, LaunchError> {
        if kernel.shared_mem_per_block() > self.inner.device.spec().shared_mem_per_block {
            return Err(LaunchError::Unsatisfiable(GpuError::OutOfSharedMemory {
                requested: kernel.shared_mem_per_block(),
                available: self.inner.device.spec().shared_mem_per_block,
            }));
        }
        // Materialize everything that does not need the engine state — the
        // shared status block and the (refcounted, never re-allocated) name —
        // before taking the lock, keeping the critical section to the queue
        // insertion itself.
        let shared = KernelShared::new();
        let name: Arc<str> = Arc::from(kernel.name());
        let blocks = kernel.grid_blocks();
        let shared_mem = kernel.shared_mem_per_block();
        let mut st = self.inner.state.lock();
        if st.shutdown {
            return Err(LaunchError::Shutdown);
        }
        let seq = st.next_seq;
        st.next_seq += 1;
        let handle = KernelHandle {
            shared: Arc::clone(&shared),
            seq,
            name: Arc::clone(&name),
            device: self.inner.device.id(),
        };
        let queued = QueuedKernel {
            seq,
            blocks,
            shared_mem,
            kernel,
            shared,
            name,
        };
        st.incomplete.insert(seq);
        st.streams.entry(stream).or_default().push_back(queued);
        drop(st);
        self.inner.work_cv.notify_all();
        Ok(handle)
    }

    /// Issue a device-wide synchronization of the given kind and block until it
    /// completes, or until `timeout` elapses. Returns `true` if the
    /// synchronization completed (i.e. every previously launched kernel
    /// finished). `None` timeout waits forever.
    pub fn synchronize_timeout(&self, kind: SyncKind, timeout: Option<Duration>) -> bool {
        let done = {
            let mut st = self.inner.state.lock();
            let seq = st.next_seq;
            st.next_seq += 1;
            let done = Arc::new((Mutex::new(false), Condvar::new()));
            st.barriers.push(Barrier {
                seq,
                kind,
                done: Arc::clone(&done),
            });
            EngineInner::release_satisfied_barriers(&mut st);
            done
        };
        self.inner.work_cv.notify_all();
        let (lock, cv) = &*done;
        let mut finished = lock.lock();
        match timeout {
            None => {
                while !*finished {
                    cv.wait(&mut finished);
                }
                true
            }
            Some(t) => {
                let deadline = std::time::Instant::now() + t;
                while !*finished {
                    if cv.wait_until(&mut finished, deadline).timed_out() {
                        break;
                    }
                }
                *finished
            }
        }
    }

    /// Issue an explicit `cudaDeviceSynchronize()`-style barrier and wait for it.
    pub fn synchronize(&self) {
        self.synchronize_timeout(SyncKind::Explicit, None);
    }

    /// Number of launched-but-not-completed kernels.
    pub fn pending_kernels(&self) -> usize {
        self.inner.state.lock().incomplete.len()
    }

    /// Request abort on every queued and running kernel. Queued kernels are
    /// dropped; running kernels must observe their abort flag. Used by the
    /// deadlock watchdog to tear down deadlocked scenarios.
    pub fn abort_all(&self) {
        let mut st = self.inner.state.lock();
        let mut dropped_seqs = Vec::new();
        for (_, queue) in st.streams.iter_mut() {
            while let Some(q) = queue.pop_front() {
                q.shared.set_status(KernelStatus::Aborted);
                dropped_seqs.push(q.seq);
            }
        }
        for seq in dropped_seqs {
            st.incomplete.remove(&seq);
        }
        for h in &st.running_handles {
            h.request_abort();
        }
        EngineInner::release_satisfied_barriers(&mut st);
        drop(st);
        self.inner.work_cv.notify_all();
    }

    /// Shut down the engine: abort outstanding work and join all threads.
    pub fn shutdown(&self) {
        self.abort_all();
        self.shutdown_flag.store(true, Ordering::Relaxed);
        {
            let mut st = self.inner.state.lock();
            st.shutdown = true;
        }
        self.inner.work_cv.notify_all();
        if let Some(h) = self.dispatcher.lock().take() {
            let _ = h.join();
        }
        let joins = {
            let mut st = self.inner.state.lock();
            std::mem::take(&mut st.worker_joins)
        };
        for j in joins {
            let _ = j.join();
        }
    }

    fn dispatch_loop(inner: Arc<EngineInner>, shutdown: Arc<AtomicBool>) {
        loop {
            // Snapshot the eligible stream heads under the lock, then release
            // it: residency acquisition (which takes the device lock) and
            // worker-thread spawning run with the engine state unlocked, so
            // launches and kernel completions are not serialized behind them.
            let eligible: Vec<(u64, StreamId, u32, usize)> = {
                let st = inner.state.lock();
                if shutdown.load(Ordering::Relaxed) && st.incomplete.is_empty() {
                    return;
                }
                // Among the eligible stream heads, pick the one issued
                // earliest (CUDA's scheduler dispatches roughly in issue
                // order as resources free up, which is what makes the
                // resource-depletion disorder of Fig. 1(c) deadlock).
                let mut eligible: Vec<(u64, StreamId, u32, usize)> = Vec::new();
                for (&sid, queue) in st.streams.iter() {
                    if st.busy_streams.contains(&sid) {
                        continue;
                    }
                    let Some(q) = queue.front() else { continue };
                    if !EngineInner::allowed_by_barriers(&st, q.seq) {
                        continue;
                    }
                    eligible.push((q.seq, sid, q.blocks, q.shared_mem));
                }
                eligible.sort_unstable_by_key(|e| e.0);
                eligible
            };
            let mut started = false;
            for (seq, sid, blocks, shared_mem) in eligible {
                // Residency is the bounded resource; acquisition can fail when
                // the device is saturated (resource depletion).
                let guard = match inner.device.try_acquire_residency(blocks, shared_mem) {
                    Ok(g) => g,
                    Err(_) => continue,
                };
                // Re-validate and commit under the lock: the snapshot may have
                // gone stale (abort_all, a racing barrier, a completed
                // same-stream kernel) while residency was acquired.
                let queued = {
                    let mut st = inner.state.lock();
                    let still_head =
                        st.streams.get(&sid).and_then(|q| q.front()).map(|q| q.seq) == Some(seq);
                    if !still_head
                        || st.busy_streams.contains(&sid)
                        || !EngineInner::allowed_by_barriers(&st, seq)
                    {
                        // The guard drops here, returning the residency slots.
                        continue;
                    }
                    let queued = st
                        .streams
                        .get_mut(&sid)
                        .and_then(|q| q.pop_front())
                        .expect("validated head kernel disappeared under lock");
                    let handle = KernelHandle {
                        shared: Arc::clone(&queued.shared),
                        seq,
                        name: Arc::clone(&queued.name),
                        device: inner.device.id(),
                    };
                    st.running_handles.push(handle);
                    st.busy_streams.insert(sid);
                    queued
                };
                let worker = Self::spawn_worker(Arc::clone(&inner), sid, queued, guard);
                inner.state.lock().worker_joins.push(worker);
                started = true;
                break;
            }
            if started {
                // Loop again immediately; more kernels may be eligible.
                continue;
            }
            if shutdown.load(Ordering::Relaxed) {
                return;
            }
            // Nothing to do: wait for new launches or completions.
            let mut st = inner.state.lock();
            inner.work_cv.wait_for(&mut st, Duration::from_millis(1));
        }
    }

    fn spawn_worker(
        inner: Arc<EngineInner>,
        stream: StreamId,
        queued: QueuedKernel,
        guard: ResidencyGuard,
    ) -> JoinHandle<()> {
        std::thread::Builder::new()
            .name(format!("gpu-kernel-{}", queued.name))
            .spawn(move || {
                let QueuedKernel {
                    seq,
                    kernel,
                    shared,
                    ..
                } = queued;
                shared.set_status(KernelStatus::Running);
                let ctx = KernelCtx::new(inner.device.id(), seq, Arc::clone(&shared.abort));
                let outcome = kernel.run(&ctx);
                let status = match outcome {
                    KernelOutcome::Completed => KernelStatus::Completed,
                    KernelOutcome::Aborted => KernelStatus::Aborted,
                    KernelOutcome::Failed(e) => KernelStatus::Failed(e),
                };
                // Release the residency slot before publishing completion so
                // that a waiter observing completion can immediately launch.
                drop(guard);
                let mut st = inner.state.lock();
                st.incomplete.remove(&seq);
                st.running_handles.retain(|h| h.seq != seq);
                st.busy_streams.remove(&stream);
                EngineInner::release_satisfied_barriers(&mut st);
                drop(st);
                shared.set_status(status);
                inner.work_cv.notify_all();
            })
            .expect("failed to spawn kernel worker thread")
    }
}

impl Drop for DeviceEngine {
    fn drop(&mut self) {
        // Best-effort cleanup if the user forgot to call `shutdown`.
        self.shutdown_flag.store(true, Ordering::Relaxed);
        self.abort_all();
        {
            let mut st = self.inner.state.lock();
            st.shutdown = true;
        }
        self.inner.work_cv.notify_all();
        if let Some(h) = self.dispatcher.lock().take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{GpuId, GpuSpec};
    use crate::kernel::FnKernel;
    use crate::stream::{StreamId, DEFAULT_STREAM};
    use std::sync::atomic::AtomicUsize;

    fn engine_with_slots(slots: u32) -> Arc<DeviceEngine> {
        DeviceEngine::new(GpuDevice::new(GpuId(0), GpuSpec::tiny(slots)))
    }

    #[test]
    fn kernels_on_one_stream_run_in_fifo_order() {
        let engine = engine_with_slots(4);
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for i in 0..5 {
            let order = Arc::clone(&order);
            let h = engine
                .launch(
                    DEFAULT_STREAM,
                    Box::new(FnKernel::new(format!("k{i}"), move |_| {
                        order.lock().push(i);
                        KernelOutcome::Completed
                    })),
                )
                .unwrap();
            handles.push(h);
        }
        for h in handles {
            assert_eq!(
                h.wait_timeout(Duration::from_secs(5)),
                KernelStatus::Completed
            );
        }
        assert_eq!(*order.lock(), vec![0, 1, 2, 3, 4]);
        engine.shutdown();
    }

    #[test]
    fn kernels_on_different_streams_run_concurrently() {
        let engine = engine_with_slots(2);
        let in_flight = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for i in 0..2 {
            let in_flight = Arc::clone(&in_flight);
            let peak = Arc::clone(&peak);
            let h = engine
                .launch(
                    StreamId(i + 1),
                    Box::new(FnKernel::new("concurrent", move |_| {
                        let n = in_flight.fetch_add(1, Ordering::SeqCst) + 1;
                        peak.fetch_max(n, Ordering::SeqCst);
                        std::thread::sleep(Duration::from_millis(50));
                        in_flight.fetch_sub(1, Ordering::SeqCst);
                        KernelOutcome::Completed
                    })),
                )
                .unwrap();
            handles.push(h);
        }
        for h in handles {
            assert_eq!(
                h.wait_timeout(Duration::from_secs(5)),
                KernelStatus::Completed
            );
        }
        assert_eq!(peak.load(Ordering::SeqCst), 2);
        engine.shutdown();
    }

    #[test]
    fn concurrency_is_bounded_by_residency_slots() {
        let engine = engine_with_slots(1);
        let in_flight = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for i in 0..3 {
            let in_flight = Arc::clone(&in_flight);
            let peak = Arc::clone(&peak);
            let h = engine
                .launch(
                    StreamId(i + 1),
                    Box::new(FnKernel::new("bounded", move |_| {
                        let n = in_flight.fetch_add(1, Ordering::SeqCst) + 1;
                        peak.fetch_max(n, Ordering::SeqCst);
                        std::thread::sleep(Duration::from_millis(20));
                        in_flight.fetch_sub(1, Ordering::SeqCst);
                        KernelOutcome::Completed
                    })),
                )
                .unwrap();
            handles.push(h);
        }
        for h in handles {
            assert_eq!(
                h.wait_timeout(Duration::from_secs(5)),
                KernelStatus::Completed
            );
        }
        assert_eq!(peak.load(Ordering::SeqCst), 1);
        engine.shutdown();
    }

    #[test]
    fn synchronize_waits_for_prior_kernels() {
        let engine = engine_with_slots(2);
        let done = Arc::new(AtomicBool::new(false));
        let done2 = Arc::clone(&done);
        engine
            .launch(
                StreamId(1),
                Box::new(FnKernel::new("slow", move |_| {
                    std::thread::sleep(Duration::from_millis(80));
                    done2.store(true, Ordering::SeqCst);
                    KernelOutcome::Completed
                })),
            )
            .unwrap();
        engine.synchronize();
        assert!(done.load(Ordering::SeqCst));
        engine.shutdown();
    }

    #[test]
    fn kernels_after_barrier_wait_for_kernels_before_it() {
        let engine = engine_with_slots(4);
        let order = Arc::new(Mutex::new(Vec::new()));
        let o1 = Arc::clone(&order);
        engine
            .launch(
                StreamId(1),
                Box::new(FnKernel::new("before", move |_| {
                    std::thread::sleep(Duration::from_millis(60));
                    o1.lock().push("before");
                    KernelOutcome::Completed
                })),
            )
            .unwrap();
        // Issue the barrier without blocking the test thread.
        let engine2 = Arc::clone(&engine);
        let sync_thread = std::thread::spawn(move || {
            engine2.synchronize();
        });
        std::thread::sleep(Duration::from_millis(5));
        let o2 = Arc::clone(&order);
        let after = engine
            .launch(
                StreamId(2),
                Box::new(FnKernel::new("after", move |_| {
                    o2.lock().push("after");
                    KernelOutcome::Completed
                })),
            )
            .unwrap();
        assert_eq!(
            after.wait_timeout(Duration::from_secs(5)),
            KernelStatus::Completed
        );
        sync_thread.join().unwrap();
        assert_eq!(*order.lock(), vec!["before", "after"]);
        engine.shutdown();
    }

    #[test]
    fn abort_all_unblocks_busy_waiting_kernels() {
        let engine = engine_with_slots(1);
        let h = engine
            .launch(
                StreamId(1),
                Box::new(FnKernel::new("spin", move |ctx: &KernelCtx| {
                    while !ctx.should_abort() {
                        std::hint::spin_loop();
                    }
                    KernelOutcome::Aborted
                })),
            )
            .unwrap();
        // Give it time to start, then abort.
        std::thread::sleep(Duration::from_millis(30));
        engine.abort_all();
        assert_eq!(
            h.wait_timeout(Duration::from_secs(5)),
            KernelStatus::Aborted
        );
        engine.shutdown();
    }

    #[test]
    fn abort_all_drops_queued_kernels() {
        let engine = engine_with_slots(1);
        let blocker = engine
            .launch(
                StreamId(1),
                Box::new(FnKernel::new("blocker", move |ctx: &KernelCtx| {
                    while !ctx.should_abort() {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    KernelOutcome::Aborted
                })),
            )
            .unwrap();
        let queued = engine
            .launch(
                StreamId(1),
                Box::new(FnKernel::new("queued", |_| KernelOutcome::Completed)),
            )
            .unwrap();
        std::thread::sleep(Duration::from_millis(30));
        engine.abort_all();
        assert_eq!(
            queued.wait_timeout(Duration::from_secs(5)),
            KernelStatus::Aborted
        );
        assert_eq!(
            blocker.wait_timeout(Duration::from_secs(5)),
            KernelStatus::Aborted
        );
        engine.shutdown();
    }

    #[test]
    fn launch_rejects_impossible_shared_memory() {
        let engine = engine_with_slots(1);
        let dev_limit = engine.device().spec().shared_mem_per_block;
        let result = engine.launch(
            StreamId(1),
            Box::new(
                FnKernel::new("huge", |_| KernelOutcome::Completed).with_shared_mem(dev_limit + 1),
            ),
        );
        assert!(matches!(result, Err(LaunchError::Unsatisfiable(_))));
        engine.shutdown();
    }

    #[test]
    fn launch_after_shutdown_fails() {
        let engine = engine_with_slots(1);
        engine.shutdown();
        let result = engine.launch(
            StreamId(1),
            Box::new(FnKernel::new("late", |_| KernelOutcome::Completed)),
        );
        assert!(matches!(result, Err(LaunchError::Shutdown)));
    }

    #[test]
    fn synchronize_timeout_reports_unfinished_work() {
        let engine = engine_with_slots(1);
        let h = engine
            .launch(
                StreamId(1),
                Box::new(FnKernel::new("spin", move |ctx: &KernelCtx| {
                    while !ctx.should_abort() {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    KernelOutcome::Aborted
                })),
            )
            .unwrap();
        assert!(!engine.synchronize_timeout(SyncKind::Explicit, Some(Duration::from_millis(50))));
        engine.abort_all();
        h.wait_timeout(Duration::from_secs(5));
        engine.shutdown();
    }
}
