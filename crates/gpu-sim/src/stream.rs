//! CUDA-stream identifiers and per-stream bookkeeping.
//!
//! Kernels launched on the same stream execute in FIFO order; kernels on
//! different streams may execute concurrently if residency slots allow. The
//! "single queue" deadlock situation of Fig. 1(c) corresponds to issuing all
//! collectives on one stream.

/// Identifier of a CUDA-like stream on one device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StreamId(pub usize);

/// The default stream. Work on the default stream implicitly synchronizes with
/// other streams in real CUDA; the engine models that via an implicit
/// synchronization barrier when requested by the caller.
pub const DEFAULT_STREAM: StreamId = StreamId(0);

impl std::fmt::Display for StreamId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "stream{}", self.0)
    }
}

impl StreamId {
    /// Whether this is the default stream.
    pub fn is_default(&self) -> bool {
        *self == DEFAULT_STREAM
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_stream_is_stream_zero() {
        assert!(DEFAULT_STREAM.is_default());
        assert!(!StreamId(3).is_default());
        assert_eq!(format!("{}", StreamId(3)), "stream3");
    }

    #[test]
    fn stream_ids_order_and_hash() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(StreamId(1));
        set.insert(StreamId(2));
        set.insert(StreamId(1));
        assert_eq!(set.len(), 2);
        assert!(StreamId(1) < StreamId(2));
    }
}
