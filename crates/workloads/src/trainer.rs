//! The training-loop driver: runs a [`TrainingPlan`] for N iterations against
//! either DFCCL or the NCCL-like baseline under a CPU orchestration strategy,
//! and reports per-iteration times / throughput (the quantities plotted in
//! Figs. 10, 12 and 13).
//!
//! One thread per GPU executes the per-iteration schedule: simulated compute
//! (a busy-spin proportional to the plan's compute units), then the GPU's
//! collectives. With DFCCL the collectives are submitted asynchronously in
//! whatever order they become ready (optionally jittered per GPU — DFCCL
//! tolerates the disorder); with the baseline they are launched as blocking
//! kernels in the orchestration strategy's imposed order, and the strategy's
//! per-iteration coordination cost is charged on every GPU.

use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use dfccl::{DfcclConfig, DfcclDomain};
use dfccl_baseline::orchestration::build_strategy;
use dfccl_baseline::{NcclDomain, StrategyKind};
use dfccl_collectives::DeviceBuffer;
use dfccl_transport::{LinkModel, Topology};
use gpu_sim::{busy_spin, GpuSpec, StreamId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::parallelism::TrainingPlan;

/// Which communication backend a training run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// DFCCL (this paper).
    Dfccl,
    /// NCCL-like kernels coordinated by a CPU orchestration strategy.
    NcclOrchestrated(StrategyKind),
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendKind::Dfccl => write!(f, "DFCCL"),
            BackendKind::NcclOrchestrated(s) => write!(f, "NCCL + {s}"),
        }
    }
}

/// Trainer configuration.
#[derive(Debug, Clone)]
pub struct TrainerConfig {
    /// Number of training iterations.
    pub iterations: usize,
    /// Wall-clock time charged per compute unit of the plan.
    pub compute_time_per_unit: Duration,
    /// Compression factor applied to the Table 2 link model (higher = faster).
    pub link_compression: f64,
    /// Use zero-cost links instead of the Table 2 model (fast logic tests).
    pub zero_cost_links: bool,
    /// Chunk size (elements) for collective plans.
    pub chunk_elems: usize,
    /// With DFCCL, randomly swap adjacent ready collectives on each GPU each
    /// iteration with this probability — the natural invocation disorder that
    /// DFCCL tolerates without CPU orchestration.
    pub dfccl_disorder_prob: f64,
    /// RNG seed for the disorder jitter.
    pub seed: u64,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        TrainerConfig {
            iterations: 200,
            compute_time_per_unit: Duration::from_nanos(40),
            link_compression: 1_000.0,
            zero_cost_links: false,
            chunk_elems: 32 * 1024,
            dfccl_disorder_prob: 0.05,
            seed: 0xD0F,
        }
    }
}

impl TrainerConfig {
    /// A configuration for fast correctness tests (few iterations, free links).
    pub fn fast_test(iterations: usize) -> Self {
        TrainerConfig {
            iterations,
            compute_time_per_unit: Duration::ZERO,
            zero_cost_links: true,
            link_compression: 1.0,
            chunk_elems: 8 * 1024,
            dfccl_disorder_prob: 0.2,
            seed: 7,
        }
    }

    fn link_model(&self) -> LinkModel {
        if self.zero_cost_links {
            LinkModel::zero_cost()
        } else {
            LinkModel::table2_compressed(self.link_compression)
        }
    }
}

/// Result of one training run.
#[derive(Debug, Clone)]
pub struct TrainingReport {
    /// Which backend produced it.
    pub backend: String,
    /// Per-iteration wall-clock times (max across GPUs).
    pub iteration_times: Vec<Duration>,
    /// Samples consumed per iteration (global batch).
    pub samples_per_iteration: usize,
}

impl TrainingReport {
    /// Mean per-iteration time.
    pub fn mean_iteration(&self) -> Duration {
        if self.iteration_times.is_empty() {
            return Duration::ZERO;
        }
        let total: Duration = self.iteration_times.iter().sum();
        total / self.iteration_times.len() as u32
    }

    /// Average training throughput in samples per second.
    pub fn throughput(&self) -> f64 {
        let mean = self.mean_iteration().as_secs_f64();
        if mean == 0.0 {
            return 0.0;
        }
        self.samples_per_iteration as f64 / mean
    }

    /// Coefficient of variation of the per-iteration time (Fig. 13 reports
    /// 1.4-4.3%).
    pub fn coefficient_of_variation(&self) -> f64 {
        let n = self.iteration_times.len();
        if n < 2 {
            return 0.0;
        }
        let mean = self.mean_iteration().as_secs_f64();
        if mean == 0.0 {
            return 0.0;
        }
        let var = self
            .iteration_times
            .iter()
            .map(|t| (t.as_secs_f64() - mean).powi(2))
            .sum::<f64>()
            / (n - 1) as f64;
        var.sqrt() / mean
    }

    /// Average throughput from the start up to each iteration — the curve
    /// style used in Fig. 12.
    pub fn cumulative_throughput(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.iteration_times.len());
        let mut total = Duration::ZERO;
        for (i, t) in self.iteration_times.iter().enumerate() {
            total += *t;
            let mean = total.as_secs_f64() / (i + 1) as f64;
            out.push(if mean > 0.0 {
                self.samples_per_iteration as f64 / mean
            } else {
                0.0
            });
        }
        out
    }
}

/// Run `plan` for the configured number of iterations on the chosen backend.
/// `samples_per_iteration` is the global batch size used for throughput.
pub fn train(
    plan: &TrainingPlan,
    backend: BackendKind,
    cfg: &TrainerConfig,
    samples_per_iteration: usize,
) -> TrainingReport {
    let per_gpu_times = match backend {
        BackendKind::Dfccl => train_dfccl(plan, cfg),
        BackendKind::NcclOrchestrated(strategy) => train_nccl(plan, strategy, cfg),
    };
    // Iteration time = slowest GPU that iteration.
    let iterations = per_gpu_times.first().map(Vec::len).unwrap_or(0);
    let mut iteration_times = Vec::with_capacity(iterations);
    for i in 0..iterations {
        let max = per_gpu_times
            .iter()
            .map(|ts| ts[i])
            .max()
            .unwrap_or(Duration::ZERO);
        iteration_times.push(max);
    }
    TrainingReport {
        backend: backend.to_string(),
        iteration_times,
        samples_per_iteration,
    }
}

fn compute_spin(plan: &TrainingPlan, cfg: &TrainerConfig) {
    let nanos = plan.compute_units * cfg.compute_time_per_unit.as_nanos() as f64;
    busy_spin(Duration::from_nanos(nanos as u64));
}

fn train_dfccl(plan: &TrainingPlan, cfg: &TrainerConfig) -> Vec<Vec<Duration>> {
    let n = plan.gpus.len();
    let domain = DfcclDomain::new(
        Topology::flat(n),
        cfg.link_model(),
        GpuSpec::rtx_3090(),
        DfcclConfig {
            chunk_elems: cfg.chunk_elems,
            ..DfcclConfig::default()
        },
    );
    // Register every collective on every participating rank.
    let ranks: Vec<Arc<dfccl::RankCtx>> = plan
        .gpus
        .iter()
        .map(|&g| Arc::new(domain.init_rank(g).expect("rank init")))
        .collect();
    for pc in &plan.collectives {
        for gpu in &pc.desc.devices {
            let rank = &ranks[gpu.0];
            rank.register(pc.coll_id, pc.desc.clone())
                .expect("register");
        }
    }
    let barrier = Arc::new(Barrier::new(n));
    let plan = Arc::new(plan.clone());
    let cfg = Arc::new(cfg.clone());
    let mut joins = Vec::new();
    for (gpu_idx, rank) in ranks.iter().enumerate().take(n) {
        let rank = Arc::clone(rank);
        let barrier = Arc::clone(&barrier);
        let plan = Arc::clone(&plan);
        let cfg = Arc::clone(&cfg);
        joins.push(std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(cfg.seed ^ (gpu_idx as u64) << 32);
            let mut times = Vec::with_capacity(cfg.iterations);
            for _iter in 0..cfg.iterations {
                barrier.wait();
                let start = Instant::now();
                compute_spin(&plan, &cfg);
                // Natural per-GPU invocation order, possibly jittered.
                let mut order = plan.ready_order[gpu_idx].clone();
                if cfg.dfccl_disorder_prob > 0.0 {
                    for i in 0..order.len().saturating_sub(1) {
                        if rng.gen_bool(cfg.dfccl_disorder_prob.min(1.0)) {
                            order.swap(i, i + 1);
                        }
                    }
                }
                let mut handles = Vec::with_capacity(order.len());
                for ci in order {
                    let pc = &plan.collectives[ci];
                    let rank_idx = pc
                        .desc
                        .devices
                        .iter()
                        .position(|&d| d == plan.gpus[gpu_idx])
                        .expect("gpu participates");
                    let send = DeviceBuffer::zeroed(pc.desc.send_bytes(rank_idx));
                    let recv = DeviceBuffer::zeroed(pc.desc.recv_bytes(rank_idx).max(4));
                    handles.push(
                        rank.run_awaitable(pc.coll_id, send, recv)
                            .expect("run collective"),
                    );
                }
                for h in handles {
                    h.wait_for(1);
                }
                times.push(start.elapsed());
                barrier.wait();
            }
            times
        }));
    }
    let result: Vec<Vec<Duration>> = joins.into_iter().map(|j| j.join().unwrap()).collect();
    for rank in &ranks {
        rank.destroy();
    }
    result
}

fn train_nccl(
    plan: &TrainingPlan,
    strategy_kind: StrategyKind,
    cfg: &TrainerConfig,
) -> Vec<Vec<Duration>> {
    let n = plan.gpus.len();
    let domain = NcclDomain::new(
        Topology::flat(n),
        cfg.link_model(),
        GpuSpec::rtx_3090(),
        cfg.chunk_elems,
    );
    let ranks: Vec<Arc<dfccl_baseline::NcclRank>> = plan
        .gpus
        .iter()
        .map(|&g| Arc::new(domain.init_rank(g).expect("rank init")))
        .collect();
    for pc in &plan.collectives {
        for gpu in &pc.desc.devices {
            ranks[gpu.0]
                .register(pc.coll_id, pc.desc.clone())
                .expect("register");
        }
    }
    let barrier = Arc::new(Barrier::new(n));
    let plan = Arc::new(plan.clone());
    let cfg = Arc::new(cfg.clone());
    let mut joins = Vec::new();
    for (gpu_idx, rank) in ranks.iter().enumerate().take(n) {
        let rank = Arc::clone(rank);
        let barrier = Arc::clone(&barrier);
        let plan = Arc::clone(&plan);
        let cfg = Arc::clone(&cfg);
        joins.push(std::thread::spawn(move || {
            let strategy = build_strategy(strategy_kind);
            let mut times = Vec::with_capacity(cfg.iterations);
            for iter in 0..cfg.iterations {
                barrier.wait();
                let start = Instant::now();
                compute_spin(&plan, &cfg);
                // The CPU orchestration strategy imposes a consistent launch
                // order and charges its per-iteration coordination cost.
                let ready: Vec<u64> = plan.ready_order[gpu_idx]
                    .iter()
                    .map(|&ci| plan.collectives[ci].coll_id)
                    .collect();
                let imposed = strategy.imposed_order(&ready);
                busy_spin(strategy.iteration_overhead(ready.len(), plan.gpus.len(), iter as u64));
                let mut handles = Vec::with_capacity(imposed.len());
                for (k, coll_id) in imposed.iter().enumerate() {
                    let pc = plan
                        .collectives
                        .iter()
                        .find(|c| c.coll_id == *coll_id)
                        .expect("planned collective");
                    let rank_idx = pc
                        .desc
                        .devices
                        .iter()
                        .position(|&d| d == plan.gpus[gpu_idx])
                        .expect("gpu participates");
                    let send = DeviceBuffer::zeroed(pc.desc.send_bytes(rank_idx));
                    let recv = DeviceBuffer::zeroed(pc.desc.recv_bytes(rank_idx).max(4));
                    // Spread collectives over a few streams, as frameworks do.
                    let stream = StreamId(1 + (k % 3));
                    handles.push(
                        rank.launch_collective(*coll_id, stream, send, recv)
                            .expect("launch collective"),
                    );
                }
                for h in handles {
                    h.wait_timeout(Duration::from_secs(60));
                }
                times.push(start.elapsed());
                barrier.wait();
            }
            times
        }));
    }
    let result: Vec<Vec<Duration>> = joins.into_iter().map(|j| j.join().unwrap()).collect();
    domain.shutdown();
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::DnnModel;
    use crate::parallelism::{data_parallel_plan, tensor_parallel_plan, three_d_hybrid_plan};
    use gpu_sim::GpuId;

    fn tiny_model() -> DnnModel {
        DnnModel {
            name: "tiny".to_string(),
            parameters: 4_096,
            layers: 4,
            hidden: 32,
            gradient_buckets: 4,
            compute_per_sample: 0.1,
        }
    }

    fn gpus(n: usize) -> Vec<GpuId> {
        (0..n).map(GpuId).collect()
    }

    #[test]
    fn dfccl_data_parallel_training_runs_without_deadlock() {
        let plan = data_parallel_plan(&tiny_model(), &gpus(4), 8);
        let report = train(&plan, BackendKind::Dfccl, &TrainerConfig::fast_test(3), 32);
        assert_eq!(report.iteration_times.len(), 3);
        assert!(report.throughput() > 0.0);
        assert!(report.backend.contains("DFCCL"));
    }

    #[test]
    fn nccl_orchestrated_data_parallel_training_completes() {
        let plan = data_parallel_plan(&tiny_model(), &gpus(2), 8);
        for strategy in [
            StrategyKind::OneFlowStaticSort,
            StrategyKind::Horovod,
            StrategyKind::KungFu,
        ] {
            let report = train(
                &plan,
                BackendKind::NcclOrchestrated(strategy),
                &TrainerConfig::fast_test(2),
                16,
            );
            assert_eq!(report.iteration_times.len(), 2, "{strategy:?}");
            assert!(report.mean_iteration() > Duration::ZERO);
        }
    }

    #[test]
    fn dfccl_tensor_parallel_and_hybrid_plans_run() {
        let tp_plan = tensor_parallel_plan(&tiny_model(), &gpus(2), 4);
        let report = train(
            &tp_plan,
            BackendKind::Dfccl,
            &TrainerConfig::fast_test(2),
            4,
        );
        assert_eq!(report.iteration_times.len(), 2);

        let hybrid = three_d_hybrid_plan(&tiny_model(), 2, 2, 1, 4);
        let report = train(&hybrid, BackendKind::Dfccl, &TrainerConfig::fast_test(2), 8);
        assert_eq!(report.iteration_times.len(), 2);
    }

    #[test]
    fn report_statistics_are_consistent() {
        let report = TrainingReport {
            backend: "test".to_string(),
            iteration_times: vec![
                Duration::from_millis(10),
                Duration::from_millis(12),
                Duration::from_millis(8),
            ],
            samples_per_iteration: 100,
        };
        assert_eq!(report.mean_iteration(), Duration::from_millis(10));
        assert!((report.throughput() - 10_000.0).abs() < 1.0);
        assert!(report.coefficient_of_variation() > 0.0);
        let curve = report.cumulative_throughput();
        assert_eq!(curve.len(), 3);
        assert!(curve.iter().all(|&t| t > 0.0));
    }

    #[test]
    fn empty_report_is_harmless() {
        let report = TrainingReport {
            backend: "empty".to_string(),
            iteration_times: Vec::new(),
            samples_per_iteration: 1,
        };
        assert_eq!(report.mean_iteration(), Duration::ZERO);
        assert_eq!(report.throughput(), 0.0);
        assert_eq!(report.coefficient_of_variation(), 0.0);
        assert!(report.cumulative_throughput().is_empty());
    }
}
