//! # dfccl-workloads — distributed DNN training workloads
//!
//! The paper evaluates DFCCL against CPU-orchestrated NCCL on real training
//! jobs: data-parallel ResNet-50 (Fig. 10), ViT under data, tensor and
//! 3D-hybrid parallelism (Fig. 12), and Megatron-style GPT-2 under 3D-hybrid
//! parallelism (Fig. 13). This crate provides:
//!
//! * [`model`] — the models' communication-relevant shape (parameters, layers,
//!   gradient buckets, relative compute cost);
//! * [`parallelism`] — DP / TP / 3D-hybrid plans: which collectives exist,
//!   over which GPU groups, and in which order each GPU makes them ready;
//! * [`moe`] — the MoE expert-parallel workload: dispatch all-to-all →
//!   expert compute → combine all-to-all per layer, overlapped with
//!   data-parallel gradient all-reduces on the same devices;
//! * [`trainer`] — a training-loop driver that runs a plan for N iterations
//!   against DFCCL or against NCCL-like kernels coordinated by one of the
//!   Sec. 2.5 orchestration strategies, reporting per-iteration times,
//!   throughput and its coefficient of variation.

pub mod model;
pub mod moe;
pub mod parallelism;
pub mod trainer;

pub use model::DnnModel;
pub use moe::{train_moe, MoeConfig};
pub use parallelism::{
    data_parallel_plan, tensor_parallel_plan, three_d_hybrid_plan, ParallelismKind,
    PlannedCollective, TrainingPlan,
};
pub use trainer::{train, BackendKind, TrainerConfig, TrainingReport};
