//! The MoE expert-parallel workload: per MoE layer, a **dispatch all-to-all**
//! routes each rank's tokens to the experts, the expert FFN computes, and a
//! **combine all-to-all** routes the results back — overlapped with
//! data-parallel gradient all-reduces over the *same* devices. Every rank
//! therefore has at least two communicators live at once (the layer's
//! expert-parallel all-to-all and the gradient all-reduce), submitted in
//! whatever order they become ready: the paper's Fig. 1 disorder setting made
//! real on the dense connector mesh.
//!
//! With DFCCL the combines and gradient all-reduces are submitted
//! asynchronously (jittered per GPU) and the daemon's preemption untangles
//! the disorder; with the NCCL-like baseline every kernel is blocking, so the
//! driver imposes the orchestration strategy's consistent launch order — the
//! CPU coordination DFCCL exists to remove. The deliberately *disordered*
//! baseline runs (which wedge) live in `tests/stress.rs`, not here.

use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use dfccl::{DfcclConfig, DfcclDomain};
use dfccl_baseline::orchestration::build_strategy;
use dfccl_baseline::NcclDomain;
use dfccl_collectives::{DataType, DeviceBuffer, ReduceOp};
use dfccl_transport::{LinkModel, Topology};
use gpu_sim::{busy_spin, GpuId, GpuSpec, StreamId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::trainer::{BackendKind, TrainingReport};

/// Collective-id base for the data-parallel gradient all-reduces (dispatch
/// and combine all-to-alls use `2*layer` and `2*layer + 1`).
const DP_ID_BASE: u64 = 1_000;

/// Shape of one MoE expert-parallel training run. Every GPU hosts one expert;
/// the expert-parallel group is the full device set.
#[derive(Debug, Clone)]
pub struct MoeConfig {
    /// Number of MoE layers per iteration (one dispatch + one combine each).
    pub layers: usize,
    /// Elements each rank routes to each expert per layer (the all-to-all's
    /// per-pair slice; buffers hold `slice_elems * n` elements).
    pub slice_elems: usize,
    /// Data-parallel gradient buckets all-reduced each iteration.
    pub grad_buckets: usize,
    /// Elements per gradient bucket.
    pub bucket_elems: usize,
    /// Training iterations.
    pub iterations: usize,
    /// Simulated expert-FFN compute per MoE layer.
    pub expert_compute: Duration,
    /// Chunk size (elements) for collective plans.
    pub chunk_elems: usize,
    /// With DFCCL, probability of swapping adjacent ready collectives in the
    /// backward mix on each GPU — the natural invocation disorder.
    pub disorder_prob: f64,
    /// RNG seed for the disorder jitter (reproducible per run).
    pub seed: u64,
}

impl MoeConfig {
    /// A configuration for fast correctness tests.
    pub fn fast_test(iterations: usize) -> Self {
        MoeConfig {
            layers: 2,
            slice_elems: 64,
            grad_buckets: 3,
            bucket_elems: 256,
            iterations,
            expert_compute: Duration::ZERO,
            chunk_elems: 32,
            disorder_prob: 0.3,
            seed: 11,
        }
    }

    fn dispatch_id(&self, layer: usize) -> u64 {
        2 * layer as u64
    }

    fn combine_id(&self, layer: usize) -> u64 {
        2 * layer as u64 + 1
    }

    fn dp_id(&self, bucket: usize) -> u64 {
        DP_ID_BASE + bucket as u64
    }

    /// The backward-pass ready order of one GPU for one iteration: gradient
    /// buckets in reverse layer order, adjacent-swapped with the configured
    /// disorder probability. Seeded, so a (seed, gpu, iteration) triple always
    /// produces the same order — stress runs are reproducible.
    pub fn backward_order(&self, gpu: usize, iteration: u64) -> Vec<u64> {
        let mut order: Vec<u64> = (0..self.grad_buckets)
            .rev()
            .map(|b| self.dp_id(b))
            .collect();
        if self.disorder_prob > 0.0 {
            let mut rng =
                StdRng::seed_from_u64(self.seed ^ ((gpu as u64) << 32) ^ (iteration << 16));
            for i in 0..order.len().saturating_sub(1) {
                if rng.gen_bool(self.disorder_prob.min(1.0)) {
                    order.swap(i, i + 1);
                }
            }
        }
        order
    }
}

/// Run the MoE workload over `gpus` on the chosen backend.
/// `samples_per_iteration` is the global token batch used for throughput.
pub fn train_moe(
    gpus: &[GpuId],
    backend: BackendKind,
    cfg: &MoeConfig,
    samples_per_iteration: usize,
) -> TrainingReport {
    assert!(
        gpus.len() >= 2,
        "expert parallelism needs at least two GPUs"
    );
    let per_gpu_times = match backend {
        BackendKind::Dfccl => moe_dfccl(gpus, cfg),
        BackendKind::NcclOrchestrated(strategy) => moe_nccl(gpus, strategy, cfg),
    };
    let iterations = per_gpu_times.first().map(Vec::len).unwrap_or(0);
    let mut iteration_times = Vec::with_capacity(iterations);
    for i in 0..iterations {
        let max = per_gpu_times
            .iter()
            .map(|ts| ts[i])
            .max()
            .unwrap_or(Duration::ZERO);
        iteration_times.push(max);
    }
    TrainingReport {
        backend: format!("MoE {backend}"),
        iteration_times,
        samples_per_iteration,
    }
}

fn a2a_buffers(cfg: &MoeConfig, n: usize) -> (DeviceBuffer, DeviceBuffer) {
    let bytes = cfg.slice_elems * n * 4;
    (DeviceBuffer::zeroed(bytes), DeviceBuffer::zeroed(bytes))
}

fn dp_buffers(cfg: &MoeConfig) -> (DeviceBuffer, DeviceBuffer) {
    let bytes = cfg.bucket_elems * 4;
    (DeviceBuffer::zeroed(bytes), DeviceBuffer::zeroed(bytes))
}

fn moe_dfccl(gpus: &[GpuId], cfg: &MoeConfig) -> Vec<Vec<Duration>> {
    let n = gpus.len();
    let domain = DfcclDomain::new(
        Topology::flat(n),
        LinkModel::zero_cost(),
        GpuSpec::rtx_3090(),
        DfcclConfig {
            chunk_elems: cfg.chunk_elems,
            ..DfcclConfig::for_testing()
        },
    );
    let ranks: Vec<Arc<dfccl::RankCtx>> = gpus
        .iter()
        .map(|&g| Arc::new(domain.init_rank(g).expect("rank init")))
        .collect();
    for rank in &ranks {
        for l in 0..cfg.layers {
            for id in [cfg.dispatch_id(l), cfg.combine_id(l)] {
                rank.register_all_to_all(id, cfg.slice_elems, DataType::F32, gpus.to_vec(), 0)
                    .expect("register all-to-all");
            }
        }
        for b in 0..cfg.grad_buckets {
            rank.register_all_reduce(
                cfg.dp_id(b),
                cfg.bucket_elems,
                DataType::F32,
                ReduceOp::Sum,
                gpus.to_vec(),
                0,
            )
            .expect("register all-reduce");
        }
    }
    let barrier = Arc::new(Barrier::new(n));
    let cfg = Arc::new(cfg.clone());
    let mut joins = Vec::new();
    for (gpu_idx, rank) in ranks.iter().enumerate() {
        let rank = Arc::clone(rank);
        let barrier = Arc::clone(&barrier);
        let cfg = Arc::clone(&cfg);
        joins.push(std::thread::spawn(move || {
            let n = rank.domain().topology().gpu_count();
            let mut times = Vec::with_capacity(cfg.iterations);
            for iter in 0..cfg.iterations {
                barrier.wait();
                let start = Instant::now();
                let mut handles = Vec::new();
                for l in 0..cfg.layers {
                    // Dispatch must land before the expert can compute...
                    let (send, recv) = a2a_buffers(&cfg, n);
                    assert!(
                        rank.run_awaitable(cfg.dispatch_id(l), send, recv)
                            .expect("dispatch")
                            .wait_for_timeout(1, Duration::from_secs(60)),
                        "gpu {gpu_idx} iter {iter}: dispatch of layer {l} wedged"
                    );
                    busy_spin(cfg.expert_compute);
                    // ...but the combine overlaps the next layer's dispatch
                    // and the backward all-reduces — a second live
                    // communicator per rank.
                    let (send, recv) = a2a_buffers(&cfg, n);
                    handles.push(
                        rank.run_awaitable(cfg.combine_id(l), send, recv)
                            .expect("combine"),
                    );
                }
                for id in cfg.backward_order(gpu_idx, iter as u64) {
                    let (send, recv) = dp_buffers(&cfg);
                    handles.push(rank.run_awaitable(id, send, recv).expect("all-reduce"));
                }
                for h in handles {
                    assert!(
                        h.wait_for_timeout(1, Duration::from_secs(60)),
                        "gpu {gpu_idx} iter {iter}: an in-flight collective wedged"
                    );
                }
                times.push(start.elapsed());
                barrier.wait();
            }
            times
        }));
    }
    let result: Vec<Vec<Duration>> = joins.into_iter().map(|j| j.join().unwrap()).collect();
    for rank in &ranks {
        assert!(
            rank.collective_errors().is_empty(),
            "MoE run recorded collective errors"
        );
        rank.destroy();
    }
    result
}

fn moe_nccl(
    gpus: &[GpuId],
    strategy_kind: dfccl_baseline::StrategyKind,
    cfg: &MoeConfig,
) -> Vec<Vec<Duration>> {
    let n = gpus.len();
    let domain = NcclDomain::new(
        Topology::flat(n),
        LinkModel::zero_cost(),
        GpuSpec::rtx_3090(),
        cfg.chunk_elems,
    );
    let ranks: Vec<Arc<dfccl_baseline::NcclRank>> = gpus
        .iter()
        .map(|&g| Arc::new(domain.init_rank(g).expect("rank init")))
        .collect();
    for rank in &ranks {
        for l in 0..cfg.layers {
            for id in [cfg.dispatch_id(l), cfg.combine_id(l)] {
                rank.register(
                    id,
                    dfccl_collectives::CollectiveDescriptor::all_to_all(
                        cfg.slice_elems,
                        DataType::F32,
                        gpus.to_vec(),
                    ),
                )
                .expect("register all-to-all");
            }
        }
        for b in 0..cfg.grad_buckets {
            rank.register(
                cfg.dp_id(b),
                dfccl_collectives::CollectiveDescriptor::all_reduce(
                    cfg.bucket_elems,
                    DataType::F32,
                    ReduceOp::Sum,
                    gpus.to_vec(),
                ),
            )
            .expect("register all-reduce");
        }
    }
    let barrier = Arc::new(Barrier::new(n));
    let cfg = Arc::new(cfg.clone());
    let mut joins = Vec::new();
    for rank in &ranks {
        let rank = Arc::clone(rank);
        let barrier = Arc::clone(&barrier);
        let cfg = Arc::clone(&cfg);
        joins.push(std::thread::spawn(move || {
            let strategy = build_strategy(strategy_kind);
            let mut times = Vec::with_capacity(cfg.iterations);
            for iter in 0..cfg.iterations {
                barrier.wait();
                let start = Instant::now();
                let mut handles = Vec::new();
                for l in 0..cfg.layers {
                    let (send, recv) = a2a_buffers(&cfg, n);
                    let dispatch = rank
                        .launch_collective(cfg.dispatch_id(l), StreamId(1), send, recv)
                        .expect("dispatch");
                    assert_eq!(
                        dispatch.wait_timeout(Duration::from_secs(60)),
                        gpu_sim::KernelStatus::Completed,
                        "baseline dispatch of layer {l} did not complete (iter {iter})"
                    );
                    busy_spin(cfg.expert_compute);
                    let (send, recv) = a2a_buffers(&cfg, n);
                    // Combines stay in flight, but in the same layer order on
                    // every GPU — blocking kernels tolerate no disorder.
                    handles.push(
                        rank.launch_collective(cfg.combine_id(l), StreamId(2 + l % 2), send, recv)
                            .expect("combine"),
                    );
                }
                // The orchestration strategy imposes one consistent gradient
                // order and charges its coordination cost.
                let ready: Vec<u64> = (0..cfg.grad_buckets).rev().map(|b| cfg.dp_id(b)).collect();
                let imposed = strategy.imposed_order(&ready);
                busy_spin(strategy.iteration_overhead(ready.len(), n, iter as u64));
                for (k, id) in imposed.iter().enumerate() {
                    let (send, recv) = dp_buffers(&cfg);
                    handles.push(
                        rank.launch_collective(*id, StreamId(1 + k % 3), send, recv)
                            .expect("all-reduce"),
                    );
                }
                for h in handles {
                    assert_eq!(
                        h.wait_timeout(Duration::from_secs(60)),
                        gpu_sim::KernelStatus::Completed,
                        "a baseline kernel wedged or failed (iter {iter})"
                    );
                }
                times.push(start.elapsed());
                barrier.wait();
            }
            times
        }));
    }
    let result: Vec<Vec<Duration>> = joins.into_iter().map(|j| j.join().unwrap()).collect();
    domain.shutdown();
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfccl_baseline::StrategyKind;

    fn gpus(n: usize) -> Vec<GpuId> {
        (0..n).map(GpuId).collect()
    }

    #[test]
    fn moe_trains_on_dfccl_with_disorder() {
        let cfg = MoeConfig {
            disorder_prob: 0.5,
            ..MoeConfig::fast_test(3)
        };
        let report = train_moe(&gpus(4), BackendKind::Dfccl, &cfg, 64);
        assert_eq!(report.iteration_times.len(), 3);
        assert!(report.throughput() > 0.0);
        assert!(report.backend.contains("MoE"));
        assert!(report.backend.contains("DFCCL"));
    }

    #[test]
    fn moe_trains_on_the_nccl_baseline_under_consistent_order() {
        let report = train_moe(
            &gpus(2),
            BackendKind::NcclOrchestrated(StrategyKind::OneFlowStaticSort),
            &MoeConfig::fast_test(2),
            32,
        );
        assert_eq!(report.iteration_times.len(), 2);
        assert!(report.mean_iteration() > Duration::ZERO);
    }

    #[test]
    fn backward_order_is_seed_stable_and_disorder_varies_it() {
        let cfg = MoeConfig {
            grad_buckets: 8,
            disorder_prob: 0.5,
            ..MoeConfig::fast_test(1)
        };
        assert_eq!(cfg.backward_order(1, 3), cfg.backward_order(1, 3));
        // Across GPUs / iterations the jitter differs somewhere.
        let varied = (0..4)
            .flat_map(|g| (0..4).map(move |i| (g, i)))
            .any(|(g, i)| cfg.backward_order(g, i) != cfg.backward_order(0, 0));
        assert!(varied, "disorder never produced a different order");
        let ordered = MoeConfig {
            disorder_prob: 0.0,
            ..cfg
        };
        let expected: Vec<u64> = (0..8).rev().map(|b| DP_ID_BASE + b as u64).collect();
        assert_eq!(ordered.backward_order(2, 5), expected);
    }

    #[test]
    #[should_panic(expected = "at least two GPUs")]
    fn moe_needs_two_gpus() {
        let _ = train_moe(&gpus(1), BackendKind::Dfccl, &MoeConfig::fast_test(1), 1);
    }
}
