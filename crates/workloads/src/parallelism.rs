//! Parallelism strategies and the per-GPU collective schedules they generate.
//!
//! A [`TrainingPlan`] captures one training iteration's communication: which
//! collectives exist (with their device groups and sizes) and in what order
//! each GPU naturally makes them ready. Data parallelism produces one
//! all-reduce per gradient bucket over all GPUs (issued in bursts during the
//! backward pass, in reverse layer order). Tensor parallelism produces
//! per-layer all-reduces within each TP group. 3D-hybrid parallelism combines
//! TP and DP groups per pipeline stage (Fig. 3); pipeline send/recv is modelled
//! as part of the per-stage compute time (it is point-to-point, not a
//! collective, and does not interact with the deadlock mechanisms studied
//! here).

use dfccl_collectives::{CollectiveDescriptor, DataType, ReduceOp};
use gpu_sim::GpuId;

use crate::model::DnnModel;

/// One collective of the plan.
#[derive(Debug, Clone)]
pub struct PlannedCollective {
    /// Globally unique collective id within the plan.
    pub coll_id: u64,
    /// Descriptor (kind, element count, device group, priority).
    pub desc: CollectiveDescriptor,
}

/// Which parallelism produced the plan (used for reporting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParallelismKind {
    /// Pure data parallelism.
    DataParallel,
    /// Pure tensor parallelism.
    TensorParallel,
    /// 3D hybrid (TP × DP × PP).
    ThreeDHybrid,
}

impl std::fmt::Display for ParallelismKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ParallelismKind::DataParallel => "data parallelism",
            ParallelismKind::TensorParallel => "tensor parallelism",
            ParallelismKind::ThreeDHybrid => "3D hybrid parallelism",
        };
        write!(f, "{s}")
    }
}

/// The communication plan of one training iteration.
#[derive(Debug, Clone)]
pub struct TrainingPlan {
    /// The model being trained.
    pub model: DnnModel,
    /// Which parallelism generated this plan.
    pub parallelism: ParallelismKind,
    /// All GPUs participating.
    pub gpus: Vec<GpuId>,
    /// Every collective of one iteration.
    pub collectives: Vec<PlannedCollective>,
    /// For each GPU, the order in which its collectives become ready
    /// (indices into `collectives`).
    pub ready_order: Vec<Vec<usize>>,
    /// Per-GPU per-iteration compute cost in arbitrary units (scaled to wall
    /// time by the trainer).
    pub compute_units: f64,
}

impl TrainingPlan {
    /// Collectives a particular GPU participates in, in its ready order.
    pub fn gpu_collectives(&self, gpu_index: usize) -> Vec<&PlannedCollective> {
        self.ready_order[gpu_index]
            .iter()
            .map(|&i| &self.collectives[i])
            .collect()
    }

    /// Total bytes a single GPU contributes to communication per iteration.
    pub fn bytes_per_gpu(&self, gpu_index: usize) -> usize {
        self.gpu_collectives(gpu_index)
            .iter()
            .map(|c| c.desc.wire_bytes_per_rank())
            .sum()
    }
}

fn f32_all_reduce(coll_id: u64, elems: usize, devices: Vec<GpuId>) -> PlannedCollective {
    PlannedCollective {
        coll_id,
        desc: CollectiveDescriptor::all_reduce(elems.max(1), DataType::F32, ReduceOp::Sum, devices),
    }
}

/// Pure data parallelism over `gpus`: one all-reduce per gradient bucket,
/// ready in reverse layer order (the backward pass produces the last layer's
/// gradients first).
pub fn data_parallel_plan(model: &DnnModel, gpus: &[GpuId], per_gpu_batch: usize) -> TrainingPlan {
    assert!(gpus.len() >= 2, "data parallelism needs at least two GPUs");
    let bucket = model.bucket_elems();
    let collectives: Vec<PlannedCollective> = (0..model.gradient_buckets)
        .map(|b| f32_all_reduce(b as u64, bucket, gpus.to_vec()))
        .collect();
    // Backward pass readies buckets in reverse order on every GPU.
    let order: Vec<usize> = (0..collectives.len()).rev().collect();
    TrainingPlan {
        model: model.clone(),
        parallelism: ParallelismKind::DataParallel,
        gpus: gpus.to_vec(),
        ready_order: vec![order; gpus.len()],
        collectives,
        compute_units: model.compute_per_sample * per_gpu_batch as f64,
    }
}

/// Pure tensor parallelism over `gpus`: two all-reduces per layer (forward
/// activation reduction and backward gradient reduction) across the whole
/// group, ready in layer order then reverse layer order.
pub fn tensor_parallel_plan(
    model: &DnnModel,
    gpus: &[GpuId],
    per_gpu_batch: usize,
) -> TrainingPlan {
    assert!(
        gpus.len() >= 2,
        "tensor parallelism needs at least two GPUs"
    );
    // Activation-sized all-reduces: batch * hidden elements.
    let act_elems = (per_gpu_batch * model.hidden.max(1)).max(1);
    let mut collectives = Vec::new();
    for layer in 0..model.layers {
        collectives.push(f32_all_reduce((layer * 2) as u64, act_elems, gpus.to_vec()));
        collectives.push(f32_all_reduce(
            (layer * 2 + 1) as u64,
            act_elems,
            gpus.to_vec(),
        ));
    }
    // Forward all-reduces in layer order, backward ones in reverse.
    let mut order: Vec<usize> = (0..model.layers).map(|l| l * 2).collect();
    order.extend((0..model.layers).rev().map(|l| l * 2 + 1));
    TrainingPlan {
        model: model.clone(),
        parallelism: ParallelismKind::TensorParallel,
        gpus: gpus.to_vec(),
        ready_order: vec![order; gpus.len()],
        collectives,
        // TP splits the per-layer compute across the group.
        compute_units: model.compute_per_sample * per_gpu_batch as f64 / gpus.len() as f64,
    }
}

/// 3D-hybrid parallelism (Fig. 3): `tp * dp * pp` GPUs. Within each pipeline
/// stage there are `dp` TP groups of size `tp`; GPUs holding the same shard
/// across TP groups form DP groups of size `dp`. Per iteration every TP group
/// runs two all-reduces per stage layer, and every DP group runs one gradient
/// all-reduce per bucket of its stage's parameters.
pub fn three_d_hybrid_plan(
    model: &DnnModel,
    tp: usize,
    dp: usize,
    pp: usize,
    per_gpu_batch: usize,
) -> TrainingPlan {
    assert!(
        tp >= 2 || dp >= 2,
        "a hybrid plan needs at least one group dimension > 1"
    );
    let gpu_count = tp * dp * pp;
    let gpus: Vec<GpuId> = (0..gpu_count).map(GpuId).collect();
    let gpu_at = |p: usize, d: usize, t: usize| GpuId(p * tp * dp + d * tp + t);

    let layers_per_stage = (model.layers / pp.max(1)).max(1);
    let act_elems = (per_gpu_batch * model.hidden.max(1)).max(1);
    let stage_params = model.parameters / pp.max(1) / tp.max(1);
    let dp_buckets = (model.gradient_buckets / pp.max(1)).max(1);
    let bucket_elems = (stage_params / dp_buckets).max(1);

    let mut collectives = Vec::new();
    let mut ready: Vec<Vec<usize>> = vec![Vec::new(); gpu_count];
    let mut next_id = 0u64;

    // TP all-reduces (forward + backward per stage layer), one set per TP group.
    if tp >= 2 {
        for p in 0..pp {
            for d in 0..dp {
                let group: Vec<GpuId> = (0..tp).map(|t| gpu_at(p, d, t)).collect();
                for _layer in 0..layers_per_stage {
                    for _dir in 0..2 {
                        let idx = collectives.len();
                        collectives.push(f32_all_reduce(next_id, act_elems, group.clone()));
                        next_id += 1;
                        for g in &group {
                            ready[g.0].push(idx);
                        }
                    }
                }
            }
        }
    }
    // DP gradient all-reduces, one set per DP group.
    if dp >= 2 {
        for p in 0..pp {
            for t in 0..tp {
                let group: Vec<GpuId> = (0..dp).map(|d| gpu_at(p, d, t)).collect();
                for _bucket in 0..dp_buckets {
                    let idx = collectives.len();
                    collectives.push(f32_all_reduce(next_id, bucket_elems, group.clone()));
                    next_id += 1;
                    for g in &group {
                        ready[g.0].push(idx);
                    }
                }
            }
        }
    }
    TrainingPlan {
        model: model.clone(),
        parallelism: ParallelismKind::ThreeDHybrid,
        gpus,
        collectives,
        ready_order: ready,
        // Each GPU computes its stage shard over the microbatch; pipeline
        // bubbles are folded into the constant.
        compute_units: model.compute_per_sample * per_gpu_batch as f64 / (tp * pp) as f64 * 1.25,
    }
}

/// Sanity check that every collective's device set contains each GPU that has
/// it in its ready order (used by tests and the trainer).
pub fn validate_plan(plan: &TrainingPlan) -> bool {
    plan.ready_order.iter().enumerate().all(|(gpu_idx, order)| {
        order.iter().all(|&ci| {
            plan.collectives[ci]
                .desc
                .devices
                .contains(&plan.gpus[gpu_idx])
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpus(n: usize) -> Vec<GpuId> {
        (0..n).map(GpuId).collect()
    }

    #[test]
    fn data_parallel_plan_has_one_all_reduce_per_bucket() {
        let model = DnnModel::resnet50();
        let plan = data_parallel_plan(&model, &gpus(8), 48);
        assert_eq!(plan.collectives.len(), model.gradient_buckets);
        assert_eq!(plan.parallelism, ParallelismKind::DataParallel);
        assert!(validate_plan(&plan));
        // Reverse-order readiness: the last bucket is ready first.
        assert_eq!(plan.ready_order[0][0], model.gradient_buckets - 1);
        assert!(plan.bytes_per_gpu(0) > 0);
        assert!(plan.compute_units > 0.0);
    }

    #[test]
    fn tensor_parallel_plan_has_two_all_reduces_per_layer() {
        let model = DnnModel::vit_base();
        let plan = tensor_parallel_plan(&model, &gpus(8), 128);
        assert_eq!(plan.collectives.len(), model.layers * 2);
        assert!(validate_plan(&plan));
        // Every collective spans the whole TP group.
        assert!(plan.collectives.iter().all(|c| c.desc.devices.len() == 8));
    }

    #[test]
    fn three_d_plan_builds_tp_and_dp_groups() {
        let model = DnnModel::vit_base();
        let plan = three_d_hybrid_plan(&model, 2, 2, 4, 16);
        assert_eq!(plan.gpus.len(), 16);
        assert!(validate_plan(&plan));
        // Both group sizes (2) appear; every GPU participates in some of each.
        assert!(plan.collectives.iter().all(|c| c.desc.devices.len() == 2));
        for gpu_idx in 0..16 {
            assert!(
                !plan.ready_order[gpu_idx].is_empty(),
                "gpu {gpu_idx} has no collectives"
            );
        }
        // TP collectives exist (activation-sized) and DP collectives exist
        // (bucket-sized), and they differ in size.
        let sizes: std::collections::HashSet<usize> =
            plan.collectives.iter().map(|c| c.desc.count).collect();
        assert!(sizes.len() >= 2);
    }

    #[test]
    fn gpt2_16_gpu_hybrid_plan_is_well_formed() {
        let model = DnnModel::gpt2();
        let plan = three_d_hybrid_plan(&model, 4, 2, 2, 18);
        assert_eq!(plan.gpus.len(), 16);
        assert!(validate_plan(&plan));
        assert_eq!(plan.parallelism, ParallelismKind::ThreeDHybrid);
    }

    #[test]
    #[should_panic(expected = "at least two GPUs")]
    fn data_parallel_needs_two_gpus() {
        let _ = data_parallel_plan(&DnnModel::resnet50(), &gpus(1), 8);
    }
}
