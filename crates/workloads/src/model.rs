//! DNN model descriptions used by the training benchmarks (Sec. 6.4).
//!
//! Only the properties that drive communication and compute volume matter
//! here: parameter count, layer count, how gradients are bucketed for
//! data-parallel all-reduce, and a per-sample compute cost. Absolute compute
//! times are scaled down by the trainer so 200-iteration runs stay fast; the
//! *ratios* between communication and computation are what shape Figs. 10-13.

use serde::{Deserialize, Serialize};

/// A DNN model, described at the granularity the communication layer cares about.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DnnModel {
    /// Model name.
    pub name: String,
    /// Total trainable parameters.
    pub parameters: usize,
    /// Number of (transformer or residual) layers.
    pub layers: usize,
    /// Hidden dimension (0 when not meaningful).
    pub hidden: usize,
    /// Gradient-fusion buckets used for data-parallel all-reduce.
    pub gradient_buckets: usize,
    /// Relative compute cost per sample (arbitrary units; 1.0 = ResNet-50).
    pub compute_per_sample: f64,
}

impl DnnModel {
    /// ResNet-50 (25.6 M parameters), the Fig. 10 data-parallel workload.
    pub fn resnet50() -> Self {
        DnnModel {
            name: "ResNet-50".to_string(),
            parameters: 25_600_000,
            layers: 53,
            hidden: 2048,
            gradient_buckets: 25,
            compute_per_sample: 1.0,
        }
    }

    /// ViT-Base (86 M parameters), Fig. 12(a)-(c).
    pub fn vit_base() -> Self {
        DnnModel {
            name: "ViT-Base".to_string(),
            parameters: 86_000_000,
            layers: 12,
            hidden: 768,
            gradient_buckets: 24,
            compute_per_sample: 2.4,
        }
    }

    /// ViT-Large (307 M parameters), Fig. 12(d).
    pub fn vit_large() -> Self {
        DnnModel {
            name: "ViT-Large".to_string(),
            parameters: 307_000_000,
            layers: 24,
            hidden: 1024,
            gradient_buckets: 48,
            compute_per_sample: 8.2,
        }
    }

    /// GPT-2 (1.5 B parameters, Megatron-style), Fig. 13.
    pub fn gpt2() -> Self {
        DnnModel {
            name: "GPT-2".to_string(),
            parameters: 1_500_000_000,
            layers: 48,
            hidden: 1600,
            gradient_buckets: 48,
            compute_per_sample: 64.0,
        }
    }

    /// Parameters per gradient bucket (the element count of one DP all-reduce).
    pub fn bucket_elems(&self) -> usize {
        (self.parameters / self.gradient_buckets.max(1)).max(1)
    }

    /// Parameters per layer (drives per-layer TP collective sizes).
    pub fn layer_elems(&self) -> usize {
        (self.parameters / self.layers.max(1)).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_catalogue_is_ordered_by_size() {
        let resnet = DnnModel::resnet50();
        let vit_b = DnnModel::vit_base();
        let vit_l = DnnModel::vit_large();
        let gpt2 = DnnModel::gpt2();
        assert!(resnet.parameters < vit_b.parameters);
        assert!(vit_b.parameters < vit_l.parameters);
        assert!(vit_l.parameters < gpt2.parameters);
        assert!(resnet.compute_per_sample < gpt2.compute_per_sample);
    }

    #[test]
    fn bucket_and_layer_sizes_are_positive() {
        for m in [
            DnnModel::resnet50(),
            DnnModel::vit_base(),
            DnnModel::vit_large(),
            DnnModel::gpt2(),
        ] {
            assert!(m.bucket_elems() > 0);
            assert!(m.layer_elems() > 0);
            assert!(m.bucket_elems() * m.gradient_buckets <= m.parameters + m.gradient_buckets);
        }
    }
}
