//! Domain-wide link-health tracking: the quarantine map recovery writes and
//! plan selection reads.
//!
//! When a watchdog names a failed `(src, dst, channel)` edge in a
//! [`crate::StallReport`], the recovery layer quarantines it here. Everything
//! that *chooses* edges afterwards — the algorithm selector's family policy,
//! the cost model, and the communicator mesh itself — consults the same map,
//! so a dead link is avoided rather than retried:
//!
//! * plan selection falls back ring → tree when the preferred family would
//!   ride a quarantined edge ([`AlgorithmSelector::select_with_health`] in
//!   the collectives crate);
//! * the mesh reroutes any connector that would be labelled with a dead edge
//!   onto a fresh physical channel label ([`LinkHealth::reroute`]), which
//!   models failing a striped channel over to a spare lane of the same link;
//! * the plan cache keys entries by [`LinkHealth::generation`], so plans
//!   compiled against a stale health view are never served after a failure.
//!
//! The map is inert until the first quarantine: a healthy domain pays one
//! relaxed atomic load per query, which is what keeps the recovery layer's
//! fault-free overhead inside the BENCH_hotpath gate.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use gpu_sim::GpuId;
use parking_lot::RwLock;

use crate::communicator::ChannelId;
use crate::fault::EdgeId;

/// Channel labels at or above this value are reroute labels minted by
/// [`LinkHealth::reroute`]; logical plan channels live far below it.
pub const REROUTE_CHANNEL_BASE: u32 = 1 << 20;

/// Reroute labels per logical channel: shift `1..REROUTE_FAN` spare lanes are
/// tried before giving up on a `(src, dst, channel)` edge.
const REROUTE_FAN: u32 = 64;

/// The per-domain quarantine map of dead directed edges.
///
/// Shared (as one `Arc`) by the communicator pool, every communicator it
/// hands out, and the plan cache. Mutations bump a monotone generation
/// counter that doubles as the plan-cache epoch.
pub struct LinkHealth {
    /// Fast inert-path flag: false while no edge is quarantined.
    active: AtomicBool,
    /// Monotone mutation counter; plan-cache keys embed it.
    generation: AtomicU64,
    dead: RwLock<HashSet<EdgeId>>,
}

impl std::fmt::Debug for LinkHealth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LinkHealth")
            .field("dead", &self.dead.read().len())
            .field("generation", &self.generation.load(Ordering::Relaxed))
            .finish()
    }
}

impl Default for LinkHealth {
    fn default() -> Self {
        LinkHealth {
            active: AtomicBool::new(false),
            generation: AtomicU64::new(0),
            dead: RwLock::new(HashSet::new()),
        }
    }
}

impl LinkHealth {
    /// A map with every link healthy.
    pub fn new() -> Arc<Self> {
        Arc::new(LinkHealth::default())
    }

    /// Whether no edge is quarantined (single relaxed load — the hot path).
    #[inline]
    pub fn is_clean(&self) -> bool {
        !self.active.load(Ordering::Acquire)
    }

    /// Quarantine `edge`: subsequent plan selection, cost estimation and
    /// mesh wiring avoid it. Returns `true` if the edge was newly added.
    pub fn quarantine(&self, edge: EdgeId) -> bool {
        let mut dead = self.dead.write();
        let added = dead.insert(edge);
        if added {
            self.active.store(true, Ordering::Release);
            self.generation.fetch_add(1, Ordering::Release);
        }
        added
    }

    /// Remove `edge` from quarantine (an operator repaired the link).
    pub fn heal(&self, edge: EdgeId) -> bool {
        let mut dead = self.dead.write();
        let removed = dead.remove(&edge);
        if removed {
            if dead.is_empty() {
                self.active.store(false, Ordering::Release);
            }
            self.generation.fetch_add(1, Ordering::Release);
        }
        removed
    }

    /// Empty the quarantine set.
    pub fn heal_all(&self) {
        let mut dead = self.dead.write();
        if !dead.is_empty() {
            dead.clear();
            self.active.store(false, Ordering::Release);
            self.generation.fetch_add(1, Ordering::Release);
        }
    }

    /// Whether `edge` is quarantined.
    pub fn is_dead(&self, edge: EdgeId) -> bool {
        if self.is_clean() {
            return false;
        }
        self.dead.read().contains(&edge)
    }

    /// The quarantined edges, sorted for stable output.
    pub fn dead_edges(&self) -> Vec<EdgeId> {
        let mut v: Vec<EdgeId> = self.dead.read().iter().copied().collect();
        v.sort_unstable();
        v
    }

    /// Monotone mutation counter (0 while the domain has never seen a
    /// failure); plan caches embed it in their keys so entries compiled
    /// against a stale health view miss instead of serving a dead edge.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Whether any quarantined edge has both endpoints inside `devices` —
    /// i.e. a plan over that device set must avoid at least one edge.
    pub fn degrades(&self, devices: &[GpuId]) -> bool {
        if self.is_clean() {
            return false;
        }
        self.dead
            .read()
            .iter()
            .any(|e| devices.contains(&e.src) && devices.contains(&e.dst))
    }

    /// The physical channel label for a connector carrying logical `channel`
    /// traffic from `src` to `dst`: the identity while the edge is healthy,
    /// otherwise the first spare lane label whose edge is not quarantined.
    ///
    /// Rerouting is a pure relabeling — both endpoints derive the same label
    /// from the same shared map, and distinct logical channels map to
    /// distinct spare lanes — so a re-planned schedule keeps exactly its
    /// logical channel structure (and with it the capacity-1
    /// deadlock-freedom argument), while its traffic leaves the scripted
    /// dead lane.
    pub fn reroute(&self, src: GpuId, dst: GpuId, channel: ChannelId) -> ChannelId {
        if self.is_clean() {
            return channel;
        }
        let dead = self.dead.read();
        if !dead.contains(&EdgeId { src, dst, channel }) {
            return channel;
        }
        for shift in 1..REROUTE_FAN {
            let candidate =
                ChannelId(REROUTE_CHANNEL_BASE + channel.0.wrapping_mul(REROUTE_FAN) + shift);
            if !dead.contains(&EdgeId {
                src,
                dst,
                channel: candidate,
            }) {
                return candidate;
            }
        }
        channel
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(src: usize, dst: usize, ch: u32) -> EdgeId {
        EdgeId {
            src: GpuId(src),
            dst: GpuId(dst),
            channel: ChannelId(ch),
        }
    }

    #[test]
    fn clean_map_is_inert_and_generation_zero() {
        let h = LinkHealth::new();
        assert!(h.is_clean());
        assert_eq!(h.generation(), 0);
        assert!(!h.is_dead(edge(0, 1, 0)));
        assert!(!h.degrades(&[GpuId(0), GpuId(1)]));
        assert_eq!(h.reroute(GpuId(0), GpuId(1), ChannelId(0)), ChannelId(0));
    }

    #[test]
    fn quarantine_and_heal_track_generation() {
        let h = LinkHealth::new();
        assert!(h.quarantine(edge(0, 1, 0)));
        assert!(!h.quarantine(edge(0, 1, 0)), "re-quarantine is a no-op");
        assert!(!h.is_clean());
        assert!(h.is_dead(edge(0, 1, 0)));
        assert!(!h.is_dead(edge(1, 0, 0)), "direction matters");
        assert_eq!(h.generation(), 1);
        assert_eq!(h.dead_edges(), vec![edge(0, 1, 0)]);
        assert!(h.heal(edge(0, 1, 0)));
        assert!(h.is_clean());
        assert_eq!(h.generation(), 2);
        assert!(!h.heal(edge(0, 1, 0)), "healing a healthy edge is a no-op");
        assert_eq!(h.generation(), 2);
    }

    #[test]
    fn degrades_requires_both_endpoints_in_the_device_set() {
        let h = LinkHealth::new();
        h.quarantine(edge(1, 2, 0));
        assert!(h.degrades(&[GpuId(0), GpuId(1), GpuId(2)]));
        assert!(!h.degrades(&[GpuId(0), GpuId(1)]));
        assert!(!h.degrades(&[GpuId(2), GpuId(3)]));
        h.heal_all();
        assert!(!h.degrades(&[GpuId(1), GpuId(2)]));
    }

    #[test]
    fn reroute_relabels_only_the_dead_edge() {
        let h = LinkHealth::new();
        h.quarantine(edge(0, 1, 0));
        let relabeled = h.reroute(GpuId(0), GpuId(1), ChannelId(0));
        assert!(relabeled.0 >= REROUTE_CHANNEL_BASE);
        // The healthy reverse direction and other channels keep their labels.
        assert_eq!(h.reroute(GpuId(1), GpuId(0), ChannelId(0)), ChannelId(0));
        assert_eq!(h.reroute(GpuId(0), GpuId(1), ChannelId(1)), ChannelId(1));
        // Deterministic: both endpoints derive the same label.
        assert_eq!(h.reroute(GpuId(0), GpuId(1), ChannelId(0)), relabeled);
        // Distinct logical channels land on distinct spare lanes.
        h.quarantine(edge(0, 1, 1));
        assert_ne!(
            h.reroute(GpuId(0), GpuId(1), ChannelId(0)),
            h.reroute(GpuId(0), GpuId(1), ChannelId(1))
        );
    }

    #[test]
    fn reroute_skips_quarantined_spare_lanes() {
        let h = LinkHealth::new();
        h.quarantine(edge(0, 1, 0));
        let first = h.reroute(GpuId(0), GpuId(1), ChannelId(0));
        h.quarantine(EdgeId {
            src: GpuId(0),
            dst: GpuId(1),
            channel: first,
        });
        let second = h.reroute(GpuId(0), GpuId(1), ChannelId(0));
        assert_ne!(second, first);
        assert_ne!(second, ChannelId(0));
    }
}
