//! Link fault injection and stall classification.
//!
//! Production-scale collective traffic sees links die, degrade, and flap;
//! reproducing the paper's robustness story needs a way to *script* those
//! failures deterministically. A [`FaultInjector`] holds per-edge fault
//! specifications keyed by the directed `(src GPU, dst GPU, channel)` edge a
//! [`crate::Connector`] crosses; every send consults the injector, so a
//! scripted edge can go dead, slow down by a factor, or drop chunks
//! intermittently — optionally only after a trigger (elapsed time or chunk
//! count) fires, modelling mid-collective failures.
//!
//! The same module defines the *observability* side: [`EdgeSample`] snapshots
//! of per-edge progress counters, a [`classify_stall`] pass that turns two
//! snapshots into a structured [`StallReport`] distinguishing a wedge (no
//! traffic anywhere, nothing faulted) from a link failure (sends bouncing off
//! a faulted or unreachable edge), and [`supervise_with_probe`] — a generic
//! stall-deadline supervision loop over per-edge probes that only declares a
//! stall when *no* edge in the domain made progress for a full deadline.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use gpu_sim::GpuId;
use parking_lot::Mutex;

use crate::communicator::ChannelId;
use crate::connector::ConnectorStats;
use crate::topology::LinkClass;

/// A directed physical edge: chunks flowing from one GPU to another over one
/// of the `K` striped channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId {
    /// Sending GPU.
    pub src: GpuId,
    /// Receiving GPU.
    pub dst: GpuId,
    /// The striped channel the edge belongs to.
    pub channel: ChannelId,
}

impl std::fmt::Display for EdgeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "gpu{}->gpu{}/{}", self.src.0, self.dst.0, self.channel)
    }
}

/// What a scripted fault does to its edge once triggered.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The link is dead: every send is rejected, forever (until the script is
    /// cleared). The edge's `fault_rejections` counter advances so the stall
    /// classifier can name the failed link.
    Dead,
    /// Every transfer costs `factor` times the modelled link time — a link
    /// that suddenly degrades but keeps moving chunks.
    Slowdown(f64),
    /// Each send is dropped (rejected, to be retried by the sender) with the
    /// given probability, decided by a deterministic per-attempt hash of the
    /// injector seed — a flaky link that loses chunks intermittently.
    Flaky {
        /// Probability in `[0, 1]` that one send attempt is dropped.
        drop_rate: f64,
    },
}

/// When a scripted fault activates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultTrigger {
    /// Active from the moment it is scripted.
    Immediately,
    /// Active once the edge has carried at least this many chunks — a
    /// mid-collective failure pinned to transfer progress, not wall time.
    AfterChunks(u64),
    /// Active once this much time has elapsed since the injector was created.
    AfterTime(Duration),
}

/// A fault kind plus its activation trigger.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// What happens to the edge.
    pub kind: FaultKind,
    /// When it starts happening.
    pub trigger: FaultTrigger,
}

impl FaultSpec {
    /// A dead link, active immediately.
    pub fn dead() -> Self {
        FaultSpec {
            kind: FaultKind::Dead,
            trigger: FaultTrigger::Immediately,
        }
    }

    /// An `factor`× slowdown, active immediately.
    pub fn slowdown(factor: f64) -> Self {
        FaultSpec {
            kind: FaultKind::Slowdown(factor),
            trigger: FaultTrigger::Immediately,
        }
    }

    /// A flaky link dropping each send with probability `drop_rate`, active
    /// immediately.
    pub fn flaky(drop_rate: f64) -> Self {
        FaultSpec {
            kind: FaultKind::Flaky { drop_rate },
            trigger: FaultTrigger::Immediately,
        }
    }

    /// Delay activation until the edge has carried `chunks` chunks.
    pub fn after_chunks(mut self, chunks: u64) -> Self {
        self.trigger = FaultTrigger::AfterChunks(chunks);
        self
    }

    /// Delay activation until `delay` after injector creation.
    pub fn after_time(mut self, delay: Duration) -> Self {
        self.trigger = FaultTrigger::AfterTime(delay);
        self
    }
}

/// The injector's verdict for one send attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultDecision {
    /// No active fault: charge the modelled cost and publish.
    Allow,
    /// Charge `factor`× the modelled cost, then publish.
    Slow(f64),
    /// Reject the send; the chunk is handed back to the sender.
    Reject,
}

/// Scriptable per-edge fault injection, shared by every connector of a
/// domain. Inert (a single relaxed atomic load per send) until the first
/// fault is scripted. The `seed` makes [`FaultKind::Flaky`] drop decisions a
/// pure function of `(seed, edge, attempt index)`, so a failing run
/// reproduces by seed alone.
pub struct FaultInjector {
    seed: AtomicU64,
    epoch: Instant,
    active: AtomicBool,
    scripts: Mutex<HashMap<EdgeId, FaultSpec>>,
}

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultInjector")
            .field("seed", &self.seed.load(Ordering::Relaxed))
            .field("scripts", &self.scripts.lock().len())
            .finish()
    }
}

impl FaultInjector {
    /// An injector with no scripted faults.
    pub fn new(seed: u64) -> Arc<Self> {
        Arc::new(FaultInjector {
            seed: AtomicU64::new(seed),
            epoch: Instant::now(),
            active: AtomicBool::new(false),
            scripts: Mutex::new(HashMap::new()),
        })
    }

    /// Replace the deterministic seed (affects [`FaultKind::Flaky`] rolls).
    pub fn set_seed(&self, seed: u64) {
        self.seed.store(seed, Ordering::Relaxed);
    }

    /// The current seed.
    pub fn seed(&self) -> u64 {
        self.seed.load(Ordering::Relaxed)
    }

    /// Script `spec` on `edge`, replacing any previous script for that edge.
    pub fn script(&self, edge: EdgeId, spec: FaultSpec) {
        self.scripts.lock().insert(edge, spec);
        self.active.store(true, Ordering::Release);
    }

    /// Remove the script on `edge`, healing the link.
    pub fn unscript(&self, edge: EdgeId) {
        let mut scripts = self.scripts.lock();
        scripts.remove(&edge);
        if scripts.is_empty() {
            self.active.store(false, Ordering::Release);
        }
    }

    /// Heal exactly one edge, leaving every other scripted fault active —
    /// the per-edge counterpart of [`FaultInjector::clear`] recovery tests
    /// use to repair a single link mid-chaos.
    pub fn clear_edge(&self, edge: EdgeId) {
        self.unscript(edge);
    }

    /// Remove every script, healing all links.
    pub fn clear(&self) {
        self.scripts.lock().clear();
        self.active.store(false, Ordering::Release);
    }

    /// Whether any fault is currently scripted.
    pub fn is_active(&self) -> bool {
        self.active.load(Ordering::Acquire)
    }

    /// The currently scripted faults, sorted by edge.
    pub fn scripted(&self) -> Vec<(EdgeId, FaultSpec)> {
        let mut v: Vec<_> = self.scripts.lock().iter().map(|(&e, &s)| (e, s)).collect();
        v.sort_by_key(|(e, _)| *e);
        v
    }

    fn triggered(&self, trigger: FaultTrigger, chunks_sent: u64) -> bool {
        match trigger {
            FaultTrigger::Immediately => true,
            FaultTrigger::AfterChunks(c) => chunks_sent >= c,
            FaultTrigger::AfterTime(d) => self.epoch.elapsed() >= d,
        }
    }

    /// Decide the fate of send attempt number `attempt` on `edge`, given that
    /// the edge has carried `chunks_sent` chunks so far.
    pub fn decide(&self, edge: EdgeId, chunks_sent: u64, attempt: u64) -> FaultDecision {
        if !self.is_active() {
            return FaultDecision::Allow;
        }
        let Some(spec) = self.scripts.lock().get(&edge).copied() else {
            return FaultDecision::Allow;
        };
        if !self.triggered(spec.trigger, chunks_sent) {
            return FaultDecision::Allow;
        }
        match spec.kind {
            FaultKind::Dead => FaultDecision::Reject,
            FaultKind::Slowdown(f) => FaultDecision::Slow(f),
            FaultKind::Flaky { drop_rate } => {
                if Self::roll(self.seed(), edge, attempt) < drop_rate {
                    FaultDecision::Reject
                } else {
                    FaultDecision::Allow
                }
            }
        }
    }

    /// Whether `edge` is currently dead (a triggered [`FaultKind::Dead`]
    /// script). Senders use this to turn their readiness poll off so the spin
    /// threshold trips and the collective is preempted instead of spinning on
    /// a link that can never drain.
    pub fn edge_dead(&self, edge: EdgeId, chunks_sent: u64) -> bool {
        if !self.is_active() {
            return false;
        }
        match self.scripts.lock().get(&edge) {
            Some(spec) if matches!(spec.kind, FaultKind::Dead) => {
                self.triggered(spec.trigger, chunks_sent)
            }
            _ => false,
        }
    }

    /// A deterministic uniform draw in `[0, 1)` from `(seed, edge, attempt)`
    /// via splitmix64 — no RNG state, so concurrent senders stay reproducible.
    fn roll(seed: u64, edge: EdgeId, attempt: u64) -> f64 {
        let mut x = seed
            ^ (edge.src.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (edge.dst.0 as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9)
            ^ (edge.channel.0 as u64).wrapping_mul(0x94D0_49BB_1331_11EB)
            ^ attempt.wrapping_mul(0xD6E8_FEB8_6659_FD93);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        (x >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// One snapshot of one edge's progress counters, as produced by
/// [`crate::Communicator::edge_samples`]. The domain layer stamps `coll_id`
/// with the collective the edge's communicator belongs to, which is what lets
/// a [`StallReport`] name the *collectives* stalled on a failed link.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeSample {
    /// The collective whose communicator owns this edge, if the probing layer
    /// knows it (communicators are allocated per registered collective).
    pub coll_id: Option<u64>,
    /// The directed physical edge.
    pub edge: EdgeId,
    /// The link class the edge crosses.
    pub link: LinkClass,
    /// Chunks currently buffered in the connector (published, unconsumed).
    pub queued: usize,
    /// Whether the edge currently cannot deliver — scripted dead by the
    /// injector or unreachable under the cost model. Sampled directly (not
    /// inferred from counters) because a dead edge stops reporting
    /// `send_ready`, so senders stop attempting and its rejection counter
    /// freezes.
    pub dead: bool,
    /// The connector's traffic counters.
    pub stats: ConnectorStats,
}

/// Total chunks moved (published + consumed) across a set of edge samples —
/// the domain-wide monotone progress scalar.
pub fn total_progress(samples: &[EdgeSample]) -> u64 {
    samples
        .iter()
        .map(|s| s.stats.chunks_sent + s.stats.chunks_received)
        .sum()
}

/// What kind of stall a [`StallReport`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallKind {
    /// No progress and no faulted traffic: a scheduling wedge (the deadlock
    /// shapes of Sec. 2 — hold-and-wait on connectors or residency).
    Wedge,
    /// Sends were rejected by a dead/unreachable link during the stall
    /// window: the named edges failed and the named collectives are stuck
    /// behind them.
    LinkFailure,
}

/// A structured description of a detected stall: which edges failed, which
/// edges hold undrained traffic, and which collectives are implicated.
#[derive(Debug, Clone, PartialEq)]
pub struct StallReport {
    /// Whether this is a wedge or a link failure.
    pub kind: StallKind,
    /// Edges whose `fault_rejections` advanced during the stall window —
    /// dead or unreachable links actively bouncing traffic.
    pub failed_edges: Vec<EdgeSample>,
    /// Edges with undrained traffic (queued chunks) or sends bouncing off a
    /// full ring during the stall window — where the wedge is knotted.
    pub stalled_edges: Vec<EdgeSample>,
    /// Collectives attributed to the failed/stalled edges, deduplicated.
    pub stalled_collectives: Vec<u64>,
    /// Names of the supervised work items that had not finished (filled by
    /// kernel-level supervisors; empty when probing a daemon domain).
    pub unfinished: Vec<String>,
}

impl std::fmt::Display for StallReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.kind {
            StallKind::Wedge => write!(f, "wedge")?,
            StallKind::LinkFailure => write!(f, "link failure")?,
        }
        if !self.failed_edges.is_empty() {
            write!(f, "; failed edges:")?;
            for e in &self.failed_edges {
                write!(f, " {}", e.edge)?;
            }
        }
        if !self.stalled_edges.is_empty() {
            write!(f, "; stalled edges:")?;
            for e in &self.stalled_edges {
                write!(f, " {}", e.edge)?;
            }
        }
        if !self.stalled_collectives.is_empty() {
            write!(f, "; collectives: {:?}", self.stalled_collectives)?;
        }
        if !self.unfinished.is_empty() {
            write!(f, "; unfinished: {:?}", self.unfinished)?;
        }
        Ok(())
    }
}

/// Outcome of [`supervise_with_probe`].
#[derive(Debug, Clone, PartialEq)]
pub enum SuperviseOutcome {
    /// The supervised work finished before any stall deadline expired.
    AllCompleted,
    /// A full stall deadline passed with zero progress on every edge.
    Stalled(StallReport),
}

impl SuperviseOutcome {
    /// Whether a stall was detected.
    pub fn is_stalled(&self) -> bool {
        matches!(self, SuperviseOutcome::Stalled(_))
    }
}

/// Compare the edge samples at the start of the stall window against the
/// current ones and produce a [`StallReport`].
///
/// Classification: an edge that is currently dead, or whose
/// `fault_rejections` advanced during the window, is a **failed link** and
/// the report is a [`StallKind::LinkFailure`] naming those edges and their
/// collectives. Otherwise the stall is a [`StallKind::Wedge`], and the report
/// names the edges where traffic is visibly knotted: queued-but-unconsumed
/// chunks, or sends bouncing off a full ring during the window.
pub fn classify_stall(window_start: &[EdgeSample], current: &[EdgeSample]) -> StallReport {
    let baseline: HashMap<(Option<u64>, EdgeId), &ConnectorStats> = window_start
        .iter()
        .map(|s| ((s.coll_id, s.edge), &s.stats))
        .collect();
    let delta = |s: &EdgeSample, f: fn(&ConnectorStats) -> u64| {
        let before = baseline.get(&(s.coll_id, s.edge)).map_or(0, |b| f(b));
        f(&s.stats).saturating_sub(before)
    };

    let failed: Vec<EdgeSample> = current
        .iter()
        .filter(|s| s.dead || delta(s, |st| st.fault_rejections) > 0)
        .cloned()
        .collect();
    let stalled: Vec<EdgeSample> = current
        .iter()
        .filter(|s| s.queued > 0 || delta(s, |st| st.full_rejections) > 0)
        .cloned()
        .collect();

    let kind = if failed.is_empty() {
        StallKind::Wedge
    } else {
        StallKind::LinkFailure
    };
    let mut colls: Vec<u64> = match kind {
        StallKind::LinkFailure => failed.iter().filter_map(|s| s.coll_id).collect(),
        StallKind::Wedge => stalled.iter().filter_map(|s| s.coll_id).collect(),
    };
    colls.sort_unstable();
    colls.dedup();

    StallReport {
        kind,
        failed_edges: failed,
        stalled_edges: stalled,
        stalled_collectives: colls,
        unfinished: Vec::new(),
    }
}

/// Supervise until `done` returns true, declaring a stall only after
/// `stall_deadline` passes with *zero* progress across every edge `probe`
/// reports. Any advance of any edge's sent/received counters — including
/// fault rejections, which prove the sender is alive and retrying — resets
/// the deadline, so a slow-but-progressing round is never misreported. At
/// expiry the probe is re-sampled once more before declaring the stall
/// (progress during the final sleep must not be aborted as a wedge).
pub fn supervise_with_probe(
    done: &dyn Fn() -> bool,
    stall_deadline: Duration,
    probe: &dyn Fn() -> Vec<EdgeSample>,
) -> SuperviseOutcome {
    // Progress scalar for deadline resets: moved chunks only. Fault
    // rejections do NOT reset the deadline — a dead link being hammered
    // forever must still be declared within one deadline.
    let mut window_start = probe();
    let mut last_progress = total_progress(&window_start);
    let mut end = Instant::now() + stall_deadline;
    loop {
        if done() {
            return SuperviseOutcome::AllCompleted;
        }
        let current = probe();
        let now = total_progress(&current);
        if now != last_progress {
            last_progress = now;
            window_start = current;
            end = Instant::now() + stall_deadline;
        } else if Instant::now() >= end {
            // Deadline expired on a stale sample: re-sample once more before
            // declaring (the TOCTOU guard — progress during the last sleep,
            // or during this very probe, must reset the window instead).
            let fresh = probe();
            let fresh_progress = total_progress(&fresh);
            if fresh_progress != last_progress {
                last_progress = fresh_progress;
                window_start = fresh;
                end = Instant::now() + stall_deadline;
                continue;
            }
            if done() {
                return SuperviseOutcome::AllCompleted;
            }
            return SuperviseOutcome::Stalled(classify_stall(&window_start, &fresh));
        }
        std::thread::sleep(Duration::from_millis(1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(src: usize, dst: usize, ch: u32) -> EdgeId {
        EdgeId {
            src: GpuId(src),
            dst: GpuId(dst),
            channel: ChannelId(ch),
        }
    }

    fn sample(coll: u64, e: EdgeId, queued: usize, stats: ConnectorStats) -> EdgeSample {
        EdgeSample {
            coll_id: Some(coll),
            edge: e,
            link: LinkClass::IntraPix,
            queued,
            dead: false,
            stats,
        }
    }

    #[test]
    fn inert_injector_allows_everything() {
        let inj = FaultInjector::new(7);
        assert!(!inj.is_active());
        assert_eq!(inj.decide(edge(0, 1, 0), 0, 0), FaultDecision::Allow);
        assert!(!inj.edge_dead(edge(0, 1, 0), 0));
    }

    #[test]
    fn dead_script_rejects_only_its_edge() {
        let inj = FaultInjector::new(7);
        inj.script(edge(0, 1, 0), FaultSpec::dead());
        assert_eq!(inj.decide(edge(0, 1, 0), 0, 0), FaultDecision::Reject);
        assert!(inj.edge_dead(edge(0, 1, 0), 0));
        // Other channels and other pairs are untouched.
        assert_eq!(inj.decide(edge(0, 1, 1), 0, 0), FaultDecision::Allow);
        assert_eq!(inj.decide(edge(1, 0, 0), 0, 0), FaultDecision::Allow);
        inj.clear();
        assert_eq!(inj.decide(edge(0, 1, 0), 0, 0), FaultDecision::Allow);
        assert!(!inj.is_active());
    }

    #[test]
    fn clear_edge_heals_one_edge_and_keeps_other_scripts_active() {
        let inj = FaultInjector::new(7);
        inj.script(edge(0, 1, 0), FaultSpec::dead());
        inj.script(edge(1, 2, 0), FaultSpec::dead());
        inj.script(edge(0, 1, 1), FaultSpec::slowdown(4.0));
        inj.clear_edge(edge(0, 1, 0));
        // The healed edge allows traffic again...
        assert_eq!(inj.decide(edge(0, 1, 0), 0, 0), FaultDecision::Allow);
        assert!(!inj.edge_dead(edge(0, 1, 0), 0));
        // ...while the other scripted faults stay in force.
        assert!(inj.is_active());
        assert_eq!(inj.decide(edge(1, 2, 0), 0, 0), FaultDecision::Reject);
        assert_eq!(inj.decide(edge(0, 1, 1), 0, 0), FaultDecision::Slow(4.0));
        assert_eq!(inj.scripted().len(), 2);
        // Healing the rest deactivates the injector entirely.
        inj.clear_edge(edge(1, 2, 0));
        inj.clear_edge(edge(0, 1, 1));
        assert!(!inj.is_active());
    }

    #[test]
    fn chunk_count_trigger_delays_activation() {
        let inj = FaultInjector::new(7);
        inj.script(edge(0, 1, 0), FaultSpec::dead().after_chunks(3));
        assert_eq!(inj.decide(edge(0, 1, 0), 0, 0), FaultDecision::Allow);
        assert_eq!(inj.decide(edge(0, 1, 0), 2, 1), FaultDecision::Allow);
        assert_eq!(inj.decide(edge(0, 1, 0), 3, 2), FaultDecision::Reject);
        assert!(!inj.edge_dead(edge(0, 1, 0), 2));
        assert!(inj.edge_dead(edge(0, 1, 0), 3));
    }

    #[test]
    fn time_trigger_delays_activation() {
        let inj = FaultInjector::new(7);
        inj.script(
            edge(0, 1, 0),
            FaultSpec::slowdown(10.0).after_time(Duration::from_millis(30)),
        );
        assert_eq!(inj.decide(edge(0, 1, 0), 0, 0), FaultDecision::Allow);
        std::thread::sleep(Duration::from_millis(40));
        assert_eq!(inj.decide(edge(0, 1, 0), 0, 1), FaultDecision::Slow(10.0));
    }

    #[test]
    fn flaky_rolls_are_seed_deterministic_and_roughly_calibrated() {
        let inj = FaultInjector::new(42);
        inj.script(edge(0, 1, 0), FaultSpec::flaky(0.25));
        let verdicts: Vec<FaultDecision> =
            (0..1000).map(|a| inj.decide(edge(0, 1, 0), 0, a)).collect();
        let replay: Vec<FaultDecision> =
            (0..1000).map(|a| inj.decide(edge(0, 1, 0), 0, a)).collect();
        assert_eq!(verdicts, replay, "same seed must replay identically");
        let drops = verdicts
            .iter()
            .filter(|v| **v == FaultDecision::Reject)
            .count();
        assert!(
            (150..350).contains(&drops),
            "a 25% drop rate produced {drops}/1000 drops"
        );
        // A different seed reshuffles the pattern.
        inj.set_seed(43);
        let other: Vec<FaultDecision> =
            (0..1000).map(|a| inj.decide(edge(0, 1, 0), 0, a)).collect();
        assert_ne!(verdicts, other);
    }

    #[test]
    fn classify_names_failed_edges_and_their_collectives() {
        let e_ok = edge(0, 1, 0);
        let e_bad = edge(1, 2, 0);
        let before = vec![
            sample(1, e_ok, 0, ConnectorStats::default()),
            sample(2, e_bad, 0, ConnectorStats::default()),
        ];
        let after = vec![
            sample(1, e_ok, 0, ConnectorStats::default()),
            sample(
                2,
                e_bad,
                0,
                ConnectorStats {
                    fault_rejections: 9,
                    ..ConnectorStats::default()
                },
            ),
        ];
        let report = classify_stall(&before, &after);
        assert_eq!(report.kind, StallKind::LinkFailure);
        assert_eq!(report.failed_edges.len(), 1);
        assert_eq!(report.failed_edges[0].edge, e_bad);
        assert_eq!(report.stalled_collectives, vec![2]);
        let s = report.to_string();
        assert!(s.contains("link failure"), "{s}");
        assert!(s.contains("gpu1->gpu2/ch0"), "{s}");
    }

    #[test]
    fn classify_names_a_dead_edge_even_with_frozen_counters() {
        // A dead edge stops reporting send_ready, so senders stop attempting
        // and its rejection counter freezes — the dead flag alone must carry
        // the classification.
        let e = edge(2, 3, 1);
        let mut s = sample(7, e, 0, ConnectorStats::default());
        s.dead = true;
        let report = classify_stall(&[s.clone()], &[s]);
        assert_eq!(report.kind, StallKind::LinkFailure);
        assert_eq!(report.failed_edges[0].edge, e);
        assert_eq!(report.stalled_collectives, vec![7]);
    }

    #[test]
    fn classify_reports_a_wedge_when_nothing_faulted() {
        let e = edge(0, 1, 0);
        let before = vec![sample(3, e, 1, ConnectorStats::default())];
        let after = vec![sample(3, e, 1, ConnectorStats::default())];
        let report = classify_stall(&before, &after);
        assert_eq!(report.kind, StallKind::Wedge);
        assert!(report.failed_edges.is_empty());
        assert_eq!(report.stalled_edges.len(), 1);
        assert_eq!(report.stalled_collectives, vec![3]);
    }

    #[test]
    fn supervise_completes_when_done_and_stalls_on_frozen_probe() {
        let done = std::sync::atomic::AtomicBool::new(true);
        let outcome = supervise_with_probe(
            &|| done.load(Ordering::Relaxed),
            Duration::from_millis(50),
            &Vec::new,
        );
        assert_eq!(outcome, SuperviseOutcome::AllCompleted);

        let e = edge(0, 1, 0);
        let frozen = vec![sample(
            1,
            e,
            2,
            ConnectorStats {
                chunks_sent: 5,
                chunks_received: 3,
                ..ConnectorStats::default()
            },
        )];
        let outcome =
            supervise_with_probe(&|| false, Duration::from_millis(40), &|| frozen.clone());
        match outcome {
            SuperviseOutcome::Stalled(report) => {
                assert_eq!(report.kind, StallKind::Wedge);
                assert_eq!(report.stalled_edges.len(), 1);
            }
            other => panic!("expected a stall, got {other:?}"),
        }
    }

    #[test]
    fn supervise_resets_deadline_while_progress_advances() {
        // Progress advances every ~10 ms, well inside the 60 ms deadline; the
        // work finishes after ~150 ms. A fixed deadline would have fired.
        let start = Instant::now();
        let e = edge(0, 1, 0);
        let outcome = supervise_with_probe(
            &|| start.elapsed() > Duration::from_millis(150),
            Duration::from_millis(60),
            &|| {
                vec![sample(
                    1,
                    e,
                    0,
                    ConnectorStats {
                        chunks_sent: start.elapsed().as_millis() as u64 / 10,
                        ..ConnectorStats::default()
                    },
                )]
            },
        );
        assert_eq!(outcome, SuperviseOutcome::AllCompleted);
    }
}
