//! Communicators: the peer-addressed connector mesh behind one collective,
//! and the pool that hands them out.
//!
//! The paper keeps the communicator concept transparent to users: DFCCL
//! "maintains a communicator pool, automatically creating and allocating
//! communicators for collectives" (Sec. 3.2). Each registered collective gets
//! its own communicator so that a preempted collective's connectors are never
//! reused by another collective — the invariant the correctness argument of
//! Sec. 4.5 relies on.
//!
//! A communicator no longer hard-wires a ring: it is a lazy mesh. Connectors
//! are created on demand for exactly the directed `(src, dst, channel)`
//! triples an algorithm's plan uses, each classified by the [`Topology`] and
//! costed by the [`LinkModel`]. A ring plan materialises the same `n` edges
//! the old ring-wired communicator created eagerly; a tree or hierarchical
//! plan materialises its own edge set instead; a striped plan materialises
//! `K` parallel connectors per directed pair, one per [`ChannelId`].
//! [`Communicator::new_ring`] remains as a convenience constructor that
//! pre-creates the (channel-0) ring edges.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use gpu_sim::GpuId;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::connector::Connector;
use crate::fault::{EdgeId, EdgeSample, FaultInjector};
use crate::health::LinkHealth;
use crate::linkmodel::LinkModel;
use crate::topology::Topology;
use crate::TransportError;

/// Identifier of a communicator within a pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CommunicatorId(pub u64);

/// One of the parallel channels a `(src, dst)` edge is striped across.
/// Channel 0 is the only channel of an unstriped (K = 1) collective, and the
/// one every pre-channel API defaults to.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
)]
pub struct ChannelId(pub u32);

impl std::fmt::Display for ChannelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ch{}", self.0)
    }
}

/// The channels one rank uses inside a communicator: a map of send and recv
/// connectors keyed by `(peer, channel)`, covering exactly the edges the
/// rank's plan addresses.
#[derive(Debug, Clone)]
pub struct RankChannels {
    /// This rank's index within the communicator.
    pub rank: usize,
    /// Number of ranks in the communicator.
    pub size: usize,
    /// GPU this rank runs on.
    pub gpu: GpuId,
    /// Connectors this rank sends through, keyed by (destination rank, channel).
    sends: BTreeMap<(usize, ChannelId), Arc<Connector>>,
    /// Connectors this rank receives from, keyed by (source rank, channel).
    recvs: BTreeMap<(usize, ChannelId), Arc<Connector>>,
}

impl RankChannels {
    /// The channel-`channel` connector carrying chunks from this rank to
    /// `peer`, if the channels were built to cover that edge.
    pub fn send_on(&self, peer: usize, channel: ChannelId) -> Option<&Arc<Connector>> {
        self.sends.get(&(peer, channel))
    }

    /// The channel-`channel` connector carrying chunks from `peer` to this
    /// rank, if the channels were built to cover that edge.
    pub fn recv_on(&self, peer: usize, channel: ChannelId) -> Option<&Arc<Connector>> {
        self.recvs.get(&(peer, channel))
    }

    /// The channel-0 connector towards `peer` (the whole story for K = 1).
    pub fn send_to(&self, peer: usize) -> Option<&Arc<Connector>> {
        self.send_on(peer, ChannelId(0))
    }

    /// The channel-0 connector from `peer` (the whole story for K = 1).
    pub fn recv_from(&self, peer: usize) -> Option<&Arc<Connector>> {
        self.recv_on(peer, ChannelId(0))
    }

    /// The distinct destination ranks this rank can send to (any channel).
    pub fn send_peers(&self) -> impl Iterator<Item = usize> + '_ {
        let mut last = None;
        self.sends.keys().filter_map(move |&(p, _)| {
            if last == Some(p) {
                return None;
            }
            last = Some(p);
            Some(p)
        })
    }

    /// The distinct source ranks this rank can receive from (any channel).
    pub fn recv_peers(&self) -> impl Iterator<Item = usize> + '_ {
        let mut last = None;
        self.recvs.keys().filter_map(move |&(p, _)| {
            if last == Some(p) {
                return None;
            }
            last = Some(p);
            Some(p)
        })
    }

    /// The directed `(peer, channel)` send edges covered by these channels.
    pub fn send_edges(&self) -> impl Iterator<Item = (usize, ChannelId)> + '_ {
        self.sends.keys().copied()
    }

    /// The directed `(peer, channel)` recv edges covered by these channels.
    pub fn recv_edges(&self) -> impl Iterator<Item = (usize, ChannelId)> + '_ {
        self.recvs.keys().copied()
    }

    /// Dense, index-addressable view of these channels for the given edge
    /// lists: position `i` of the returned table's send (recv) side is the
    /// connector of `send_edges[i]` (`recv_edges[i]`). A compiled program
    /// resolves its per-instruction connector *indices* against exactly this
    /// layout, so the executor's hot loop never touches the `BTreeMap`s.
    /// Errors if an edge was not materialised for these channels.
    pub fn dense_view(
        &self,
        send_edges: &[(usize, ChannelId)],
        recv_edges: &[(usize, ChannelId)],
    ) -> Result<ConnectorTable, TransportError> {
        let mut sends = Vec::with_capacity(send_edges.len());
        for &(peer, channel) in send_edges {
            let conn = self
                .send_on(peer, channel)
                .ok_or(TransportError::MissingEdge { peer, channel })?;
            sends.push(Arc::clone(conn));
        }
        let mut recvs = Vec::with_capacity(recv_edges.len());
        for &(peer, channel) in recv_edges {
            let conn = self
                .recv_on(peer, channel)
                .ok_or(TransportError::MissingEdge { peer, channel })?;
            recvs.push(Arc::clone(conn));
        }
        Ok(ConnectorTable {
            sends: sends.into(),
            recvs: recvs.into(),
        })
    }
}

/// A flat, index-addressed connector table — the bound form of a compiled
/// program's connector references. Built once per registration from
/// [`RankChannels::dense_view`]; the daemon's poll loop dereferences plain
/// vector indices instead of doing per-poll map lookups. The index arrays are
/// shared `Arc` slices, so cloning a table — e.g. every program of a captured
/// iteration graph holding on to its registration's connectors — is two
/// refcount bumps, not a per-connector `Arc` clone loop.
#[derive(Debug, Clone)]
pub struct ConnectorTable {
    sends: Arc<[Arc<Connector>]>,
    recvs: Arc<[Arc<Connector>]>,
}

impl ConnectorTable {
    /// The send connector at table index `idx`.
    #[inline]
    pub fn send(&self, idx: u32) -> &Connector {
        &self.sends[idx as usize]
    }

    /// The recv connector at table index `idx`.
    #[inline]
    pub fn recv(&self, idx: u32) -> &Connector {
        &self.recvs[idx as usize]
    }

    /// Number of send connectors.
    pub fn send_len(&self) -> usize {
        self.sends.len()
    }

    /// Number of recv connectors.
    pub fn recv_len(&self) -> usize {
        self.recvs.len()
    }
}

/// A peer-addressed communicator over an ordered set of GPUs. Connectors are
/// created lazily for the directed `(src, dst, channel)` edges a plan
/// actually uses.
pub struct Communicator {
    id: CommunicatorId,
    /// Ordered device set, shared with the pool's free-list key so recycling
    /// a communicator never re-clones the device vector.
    devices: Arc<[GpuId]>,
    topology: Arc<Topology>,
    link_model: Arc<LinkModel>,
    connector_capacity: usize,
    /// The domain-wide fault injector every connector of this mesh consults.
    injector: Arc<FaultInjector>,
    /// The domain-wide link-health map; a quarantined edge is relabelled onto
    /// a spare lane when its connector is (re)created.
    health: Arc<LinkHealth>,
    /// `edges[(s, d, c)]` carries channel-`c` chunks from rank `s` to rank `d`.
    edges: Mutex<HashMap<(usize, usize, ChannelId), Arc<Connector>>>,
}

impl std::fmt::Debug for Communicator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Communicator")
            .field("id", &self.id)
            .field("devices", &self.devices)
            .field("edges", &self.edges.lock().len())
            .finish()
    }
}

impl Communicator {
    /// Build an (initially edgeless) mesh communicator over `devices` in the
    /// given rank order. Connectors appear on first use via
    /// [`Communicator::connector_between`] / [`Communicator::channels`].
    pub fn new(
        id: CommunicatorId,
        devices: Vec<GpuId>,
        topology: &Arc<Topology>,
        link_model: &Arc<LinkModel>,
        connector_capacity: usize,
    ) -> Result<Arc<Self>, TransportError> {
        Communicator::with_fault_injector(
            id,
            devices,
            topology,
            link_model,
            connector_capacity,
            FaultInjector::new(0),
        )
    }

    /// [`Communicator::new`] with an explicit (typically domain-shared) fault
    /// injector; pools pass their own so one script reaches every
    /// communicator's connectors.
    pub fn with_fault_injector(
        id: CommunicatorId,
        devices: Vec<GpuId>,
        topology: &Arc<Topology>,
        link_model: &Arc<LinkModel>,
        connector_capacity: usize,
        injector: Arc<FaultInjector>,
    ) -> Result<Arc<Self>, TransportError> {
        Communicator::with_links(
            id,
            devices,
            topology,
            link_model,
            connector_capacity,
            injector,
            LinkHealth::new(),
        )
    }

    /// [`Communicator::with_fault_injector`] with an explicit (typically
    /// domain-shared) link-health map; pools pass their own so one quarantine
    /// decision reroutes every communicator's connectors.
    #[allow(clippy::too_many_arguments)]
    pub fn with_links(
        id: CommunicatorId,
        devices: Vec<GpuId>,
        topology: &Arc<Topology>,
        link_model: &Arc<LinkModel>,
        connector_capacity: usize,
        injector: Arc<FaultInjector>,
        health: Arc<LinkHealth>,
    ) -> Result<Arc<Self>, TransportError> {
        if devices.len() < 2 {
            return Err(TransportError::DeviceSetTooSmall(devices.len()));
        }
        for &d in &devices {
            if !topology.contains(d) {
                return Err(TransportError::UnknownGpu(d));
            }
        }
        Ok(Arc::new(Communicator {
            id,
            devices: devices.into(),
            topology: Arc::clone(topology),
            link_model: Arc::clone(link_model),
            connector_capacity,
            injector,
            health,
            edges: Mutex::new(HashMap::new()),
        }))
    }

    /// Build a communicator over `devices` with the ring edges (`i → i+1`)
    /// pre-created — the layout every pre-mesh caller relied on.
    pub fn new_ring(
        id: CommunicatorId,
        devices: Vec<GpuId>,
        topology: &Arc<Topology>,
        link_model: &Arc<LinkModel>,
        connector_capacity: usize,
    ) -> Result<Arc<Self>, TransportError> {
        let comm = Communicator::new(id, devices, topology, link_model, connector_capacity)?;
        let n = comm.devices.len();
        for i in 0..n {
            comm.connector_between(i, (i + 1) % n)?;
        }
        Ok(comm)
    }

    /// Communicator identifier.
    pub fn id(&self) -> CommunicatorId {
        self.id
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.devices.len()
    }

    /// The ordered device set.
    pub fn devices(&self) -> &[GpuId] {
        &self.devices
    }

    /// The rank of `gpu` within this communicator, if it participates.
    pub fn rank_of(&self, gpu: GpuId) -> Option<usize> {
        self.devices.iter().position(|&d| d == gpu)
    }

    fn check_rank(&self, rank: usize) -> Result<(), TransportError> {
        if rank >= self.devices.len() {
            return Err(TransportError::InvalidRank {
                rank,
                size: self.devices.len(),
            });
        }
        Ok(())
    }

    /// The channel-`channel` connector carrying chunks from rank `src` to
    /// rank `dst`, created on first request. Both endpoints share the same
    /// connector instance, so a chunk published by `src` is what `dst`
    /// consumes.
    pub fn connector_between_on(
        &self,
        src: usize,
        dst: usize,
        channel: ChannelId,
    ) -> Result<Arc<Connector>, TransportError> {
        self.check_rank(src)?;
        self.check_rank(dst)?;
        if src == dst {
            return Err(TransportError::SelfLoop { rank: src });
        }
        let mut edges = self.edges.lock();
        if let Some(c) = edges.get(&(src, dst, channel)) {
            return Ok(Arc::clone(c));
        }
        let link = self
            .topology
            .link_between(self.devices[src], self.devices[dst])?;
        // The connector keeps its *logical* (src, dst, channel) key; only the
        // physical edge label is rerouted when the health map quarantined the
        // lane, so plans and compiled bindings are oblivious to the failover.
        let edge = EdgeId {
            src: self.devices[src],
            dst: self.devices[dst],
            channel: self
                .health
                .reroute(self.devices[src], self.devices[dst], channel),
        };
        let c = Connector::with_edge(
            self.connector_capacity,
            link,
            Arc::clone(&self.link_model),
            Some(edge),
            Some(Arc::clone(&self.injector)),
        );
        edges.insert((src, dst, channel), Arc::clone(&c));
        Ok(c)
    }

    /// The channel-0 connector from rank `src` to rank `dst` (the whole story
    /// for unstriped collectives).
    pub fn connector_between(
        &self,
        src: usize,
        dst: usize,
    ) -> Result<Arc<Connector>, TransportError> {
        self.connector_between_on(src, dst, ChannelId(0))
    }

    /// Build the channels `rank` needs to execute a plan that sends over the
    /// `(peer, channel)` edges in `send_edges` and receives over those in
    /// `recv_edges` (edge lists may repeat; duplicates are collapsed).
    pub fn channels(
        &self,
        rank: usize,
        send_edges: &[(usize, ChannelId)],
        recv_edges: &[(usize, ChannelId)],
    ) -> Result<RankChannels, TransportError> {
        self.check_rank(rank)?;
        let mut sends = BTreeMap::new();
        for &(p, c) in send_edges {
            sends.insert((p, c), self.connector_between_on(rank, p, c)?);
        }
        let mut recvs = BTreeMap::new();
        for &(p, c) in recv_edges {
            recvs.insert((p, c), self.connector_between_on(p, rank, c)?);
        }
        Ok(RankChannels {
            rank,
            size: self.devices.len(),
            gpu: self.devices[rank],
            sends,
            recvs,
        })
    }

    /// The ring channels used by `rank` (send to `rank+1`, receive from
    /// `rank-1`, channel 0) — the layout every plan assumed before peer
    /// addressing.
    pub fn rank_channels(&self, rank: usize) -> Result<RankChannels, TransportError> {
        let n = self.devices.len();
        self.check_rank(rank)?;
        let next = (rank + 1) % n;
        let prev = (rank + n - 1) % n;
        self.channels(rank, &[(next, ChannelId(0))], &[(prev, ChannelId(0))])
    }

    /// Drop any chunks still buffered in the mesh (used when recycling).
    pub fn clear(&self) {
        for e in self.edges.lock().values() {
            e.clear();
        }
    }

    /// Drop every connector whose physical edge is quarantined in the health
    /// map, so the next [`Communicator::channels`] call recreates it with a
    /// rerouted label. Returns the number of connectors dropped.
    pub fn purge_dead(&self) -> usize {
        if self.health.is_clean() {
            return 0;
        }
        let mut edges = self.edges.lock();
        let before = edges.len();
        edges.retain(|_, c| c.edge().is_none_or(|e| !self.health.is_dead(e)));
        before - edges.len()
    }

    /// The link-health map this mesh's wiring consults.
    pub fn link_health(&self) -> &Arc<LinkHealth> {
        &self.health
    }

    /// Whether any connector still holds chunks.
    pub fn has_in_flight_data(&self) -> bool {
        self.edges.lock().values().any(|e| !e.is_empty())
    }

    /// Number of distinct directed `(src, dst, channel)` edges materialised
    /// so far.
    pub fn edge_count(&self) -> usize {
        self.edges.lock().len()
    }

    /// Total chunks ever published across every connector of this mesh — a
    /// monotone progress counter (used by the baseline watchdog to tell a
    /// slow-but-progressing collective from a wedged one).
    pub fn transferred_chunks(&self) -> u64 {
        self.edges
            .lock()
            .values()
            .map(|e| e.stats().chunks_sent)
            .sum()
    }

    /// The fault injector this mesh's connectors consult.
    pub fn fault_injector(&self) -> &Arc<FaultInjector> {
        &self.injector
    }

    /// A per-edge progress snapshot of every materialised connector, sorted
    /// by edge for stable output. `coll_id` is left unset — the domain layer
    /// stamps it with the collective this communicator belongs to.
    pub fn edge_samples(&self) -> Vec<EdgeSample> {
        let mut samples: Vec<EdgeSample> = self
            .edges
            .lock()
            .values()
            .map(|c| EdgeSample {
                coll_id: None,
                edge: c.edge().expect("communicator connectors are edge-bound"),
                link: c.link(),
                queued: c.len(),
                dead: c.is_dead(),
                stats: c.stats(),
            })
            .collect();
        samples.sort_by_key(|s| s.edge);
        samples
    }
}

/// A pool of communicators keyed by device set, transparent to the API user.
pub struct CommunicatorPool {
    topology: Arc<Topology>,
    link_model: Arc<LinkModel>,
    connector_capacity: usize,
    /// The pool-wide fault injector, shared by every communicator it creates.
    /// Inert (no scripted faults) unless a test or operator scripts it.
    injector: Arc<FaultInjector>,
    /// The pool-wide link-health map, shared by every communicator it
    /// creates. Inert until a recovery pass quarantines an edge.
    health: Arc<LinkHealth>,
    next_id: AtomicU64,
    created: AtomicU64,
    /// Idle communicators keyed by their shared device-set handle. Lookups
    /// borrow the caller's `&[GpuId]` and releases clone the communicator's
    /// own `Arc<[GpuId]>` — no device vector is ever copied on the pool path.
    free: Mutex<FreeList>,
}

/// The pool's idle communicators per device set.
type FreeList = HashMap<Arc<[GpuId]>, Vec<Arc<Communicator>>>;

impl CommunicatorPool {
    /// Create a pool over a topology and link model. `connector_capacity` is
    /// the number of chunk slots per connector.
    pub fn new(
        topology: Arc<Topology>,
        link_model: Arc<LinkModel>,
        connector_capacity: usize,
    ) -> Arc<Self> {
        Arc::new(CommunicatorPool {
            topology,
            link_model,
            connector_capacity,
            injector: FaultInjector::new(0),
            health: LinkHealth::new(),
            next_id: AtomicU64::new(0),
            created: AtomicU64::new(0),
            free: Mutex::new(HashMap::new()),
        })
    }

    /// A pool with a zero-cost link model over a flat topology of `n` GPUs —
    /// convenient for tests.
    pub fn for_testing(n: usize) -> Arc<Self> {
        CommunicatorPool::new(
            Arc::new(Topology::flat(n)),
            Arc::new(LinkModel::zero_cost()),
            8,
        )
    }

    /// The topology backing this pool.
    pub fn topology(&self) -> &Arc<Topology> {
        &self.topology
    }

    /// The link model backing this pool.
    pub fn link_model(&self) -> &Arc<LinkModel> {
        &self.link_model
    }

    /// The pool-wide fault injector. Scripting a fault here affects every
    /// communicator the pool has handed out or will hand out.
    pub fn fault_injector(&self) -> &Arc<FaultInjector> {
        &self.injector
    }

    /// The pool-wide link-health map. Quarantining an edge here reroutes
    /// every communicator the pool has handed out or will hand out.
    pub fn link_health(&self) -> &Arc<LinkHealth> {
        &self.health
    }

    /// Allocate a mesh communicator for `devices`, reusing a previously
    /// released one when available. Edges materialise as plans request them.
    pub fn allocate(&self, devices: &[GpuId]) -> Result<Arc<Communicator>, TransportError> {
        if let Some(comm) = self.free.lock().get_mut(devices).and_then(|v| v.pop()) {
            comm.clear();
            return Ok(comm);
        }
        let id = CommunicatorId(self.next_id.fetch_add(1, Ordering::Relaxed));
        self.created.fetch_add(1, Ordering::Relaxed);
        Communicator::with_links(
            id,
            devices.to_vec(),
            &self.topology,
            &self.link_model,
            self.connector_capacity,
            Arc::clone(&self.injector),
            Arc::clone(&self.health),
        )
    }

    /// Drop idle communicators whose device set contains `gpu` — elastic
    /// membership removes a rank, so pooled meshes touching it must not be
    /// recycled. Returns the number of communicators dropped.
    pub fn evict_device(&self, gpu: GpuId) -> usize {
        let mut free = self.free.lock();
        let before: usize = free.values().map(Vec::len).sum();
        free.retain(|devices, _| !devices.contains(&gpu));
        before - free.values().map(Vec::len).sum::<usize>()
    }

    /// Return a communicator to the pool for reuse by a later registration
    /// over the same device set.
    pub fn release(&self, comm: Arc<Communicator>) {
        let key = Arc::clone(&comm.devices);
        self.free.lock().entry(key).or_default().push(comm);
    }

    /// Number of communicators ever created (not counting reuse).
    pub fn created_count(&self) -> u64 {
        self.created.load(Ordering::Relaxed)
    }

    /// Number of communicators currently idle in the pool.
    pub fn idle_count(&self) -> usize {
        self.free.lock().values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connector::ChunkMsg;
    use crate::topology::LinkClass;

    fn gpus(ids: &[usize]) -> Vec<GpuId> {
        ids.iter().map(|&i| GpuId(i)).collect()
    }

    fn flat(n: usize) -> Arc<Topology> {
        Arc::new(Topology::flat(n))
    }

    #[test]
    fn ring_channels_wire_neighbours_correctly() {
        let topo = flat(4);
        let model = Arc::new(LinkModel::zero_cost());
        let comm = Communicator::new_ring(CommunicatorId(0), gpus(&[0, 1, 2, 3]), &topo, &model, 4)
            .unwrap();
        let ch1 = comm.rank_channels(1).unwrap();
        assert_eq!(ch1.send_peers().collect::<Vec<_>>(), vec![2]);
        assert_eq!(ch1.recv_peers().collect::<Vec<_>>(), vec![0]);
        // Rank 0's send connector is rank 1's recv connector.
        let ch0 = comm.rank_channels(0).unwrap();
        ch0.send_to(1)
            .unwrap()
            .try_send(ChunkMsg {
                coll_id: 9,
                chunk_index: 0,
                step: 0,
                data: vec![1, 2, 3],
            })
            .unwrap();
        let got = ch1.recv_from(0).unwrap().try_recv().unwrap();
        assert_eq!(got.coll_id, 9);
    }

    #[test]
    fn ring_wraps_around_for_last_rank() {
        let topo = flat(3);
        let model = Arc::new(LinkModel::zero_cost());
        let comm =
            Communicator::new_ring(CommunicatorId(0), gpus(&[0, 1, 2]), &topo, &model, 4).unwrap();
        let last = comm.rank_channels(2).unwrap();
        assert!(last.send_to(0).is_some());
        let first = comm.rank_channels(0).unwrap();
        assert!(first.recv_from(2).is_some());
        // A ring over n ranks materialises exactly n directed edges.
        assert_eq!(comm.edge_count(), 3);
    }

    #[test]
    fn mesh_creates_edges_on_demand_and_shares_them() {
        let topo = flat(4);
        let model = Arc::new(LinkModel::zero_cost());
        let comm =
            Communicator::new(CommunicatorId(0), gpus(&[0, 1, 2, 3]), &topo, &model, 4).unwrap();
        assert_eq!(comm.edge_count(), 0);
        // A tree-ish channel request: rank 0 talks to 1 and 2 in both directions.
        let c0 = ChannelId(0);
        let ch0 = comm
            .channels(0, &[(1, c0), (2, c0)], &[(1, c0), (2, c0)])
            .unwrap();
        assert_eq!(comm.edge_count(), 4);
        let ch1 = comm.channels(1, &[(0, c0)], &[(0, c0)]).unwrap();
        // Rank 1's edges already existed; nothing new is created.
        assert_eq!(comm.edge_count(), 4);
        ch0.send_to(1)
            .unwrap()
            .try_send(ChunkMsg {
                coll_id: 5,
                chunk_index: 0,
                step: 0,
                data: vec![7],
            })
            .unwrap();
        assert_eq!(ch1.recv_from(0).unwrap().try_recv().unwrap().coll_id, 5);
        // Channels cover only the requested peers.
        assert!(ch0.send_to(3).is_none());
        assert!(ch0.recv_from(3).is_none());
    }

    #[test]
    fn duplicate_peer_lists_collapse() {
        let topo = flat(3);
        let model = Arc::new(LinkModel::zero_cost());
        let comm =
            Communicator::new(CommunicatorId(0), gpus(&[0, 1, 2]), &topo, &model, 4).unwrap();
        let c0 = ChannelId(0);
        let ch = comm
            .channels(
                0,
                &[(1, c0), (1, c0), (2, c0), (1, c0)],
                &[(2, c0), (2, c0)],
            )
            .unwrap();
        assert_eq!(ch.send_peers().collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(ch.recv_peers().collect::<Vec<_>>(), vec![2]);
        assert_eq!(comm.edge_count(), 3);
    }

    #[test]
    fn striped_edges_are_distinct_connectors_per_channel() {
        // K parallel channels per (src, dst) pair: distinct connector
        // instances, each with its own capacity, shared by both endpoints.
        let topo = flat(2);
        let model = Arc::new(LinkModel::zero_cost());
        let comm = Communicator::new(CommunicatorId(0), gpus(&[0, 1]), &topo, &model, 1).unwrap();
        let edges: Vec<(usize, ChannelId)> = (0..3).map(|c| (1usize, ChannelId(c))).collect();
        let ch0 = comm.channels(0, &edges, &[]).unwrap();
        let recv_edges: Vec<(usize, ChannelId)> = (0..3).map(|c| (0usize, ChannelId(c))).collect();
        let ch1 = comm.channels(1, &[], &recv_edges).unwrap();
        assert_eq!(comm.edge_count(), 3);
        assert_eq!(ch0.send_peers().collect::<Vec<_>>(), vec![1]);
        assert_eq!(
            ch0.send_edges().collect::<Vec<_>>(),
            vec![(1, ChannelId(0)), (1, ChannelId(1)), (1, ChannelId(2))]
        );
        // Fill every channel (capacity 1 each): a single shared connector
        // would reject the second send.
        for c in 0..3u32 {
            ch0.send_on(1, ChannelId(c))
                .unwrap()
                .try_send(ChunkMsg {
                    coll_id: 1,
                    chunk_index: c,
                    step: 0,
                    data: vec![c as u8],
                })
                .unwrap();
        }
        for c in 0..3u32 {
            let got = ch1.recv_on(0, ChannelId(c)).unwrap().try_recv().unwrap();
            assert_eq!(got.chunk_index, c);
        }
        // A channel the channels were not built for is absent, not aliased.
        assert!(ch0.send_on(1, ChannelId(7)).is_none());
        // send_to/recv_from are the channel-0 view.
        assert!(Arc::ptr_eq(
            ch0.send_to(1).unwrap(),
            ch0.send_on(1, ChannelId(0)).unwrap()
        ));
        assert_eq!(comm.transferred_chunks(), 3);
    }

    #[test]
    fn dense_view_indexes_connectors_in_edge_list_order() {
        let topo = flat(4);
        let model = Arc::new(LinkModel::zero_cost());
        let comm =
            Communicator::new(CommunicatorId(0), gpus(&[0, 1, 2, 3]), &topo, &model, 4).unwrap();
        let c0 = ChannelId(0);
        let c1 = ChannelId(1);
        let send_edges = [(1usize, c0), (1, c1), (3, c0)];
        let recv_edges = [(2usize, c0)];
        let ch = comm.channels(0, &send_edges, &recv_edges).unwrap();
        let table = ch.dense_view(&send_edges, &recv_edges).unwrap();
        assert_eq!(table.send_len(), 3);
        assert_eq!(table.recv_len(), 1);
        // Table position i is exactly send_edges[i]'s connector.
        for (i, &(p, c)) in send_edges.iter().enumerate() {
            assert!(
                std::ptr::eq(table.send(i as u32), ch.send_on(p, c).unwrap().as_ref()),
                "send index {i} must alias edge ({p}, {c})"
            );
        }
        assert!(std::ptr::eq(
            table.recv(0),
            ch.recv_on(2, c0).unwrap().as_ref()
        ));
        // An edge the channels were not built for is a hard error.
        assert_eq!(
            ch.dense_view(&[(2, c0)], &[]).unwrap_err(),
            crate::TransportError::MissingEdge {
                peer: 2,
                channel: c0
            }
        );
    }

    #[test]
    fn self_loops_are_rejected() {
        let topo = flat(2);
        let model = Arc::new(LinkModel::zero_cost());
        let comm = Communicator::new(CommunicatorId(0), gpus(&[0, 1]), &topo, &model, 4).unwrap();
        assert!(matches!(
            comm.connector_between(1, 1),
            Err(TransportError::SelfLoop { rank: 1 })
        ));
        assert!(matches!(
            comm.channels(0, &[(0, ChannelId(0))], &[]),
            Err(TransportError::SelfLoop { rank: 0 })
        ));
    }

    #[test]
    fn communicator_rejects_tiny_device_sets() {
        let topo = flat(2);
        let model = Arc::new(LinkModel::zero_cost());
        assert!(matches!(
            Communicator::new_ring(CommunicatorId(0), gpus(&[0]), &topo, &model, 4),
            Err(TransportError::DeviceSetTooSmall(1))
        ));
    }

    #[test]
    fn invalid_rank_is_an_error() {
        let topo = flat(2);
        let model = Arc::new(LinkModel::zero_cost());
        let comm =
            Communicator::new_ring(CommunicatorId(0), gpus(&[0, 1]), &topo, &model, 4).unwrap();
        assert!(matches!(
            comm.rank_channels(5),
            Err(TransportError::InvalidRank { rank: 5, size: 2 })
        ));
        assert!(matches!(
            comm.connector_between(0, 9),
            Err(TransportError::InvalidRank { rank: 9, size: 2 })
        ));
        assert_eq!(comm.rank_of(GpuId(1)), Some(1));
        assert_eq!(comm.rank_of(GpuId(7)), None);
    }

    #[test]
    fn connectors_use_topology_link_classes() {
        let topo = Arc::new(Topology::single_server());
        let model = Arc::new(LinkModel::zero_cost());
        // Ring 3 -> 4 crosses the socket (IntraSys); 0 -> 1 stays in a PIX domain.
        let comm = Communicator::new_ring(
            CommunicatorId(0),
            gpus(&[0, 1, 2, 3, 4, 5, 6, 7]),
            &topo,
            &model,
            4,
        )
        .unwrap();
        let link_of = |src: usize, dst: usize| comm.connector_between(src, dst).unwrap().link();
        assert_eq!(link_of(0, 1), LinkClass::IntraPix);
        assert_eq!(link_of(3, 4), LinkClass::IntraSys);
        assert_eq!(link_of(7, 0), LinkClass::IntraSys);
        // A mesh edge crossing machines gets classified on demand, too.
        let two = Arc::new(Topology::two_eight_gpu_servers());
        let comm2 = Communicator::new(CommunicatorId(1), two.gpus(), &two, &model, 4).unwrap();
        assert_eq!(
            comm2.connector_between(0, 8).unwrap().link(),
            LinkClass::InterNode
        );
    }

    #[test]
    fn pool_reuses_released_communicators() {
        let pool = CommunicatorPool::for_testing(4);
        let devices = gpus(&[0, 1, 2, 3]);
        let c1 = pool.allocate(&devices).unwrap();
        let id1 = c1.id();
        pool.release(c1);
        assert_eq!(pool.idle_count(), 1);
        let c2 = pool.allocate(&devices).unwrap();
        assert_eq!(c2.id(), id1);
        assert_eq!(pool.created_count(), 1);
        assert_eq!(pool.idle_count(), 0);
    }

    #[test]
    fn pool_creates_distinct_communicators_for_concurrent_requests() {
        let pool = CommunicatorPool::for_testing(4);
        let devices = gpus(&[0, 1, 2, 3]);
        let c1 = pool.allocate(&devices).unwrap();
        let c2 = pool.allocate(&devices).unwrap();
        assert_ne!(c1.id(), c2.id());
        assert_eq!(pool.created_count(), 2);
    }

    #[test]
    fn pool_injector_reaches_every_connector_and_edge_samples_name_edges() {
        use crate::fault::{FaultSpec, StallKind};

        let pool = CommunicatorPool::for_testing(4);
        let comm = pool.allocate(&gpus(&[0, 1, 2, 3])).unwrap();
        let conn = comm.connector_between(1, 2).unwrap();
        let edge = conn.edge().unwrap();
        assert_eq!(edge.src, GpuId(1));
        assert_eq!(edge.dst, GpuId(2));
        assert_eq!(edge.channel, ChannelId(0));

        // Script a dead link on the pool: the already-created connector sees it.
        pool.fault_injector().script(edge, FaultSpec::dead());
        assert!(!conn.send_ready());
        let before = comm.edge_samples();
        let bounced = conn.try_send(ChunkMsg {
            coll_id: 1,
            chunk_index: 0,
            step: 0,
            data: vec![1],
        });
        assert!(bounced.is_err());
        let after = comm.edge_samples();
        assert_eq!(after.len(), 1);
        assert_eq!(after[0].edge, edge);
        assert_eq!(after[0].stats.fault_rejections, 1);

        let report = crate::fault::classify_stall(&before, &after);
        assert_eq!(report.kind, StallKind::LinkFailure);
        assert_eq!(report.failed_edges[0].edge, edge);

        pool.fault_injector().clear();
        assert!(conn.send_ready());
    }

    #[test]
    fn quarantined_edges_are_rerouted_after_a_purge() {
        use crate::fault::FaultSpec;

        let pool = CommunicatorPool::for_testing(2);
        let comm = pool.allocate(&gpus(&[0, 1])).unwrap();
        let conn = comm.connector_between(0, 1).unwrap();
        let edge = conn.edge().unwrap();
        // Kill the physical lane and quarantine it, as recovery would.
        pool.fault_injector().script(edge, FaultSpec::dead());
        pool.link_health().quarantine(edge);
        assert!(!conn.send_ready());
        // The cached connector still carries the dead label until purged.
        assert_eq!(comm.purge_dead(), 1);
        let rerouted = comm.connector_between(0, 1).unwrap();
        let new_edge = rerouted.edge().unwrap();
        assert_ne!(new_edge, edge);
        assert!(new_edge.channel.0 >= crate::health::REROUTE_CHANNEL_BASE);
        // The rerouted lane is live: the dead script keys on the old label.
        assert!(rerouted.send_ready());
        rerouted
            .try_send(ChunkMsg {
                coll_id: 3,
                chunk_index: 0,
                step: 0,
                data: vec![9],
            })
            .unwrap();
        assert_eq!(rerouted.try_recv().unwrap().coll_id, 3);
        // Both endpoints resolve to the same rerouted connector instance.
        let ch0 = comm.channels(0, &[(1, ChannelId(0))], &[]).unwrap();
        let ch1 = comm.channels(1, &[], &[(0, ChannelId(0))]).unwrap();
        assert!(Arc::ptr_eq(
            ch0.send_to(1).unwrap(),
            ch1.recv_from(0).unwrap()
        ));
        // The healthy reverse direction is untouched.
        assert_eq!(
            comm.connector_between(1, 0)
                .unwrap()
                .edge()
                .unwrap()
                .channel,
            ChannelId(0)
        );
    }

    #[test]
    fn pool_evicts_idle_communicators_touching_a_removed_device() {
        let pool = CommunicatorPool::for_testing(4);
        let a = pool.allocate(&gpus(&[0, 1, 2, 3])).unwrap();
        let b = pool.allocate(&gpus(&[0, 1])).unwrap();
        pool.release(a);
        pool.release(b);
        assert_eq!(pool.idle_count(), 2);
        assert_eq!(pool.evict_device(GpuId(3)), 1);
        assert_eq!(pool.idle_count(), 1);
        assert_eq!(pool.evict_device(GpuId(3)), 0);
    }

    #[test]
    fn pool_clears_stale_data_on_reuse() {
        let pool = CommunicatorPool::for_testing(2);
        let devices = gpus(&[0, 1]);
        let c1 = pool.allocate(&devices).unwrap();
        c1.rank_channels(0)
            .unwrap()
            .send_to(1)
            .unwrap()
            .try_send(ChunkMsg {
                coll_id: 1,
                chunk_index: 0,
                step: 0,
                data: vec![0xAA],
            })
            .unwrap();
        assert!(c1.has_in_flight_data());
        pool.release(c1);
        let c2 = pool.allocate(&devices).unwrap();
        assert!(!c2.has_in_flight_data());
    }
}
