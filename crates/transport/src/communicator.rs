//! Communicators: the ring of connectors behind one collective, and the pool
//! that hands them out.
//!
//! The paper keeps the communicator concept transparent to users: DFCCL
//! "maintains a communicator pool, automatically creating and allocating
//! communicators for collectives" (Sec. 3.2). Each registered collective gets
//! its own communicator so that a preempted collective's connectors are never
//! reused by another collective — the invariant the correctness argument of
//! Sec. 4.5 relies on.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use gpu_sim::GpuId;
use parking_lot::Mutex;

use crate::connector::Connector;
use crate::linkmodel::LinkModel;
use crate::topology::Topology;
use crate::TransportError;

/// Identifier of a communicator within a pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CommunicatorId(pub u64);

/// The channels one rank uses inside a ring communicator.
#[derive(Debug, Clone)]
pub struct RankChannels {
    /// This rank's index within the communicator.
    pub rank: usize,
    /// Number of ranks in the communicator.
    pub size: usize,
    /// GPU this rank runs on.
    pub gpu: GpuId,
    /// GPU of the next rank in the ring (the send peer).
    pub send_peer: GpuId,
    /// GPU of the previous rank in the ring (the recv peer).
    pub recv_peer: GpuId,
    /// Connector used to send chunks to the next rank.
    pub send: Arc<Connector>,
    /// Connector used to receive chunks from the previous rank.
    pub recv: Arc<Connector>,
}

/// A ring communicator over an ordered set of GPUs.
pub struct Communicator {
    id: CommunicatorId,
    devices: Vec<GpuId>,
    /// `edges[i]` carries chunks from rank `i` to rank `(i + 1) % n`.
    edges: Vec<Arc<Connector>>,
}

impl std::fmt::Debug for Communicator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Communicator")
            .field("id", &self.id)
            .field("devices", &self.devices)
            .finish()
    }
}

impl Communicator {
    /// Build a ring communicator over `devices` (in the given rank order).
    pub fn new_ring(
        id: CommunicatorId,
        devices: Vec<GpuId>,
        topology: &Topology,
        link_model: &Arc<LinkModel>,
        connector_capacity: usize,
    ) -> Result<Arc<Self>, TransportError> {
        if devices.len() < 2 {
            return Err(TransportError::DeviceSetTooSmall(devices.len()));
        }
        let n = devices.len();
        let mut edges = Vec::with_capacity(n);
        for i in 0..n {
            let from = devices[i];
            let to = devices[(i + 1) % n];
            let link = topology.link_between(from, to)?;
            edges.push(Connector::new(
                connector_capacity,
                link,
                Arc::clone(link_model),
            ));
        }
        Ok(Arc::new(Communicator { id, devices, edges }))
    }

    /// Communicator identifier.
    pub fn id(&self) -> CommunicatorId {
        self.id
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.devices.len()
    }

    /// The ordered device set.
    pub fn devices(&self) -> &[GpuId] {
        &self.devices
    }

    /// The rank of `gpu` within this communicator, if it participates.
    pub fn rank_of(&self, gpu: GpuId) -> Option<usize> {
        self.devices.iter().position(|&d| d == gpu)
    }

    /// The channels used by `rank`.
    pub fn rank_channels(&self, rank: usize) -> Result<RankChannels, TransportError> {
        let n = self.devices.len();
        if rank >= n {
            return Err(TransportError::InvalidRank { rank, size: n });
        }
        let prev = (rank + n - 1) % n;
        Ok(RankChannels {
            rank,
            size: n,
            gpu: self.devices[rank],
            send_peer: self.devices[(rank + 1) % n],
            recv_peer: self.devices[prev],
            send: Arc::clone(&self.edges[rank]),
            recv: Arc::clone(&self.edges[prev]),
        })
    }

    /// Drop any chunks still buffered in the ring (used when recycling).
    pub fn clear(&self) {
        for e in &self.edges {
            e.clear();
        }
    }

    /// Whether any connector still holds chunks.
    pub fn has_in_flight_data(&self) -> bool {
        self.edges.iter().any(|e| !e.is_empty())
    }
}

/// A pool of communicators keyed by device set, transparent to the API user.
pub struct CommunicatorPool {
    topology: Arc<Topology>,
    link_model: Arc<LinkModel>,
    connector_capacity: usize,
    next_id: AtomicU64,
    created: AtomicU64,
    free: Mutex<HashMap<Vec<GpuId>, Vec<Arc<Communicator>>>>,
}

impl CommunicatorPool {
    /// Create a pool over a topology and link model. `connector_capacity` is
    /// the number of chunk slots per connector.
    pub fn new(
        topology: Arc<Topology>,
        link_model: Arc<LinkModel>,
        connector_capacity: usize,
    ) -> Arc<Self> {
        Arc::new(CommunicatorPool {
            topology,
            link_model,
            connector_capacity,
            next_id: AtomicU64::new(0),
            created: AtomicU64::new(0),
            free: Mutex::new(HashMap::new()),
        })
    }

    /// A pool with a zero-cost link model over a flat topology of `n` GPUs —
    /// convenient for tests.
    pub fn for_testing(n: usize) -> Arc<Self> {
        CommunicatorPool::new(
            Arc::new(Topology::flat(n)),
            Arc::new(LinkModel::zero_cost()),
            8,
        )
    }

    /// The topology backing this pool.
    pub fn topology(&self) -> &Arc<Topology> {
        &self.topology
    }

    /// The link model backing this pool.
    pub fn link_model(&self) -> &Arc<LinkModel> {
        &self.link_model
    }

    /// Allocate a communicator for `devices`, reusing a previously released
    /// one when available.
    pub fn allocate(&self, devices: &[GpuId]) -> Result<Arc<Communicator>, TransportError> {
        if let Some(comm) = self.free.lock().get_mut(devices).and_then(|v| v.pop()) {
            comm.clear();
            return Ok(comm);
        }
        let id = CommunicatorId(self.next_id.fetch_add(1, Ordering::Relaxed));
        self.created.fetch_add(1, Ordering::Relaxed);
        Communicator::new_ring(
            id,
            devices.to_vec(),
            &self.topology,
            &self.link_model,
            self.connector_capacity,
        )
    }

    /// Return a communicator to the pool for reuse by a later registration
    /// over the same device set.
    pub fn release(&self, comm: Arc<Communicator>) {
        let key = comm.devices().to_vec();
        self.free.lock().entry(key).or_default().push(comm);
    }

    /// Number of communicators ever created (not counting reuse).
    pub fn created_count(&self) -> u64 {
        self.created.load(Ordering::Relaxed)
    }

    /// Number of communicators currently idle in the pool.
    pub fn idle_count(&self) -> usize {
        self.free.lock().values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connector::ChunkMsg;
    use crate::topology::LinkClass;

    fn gpus(ids: &[usize]) -> Vec<GpuId> {
        ids.iter().map(|&i| GpuId(i)).collect()
    }

    #[test]
    fn ring_channels_wire_neighbours_correctly() {
        let topo = Topology::flat(4);
        let model = Arc::new(LinkModel::zero_cost());
        let comm = Communicator::new_ring(CommunicatorId(0), gpus(&[0, 1, 2, 3]), &topo, &model, 4)
            .unwrap();
        let ch1 = comm.rank_channels(1).unwrap();
        assert_eq!(ch1.send_peer, GpuId(2));
        assert_eq!(ch1.recv_peer, GpuId(0));
        // Rank 0's send connector is rank 1's recv connector.
        let ch0 = comm.rank_channels(0).unwrap();
        ch0.send
            .try_send(ChunkMsg {
                coll_id: 9,
                chunk_index: 0,
                step: 0,
                data: vec![1, 2, 3],
            })
            .unwrap();
        let got = ch1.recv.try_recv().unwrap();
        assert_eq!(got.coll_id, 9);
    }

    #[test]
    fn ring_wraps_around_for_last_rank() {
        let topo = Topology::flat(3);
        let model = Arc::new(LinkModel::zero_cost());
        let comm =
            Communicator::new_ring(CommunicatorId(0), gpus(&[0, 1, 2]), &topo, &model, 4).unwrap();
        let last = comm.rank_channels(2).unwrap();
        assert_eq!(last.send_peer, GpuId(0));
        let first = comm.rank_channels(0).unwrap();
        assert_eq!(first.recv_peer, GpuId(2));
    }

    #[test]
    fn communicator_rejects_tiny_device_sets() {
        let topo = Topology::flat(2);
        let model = Arc::new(LinkModel::zero_cost());
        assert!(matches!(
            Communicator::new_ring(CommunicatorId(0), gpus(&[0]), &topo, &model, 4),
            Err(TransportError::DeviceSetTooSmall(1))
        ));
    }

    #[test]
    fn invalid_rank_is_an_error() {
        let topo = Topology::flat(2);
        let model = Arc::new(LinkModel::zero_cost());
        let comm =
            Communicator::new_ring(CommunicatorId(0), gpus(&[0, 1]), &topo, &model, 4).unwrap();
        assert!(matches!(
            comm.rank_channels(5),
            Err(TransportError::InvalidRank { rank: 5, size: 2 })
        ));
        assert_eq!(comm.rank_of(GpuId(1)), Some(1));
        assert_eq!(comm.rank_of(GpuId(7)), None);
    }

    #[test]
    fn connectors_use_topology_link_classes() {
        let topo = Topology::single_server();
        let model = Arc::new(LinkModel::zero_cost());
        // Ring 3 -> 4 crosses the socket (IntraSys); 0 -> 1 stays in a PIX domain.
        let comm = Communicator::new_ring(
            CommunicatorId(0),
            gpus(&[0, 1, 2, 3, 4, 5, 6, 7]),
            &topo,
            &model,
            4,
        )
        .unwrap();
        assert_eq!(
            comm.rank_channels(0).unwrap().send.link(),
            LinkClass::IntraPix
        );
        assert_eq!(
            comm.rank_channels(3).unwrap().send.link(),
            LinkClass::IntraSys
        );
        assert_eq!(
            comm.rank_channels(7).unwrap().send.link(),
            LinkClass::IntraSys
        );
    }

    #[test]
    fn pool_reuses_released_communicators() {
        let pool = CommunicatorPool::for_testing(4);
        let devices = gpus(&[0, 1, 2, 3]);
        let c1 = pool.allocate(&devices).unwrap();
        let id1 = c1.id();
        pool.release(c1);
        assert_eq!(pool.idle_count(), 1);
        let c2 = pool.allocate(&devices).unwrap();
        assert_eq!(c2.id(), id1);
        assert_eq!(pool.created_count(), 1);
        assert_eq!(pool.idle_count(), 0);
    }

    #[test]
    fn pool_creates_distinct_communicators_for_concurrent_requests() {
        let pool = CommunicatorPool::for_testing(4);
        let devices = gpus(&[0, 1, 2, 3]);
        let c1 = pool.allocate(&devices).unwrap();
        let c2 = pool.allocate(&devices).unwrap();
        assert_ne!(c1.id(), c2.id());
        assert_eq!(pool.created_count(), 2);
    }

    #[test]
    fn pool_clears_stale_data_on_reuse() {
        let pool = CommunicatorPool::for_testing(2);
        let devices = gpus(&[0, 1]);
        let c1 = pool.allocate(&devices).unwrap();
        c1.rank_channels(0)
            .unwrap()
            .send
            .try_send(ChunkMsg {
                coll_id: 1,
                chunk_index: 0,
                step: 0,
                data: vec![0xAA],
            })
            .unwrap();
        assert!(c1.has_in_flight_data());
        pool.release(c1);
        let c2 = pool.allocate(&devices).unwrap();
        assert!(!c2.has_in_flight_data());
    }
}
