//! # dfccl-transport — topology, link cost model, connectors, communicators
//!
//! This crate models the data-movement substrate the paper's collectives run
//! on (Table 2 testbeds + Fig. 5 buffers):
//!
//! * [`Topology`] — machines, PIX/SYS PCIe domains and the inter-node network,
//!   classifying the link between any two GPUs.
//! * [`LinkModel`] — an `alpha + bytes/beta` transfer-cost model per link
//!   class, replacing the real SHM/RDMA transports. A global time scale keeps
//!   benchmark runs fast while preserving relative magnitudes.
//! * [`Connector`] — the lock-free ring buffer used for inter-GPU data
//!   transfer (the *send/recv connectors* of Fig. 5). Data published into a
//!   connector stays visible until consumed, which is the *persistent
//!   visibility* property DFCCL's decentralized preemption relies on
//!   (Sec. 4.1).
//! * [`Communicator`] / [`CommunicatorPool`] — the per-collective ring of
//!   connectors, and the pool that allocates communicators transparently
//!   (Sec. 3.2).
//! * [`FaultInjector`] / [`StallReport`] — scriptable per-edge link faults
//!   (dead, N× slowdown, flaky) and the per-edge progress samples +
//!   stall-classification machinery watchdogs consume to tell a wedge from a
//!   link failure from a slow-but-progressing round.

pub mod communicator;
pub mod connector;
pub mod fault;
pub mod health;
pub mod linkmodel;
pub mod topology;

pub use communicator::{
    ChannelId, Communicator, CommunicatorId, CommunicatorPool, ConnectorTable, RankChannels,
};
pub use connector::{ChunkMsg, Connector, ConnectorStats, SendError};
pub use fault::{
    classify_stall, supervise_with_probe, total_progress, EdgeId, EdgeSample, FaultDecision,
    FaultInjector, FaultKind, FaultSpec, FaultTrigger, StallKind, StallReport, SuperviseOutcome,
};
pub use health::{LinkHealth, REROUTE_CHANNEL_BASE};
pub use linkmodel::{LinkModel, LinkParams};
pub use topology::{LinkClass, MachineSpec, Topology};

/// Errors produced by the transport layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// A GPU id was not found in the topology.
    UnknownGpu(gpu_sim::GpuId),
    /// A communicator was requested for fewer than two GPUs.
    DeviceSetTooSmall(usize),
    /// A rank index was out of range for a communicator.
    InvalidRank { rank: usize, size: usize },
    /// A connector was requested from a rank to itself; local traffic never
    /// crosses a connector.
    SelfLoop { rank: usize },
    /// A dense connector-table view named a `(peer, channel)` edge the
    /// channels were not built for.
    MissingEdge {
        /// The peer rank of the missing edge.
        peer: usize,
        /// The channel of the missing edge.
        channel: communicator::ChannelId,
    },
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::UnknownGpu(id) => write!(f, "GPU {id} is not part of the topology"),
            TransportError::DeviceSetTooSmall(n) => {
                write!(f, "a communicator needs at least 2 GPUs, got {n}")
            }
            TransportError::InvalidRank { rank, size } => {
                write!(
                    f,
                    "rank {rank} out of range for communicator of size {size}"
                )
            }
            TransportError::SelfLoop { rank } => {
                write!(f, "rank {rank} requested a connector to itself")
            }
            TransportError::MissingEdge { peer, channel } => {
                write!(
                    f,
                    "channels were not built for the edge to rank {peer} on {channel}"
                )
            }
        }
    }
}

impl std::error::Error for TransportError {}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::GpuId;

    #[test]
    fn error_messages_are_informative() {
        assert!(TransportError::UnknownGpu(GpuId(7))
            .to_string()
            .contains("gpu7"));
        assert!(TransportError::DeviceSetTooSmall(1)
            .to_string()
            .contains("at least 2"));
        assert!(TransportError::InvalidRank { rank: 9, size: 4 }
            .to_string()
            .contains("rank 9"));
        assert!(TransportError::SelfLoop { rank: 3 }
            .to_string()
            .contains("itself"));
    }
}
