//! The link cost model replacing the SHM / RDMA transports of the testbed.
//!
//! Every chunk pushed through a [`crate::Connector`] pays
//! `alpha + bytes / beta` of modelled time, where `alpha` is the per-message
//! latency of the link class and `beta` its bandwidth. A global
//! [`gpu_sim::TimeScale`] compresses modelled time so sweeps over megabyte
//! buffers remain fast; compression preserves the *relative* behaviour that
//! Figs. 8 and 9 are about (latency-dominated small transfers, bandwidth-
//! dominated large transfers, and where the crossover falls).

use std::collections::HashMap;
use std::time::Duration;

use gpu_sim::{busy_spin, TimeScale};
use serde::{Deserialize, Serialize};

use crate::topology::LinkClass;

/// Cost parameters of one link class.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkParams {
    /// Fixed per-message latency in nanoseconds (the `alpha` term).
    pub latency_ns: f64,
    /// Bandwidth in gigabytes per second (the `beta` term).
    pub bandwidth_gbps: f64,
}

impl LinkParams {
    /// Modelled (unscaled) transfer time for `bytes`.
    pub fn transfer_nanos(&self, bytes: usize) -> f64 {
        let bw_bytes_per_ns = self.bandwidth_gbps * 1e9 / 1e9; // GB/s == bytes/ns
        self.latency_ns + bytes as f64 / bw_bytes_per_ns
    }
}

/// Per-class cost model plus a time scale.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkModel {
    params: HashMap<LinkClass, LinkParams>,
    scale: TimeScale,
}

impl Default for LinkModel {
    fn default() -> Self {
        Self::table2_testbed()
    }
}

impl LinkModel {
    /// Build a model from explicit per-class parameters.
    pub fn new(params: HashMap<LinkClass, LinkParams>, scale: TimeScale) -> Self {
        LinkModel { params, scale }
    }

    /// Parameters derived from the Table 2 testbed: PCIe Gen4-class shared
    /// memory transport within a PIX domain, a slower path across the socket
    /// interconnect, and 56 Gb/s RDMA between machines.
    pub fn table2_testbed() -> Self {
        let mut params = HashMap::new();
        params.insert(
            LinkClass::Local,
            LinkParams {
                latency_ns: 200.0,
                bandwidth_gbps: 300.0,
            },
        );
        params.insert(
            LinkClass::IntraPix,
            LinkParams {
                latency_ns: 1_800.0,
                bandwidth_gbps: 11.0,
            },
        );
        params.insert(
            LinkClass::IntraSys,
            LinkParams {
                latency_ns: 2_600.0,
                bandwidth_gbps: 8.0,
            },
        );
        params.insert(
            LinkClass::InterNode,
            LinkParams {
                latency_ns: 4_500.0,
                bandwidth_gbps: 5.5, // ~56 Gb/s line rate, accounting for protocol overhead
            },
        );
        LinkModel {
            params,
            scale: TimeScale::default(),
        }
    }

    /// The testbed model with time compressed by `factor` (good for benches).
    pub fn table2_compressed(factor: f64) -> Self {
        let mut m = Self::table2_testbed();
        m.scale = TimeScale::compressed(factor);
        m
    }

    /// A model with zero cost, useful for pure-logic tests where transfer
    /// delays only slow the test suite down.
    pub fn zero_cost() -> Self {
        let mut params = HashMap::new();
        for class in [
            LinkClass::Local,
            LinkClass::IntraPix,
            LinkClass::IntraSys,
            LinkClass::InterNode,
        ] {
            params.insert(
                class,
                LinkParams {
                    latency_ns: 0.0,
                    bandwidth_gbps: f64::INFINITY,
                },
            );
        }
        LinkModel {
            params,
            scale: TimeScale::default(),
        }
    }

    /// The time scale in effect.
    pub fn scale(&self) -> TimeScale {
        self.scale
    }

    /// Replace the time scale.
    pub fn with_scale(mut self, scale: TimeScale) -> Self {
        self.scale = scale;
        self
    }

    /// Parameters for a link class (falls back to the slowest class if absent).
    pub fn params(&self, class: LinkClass) -> LinkParams {
        self.params
            .get(&class)
            .copied()
            .or_else(|| self.params.get(&LinkClass::InterNode).copied())
            .unwrap_or(LinkParams {
                latency_ns: 0.0,
                bandwidth_gbps: f64::INFINITY,
            })
    }

    /// Scaled wall-clock cost of transferring `bytes` over `class`, or `None`
    /// when the modelled time is non-finite — a zero-bandwidth (dead) link, or
    /// an infinite/NaN latency. Such a link never completes a transfer.
    pub fn transfer_cost_checked(&self, class: LinkClass, bytes: usize) -> Option<Duration> {
        let nanos = self.params(class).transfer_nanos(bytes);
        if !nanos.is_finite() {
            return None;
        }
        Some(self.scale.scale_nanos(nanos))
    }

    /// Scaled wall-clock cost of transferring `bytes` over `class`.
    ///
    /// An unreachable link (non-finite modelled time) saturates to
    /// [`LinkModel::UNREACHABLE_COST`] rather than `Duration::MAX`, because
    /// callers multiply this by step counts and `Duration` multiplication
    /// panics on overflow. It used to return `Duration::ZERO` — a dead link
    /// transferred for *free*, exactly backwards.
    pub fn transfer_cost(&self, class: LinkClass, bytes: usize) -> Duration {
        self.transfer_cost_checked(class, bytes)
            .unwrap_or(Self::UNREACHABLE_COST)
    }

    /// Saturated stand-in cost for a link that can never complete a transfer:
    /// one modelled hour, far beyond any watchdog deadline but safe to
    /// multiply by per-collective step counts.
    pub const UNREACHABLE_COST: Duration = Duration::from_secs(3600);

    /// Whether `class` can never complete a transfer under this model
    /// (zero bandwidth or non-finite latency).
    pub fn is_unreachable(&self, class: LinkClass) -> bool {
        !self.params(class).transfer_nanos(1).is_finite()
    }

    /// Charge the transfer cost if the link is reachable. Returns `false`
    /// without spinning when the modelled time is non-finite, so senders can
    /// reject the chunk and surface the dead link instead of stalling inline.
    pub fn try_charge(&self, class: LinkClass, bytes: usize) -> bool {
        self.try_charge_scaled(class, bytes, 1.0)
    }

    /// [`LinkModel::try_charge`] with the cost multiplied by `factor` (used by
    /// fault injection to model an N× link slowdown). Returns `false` without
    /// spinning when the scaled modelled time is non-finite.
    pub fn try_charge_scaled(&self, class: LinkClass, bytes: usize, factor: f64) -> bool {
        let nanos = self.params(class).transfer_nanos(bytes) * factor;
        if !nanos.is_finite() {
            return false;
        }
        busy_spin(self.scale.scale_nanos(nanos));
        true
    }

    /// Busy-spin for the transfer cost, modelling the occupancy of the sending
    /// primitive while the chunk moves across the link. On an unreachable link
    /// this blocks for the saturated [`LinkModel::UNREACHABLE_COST`]; paths
    /// that must not block use [`LinkModel::try_charge`] instead.
    pub fn charge(&self, class: LinkClass, bytes: usize) {
        if !self.try_charge(class, bytes) {
            busy_spin(Self::UNREACHABLE_COST);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_has_latency_floor() {
        let m = LinkModel::table2_testbed();
        let tiny = m.transfer_cost(LinkClass::IntraPix, 8);
        let params = m.params(LinkClass::IntraPix);
        assert!(tiny >= Duration::from_nanos(params.latency_ns as u64));
    }

    #[test]
    fn transfer_time_grows_with_size() {
        let m = LinkModel::table2_testbed();
        let small = m.transfer_cost(LinkClass::IntraPix, 1024);
        let big = m.transfer_cost(LinkClass::IntraPix, 4 * 1024 * 1024);
        assert!(big > small * 100);
    }

    #[test]
    fn inter_node_is_slower_than_intra_pix() {
        let m = LinkModel::table2_testbed();
        let bytes = 1024 * 1024;
        assert!(
            m.transfer_cost(LinkClass::InterNode, bytes)
                > m.transfer_cost(LinkClass::IntraPix, bytes)
        );
    }

    #[test]
    fn compression_reduces_cost_proportionally() {
        let base = LinkModel::table2_testbed();
        let fast = LinkModel::table2_compressed(10.0);
        let bytes = 1024 * 1024;
        let full = base.transfer_cost(LinkClass::IntraSys, bytes);
        let compressed = fast.transfer_cost(LinkClass::IntraSys, bytes);
        let ratio = full.as_nanos() as f64 / compressed.as_nanos().max(1) as f64;
        assert!((9.0..11.0).contains(&ratio), "ratio was {ratio}");
    }

    #[test]
    fn zero_cost_model_charges_nothing() {
        let m = LinkModel::zero_cost();
        assert_eq!(
            m.transfer_cost(LinkClass::InterNode, 1 << 20),
            Duration::ZERO
        );
        // charge() should return immediately.
        let start = std::time::Instant::now();
        m.charge(LinkClass::IntraPix, 1 << 20);
        assert!(start.elapsed() < Duration::from_millis(5));
    }

    #[test]
    fn missing_class_falls_back_to_slowest() {
        let mut params = HashMap::new();
        params.insert(
            LinkClass::InterNode,
            LinkParams {
                latency_ns: 100.0,
                bandwidth_gbps: 1.0,
            },
        );
        let m = LinkModel::new(params, TimeScale::default());
        assert_eq!(m.params(LinkClass::IntraPix).latency_ns, 100.0);
    }

    #[test]
    fn dead_link_costs_saturate_instead_of_being_free() {
        // Regression: a zero-bandwidth link used to yield a non-finite
        // modelled time that was clamped to Duration::ZERO, so chunks crossed
        // a dead link for free. It must saturate (block) instead.
        let mut params = HashMap::new();
        params.insert(
            LinkClass::InterNode,
            LinkParams {
                latency_ns: 100.0,
                bandwidth_gbps: 0.0,
            },
        );
        let m = LinkModel::new(params, TimeScale::default());
        assert!(m.is_unreachable(LinkClass::InterNode));
        assert_eq!(m.transfer_cost_checked(LinkClass::InterNode, 64), None);
        assert_eq!(
            m.transfer_cost(LinkClass::InterNode, 64),
            LinkModel::UNREACHABLE_COST
        );
        // try_charge refuses without spinning.
        let start = std::time::Instant::now();
        assert!(!m.try_charge(LinkClass::InterNode, 64));
        assert!(start.elapsed() < Duration::from_millis(5));
        // Multiplying by a step count (as mpi_like does) must not panic.
        let _ = m.transfer_cost(LinkClass::InterNode, 64) * 1000u32;
    }

    #[test]
    fn zero_cost_model_is_reachable_and_try_charge_succeeds() {
        // bandwidth = INFINITY gives bytes/inf = 0, which is finite: the
        // zero-cost model must stay free, only zero-bandwidth links block.
        let m = LinkModel::zero_cost();
        assert!(!m.is_unreachable(LinkClass::InterNode));
        assert!(m.try_charge(LinkClass::InterNode, 1 << 20));
        assert_eq!(
            m.transfer_cost_checked(LinkClass::InterNode, 1 << 20),
            Some(Duration::ZERO)
        );
    }

    #[test]
    fn scaled_charge_multiplies_the_modelled_time() {
        let m = LinkModel::table2_testbed();
        let base = m.transfer_cost(LinkClass::IntraPix, 64 * 1024);
        let start = std::time::Instant::now();
        assert!(m.try_charge_scaled(LinkClass::IntraPix, 64 * 1024, 20.0));
        let elapsed = start.elapsed();
        assert!(
            elapsed >= base * 20,
            "20x-scaled charge took {elapsed:?}, base cost {base:?}"
        );
    }

    #[test]
    fn charge_spins_for_roughly_the_modelled_time() {
        let m = LinkModel::table2_testbed();
        let cost = m.transfer_cost(LinkClass::IntraPix, 256 * 1024);
        let start = std::time::Instant::now();
        m.charge(LinkClass::IntraPix, 256 * 1024);
        assert!(start.elapsed() >= cost);
    }
}
