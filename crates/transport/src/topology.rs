//! Cluster topology: machines, PCIe (PIX/SYS) domains, inter-node network.
//!
//! Mirrors the experimental platforms of Table 2: dual-socket servers with
//! eight GPUs each, GPUs 0-3 and 4-7 in separate PIX domains within a SYS
//! domain, Mellanox 56 Gb/s NICs between machines.

use gpu_sim::GpuId;
use serde::{Deserialize, Serialize};

use crate::TransportError;

/// Classification of the link between two GPUs, in decreasing order of
/// locality. Determines which transport (and therefore which cost parameters)
/// a connector uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkClass {
    /// Both endpoints are the same GPU (local copy, no transport).
    Local,
    /// Same PCIe switch domain (the `PIX` topology level); shared-memory transport.
    IntraPix,
    /// Same machine but across the socket interconnect (the `SYS` level);
    /// shared-memory transport with a longer path.
    IntraSys,
    /// Different machines; RDMA over the 56 Gb/s fabric.
    InterNode,
}

impl LinkClass {
    /// All distinct non-local classes, useful for sweeps.
    pub const ALL_REMOTE: [LinkClass; 3] = [
        LinkClass::IntraPix,
        LinkClass::IntraSys,
        LinkClass::InterNode,
    ];
}

/// One physical machine: its GPUs partitioned into PIX domains.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MachineSpec {
    /// Machine name, e.g. `"3090-server-0"`.
    pub name: String,
    /// GPUs per PIX domain. The union of all domains is the machine's GPU set.
    pub pix_domains: Vec<Vec<GpuIdRepr>>,
}

/// Serde-friendly GPU id (plain usize in config files).
pub type GpuIdRepr = usize;

impl MachineSpec {
    /// A dual-socket eight-GPU server with GPUs `first..first+8`, split into
    /// two PIX domains of four (the Table 2 layout).
    pub fn eight_gpu_server(name: impl Into<String>, first: usize) -> Self {
        MachineSpec {
            name: name.into(),
            pix_domains: vec![
                (first..first + 4).collect(),
                (first + 4..first + 8).collect(),
            ],
        }
    }

    /// All GPU ids on the machine.
    pub fn gpus(&self) -> Vec<GpuId> {
        self.pix_domains
            .iter()
            .flatten()
            .map(|&g| GpuId(g))
            .collect()
    }
}

/// A cluster topology: a list of machines.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    machines: Vec<MachineSpec>,
}

impl Topology {
    /// Build a topology from machine specifications.
    pub fn new(machines: Vec<MachineSpec>) -> Self {
        Topology { machines }
    }

    /// A single eight-GPU server (the 3080ti-server or 3090-server of Table 2).
    pub fn single_server() -> Self {
        Topology::new(vec![MachineSpec::eight_gpu_server("server-0", 0)])
    }

    /// Two eight-GPU servers connected by the RDMA fabric (16 GPUs).
    pub fn two_servers() -> Self {
        Topology::new(vec![
            MachineSpec::eight_gpu_server("server-0", 0),
            MachineSpec::eight_gpu_server("server-1", 8),
        ])
    }

    /// Alias for [`Topology::two_servers`] under the name the hierarchical
    /// algorithm's tests use: two dual-socket eight-GPU servers, each split
    /// into two PIX domains of four, joined by the inter-node fabric.
    pub fn two_eight_gpu_servers() -> Self {
        Topology::two_servers()
    }

    /// A uniform multi-node cluster: `machines` nodes of `gpus_per_machine`
    /// GPUs each, every node a single PIX domain. The shape hierarchical
    /// algorithms assume (equal-size node groups), without the dual-socket
    /// split of the Table 2 servers.
    pub fn uniform_cluster(machines: usize, gpus_per_machine: usize) -> Self {
        Topology::new(
            (0..machines)
                .map(|m| MachineSpec {
                    name: format!("node-{m}"),
                    pix_domains: vec![(m * gpus_per_machine..(m + 1) * gpus_per_machine).collect()],
                })
                .collect(),
        )
    }

    /// Four eight-GPU servers (32 GPUs) — the 2×3080ti + 2×3090 cluster used
    /// for Fig. 8(c).
    pub fn four_servers() -> Self {
        Topology::new(vec![
            MachineSpec::eight_gpu_server("3080ti-server-0", 0),
            MachineSpec::eight_gpu_server("3080ti-server-1", 8),
            MachineSpec::eight_gpu_server("3090-server-0", 16),
            MachineSpec::eight_gpu_server("3090-server-1", 24),
        ])
    }

    /// A flat topology with `n` GPUs on one machine in a single PIX domain.
    /// Useful for unit tests and for the deadlock-prevention programs.
    pub fn flat(n: usize) -> Self {
        Topology::new(vec![MachineSpec {
            name: "flat".to_string(),
            pix_domains: vec![(0..n).collect()],
        }])
    }

    /// The machines of this topology.
    pub fn machines(&self) -> &[MachineSpec] {
        &self.machines
    }

    /// Every GPU id in the topology.
    pub fn gpus(&self) -> Vec<GpuId> {
        self.machines.iter().flat_map(|m| m.gpus()).collect()
    }

    /// Total GPU count.
    pub fn gpu_count(&self) -> usize {
        self.machines
            .iter()
            .map(|m| m.pix_domains.iter().map(Vec::len).sum::<usize>())
            .sum()
    }

    fn locate(&self, gpu: GpuId) -> Option<(usize, usize)> {
        for (mi, m) in self.machines.iter().enumerate() {
            for (pi, domain) in m.pix_domains.iter().enumerate() {
                if domain.contains(&gpu.0) {
                    return Some((mi, pi));
                }
            }
        }
        None
    }

    /// Whether the topology contains `gpu`.
    pub fn contains(&self, gpu: GpuId) -> bool {
        self.locate(gpu).is_some()
    }

    /// Classify the link between two GPUs.
    pub fn link_between(&self, a: GpuId, b: GpuId) -> Result<LinkClass, TransportError> {
        let (ma, pa) = self.locate(a).ok_or(TransportError::UnknownGpu(a))?;
        let (mb, pb) = self.locate(b).ok_or(TransportError::UnknownGpu(b))?;
        Ok(if a == b {
            LinkClass::Local
        } else if ma != mb {
            LinkClass::InterNode
        } else if pa != pb {
            LinkClass::IntraSys
        } else {
            LinkClass::IntraPix
        })
    }

    /// The machine index a GPU belongs to, if any.
    pub fn machine_of(&self, gpu: GpuId) -> Option<usize> {
        self.locate(gpu).map(|(m, _)| m)
    }

    /// Whether a plan over `devices` (a subset of this topology) has to avoid
    /// at least one quarantined edge — i.e. selection should consider a
    /// degraded family or a reroute. Edges whose endpoints are not all in
    /// both `devices` and the topology cannot constrain the plan.
    pub fn degraded_for(&self, devices: &[GpuId], health: &crate::health::LinkHealth) -> bool {
        if health.is_clean() {
            return false;
        }
        health.dead_edges().iter().any(|e| {
            devices.contains(&e.src)
                && devices.contains(&e.dst)
                && self.contains(e.src)
                && self.contains(e.dst)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_server_has_two_pix_domains() {
        let t = Topology::single_server();
        assert_eq!(t.gpu_count(), 8);
        assert_eq!(
            t.link_between(GpuId(0), GpuId(1)).unwrap(),
            LinkClass::IntraPix
        );
        assert_eq!(
            t.link_between(GpuId(0), GpuId(4)).unwrap(),
            LinkClass::IntraSys
        );
        assert_eq!(
            t.link_between(GpuId(3), GpuId(3)).unwrap(),
            LinkClass::Local
        );
    }

    #[test]
    fn two_servers_cross_node_links() {
        let t = Topology::two_servers();
        assert_eq!(t.gpu_count(), 16);
        assert_eq!(
            t.link_between(GpuId(0), GpuId(8)).unwrap(),
            LinkClass::InterNode
        );
        assert_eq!(
            t.link_between(GpuId(8), GpuId(9)).unwrap(),
            LinkClass::IntraPix
        );
        assert_eq!(t.machine_of(GpuId(9)), Some(1));
    }

    #[test]
    fn two_eight_gpu_servers_classifies_every_boundary() {
        // The link classes the hierarchical algorithm's phases ride on:
        // intra-PIX within a domain, intra-SYS across the socket, inter-node
        // across machines — in decreasing order of locality.
        let t = Topology::two_eight_gpu_servers();
        assert_eq!(t.gpu_count(), 16);
        // Within one PIX domain of server 0.
        assert_eq!(
            t.link_between(GpuId(1), GpuId(3)).unwrap(),
            LinkClass::IntraPix
        );
        // Across the socket of server 0 (domains {0..3} and {4..7}).
        assert_eq!(
            t.link_between(GpuId(2), GpuId(6)).unwrap(),
            LinkClass::IntraSys
        );
        // Across machines, both from the first and the second PIX domain.
        assert_eq!(
            t.link_between(GpuId(0), GpuId(8)).unwrap(),
            LinkClass::InterNode
        );
        assert_eq!(
            t.link_between(GpuId(7), GpuId(12)).unwrap(),
            LinkClass::InterNode
        );
        // Same boundaries seen from server 1's side.
        assert_eq!(
            t.link_between(GpuId(9), GpuId(11)).unwrap(),
            LinkClass::IntraPix
        );
        assert_eq!(
            t.link_between(GpuId(8), GpuId(15)).unwrap(),
            LinkClass::IntraSys
        );
        assert_eq!(t.machine_of(GpuId(7)), Some(0));
        assert_eq!(t.machine_of(GpuId(8)), Some(1));
    }

    #[test]
    fn uniform_cluster_has_single_pix_nodes() {
        let t = Topology::uniform_cluster(3, 4);
        assert_eq!(t.gpu_count(), 12);
        assert_eq!(
            t.link_between(GpuId(0), GpuId(3)).unwrap(),
            LinkClass::IntraPix
        );
        assert_eq!(
            t.link_between(GpuId(3), GpuId(4)).unwrap(),
            LinkClass::InterNode
        );
        assert_eq!(t.machine_of(GpuId(11)), Some(2));
    }

    #[test]
    fn four_servers_has_32_gpus() {
        let t = Topology::four_servers();
        assert_eq!(t.gpu_count(), 32);
        assert_eq!(t.gpus().len(), 32);
        assert_eq!(
            t.link_between(GpuId(0), GpuId(31)).unwrap(),
            LinkClass::InterNode
        );
    }

    #[test]
    fn flat_topology_is_one_pix_domain() {
        let t = Topology::flat(5);
        assert_eq!(t.gpu_count(), 5);
        assert_eq!(
            t.link_between(GpuId(1), GpuId(4)).unwrap(),
            LinkClass::IntraPix
        );
    }

    #[test]
    fn unknown_gpu_is_an_error() {
        let t = Topology::flat(2);
        assert!(matches!(
            t.link_between(GpuId(0), GpuId(99)),
            Err(TransportError::UnknownGpu(_))
        ));
        assert!(!t.contains(GpuId(99)));
        assert!(t.contains(GpuId(1)));
    }

    #[test]
    fn degraded_for_scopes_quarantine_to_the_device_set() {
        use crate::communicator::ChannelId;
        use crate::fault::EdgeId;
        use crate::health::LinkHealth;

        let t = Topology::two_servers();
        let h = LinkHealth::new();
        assert!(!t.degraded_for(&t.gpus(), &h));
        h.quarantine(EdgeId {
            src: GpuId(0),
            dst: GpuId(8),
            channel: ChannelId(0),
        });
        assert!(t.degraded_for(&t.gpus(), &h));
        // A device set excluding either endpoint is unconstrained.
        assert!(!t.degraded_for(&[GpuId(0), GpuId(1), GpuId(2)], &h));
        // An edge outside the topology never degrades it.
        let flat = Topology::flat(4);
        assert!(!flat.degraded_for(&flat.gpus(), &h));
    }

    #[test]
    fn topology_clones_and_compares() {
        let t = Topology::two_servers();
        assert_eq!(t, t.clone());
        assert_ne!(t, Topology::single_server());
    }
}
