//! Send/recv connectors: the lock-free ring buffers GPUs exchange chunks through.
//!
//! A connector is the directed channel between two GPUs inside one
//! communicator (Fig. 5). Primitives *send* by publishing a chunk into the
//! connector and *recv* by consuming one. Two properties matter for DFCCL:
//!
//! * **Non-blocking operations** — `try_send`/`try_recv` never block, so the
//!   daemon kernel can bound the number of polls with a spin threshold and
//!   preempt the collective when the bound is exceeded (Sec. 4.2).
//! * **Persistent visibility** — once a chunk is published it stays visible to
//!   the peer until consumed, even if the sending collective is preempted right
//!   after writing or the receiving side is preempted before reading
//!   (Sec. 4.1). A bounded ring buffer gives exactly this.
//!
//! The ring buffer itself is `crossbeam`'s lock-free `ArrayQueue`; each
//! connector is used single-producer/single-consumer (one sender rank, one
//! receiver rank).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam::queue::ArrayQueue;

use crate::fault::{EdgeId, FaultDecision, FaultInjector};
use crate::linkmodel::LinkModel;
use crate::topology::LinkClass;

/// One chunk-sized message travelling between two ranks of a collective.
#[derive(Debug, Clone, PartialEq)]
pub struct ChunkMsg {
    /// The registered collective this chunk belongs to.
    pub coll_id: u64,
    /// Index of the chunk within the collective's data.
    pub chunk_index: u32,
    /// Ring-algorithm step that produced this chunk (used for debugging and
    /// for asserting that no step is skipped or repeated after preemption).
    pub step: u32,
    /// Raw payload bytes.
    pub data: Vec<u8>,
}

impl ChunkMsg {
    /// Payload size in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// Error returned when a connector cannot accept a chunk.
#[derive(Debug, PartialEq)]
pub enum SendError {
    /// The ring buffer is full; the message is handed back to the caller.
    Full(ChunkMsg),
    /// The link rejected the chunk — dead or flaky (fault-injected) or
    /// unreachable under the cost model. The message is handed back so the
    /// sender can stage and retry it; a permanently dead link then shows up
    /// as a preempted collective the watchdog classifies via the edge's
    /// `fault_rejections` counter.
    Faulted(ChunkMsg),
}

/// Counters describing connector traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConnectorStats {
    /// Chunks successfully published.
    pub chunks_sent: u64,
    /// Chunks successfully consumed.
    pub chunks_received: u64,
    /// Payload bytes successfully published.
    pub bytes_sent: u64,
    /// `try_send` calls that found the ring full.
    pub full_rejections: u64,
    /// `try_recv` calls that found the ring empty.
    pub empty_polls: u64,
    /// `try_send` calls bounced by fault injection or an unreachable link.
    pub fault_rejections: u64,
}

/// A directed, bounded, lock-free channel between two GPUs.
pub struct Connector {
    queue: ArrayQueue<ChunkMsg>,
    link: LinkClass,
    model: Arc<LinkModel>,
    /// The physical edge this connector realises, when built by a
    /// communicator (test-built connectors have none).
    edge: Option<EdgeId>,
    /// The domain's fault injector; inert injectors cost one relaxed load.
    injector: Option<Arc<FaultInjector>>,
    /// Whether the cost model can never complete a transfer on this link
    /// class. Cached at construction — the model is immutable — so the
    /// `send_ready` hot poll stays branch-cheap.
    link_unreachable: bool,
    chunks_sent: AtomicU64,
    chunks_received: AtomicU64,
    bytes_sent: AtomicU64,
    full_rejections: AtomicU64,
    empty_polls: AtomicU64,
    fault_rejections: AtomicU64,
    send_attempts: AtomicU64,
}

impl std::fmt::Debug for Connector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Connector")
            .field("capacity", &self.queue.capacity())
            .field("len", &self.queue.len())
            .field("link", &self.link)
            .finish()
    }
}

impl Connector {
    /// Create a connector with `capacity` chunk slots over the given link class.
    pub fn new(capacity: usize, link: LinkClass, model: Arc<LinkModel>) -> Arc<Self> {
        Connector::with_edge(capacity, link, model, None, None)
    }

    /// Create a connector bound to a physical edge and a fault injector, so
    /// every send consults the injector's script for that edge. This is the
    /// constructor communicators use; `new` builds an uninstrumented one.
    pub fn with_edge(
        capacity: usize,
        link: LinkClass,
        model: Arc<LinkModel>,
        edge: Option<EdgeId>,
        injector: Option<Arc<FaultInjector>>,
    ) -> Arc<Self> {
        assert!(capacity > 0, "connector capacity must be positive");
        let link_unreachable = model.is_unreachable(link);
        Arc::new(Connector {
            queue: ArrayQueue::new(capacity),
            link,
            model,
            edge,
            injector,
            link_unreachable,
            chunks_sent: AtomicU64::new(0),
            chunks_received: AtomicU64::new(0),
            bytes_sent: AtomicU64::new(0),
            full_rejections: AtomicU64::new(0),
            empty_polls: AtomicU64::new(0),
            fault_rejections: AtomicU64::new(0),
            send_attempts: AtomicU64::new(0),
        })
    }

    /// A connector with no transfer cost — for logic-only tests.
    pub fn unmodelled(capacity: usize) -> Arc<Self> {
        Connector::new(capacity, LinkClass::Local, Arc::new(LinkModel::zero_cost()))
    }

    /// The link class this connector crosses.
    pub fn link(&self) -> LinkClass {
        self.link
    }

    /// The physical edge this connector realises, if bound to one.
    pub fn edge(&self) -> Option<EdgeId> {
        self.edge
    }

    /// Whether the link currently cannot deliver: unreachable under the cost
    /// model, or scripted dead by the fault injector.
    pub fn is_dead(&self) -> bool {
        if self.link_unreachable {
            return true;
        }
        match (&self.injector, self.edge) {
            (Some(inj), Some(edge)) => {
                inj.edge_dead(edge, self.chunks_sent.load(Ordering::Relaxed))
            }
            _ => false,
        }
    }

    /// Number of chunk slots.
    pub fn capacity(&self) -> usize {
        self.queue.capacity()
    }

    /// Number of chunks currently buffered.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the connector holds no chunks.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Whether every slot is occupied.
    pub fn is_full(&self) -> bool {
        self.queue.is_full()
    }

    /// Whether a send would currently succeed. This is the condition a send
    /// primitive busy-waits on (bounded by its spin threshold). A dead link
    /// reports not-ready, so the sender's spin bound trips and the collective
    /// is preempted instead of burning its slice on a link that cannot drain.
    pub fn send_ready(&self) -> bool {
        !self.queue.is_full() && !self.is_dead()
    }

    /// Whether a recv would currently succeed. This is the condition a recv
    /// primitive busy-waits on (bounded by its spin threshold).
    pub fn recv_ready(&self) -> bool {
        !self.queue.is_empty()
    }

    /// Publish a chunk. Charges the modelled link transfer time *before* the
    /// chunk becomes visible to the peer, then pushes it into the ring. A
    /// fault-injected or unreachable link returns [`SendError::Faulted`]
    /// without spinning; the sender stages and retries the chunk exactly as
    /// it would on a full ring.
    pub fn try_send(&self, msg: ChunkMsg) -> Result<(), SendError> {
        if self.queue.is_full() {
            self.full_rejections.fetch_add(1, Ordering::Relaxed);
            return Err(SendError::Full(msg));
        }
        let attempt = self.send_attempts.fetch_add(1, Ordering::Relaxed);
        let mut factor = 1.0;
        if let (Some(inj), Some(edge)) = (&self.injector, self.edge) {
            match inj.decide(edge, self.chunks_sent.load(Ordering::Relaxed), attempt) {
                FaultDecision::Allow => {}
                FaultDecision::Slow(f) => factor = f,
                FaultDecision::Reject => {
                    self.fault_rejections.fetch_add(1, Ordering::Relaxed);
                    return Err(SendError::Faulted(msg));
                }
            }
        }
        let bytes = msg.data.len();
        if !self.model.try_charge_scaled(self.link, bytes, factor) {
            self.fault_rejections.fetch_add(1, Ordering::Relaxed);
            return Err(SendError::Faulted(msg));
        }
        match self.queue.push(msg) {
            Ok(()) => {
                self.chunks_sent.fetch_add(1, Ordering::Relaxed);
                self.bytes_sent.fetch_add(bytes as u64, Ordering::Relaxed);
                Ok(())
            }
            Err(msg) => {
                self.full_rejections.fetch_add(1, Ordering::Relaxed);
                Err(SendError::Full(msg))
            }
        }
    }

    /// Consume the oldest buffered chunk, if any.
    pub fn try_recv(&self) -> Option<ChunkMsg> {
        match self.queue.pop() {
            Some(msg) => {
                self.chunks_received.fetch_add(1, Ordering::Relaxed);
                Some(msg)
            }
            None => {
                self.empty_polls.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Drain and discard everything currently buffered (used when a
    /// communicator is recycled by the pool).
    pub fn clear(&self) {
        while self.queue.pop().is_some() {}
    }

    /// Traffic counters.
    pub fn stats(&self) -> ConnectorStats {
        ConnectorStats {
            chunks_sent: self.chunks_sent.load(Ordering::Relaxed),
            chunks_received: self.chunks_received.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            full_rejections: self.full_rejections.load(Ordering::Relaxed),
            empty_polls: self.empty_polls.load(Ordering::Relaxed),
            fault_rejections: self.fault_rejections.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(i: u32) -> ChunkMsg {
        ChunkMsg {
            coll_id: 1,
            chunk_index: i,
            step: 0,
            data: vec![i as u8; 16],
        }
    }

    #[test]
    fn send_then_recv_round_trips() {
        let c = Connector::unmodelled(4);
        c.try_send(msg(7)).unwrap();
        let got = c.try_recv().unwrap();
        assert_eq!(got.chunk_index, 7);
        assert_eq!(got.data, vec![7u8; 16]);
    }

    #[test]
    fn fifo_order_is_preserved() {
        let c = Connector::unmodelled(8);
        for i in 0..5 {
            c.try_send(msg(i)).unwrap();
        }
        for i in 0..5 {
            assert_eq!(c.try_recv().unwrap().chunk_index, i);
        }
        assert!(c.try_recv().is_none());
    }

    #[test]
    fn full_connector_rejects_and_returns_message() {
        let c = Connector::unmodelled(2);
        c.try_send(msg(0)).unwrap();
        c.try_send(msg(1)).unwrap();
        assert!(c.is_full());
        assert!(!c.send_ready());
        match c.try_send(msg(2)) {
            Err(SendError::Full(m)) => assert_eq!(m.chunk_index, 2),
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(c.stats().full_rejections, 1);
    }

    #[test]
    fn empty_connector_returns_none_and_counts_polls() {
        let c = Connector::unmodelled(2);
        assert!(c.try_recv().is_none());
        assert!(c.try_recv().is_none());
        assert!(!c.recv_ready());
        assert_eq!(c.stats().empty_polls, 2);
    }

    #[test]
    fn published_chunks_persist_until_consumed() {
        // The "persistent visibility" property: data survives in the connector
        // regardless of what the producer does afterwards.
        let c = Connector::unmodelled(4);
        c.try_send(msg(3)).unwrap();
        // Simulate preemption of the sender: nothing else happens for a while.
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert!(c.recv_ready());
        assert_eq!(c.try_recv().unwrap().chunk_index, 3);
    }

    #[test]
    fn stats_track_bytes() {
        let c = Connector::unmodelled(4);
        c.try_send(msg(0)).unwrap();
        c.try_send(msg(1)).unwrap();
        c.try_recv().unwrap();
        let s = c.stats();
        assert_eq!(s.chunks_sent, 2);
        assert_eq!(s.chunks_received, 1);
        assert_eq!(s.bytes_sent, 32);
    }

    #[test]
    fn clear_empties_the_ring() {
        let c = Connector::unmodelled(4);
        c.try_send(msg(0)).unwrap();
        c.try_send(msg(1)).unwrap();
        c.clear();
        assert!(c.is_empty());
        assert!(c.try_recv().is_none());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_is_rejected() {
        let _ = Connector::unmodelled(0);
    }

    #[test]
    fn unreachable_link_faults_sends_and_reports_not_ready() {
        // A zero-bandwidth link used to deliver chunks for free; it must now
        // bounce them with Faulted and never report send_ready.
        let mut params = std::collections::HashMap::new();
        params.insert(
            LinkClass::InterNode,
            crate::linkmodel::LinkParams {
                latency_ns: 100.0,
                bandwidth_gbps: 0.0,
            },
        );
        let model = Arc::new(LinkModel::new(params, gpu_sim::TimeScale::default()));
        let c = Connector::new(4, LinkClass::InterNode, model);
        assert!(!c.send_ready());
        match c.try_send(msg(0)) {
            Err(SendError::Faulted(m)) => assert_eq!(m.chunk_index, 0),
            other => panic!("expected Faulted, got {other:?}"),
        }
        assert!(c.is_empty());
        assert_eq!(c.stats().fault_rejections, 1);
        assert_eq!(c.stats().chunks_sent, 0);
    }

    #[test]
    fn dead_scripted_edge_bounces_sends_until_healed() {
        let edge = EdgeId {
            src: gpu_sim::GpuId(0),
            dst: gpu_sim::GpuId(1),
            channel: crate::ChannelId(0),
        };
        let inj = FaultInjector::new(1);
        let c = Connector::with_edge(
            4,
            LinkClass::Local,
            Arc::new(LinkModel::zero_cost()),
            Some(edge),
            Some(Arc::clone(&inj)),
        );
        assert_eq!(c.edge(), Some(edge));
        c.try_send(msg(0)).unwrap();

        inj.script(edge, crate::fault::FaultSpec::dead());
        assert!(!c.send_ready());
        match c.try_send(msg(1)) {
            Err(SendError::Faulted(m)) => assert_eq!(m.chunk_index, 1),
            other => panic!("expected Faulted, got {other:?}"),
        }
        // Already-published chunks stay visible to the receiver.
        assert_eq!(c.try_recv().unwrap().chunk_index, 0);

        inj.clear();
        assert!(c.send_ready());
        c.try_send(msg(1)).unwrap();
        let s = c.stats();
        assert_eq!(s.chunks_sent, 2);
        assert_eq!(s.fault_rejections, 1);
    }

    #[test]
    fn flaky_edge_drops_some_sends_but_retries_get_through() {
        let edge = EdgeId {
            src: gpu_sim::GpuId(0),
            dst: gpu_sim::GpuId(1),
            channel: crate::ChannelId(0),
        };
        let inj = FaultInjector::new(99);
        let c = Connector::with_edge(
            64,
            LinkClass::Local,
            Arc::new(LinkModel::zero_cost()),
            Some(edge),
            Some(inj),
        );
        c.injector
            .as_ref()
            .unwrap()
            .script(edge, crate::fault::FaultSpec::flaky(0.5));
        let mut delivered = 0u32;
        while delivered < 32 {
            match c.try_send(msg(delivered)) {
                Ok(()) => delivered += 1,
                Err(SendError::Faulted(_)) => {} // retry with the next attempt
                Err(other) => panic!("unexpected {other:?}"),
            }
        }
        let s = c.stats();
        assert_eq!(s.chunks_sent, 32);
        assert!(s.fault_rejections > 0, "a 50% flaky link dropped nothing");
        for i in 0..32 {
            assert_eq!(c.try_recv().unwrap().chunk_index, i);
        }
    }

    #[test]
    fn concurrent_producer_consumer_loses_nothing() {
        let c = Connector::unmodelled(8);
        let producer_side = Arc::clone(&c);
        let n = 10_000u32;
        let producer = std::thread::spawn(move || {
            let mut sent = 0u32;
            while sent < n {
                if producer_side.try_send(msg(sent)).is_ok() {
                    sent += 1;
                } else {
                    std::hint::spin_loop();
                }
            }
        });
        let mut received = Vec::with_capacity(n as usize);
        while received.len() < n as usize {
            if let Some(m) = c.try_recv() {
                received.push(m.chunk_index);
            } else {
                std::hint::spin_loop();
            }
        }
        producer.join().unwrap();
        let expected: Vec<u32> = (0..n).collect();
        assert_eq!(received, expected);
    }
}
