//! # dfccl-baseline — what DFCCL is compared against
//!
//! Three families of baselines from the paper's evaluation:
//!
//! * [`nccl_like`] — an NCCL-style executor: each collective is one blocking,
//!   busy-waiting, non-preemptive kernel launched on a CUDA-like stream of the
//!   [`gpu_sim::DeviceEngine`]. It faithfully reproduces the three basic
//!   deadlock situations of Fig. 1 (single queue, resource depletion, GPU
//!   synchronization) — and deadlocks with 100% probability in the Sec. 6.1
//!   testing programs.
//! * [`watchdog`] — a progress watchdog that detects those deadlocks and tears
//!   the scenario down, so tests and benchmarks terminate.
//! * [`orchestration`] — the CPU-side coordination strategies that existing
//!   systems use to keep NCCL deadlock-free (Sec. 2.5): a Horovod-style
//!   central coordinator, KungFu-style negotiated ordering, OneFlow-style
//!   static sorting and Megatron-style manual hardcoding, each with its
//!   coordination cost model.
//! * [`mpi_like`] — a CPU-staged collective used for the Sec. 2.1 comparison
//!   (NCCL throughput vs. CUDA-aware MPI).

pub mod mpi_like;
pub mod nccl_like;
pub mod orchestration;
pub mod watchdog;

pub use nccl_like::{NcclDomain, NcclRank};
pub use orchestration::{
    HorovodCoordinator, KungFuOrdering, MegatronManual, OneFlowStaticSort, OrchestrationStrategy,
    StrategyKind,
};
pub use watchdog::{
    wait_all_or_deadlock, wait_all_or_deadlock_with_progress, wait_all_or_stall, DeadlockOutcome,
    StallOutcome,
};
