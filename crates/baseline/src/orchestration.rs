//! CPU orchestration strategies that keep NCCL deadlock-free (Sec. 2.5).
//!
//! All of them work by making every GPU invoke collectives in a consistent
//! order; none of them manage GPU synchronization. They differ in *how* the
//! consistent order is obtained and in how much CPU-side coordination each
//! iteration pays:
//!
//! * **Horovod** — a central coordinator gathers readiness from every GPU at
//!   runtime and broadcasts the list of collectives ready on all GPUs; GPUs
//!   launch in list order. Coordination is paid every iteration, per
//!   collective batch.
//! * **KungFu** — the predominant calling order is negotiated (gather +
//!   broadcast) during the first training step; decentralized schedulers then
//!   enforce that order, paying a small per-collective enforcement cost.
//! * **OneFlow static sorting** — the compiler topologically sorts the task
//!   graph ahead of time; runtime launches follow the pre-sorted order with no
//!   per-iteration negotiation.
//! * **Megatron-LM manual hardcoding** — engineers hand-arrange the collective
//!   order per GPU for 3D-hybrid parallelism; no runtime cost, but the
//!   approach is tied to the specific parallelism layout.
//!
//! The cost models below are calibrated against the relative results of
//! Fig. 10 (Horovod/KungFu ≈ 20% below OneFlow static sorting for data-parallel
//! ResNet-50 on 8 GPUs) and are documented in `EXPERIMENTS.md`.

use std::time::Duration;

/// Which orchestration strategy a baseline run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StrategyKind {
    /// Horovod-style dynamic centralized coordination.
    Horovod,
    /// KungFu-style negotiated-then-enforced ordering.
    KungFu,
    /// OneFlow-style static topological sorting.
    OneFlowStaticSort,
    /// Megatron-LM-style manual hardcoding.
    MegatronManual,
}

impl std::fmt::Display for StrategyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            StrategyKind::Horovod => "Horovod",
            StrategyKind::KungFu => "KungFu",
            StrategyKind::OneFlowStaticSort => "OneFlow static sorting",
            StrategyKind::MegatronManual => "Megatron manual hardcoding",
        };
        write!(f, "{s}")
    }
}

/// A CPU orchestration strategy: computes the launch order every GPU must use
/// and the coordination cost it pays for doing so.
pub trait OrchestrationStrategy: Send + Sync {
    /// Which strategy this is.
    fn kind(&self) -> StrategyKind;

    /// The launch order imposed on every GPU, given the order in which the
    /// collectives became ready on this GPU this iteration. All strategies
    /// return the *same* order on every GPU — that is the whole point.
    fn imposed_order(&self, ready_order: &[u64]) -> Vec<u64>;

    /// CPU coordination time charged for one iteration that launches
    /// `collectives` collectives across `gpus` GPUs.
    fn iteration_overhead(&self, collectives: usize, gpus: usize, iteration: u64) -> Duration;

    /// Whether the strategy can orchestrate arbitrary (e.g. 3D-hybrid or
    /// irregular) group structures. Horovod/BytePS/KungFu cannot orchestrate
    /// all collectives of 3D-hybrid parallelism (Sec. 2.5).
    fn supports_hybrid_parallelism(&self) -> bool;
}

fn canonical_order(ready_order: &[u64]) -> Vec<u64> {
    let mut order = ready_order.to_vec();
    order.sort_unstable();
    order
}

/// Horovod-style dynamic centralized coordination.
pub struct HorovodCoordinator {
    /// Round-trip cost of one gather + broadcast negotiation with the central
    /// coordinator, charged once per negotiation batch.
    pub negotiation_rtt: Duration,
    /// Number of collectives covered by one negotiation batch.
    pub batch: usize,
}

impl Default for HorovodCoordinator {
    fn default() -> Self {
        HorovodCoordinator {
            negotiation_rtt: Duration::from_micros(220),
            batch: 4,
        }
    }
}

impl OrchestrationStrategy for HorovodCoordinator {
    fn kind(&self) -> StrategyKind {
        StrategyKind::Horovod
    }

    fn imposed_order(&self, ready_order: &[u64]) -> Vec<u64> {
        canonical_order(ready_order)
    }

    fn iteration_overhead(&self, collectives: usize, gpus: usize, _iteration: u64) -> Duration {
        // Each negotiation batch costs one gather+broadcast round trip whose
        // latency grows mildly with the number of workers.
        let batches = collectives.div_ceil(self.batch).max(1);
        let scale = 1.0 + (gpus as f64).log2() * 0.25;
        Duration::from_nanos(
            (self.negotiation_rtt.as_nanos() as f64 * batches as f64 * scale) as u64,
        )
    }

    fn supports_hybrid_parallelism(&self) -> bool {
        false
    }
}

/// KungFu-style negotiated-then-enforced ordering.
pub struct KungFuOrdering {
    /// Cost of the first-iteration gather/broadcast that fixes the order.
    pub initial_negotiation: Duration,
    /// Per-collective enforcement cost in later iterations (the decentralized
    /// scheduler check).
    pub per_collective_enforcement: Duration,
}

impl Default for KungFuOrdering {
    fn default() -> Self {
        KungFuOrdering {
            initial_negotiation: Duration::from_millis(3),
            per_collective_enforcement: Duration::from_micros(55),
        }
    }
}

impl OrchestrationStrategy for KungFuOrdering {
    fn kind(&self) -> StrategyKind {
        StrategyKind::KungFu
    }

    fn imposed_order(&self, ready_order: &[u64]) -> Vec<u64> {
        canonical_order(ready_order)
    }

    fn iteration_overhead(&self, collectives: usize, gpus: usize, iteration: u64) -> Duration {
        let enforcement = self.per_collective_enforcement * collectives as u32;
        if iteration == 0 {
            let scale = 1.0 + (gpus as f64).log2() * 0.25;
            enforcement
                + Duration::from_nanos((self.initial_negotiation.as_nanos() as f64 * scale) as u64)
        } else {
            enforcement
        }
    }

    fn supports_hybrid_parallelism(&self) -> bool {
        false
    }
}

/// OneFlow-style static topological sorting (compile-time).
#[derive(Default)]
pub struct OneFlowStaticSort;

impl OrchestrationStrategy for OneFlowStaticSort {
    fn kind(&self) -> StrategyKind {
        StrategyKind::OneFlowStaticSort
    }

    fn imposed_order(&self, ready_order: &[u64]) -> Vec<u64> {
        canonical_order(ready_order)
    }

    fn iteration_overhead(&self, _collectives: usize, _gpus: usize, _iteration: u64) -> Duration {
        // The sorting happened at compile time; runtime just follows it.
        Duration::ZERO
    }

    fn supports_hybrid_parallelism(&self) -> bool {
        true
    }
}

/// Megatron-LM-style manual hardcoding for hybrid parallelism.
#[derive(Default)]
pub struct MegatronManual;

impl OrchestrationStrategy for MegatronManual {
    fn kind(&self) -> StrategyKind {
        StrategyKind::MegatronManual
    }

    fn imposed_order(&self, ready_order: &[u64]) -> Vec<u64> {
        canonical_order(ready_order)
    }

    fn iteration_overhead(&self, _collectives: usize, _gpus: usize, _iteration: u64) -> Duration {
        Duration::ZERO
    }

    fn supports_hybrid_parallelism(&self) -> bool {
        true
    }
}

/// Build a boxed strategy from its kind with default calibration.
pub fn build_strategy(kind: StrategyKind) -> Box<dyn OrchestrationStrategy> {
    match kind {
        StrategyKind::Horovod => Box::new(HorovodCoordinator::default()),
        StrategyKind::KungFu => Box::new(KungFuOrdering::default()),
        StrategyKind::OneFlowStaticSort => Box::new(OneFlowStaticSort),
        StrategyKind::MegatronManual => Box::new(MegatronManual),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_strategy_imposes_the_same_order_on_every_gpu() {
        let ready_gpu0 = vec![5u64, 2, 9, 1];
        let ready_gpu1 = vec![9u64, 1, 5, 2];
        for kind in [
            StrategyKind::Horovod,
            StrategyKind::KungFu,
            StrategyKind::OneFlowStaticSort,
            StrategyKind::MegatronManual,
        ] {
            let s = build_strategy(kind);
            assert_eq!(
                s.imposed_order(&ready_gpu0),
                s.imposed_order(&ready_gpu1),
                "{kind:?}"
            );
        }
    }

    #[test]
    fn horovod_pays_every_iteration_kungfu_mostly_up_front() {
        let horovod = HorovodCoordinator::default();
        let kungfu = KungFuOrdering::default();
        let h0 = horovod.iteration_overhead(64, 8, 0);
        let h100 = horovod.iteration_overhead(64, 8, 100);
        assert_eq!(h0, h100, "Horovod pays the same price every iteration");
        let k0 = kungfu.iteration_overhead(64, 8, 0);
        let k100 = kungfu.iteration_overhead(64, 8, 100);
        assert!(k0 > k100, "KungFu's first iteration includes negotiation");
        assert!(k100 > Duration::ZERO);
    }

    #[test]
    fn static_strategies_cost_nothing_at_runtime() {
        assert_eq!(
            OneFlowStaticSort.iteration_overhead(1000, 32, 5),
            Duration::ZERO
        );
        assert_eq!(
            MegatronManual.iteration_overhead(1000, 32, 5),
            Duration::ZERO
        );
    }

    #[test]
    fn overheads_grow_with_scale() {
        let horovod = HorovodCoordinator::default();
        assert!(horovod.iteration_overhead(64, 64, 1) > horovod.iteration_overhead(64, 8, 1));
        assert!(horovod.iteration_overhead(128, 8, 1) > horovod.iteration_overhead(16, 8, 1));
    }

    #[test]
    fn hybrid_parallelism_support_matches_the_paper() {
        assert!(!HorovodCoordinator::default().supports_hybrid_parallelism());
        assert!(!KungFuOrdering::default().supports_hybrid_parallelism());
        assert!(OneFlowStaticSort.supports_hybrid_parallelism());
        assert!(MegatronManual.supports_hybrid_parallelism());
        assert_eq!(StrategyKind::Horovod.to_string(), "Horovod");
    }
}
