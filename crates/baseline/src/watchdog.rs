//! Deadlock watchdog for the NCCL-like baseline.
//!
//! Real NCCL deadlocks manifest as the program hanging with GPUs pinned at
//! 100% utilisation and no useful log output (Sec. 2.2). In a test suite that
//! is unacceptable, so the baseline scenarios run under a watchdog: if the
//! launched collective kernels do not all complete within a deadline, the
//! scenario is declared deadlocked and every engine is torn down via the
//! cooperative abort flag.
//!
//! The deadline is a **stall** deadline, not a wall-clock budget: a wedged
//! round makes *no* progress, whereas a slow round (e.g. a modelled
//! [`dfccl_transport::LinkModel`] whose per-chunk delay exceeds the deadline)
//! keeps moving chunks. Callers that can observe progress pass a monotone
//! counter probe ([`wait_all_or_deadlock_with_progress`], typically
//! `NcclDomain::progress_counter`); every advance of the counter resets the
//! deadline, so only a genuine stall is reported as a deadlock.

use std::collections::HashSet;
use std::time::{Duration, Instant};

use dfccl_transport::fault::{supervise_with_probe, EdgeSample, StallReport, SuperviseOutcome};
use gpu_sim::{DeviceEngine, GpuId, KernelHandle};
use std::sync::Arc;

/// Result of supervising a set of collective kernels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeadlockOutcome {
    /// Every kernel completed before the deadline.
    AllCompleted,
    /// The deadline expired with kernels still queued or running — the
    /// scenario is deadlocked. Contains the names of the unfinished kernels.
    Deadlock {
        /// Kernels that had not completed when the deadline expired.
        unfinished: Vec<String>,
    },
}

impl DeadlockOutcome {
    /// Whether a deadlock was detected.
    pub fn is_deadlock(&self) -> bool {
        matches!(self, DeadlockOutcome::Deadlock { .. })
    }
}

/// Wait for every handle to finish, declaring a deadlock after `deadline`
/// without any observed progress. On timeout, abort all work on the given
/// engines (so their kernel threads exit) and report which kernels were
/// unfinished. Without a progress probe this is equivalent to a fixed
/// deadline — use [`wait_all_or_deadlock_with_progress`] when modelled link
/// delays can legitimately exceed it.
pub fn wait_all_or_deadlock(
    handles: &[KernelHandle],
    engines: &[Arc<DeviceEngine>],
    deadline: Duration,
) -> DeadlockOutcome {
    wait_all_or_deadlock_with_progress(handles, engines, deadline, &|| 0)
}

/// Wait for every handle to finish, declaring a deadlock only after
/// `stall_deadline` passes with the `progress` counter unchanged. `progress`
/// must be monotone (e.g. total chunks published across the domain's
/// communicators); each observed advance resets the deadline, so a
/// slow-but-progressing collective — one whose modelled per-chunk link delay
/// exceeds the deadline — is never misreported as wedged, while a genuine
/// stall is still detected within one deadline of its onset.
pub fn wait_all_or_deadlock_with_progress(
    handles: &[KernelHandle],
    engines: &[Arc<DeviceEngine>],
    stall_deadline: Duration,
    progress: &dyn Fn() -> u64,
) -> DeadlockOutcome {
    let mut last_progress = progress();
    let mut end = Instant::now() + stall_deadline;
    loop {
        let unfinished: Vec<String> = handles
            .iter()
            .filter(|h| !h.status().is_terminal())
            .map(|h| h.name().to_string())
            .collect();
        if unfinished.is_empty() {
            // Every kernel terminated; a non-Completed terminal status (an
            // explicit failure or abort) is the launcher's problem to
            // surface, not a deadlock.
            return DeadlockOutcome::AllCompleted;
        }
        let now = progress();
        if now != last_progress {
            last_progress = now;
            end = Instant::now() + stall_deadline;
        }
        if Instant::now() >= end {
            // The deadline expired against a progress value that may already
            // be stale (the probe itself can be expensive, and the final 1 ms
            // sleep is a window too). Re-sample once more before declaring:
            // a round that advanced in the meantime gets its deadline back
            // instead of being aborted as wedged.
            let fresh = progress();
            if fresh != last_progress {
                last_progress = fresh;
                end = Instant::now() + stall_deadline;
                continue;
            }
            let stalled: Vec<&KernelHandle> = handles
                .iter()
                .filter(|h| !h.status().is_terminal())
                .collect();
            if stalled.is_empty() {
                return DeadlockOutcome::AllCompleted;
            }
            let unfinished = stalled.iter().map(|h| h.name().to_string()).collect();
            teardown_stalled(&stalled, engines);
            return DeadlockOutcome::Deadlock { unfinished };
        }
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Abort only the engines that still own unfinished supervised kernels, and
/// wait only on those kernels. Engines whose supervised work already
/// completed — or that only run *other* tenants' kernels — are left alone, so
/// one stalled tenant's timeout no longer kills bystanders sharing the
/// domain.
fn teardown_stalled(stalled: &[&KernelHandle], engines: &[Arc<DeviceEngine>]) {
    let stalled_devices: HashSet<GpuId> = stalled.iter().map(|h| h.device()).collect();
    for e in engines {
        if stalled_devices.contains(&e.device().id()) {
            e.abort_all();
        }
    }
    // Give the aborted kernels a moment to observe the flag.
    for h in stalled {
        let _ = h.wait_timeout(Duration::from_secs(5));
    }
}

/// Outcome of supervising kernels with per-edge visibility: either everything
/// completed, or a structured [`StallReport`] naming the failed/stalled edges
/// and collectives.
#[derive(Debug, Clone, PartialEq)]
pub enum StallOutcome {
    /// Every kernel completed before a stall deadline expired.
    AllCompleted,
    /// A full stall deadline passed with zero progress on every edge; the
    /// report classifies the stall (wedge vs link failure) and names the
    /// implicated edges, collectives and unfinished kernels.
    Stalled(StallReport),
}

impl StallOutcome {
    /// Whether a stall was detected.
    pub fn is_stalled(&self) -> bool {
        matches!(self, StallOutcome::Stalled(_))
    }
}

/// The failure-aware successor of [`wait_all_or_deadlock_with_progress`]:
/// instead of one domain-wide scalar, the probe returns per-edge
/// [`EdgeSample`]s (e.g. `NcclDomain::edge_samples`). Progress on *any* edge
/// resets the stall deadline; on expiry the probe is re-sampled once (same
/// TOCTOU guard as above) and the two snapshots are classified into a
/// [`StallReport`] that distinguishes a scheduling wedge from a link failure
/// and names the edges/collectives involved. Teardown is scoped to the
/// engines owning unfinished supervised kernels.
pub fn wait_all_or_stall(
    handles: &[KernelHandle],
    engines: &[Arc<DeviceEngine>],
    stall_deadline: Duration,
    probe: &dyn Fn() -> Vec<EdgeSample>,
) -> StallOutcome {
    let done = || handles.iter().all(|h| h.status().is_terminal());
    match supervise_with_probe(&done, stall_deadline, probe) {
        SuperviseOutcome::AllCompleted => StallOutcome::AllCompleted,
        SuperviseOutcome::Stalled(mut report) => {
            let stalled: Vec<&KernelHandle> = handles
                .iter()
                .filter(|h| !h.status().is_terminal())
                .collect();
            report.unfinished = stalled.iter().map(|h| h.name().to_string()).collect();
            teardown_stalled(&stalled, engines);
            StallOutcome::Stalled(report)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::kernel::Kernel;
    use gpu_sim::{
        FnKernel, GpuDevice, GpuId, GpuSpec, KernelCtx, KernelOutcome, KernelStatus, StreamId,
    };

    fn engine() -> Arc<DeviceEngine> {
        DeviceEngine::new(GpuDevice::new(GpuId(0), GpuSpec::tiny(2)))
    }

    fn spin_forever_kernel() -> Box<dyn Kernel> {
        Box::new(FnKernel::new("spin-forever", |ctx: &KernelCtx| {
            while !ctx.should_abort() {
                std::thread::sleep(Duration::from_millis(1));
            }
            KernelOutcome::Aborted
        }))
    }

    #[test]
    fn completed_kernels_are_not_a_deadlock() {
        let e = engine();
        let h = e
            .launch(
                StreamId(1),
                Box::new(FnKernel::new("quick", |_| KernelOutcome::Completed)),
            )
            .unwrap();
        let outcome = wait_all_or_deadlock(&[h], &[Arc::clone(&e)], Duration::from_secs(5));
        assert_eq!(outcome, DeadlockOutcome::AllCompleted);
        e.shutdown();
    }

    #[test]
    fn hung_kernel_is_reported_and_torn_down() {
        let e = engine();
        let h = e.launch(StreamId(1), spin_forever_kernel()).unwrap();
        let outcome = wait_all_or_deadlock(
            std::slice::from_ref(&h),
            &[Arc::clone(&e)],
            Duration::from_millis(100),
        );
        match &outcome {
            DeadlockOutcome::Deadlock { unfinished } => {
                assert_eq!(unfinished, &vec!["spin-forever".to_string()]);
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
        assert!(outcome.is_deadlock());
        // The kernel was aborted so the engine can shut down cleanly.
        assert_eq!(
            h.wait_timeout(Duration::from_secs(5)),
            KernelStatus::Aborted
        );
        e.shutdown();
    }

    #[test]
    fn empty_handle_set_completes_immediately() {
        let outcome = wait_all_or_deadlock(&[], &[], Duration::from_millis(10));
        assert_eq!(outcome, DeadlockOutcome::AllCompleted);
    }

    #[test]
    fn slow_link_with_progress_probe_is_not_a_false_positive() {
        // Regression test for the stall-vs-slow confusion: a 2-rank ring
        // all-reduce over a link whose modelled per-chunk delay (~25 ms)
        // multiplies out well beyond the 120 ms stall deadline. With the
        // domain's chunk counter as the probe, every transferred chunk resets
        // the deadline and the round must complete — the old fixed deadline
        // reported this exact scenario as wedged.
        use crate::nccl_like::NcclDomain;
        use dfccl_collectives::{CollectiveDescriptor, DataType, DeviceBuffer, ReduceOp};
        use dfccl_transport::{LinkClass, LinkModel, LinkParams, Topology};
        use std::collections::HashMap;

        let mut params = HashMap::new();
        params.insert(
            LinkClass::Local,
            LinkParams {
                latency_ns: 25_000_000.0, // 25 ms per chunk
                bandwidth_gbps: f64::INFINITY,
            },
        );
        let link = LinkModel::new(params, gpu_sim::TimeScale::default());
        let domain = NcclDomain::new(Topology::flat(2), link, GpuSpec::tiny(2), 8);
        let ranks: Vec<_> = (0..2)
            .map(|g| domain.init_rank(GpuId(g)).unwrap())
            .collect();
        let count = 64; // 32 elems per slice = 4 chunks of 8 -> >= 8 slow sends per rank
        for r in &ranks {
            r.register(
                0,
                CollectiveDescriptor::all_reduce(
                    count,
                    DataType::F32,
                    ReduceOp::Sum,
                    vec![GpuId(0), GpuId(1)],
                ),
            )
            .unwrap();
        }
        let mut handles = Vec::new();
        let mut recvs = Vec::new();
        for (g, r) in ranks.iter().enumerate() {
            let send = DeviceBuffer::from_f32(&vec![(g + 1) as f32; count]);
            let recv = DeviceBuffer::zeroed(count * 4);
            recvs.push(recv.clone());
            handles.push(r.launch_collective(0, StreamId(1), send, recv).unwrap());
        }
        let stall_deadline = Duration::from_millis(120);
        let outcome = wait_all_or_deadlock_with_progress(
            &handles,
            &domain.engines(),
            stall_deadline,
            &|| domain.progress_counter(),
        );
        assert_eq!(
            outcome,
            DeadlockOutcome::AllCompleted,
            "slow-but-progressing round misreported as wedged"
        );
        for recv in recvs {
            assert_eq!(recv.to_f32_vec(), vec![3.0f32; count]);
        }
        domain.shutdown();
    }

    #[test]
    fn expiring_deadline_resamples_progress_before_declaring() {
        // TOCTOU regression: the deadline expires against a progress value
        // that went stale while the (expensive) probe slept, even though the
        // round advanced in the meantime. The watchdog must re-sample at the
        // expiry point instead of aborting a progressing round.
        //
        // Timeline (probe costs ~30 ms, deadline 40 ms): the last pre-expiry
        // probe captures the counter at ~60 ms (still 0), the counter
        // advances at ~75 ms, and the expiry check runs at ~90 ms. The old
        // code declared a deadlock right there; re-sampling sees the advance
        // and the kernel (done at ~110 ms) completes normally.
        use std::sync::atomic::{AtomicU64, Ordering};

        let e = engine();
        let h = e
            .launch(
                StreamId(1),
                Box::new(FnKernel::new("slow-but-alive", |_| {
                    std::thread::sleep(Duration::from_millis(110));
                    KernelOutcome::Completed
                })),
            )
            .unwrap();
        let counter = Arc::new(AtomicU64::new(0));
        let advancer = {
            let counter = Arc::clone(&counter);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(75));
                counter.store(1, Ordering::Relaxed);
            })
        };
        let probe_counter = Arc::clone(&counter);
        let outcome = wait_all_or_deadlock_with_progress(
            std::slice::from_ref(&h),
            &[Arc::clone(&e)],
            Duration::from_millis(40),
            &move || {
                let v = probe_counter.load(Ordering::Relaxed);
                // An expensive domain sweep: the returned value is ~30 ms
                // stale by the time the caller compares it.
                std::thread::sleep(Duration::from_millis(30));
                v
            },
        );
        assert_eq!(
            outcome,
            DeadlockOutcome::AllCompleted,
            "a round that advanced during the final probe was aborted as wedged"
        );
        advancer.join().unwrap();
        e.shutdown();
    }

    #[test]
    fn teardown_spares_engines_without_stalled_kernels() {
        // Two engines share the domain: engine A runs a supervised kernel
        // that wedges, engine B runs a bystander tenant the watchdog is not
        // supervising. Declaring A's deadlock must not abort B's kernel.
        let a = engine();
        let b = DeviceEngine::new(GpuDevice::new(GpuId(1), GpuSpec::tiny(2)));
        let stalled = a.launch(StreamId(1), spin_forever_kernel()).unwrap();
        let bystander = b
            .launch(
                StreamId(1),
                Box::new(FnKernel::new("bystander", |ctx: &KernelCtx| {
                    let start = Instant::now();
                    while start.elapsed() < Duration::from_millis(400) {
                        if ctx.should_abort() {
                            return KernelOutcome::Aborted;
                        }
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    KernelOutcome::Completed
                })),
            )
            .unwrap();
        let outcome = wait_all_or_deadlock(
            std::slice::from_ref(&stalled),
            &[Arc::clone(&a), Arc::clone(&b)],
            Duration::from_millis(100),
        );
        assert!(outcome.is_deadlock());
        // The stalled tenant was torn down...
        assert_eq!(
            stalled.wait_timeout(Duration::from_secs(5)),
            KernelStatus::Aborted
        );
        // ...but the bystander engine was never aborted.
        assert_eq!(
            bystander.wait_timeout(Duration::from_secs(5)),
            KernelStatus::Completed,
            "bystander tenant was killed by another tenant's deadlock teardown"
        );
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn stall_supervision_names_a_dead_edge_and_its_collective() {
        use crate::nccl_like::NcclDomain;
        use dfccl_collectives::{CollectiveDescriptor, DataType, DeviceBuffer, ReduceOp};
        use dfccl_transport::fault::{FaultSpec, StallKind};
        use dfccl_transport::{ChannelId, EdgeId};

        let domain = NcclDomain::flat_for_testing(2, 8);
        let ranks: Vec<_> = (0..2)
            .map(|g| domain.init_rank(GpuId(g)).unwrap())
            .collect();
        let count = 64;
        for r in &ranks {
            r.register(
                0,
                CollectiveDescriptor::all_reduce(
                    count,
                    DataType::F32,
                    ReduceOp::Sum,
                    vec![GpuId(0), GpuId(1)],
                ),
            )
            .unwrap();
        }
        let dead_edge = EdgeId {
            src: GpuId(0),
            dst: GpuId(1),
            channel: ChannelId(0),
        };
        domain.fault_injector().script(dead_edge, FaultSpec::dead());
        let mut handles = Vec::new();
        for (g, r) in ranks.iter().enumerate() {
            let send = DeviceBuffer::from_f32(&vec![(g + 1) as f32; count]);
            let recv = DeviceBuffer::zeroed(count * 4);
            handles.push(r.launch_collective(0, StreamId(1), send, recv).unwrap());
        }
        let outcome = wait_all_or_stall(
            &handles,
            &domain.engines(),
            Duration::from_millis(200),
            &|| domain.edge_samples(),
        );
        match outcome {
            StallOutcome::Stalled(report) => {
                assert_eq!(report.kind, StallKind::LinkFailure, "{report}");
                assert!(
                    report.failed_edges.iter().any(|s| s.edge == dead_edge),
                    "report must name the dead edge: {report}"
                );
                assert_eq!(report.stalled_collectives, vec![0], "{report}");
                assert!(!report.unfinished.is_empty());
            }
            other => panic!("expected a link-failure stall, got {other:?}"),
        }
        domain.shutdown();
    }

    #[test]
    fn progress_probe_does_not_mask_a_genuine_stall() {
        // A counter that never advances must still trip the stall deadline.
        let e = engine();
        let h = e.launch(StreamId(1), spin_forever_kernel()).unwrap();
        let start = Instant::now();
        let outcome = wait_all_or_deadlock_with_progress(
            std::slice::from_ref(&h),
            &[Arc::clone(&e)],
            Duration::from_millis(100),
            &|| 42, // constant: no progress
        );
        assert!(outcome.is_deadlock());
        assert!(
            start.elapsed() < Duration::from_secs(6),
            "stall detection must fire within one deadline plus teardown"
        );
        e.shutdown();
    }
}
