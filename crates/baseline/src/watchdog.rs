//! Deadlock watchdog for the NCCL-like baseline.
//!
//! Real NCCL deadlocks manifest as the program hanging with GPUs pinned at
//! 100% utilisation and no useful log output (Sec. 2.2). In a test suite that
//! is unacceptable, so the baseline scenarios run under a watchdog: if the
//! launched collective kernels do not all complete within a deadline, the
//! scenario is declared deadlocked and every engine is torn down via the
//! cooperative abort flag.

use std::time::{Duration, Instant};

use gpu_sim::{DeviceEngine, KernelHandle, KernelStatus};
use std::sync::Arc;

/// Result of supervising a set of collective kernels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeadlockOutcome {
    /// Every kernel completed before the deadline.
    AllCompleted,
    /// The deadline expired with kernels still queued or running — the
    /// scenario is deadlocked. Contains the names of the unfinished kernels.
    Deadlock {
        /// Kernels that had not completed when the deadline expired.
        unfinished: Vec<String>,
    },
}

impl DeadlockOutcome {
    /// Whether a deadlock was detected.
    pub fn is_deadlock(&self) -> bool {
        matches!(self, DeadlockOutcome::Deadlock { .. })
    }
}

/// Wait for every handle to finish within `deadline`. On timeout, abort all
/// work on the given engines (so their kernel threads exit) and report which
/// kernels were unfinished.
pub fn wait_all_or_deadlock(
    handles: &[KernelHandle],
    engines: &[Arc<DeviceEngine>],
    deadline: Duration,
) -> DeadlockOutcome {
    let end = Instant::now() + deadline;
    loop {
        let unfinished: Vec<String> = handles
            .iter()
            .filter(|h| !h.status().is_terminal())
            .map(|h| h.name().to_string())
            .collect();
        if unfinished.is_empty() {
            // Every kernel terminated; any non-Completed status still counts
            // as "no deadlock" (e.g. an explicit failure).
            let all_completed = handles
                .iter()
                .all(|h| h.status() == KernelStatus::Completed);
            if all_completed {
                return DeadlockOutcome::AllCompleted;
            }
            return DeadlockOutcome::AllCompleted;
        }
        if Instant::now() >= end {
            for e in engines {
                e.abort_all();
            }
            // Give the aborted kernels a moment to observe the flag.
            for h in handles {
                let _ = h.wait_timeout(Duration::from_secs(5));
            }
            return DeadlockOutcome::Deadlock { unfinished };
        }
        std::thread::sleep(Duration::from_millis(1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::kernel::Kernel;
    use gpu_sim::{FnKernel, GpuDevice, GpuId, GpuSpec, KernelCtx, KernelOutcome, StreamId};

    fn engine() -> Arc<DeviceEngine> {
        DeviceEngine::new(GpuDevice::new(GpuId(0), GpuSpec::tiny(2)))
    }

    fn spin_forever_kernel() -> Box<dyn Kernel> {
        Box::new(FnKernel::new("spin-forever", |ctx: &KernelCtx| {
            while !ctx.should_abort() {
                std::thread::sleep(Duration::from_millis(1));
            }
            KernelOutcome::Aborted
        }))
    }

    #[test]
    fn completed_kernels_are_not_a_deadlock() {
        let e = engine();
        let h = e
            .launch(
                StreamId(1),
                Box::new(FnKernel::new("quick", |_| KernelOutcome::Completed)),
            )
            .unwrap();
        let outcome = wait_all_or_deadlock(&[h], &[Arc::clone(&e)], Duration::from_secs(5));
        assert_eq!(outcome, DeadlockOutcome::AllCompleted);
        e.shutdown();
    }

    #[test]
    fn hung_kernel_is_reported_and_torn_down() {
        let e = engine();
        let h = e.launch(StreamId(1), spin_forever_kernel()).unwrap();
        let outcome = wait_all_or_deadlock(
            std::slice::from_ref(&h),
            &[Arc::clone(&e)],
            Duration::from_millis(100),
        );
        match &outcome {
            DeadlockOutcome::Deadlock { unfinished } => {
                assert_eq!(unfinished, &vec!["spin-forever".to_string()]);
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
        assert!(outcome.is_deadlock());
        // The kernel was aborted so the engine can shut down cleanly.
        assert_eq!(
            h.wait_timeout(Duration::from_secs(5)),
            KernelStatus::Aborted
        );
        e.shutdown();
    }

    #[test]
    fn empty_handle_set_completes_immediately() {
        let outcome = wait_all_or_deadlock(&[], &[], Duration::from_millis(10));
        assert_eq!(outcome, DeadlockOutcome::AllCompleted);
    }
}
