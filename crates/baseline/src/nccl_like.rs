//! The NCCL-like baseline: blocking, busy-waiting, non-preemptive collective
//! kernels.
//!
//! Each invocation of a collective launches one kernel on a CUDA-like stream.
//! The kernel holds its residency slot (streaming-multiprocessor resources)
//! while busy-waiting for its peers — the hold-and-wait behaviour that,
//! combined with disordered invocation across GPUs, produces the deadlocks of
//! Fig. 1. There is no preemption: the only way out of a deadlock is the
//! watchdog's cooperative abort.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use dfccl_collectives::{
    run_plan_blocking, validate_buffers, AlgorithmKind, AlgorithmSelector, CollectiveDescriptor,
    CollectiveError, DeviceBuffer, Plan,
};
use dfccl_transport::{
    Communicator, CommunicatorPool, LinkModel, RankChannels, Topology, TransportError,
};
use gpu_sim::{
    DeviceEngine, FnKernel, GpuDevice, GpuId, GpuSpec, KernelHandle, KernelOutcome, LaunchError,
    StreamId, SyncKind,
};
use parking_lot::Mutex;

/// Errors returned by the baseline executor.
#[derive(Debug)]
pub enum NcclError {
    /// The collective id was not registered on this rank.
    NotRegistered(u64),
    /// The collective id was already registered on this rank.
    AlreadyRegistered(u64),
    /// The GPU is not part of the domain topology.
    UnknownGpu(GpuId),
    /// The rank's GPU is not in the collective's device set.
    RankNotInDeviceSet { gpu: GpuId, coll_id: u64 },
    /// Collective-level validation failed.
    Collective(CollectiveError),
    /// Transport-level failure.
    Transport(TransportError),
    /// Kernel launch failed.
    Launch(LaunchError),
}

impl std::fmt::Display for NcclError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NcclError::NotRegistered(id) => write!(f, "collective {id} is not registered"),
            NcclError::AlreadyRegistered(id) => write!(f, "collective {id} is already registered"),
            NcclError::UnknownGpu(g) => write!(f, "{g} is not part of the topology"),
            NcclError::RankNotInDeviceSet { gpu, coll_id } => {
                write!(f, "{gpu} is not in the device set of collective {coll_id}")
            }
            NcclError::Collective(e) => write!(f, "{e}"),
            NcclError::Transport(e) => write!(f, "{e}"),
            NcclError::Launch(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for NcclError {}

impl From<CollectiveError> for NcclError {
    fn from(e: CollectiveError) -> Self {
        NcclError::Collective(e)
    }
}
impl From<TransportError> for NcclError {
    fn from(e: TransportError) -> Self {
        NcclError::Transport(e)
    }
}
impl From<LaunchError> for NcclError {
    fn from(e: LaunchError) -> Self {
        NcclError::Launch(e)
    }
}

struct Registered {
    desc: CollectiveDescriptor,
    rank: usize,
    channels: RankChannels,
    plan: Plan,
}

/// Cluster-level state for the NCCL-like baseline: topology, link model,
/// communicator pool and one launch engine per GPU.
pub struct NcclDomain {
    pool: Arc<CommunicatorPool>,
    engines: HashMap<GpuId, Arc<DeviceEngine>>,
    communicators: Mutex<HashMap<u64, Arc<Communicator>>>,
    chunk_elems: usize,
}

impl NcclDomain {
    /// Build a domain over a topology, link model and GPU specification.
    /// `max_resident_kernels` bounds per-GPU kernel concurrency (the resource
    /// that gets depleted in the resource-depletion deadlock).
    pub fn new(
        topology: Topology,
        link_model: LinkModel,
        gpu_spec: GpuSpec,
        chunk_elems: usize,
    ) -> Arc<Self> {
        let topology = Arc::new(topology);
        let link_model = Arc::new(link_model);
        let pool = CommunicatorPool::new(Arc::clone(&topology), Arc::clone(&link_model), 8);
        let engines = topology
            .gpus()
            .into_iter()
            .map(|g| (g, DeviceEngine::new(GpuDevice::new(g, gpu_spec.clone()))))
            .collect();
        Arc::new(NcclDomain {
            pool,
            engines,
            communicators: Mutex::new(HashMap::new()),
            chunk_elems,
        })
    }

    /// A flat `n`-GPU domain with zero-cost links and `slots` concurrent-kernel
    /// slots per GPU.
    pub fn flat_for_testing(n: usize, slots: u32) -> Arc<Self> {
        NcclDomain::new(
            Topology::flat(n),
            LinkModel::zero_cost(),
            GpuSpec::tiny(slots),
            4 * 1024,
        )
    }

    /// The engine driving `gpu`.
    pub fn engine(&self, gpu: GpuId) -> Option<Arc<DeviceEngine>> {
        self.engines.get(&gpu).cloned()
    }

    /// All engines (for watchdog teardown).
    pub fn engines(&self) -> Vec<Arc<DeviceEngine>> {
        self.engines.values().cloned().collect()
    }

    /// Monotone progress counter: total chunks ever published across every
    /// communicator of this domain. The watchdog samples it to distinguish a
    /// slow-but-progressing round (modelled link delays larger than its
    /// stall deadline) from a genuinely wedged one.
    pub fn progress_counter(&self) -> u64 {
        self.communicators
            .lock()
            .values()
            .map(|c| c.transferred_chunks())
            .sum()
    }

    /// The domain-wide fault injector (shared by every communicator the pool
    /// hands out): script per-edge link faults through it.
    pub fn fault_injector(&self) -> Arc<dfccl_transport::FaultInjector> {
        Arc::clone(self.pool.fault_injector())
    }

    /// Per-edge progress samples across every registered collective's
    /// communicator, each stamped with its collective id — the probe
    /// [`crate::watchdog::wait_all_or_stall`] consumes to classify a stall
    /// and name the edges/collectives involved.
    pub fn edge_samples(&self) -> Vec<dfccl_transport::EdgeSample> {
        let mut samples = Vec::new();
        for (&coll_id, comm) in self.communicators.lock().iter() {
            for mut s in comm.edge_samples() {
                s.coll_id = Some(coll_id);
                samples.push(s);
            }
        }
        samples.sort_by_key(|s| (s.coll_id, s.edge));
        samples
    }

    /// Create a rank context for `gpu`.
    pub fn init_rank(self: &Arc<Self>, gpu: GpuId) -> Result<NcclRank, NcclError> {
        let engine = self.engine(gpu).ok_or(NcclError::UnknownGpu(gpu))?;
        Ok(NcclRank {
            domain: Arc::clone(self),
            gpu,
            engine,
            registered: Mutex::new(HashMap::new()),
        })
    }

    /// Shut every engine down (aborting outstanding kernels).
    pub fn shutdown(&self) {
        for e in self.engines.values() {
            e.shutdown();
        }
    }

    fn communicator_for(
        &self,
        coll_id: u64,
        devices: &[GpuId],
    ) -> Result<Arc<Communicator>, NcclError> {
        let mut comms = self.communicators.lock();
        if let Some(c) = comms.get(&coll_id) {
            return Ok(Arc::clone(c));
        }
        let c = self.pool.allocate(devices)?;
        comms.insert(coll_id, Arc::clone(&c));
        Ok(c)
    }
}

/// Per-GPU rank context of the NCCL-like baseline.
pub struct NcclRank {
    domain: Arc<NcclDomain>,
    gpu: GpuId,
    engine: Arc<DeviceEngine>,
    registered: Mutex<HashMap<u64, Arc<Registered>>>,
}

impl NcclRank {
    /// The GPU this rank runs on.
    pub fn gpu(&self) -> GpuId {
        self.gpu
    }

    /// The launch engine of this rank's GPU.
    pub fn engine(&self) -> &Arc<DeviceEngine> {
        &self.engine
    }

    /// Register a collective under `coll_id` (NCCL has no registration step;
    /// this mirrors communicator creation + plan construction).
    pub fn register(&self, coll_id: u64, desc: CollectiveDescriptor) -> Result<(), NcclError> {
        desc.validate()?;
        if self.registered.lock().contains_key(&coll_id) {
            return Err(NcclError::AlreadyRegistered(coll_id));
        }
        let rank = desc.devices.iter().position(|&d| d == self.gpu).ok_or(
            NcclError::RankNotInDeviceSet {
                gpu: self.gpu,
                coll_id,
            },
        )?;
        let comm = self.domain.communicator_for(coll_id, &desc.devices)?;
        // The NCCL-like baseline runs the ring schedule wherever a ring
        // exists; dense-mesh kinds (all-to-all, send/recv) fall through to
        // the pairwise family, mirroring NCCL's grouped p2p implementation.
        // Channels cover exactly the edges the plan addresses.
        let plan = AlgorithmSelector::forced(AlgorithmKind::Ring).build_plan(
            &desc,
            rank,
            self.domain.chunk_elems,
            self.domain.pool.topology(),
        )?;
        let channels = comm.channels(rank, plan.send_edges(), plan.recv_edges())?;
        self.registered.lock().insert(
            coll_id,
            Arc::new(Registered {
                desc,
                rank,
                channels,
                plan,
            }),
        );
        Ok(())
    }

    /// Launch the collective as one blocking kernel on `stream`. The kernel
    /// busy-waits (no spin threshold, no preemption) until every primitive of
    /// the plan has executed, or until it is aborted by the watchdog.
    pub fn launch_collective(
        &self,
        coll_id: u64,
        stream: StreamId,
        send: DeviceBuffer,
        recv: DeviceBuffer,
    ) -> Result<KernelHandle, NcclError> {
        let reg = self
            .registered
            .lock()
            .get(&coll_id)
            .cloned()
            .ok_or(NcclError::NotRegistered(coll_id))?;
        validate_buffers(&reg.desc, reg.rank, &send, &recv)?;
        let name = format!("nccl-{}-{}", reg.desc.kind, coll_id);
        let kernel = FnKernel::new(name, move |ctx: &gpu_sim::KernelCtx| {
            let abort = || ctx.should_abort();
            match run_plan_blocking(
                coll_id,
                &reg.plan.steps,
                &reg.channels,
                reg.desc.dtype,
                reg.desc.op,
                &send,
                &recv,
                &abort,
            ) {
                Ok(true) => KernelOutcome::Completed,
                Ok(false) => KernelOutcome::Aborted,
                Err(e) => KernelOutcome::Failed(e.to_string()),
            }
        })
        .with_blocks(4)
        .with_shared_mem(13 * 1024);
        Ok(self.engine.launch(stream, Box::new(kernel))?)
    }

    /// Issue a device-wide synchronization and wait for it (bounded). With the
    /// NCCL-like baseline this is the operation that turns disordered
    /// collectives into the Fig. 1(d) deadlock.
    pub fn device_synchronize_timeout(&self, timeout: Duration) -> bool {
        self.engine
            .synchronize_timeout(SyncKind::Explicit, Some(timeout))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::watchdog::{wait_all_or_deadlock, DeadlockOutcome};
    use dfccl_collectives::{DataType, ReduceOp};
    use gpu_sim::KernelStatus;

    fn gpus(n: usize) -> Vec<GpuId> {
        (0..n).map(GpuId).collect()
    }

    fn all_reduce_desc(count: usize, n: usize) -> CollectiveDescriptor {
        CollectiveDescriptor::all_reduce(count, DataType::F32, ReduceOp::Sum, gpus(n))
    }

    #[test]
    fn consistent_order_completes_and_produces_correct_sums() {
        // Fig. 1(a): both GPUs launch A then B — no deadlock.
        let domain = NcclDomain::flat_for_testing(2, 2);
        let ranks: Vec<NcclRank> = (0..2)
            .map(|g| domain.init_rank(GpuId(g)).unwrap())
            .collect();
        for r in &ranks {
            r.register(0, all_reduce_desc(16, 2)).unwrap();
            r.register(1, all_reduce_desc(16, 2)).unwrap();
        }
        let mut handles = Vec::new();
        let mut recvs = Vec::new();
        for (g, r) in ranks.iter().enumerate() {
            for coll in [0u64, 1u64] {
                let send = DeviceBuffer::from_f32(&[(g + 1) as f32; 16]);
                let recv = DeviceBuffer::zeroed(64);
                recvs.push(recv.clone());
                handles.push(
                    r.launch_collective(coll, StreamId(coll as usize + 1), send, recv)
                        .unwrap(),
                );
            }
        }
        let outcome = wait_all_or_deadlock(&handles, &domain.engines(), Duration::from_secs(20));
        assert_eq!(outcome, DeadlockOutcome::AllCompleted);
        for recv in recvs {
            assert_eq!(recv.to_f32_vec(), vec![3.0f32; 16]);
        }
        domain.shutdown();
    }

    #[test]
    fn disorder_on_a_single_stream_deadlocks() {
        // Fig. 1(c), single queue: GPU 0 launches A then B, GPU 1 launches B
        // then A, all on one stream per GPU.
        let domain = NcclDomain::flat_for_testing(2, 1);
        let ranks: Vec<NcclRank> = (0..2)
            .map(|g| domain.init_rank(GpuId(g)).unwrap())
            .collect();
        for r in &ranks {
            r.register(0, all_reduce_desc(64, 2)).unwrap();
            r.register(1, all_reduce_desc(64, 2)).unwrap();
        }
        let order = [vec![0u64, 1u64], vec![1u64, 0u64]];
        let mut handles = Vec::new();
        for (g, r) in ranks.iter().enumerate() {
            for &coll in &order[g] {
                let send = DeviceBuffer::from_f32(&vec![1.0; 64]);
                let recv = DeviceBuffer::zeroed(256);
                handles.push(r.launch_collective(coll, StreamId(1), send, recv).unwrap());
            }
        }
        let outcome = wait_all_or_deadlock(&handles, &domain.engines(), Duration::from_secs(2));
        assert!(outcome.is_deadlock(), "single-queue disorder must deadlock");
        domain.shutdown();
    }

    #[test]
    fn disorder_with_separate_streams_and_enough_resources_completes() {
        // Fig. 1(b): disorder is fine when both collectives can run concurrently.
        let domain = NcclDomain::flat_for_testing(2, 2);
        let ranks: Vec<NcclRank> = (0..2)
            .map(|g| domain.init_rank(GpuId(g)).unwrap())
            .collect();
        for r in &ranks {
            r.register(0, all_reduce_desc(32, 2)).unwrap();
            r.register(1, all_reduce_desc(32, 2)).unwrap();
        }
        let order = [vec![0u64, 1u64], vec![1u64, 0u64]];
        let mut handles = Vec::new();
        for (g, r) in ranks.iter().enumerate() {
            for &coll in &order[g] {
                let send = DeviceBuffer::from_f32(&[1.0; 32]);
                let recv = DeviceBuffer::zeroed(128);
                handles.push(
                    r.launch_collective(coll, StreamId(coll as usize + 1), send, recv)
                        .unwrap(),
                );
            }
        }
        let outcome = wait_all_or_deadlock(&handles, &domain.engines(), Duration::from_secs(20));
        assert_eq!(outcome, DeadlockOutcome::AllCompleted);
        domain.shutdown();
    }

    #[test]
    fn disorder_with_resource_depletion_deadlocks() {
        // Fig. 1(c), resource depletion: separate streams but only one
        // residency slot per GPU.
        let domain = NcclDomain::flat_for_testing(2, 1);
        let ranks: Vec<NcclRank> = (0..2)
            .map(|g| domain.init_rank(GpuId(g)).unwrap())
            .collect();
        for r in &ranks {
            r.register(0, all_reduce_desc(32, 2)).unwrap();
            r.register(1, all_reduce_desc(32, 2)).unwrap();
        }
        let order = [vec![0u64, 1u64], vec![1u64, 0u64]];
        let mut handles = Vec::new();
        for (g, r) in ranks.iter().enumerate() {
            for &coll in &order[g] {
                let send = DeviceBuffer::from_f32(&[1.0; 32]);
                let recv = DeviceBuffer::zeroed(128);
                handles.push(
                    r.launch_collective(coll, StreamId(coll as usize + 1), send, recv)
                        .unwrap(),
                );
            }
        }
        let outcome = wait_all_or_deadlock(&handles, &domain.engines(), Duration::from_secs(2));
        assert!(outcome.is_deadlock(), "resource depletion must deadlock");
        domain.shutdown();
    }

    #[test]
    fn disorder_with_device_sync_deadlocks_despite_resources() {
        // Fig. 1(d): plenty of resources, but each GPU synchronizes between
        // the two disordered collectives.
        let domain = NcclDomain::flat_for_testing(2, 4);
        let domain2 = Arc::clone(&domain);
        let mut threads = Vec::new();
        for g in 0..2 {
            let domain = Arc::clone(&domain2);
            threads.push(std::thread::spawn(move || {
                let rank = domain.init_rank(GpuId(g)).unwrap();
                rank.register(0, all_reduce_desc(32, 2)).unwrap();
                rank.register(1, all_reduce_desc(32, 2)).unwrap();
                let order = if g == 0 { [0u64, 1u64] } else { [1u64, 0u64] };
                let first = rank
                    .launch_collective(
                        order[0],
                        StreamId(order[0] as usize + 1),
                        DeviceBuffer::from_f32(&[1.0; 32]),
                        DeviceBuffer::zeroed(128),
                    )
                    .unwrap();
                // cudaDeviceSynchronize between the two collectives.
                let synced = rank.device_synchronize_timeout(Duration::from_secs(2));
                let second = rank
                    .launch_collective(
                        order[1],
                        StreamId(order[1] as usize + 1),
                        DeviceBuffer::from_f32(&[1.0; 32]),
                        DeviceBuffer::zeroed(128),
                    )
                    .unwrap();
                (synced, first, second)
            }));
        }
        let results: Vec<_> = threads.into_iter().map(|t| t.join().unwrap()).collect();
        // The synchronizations cannot complete: each waits for a collective
        // whose peer is stuck behind the other GPU's synchronization.
        assert!(results.iter().any(|(synced, _, _)| !synced));
        let handles: Vec<KernelHandle> = results
            .iter()
            .flat_map(|(_, a, b)| [a.clone(), b.clone()])
            .collect();
        let outcome = wait_all_or_deadlock(&handles, &domain.engines(), Duration::from_secs(2));
        assert!(outcome.is_deadlock(), "sync-related disorder must deadlock");
        domain.shutdown();
    }

    #[test]
    fn launch_requires_registration() {
        let domain = NcclDomain::flat_for_testing(2, 2);
        let rank = domain.init_rank(GpuId(0)).unwrap();
        let err = rank
            .launch_collective(
                9,
                StreamId(1),
                DeviceBuffer::zeroed(4),
                DeviceBuffer::zeroed(4),
            )
            .unwrap_err();
        assert!(matches!(err, NcclError::NotRegistered(9)));
        assert!(matches!(
            domain.init_rank(GpuId(42)),
            Err(NcclError::UnknownGpu(_))
        ));
        domain.shutdown();
    }

    #[test]
    fn kernel_status_failed_surfaces_plan_errors() {
        // Registering with mismatched device sets across ranks is the user's
        // bug; the baseline surfaces it as a failed kernel rather than hanging.
        let domain = NcclDomain::flat_for_testing(2, 2);
        let rank = domain.init_rank(GpuId(0)).unwrap();
        rank.register(0, all_reduce_desc(8, 2)).unwrap();
        let err = rank.register(0, all_reduce_desc(8, 2)).unwrap_err();
        assert!(matches!(err, NcclError::AlreadyRegistered(0)));
        let h = rank
            .launch_collective(
                0,
                StreamId(1),
                DeviceBuffer::from_f32(&[1.0; 8]),
                DeviceBuffer::zeroed(32),
            )
            .unwrap();
        // The peer never launches; abort through the watchdog.
        let outcome = wait_all_or_deadlock(
            std::slice::from_ref(&h),
            &domain.engines(),
            Duration::from_millis(200),
        );
        assert!(outcome.is_deadlock());
        assert_eq!(
            h.wait_timeout(Duration::from_secs(5)),
            KernelStatus::Aborted
        );
        domain.shutdown();
    }
}
