//! A CUDA-aware-MPI-like baseline for the Sec. 2.1 comparison.
//!
//! The paper motivates NCCL's on-GPU control plane by showing that NCCL
//! all-reduce throughput surpasses CUDA-aware MPI once buffers exceed 32 KB
//! (by up to >6.7×). The dominant difference is that the MPI path stages data
//! through the CPU-side runtime: every chunk pays an extra host round trip and
//! a lower-bandwidth staging copy. This module models that path so the
//! `fig_nccl_vs_mpi` harness can regenerate the comparison's shape.

use std::time::Duration;

use dfccl_transport::{LinkClass, LinkModel};

/// Cost model of a CPU-staged (MPI-like) all-reduce.
#[derive(Debug, Clone)]
pub struct MpiLikeModel {
    /// Per-message host-side latency (runtime progress engine, registration).
    pub host_latency: Duration,
    /// Effective staging bandwidth through host memory, bytes per second.
    pub staging_bandwidth: f64,
    /// The inter-GPU link model used after staging.
    pub link_model: LinkModel,
}

impl Default for MpiLikeModel {
    fn default() -> Self {
        MpiLikeModel {
            // MPI's latency path is competitive for tiny messages; its
            // weakness is the host-staged bandwidth for large ones.
            host_latency: Duration::from_micros(2),
            staging_bandwidth: 1.5e9,
            link_model: LinkModel::table2_testbed(),
        }
    }
}

impl MpiLikeModel {
    /// Modelled time of a ring all-reduce of `bytes` over `n` GPUs.
    pub fn all_reduce_time(&self, bytes: usize, n: usize, link: LinkClass) -> Duration {
        assert!(n >= 2);
        // Ring all-reduce moves 2*(n-1)/n of the buffer per rank; every step
        // additionally pays the host latency and the staging copy.
        let steps = 2 * (n - 1);
        let per_step_bytes = bytes / n;
        let wire = self.link_model.transfer_cost(link, per_step_bytes);
        let staging =
            Duration::from_nanos((per_step_bytes as f64 / self.staging_bandwidth * 1e9) as u64);
        (wire + staging + self.host_latency) * steps as u32
    }

    /// Modelled throughput (bytes/s) of the all-reduce.
    pub fn all_reduce_throughput(&self, bytes: usize, n: usize, link: LinkClass) -> f64 {
        let t = self.all_reduce_time(bytes, n, link);
        bytes as f64 / t.as_secs_f64()
    }
}

/// Modelled time of an NCCL-style on-GPU ring all-reduce (no host staging,
/// but a fixed kernel-launch overhead), used as the reference side of the
/// Sec. 2.1 comparison.
pub fn nccl_style_all_reduce_time(
    link_model: &LinkModel,
    bytes: usize,
    n: usize,
    link: LinkClass,
) -> Duration {
    assert!(n >= 2);
    let steps = 2 * (n - 1);
    let per_step_bytes = bytes / n;
    let launch_overhead = Duration::from_micros(20);
    launch_overhead + link_model.transfer_cost(link, per_step_bytes) * steps as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mpi_is_slower_than_nccl_for_large_buffers() {
        let mpi = MpiLikeModel::default();
        let nccl_model = LinkModel::table2_testbed();
        let bytes = 4 * 1024 * 1024;
        let t_mpi = mpi.all_reduce_time(bytes, 8, LinkClass::IntraPix);
        let t_nccl = nccl_style_all_reduce_time(&nccl_model, bytes, 8, LinkClass::IntraPix);
        assert!(t_mpi > t_nccl * 2, "mpi {t_mpi:?} vs nccl {t_nccl:?}");
    }

    #[test]
    fn gap_grows_with_buffer_size_beyond_32kb() {
        let mpi = MpiLikeModel::default();
        let nccl_model = LinkModel::table2_testbed();
        let ratio = |bytes: usize| {
            let t_mpi = mpi
                .all_reduce_time(bytes, 8, LinkClass::IntraPix)
                .as_secs_f64();
            let t_nccl = nccl_style_all_reduce_time(&nccl_model, bytes, 8, LinkClass::IntraPix)
                .as_secs_f64();
            t_mpi / t_nccl
        };
        assert!(ratio(1 << 22) > ratio(1 << 15));
        // The large-buffer advantage reaches several-fold, as in Sec. 2.1.
        assert!(ratio(1 << 22) > 3.0);
    }

    #[test]
    fn throughput_is_positive_and_monotonic_in_buffer_size_reporting() {
        let mpi = MpiLikeModel::default();
        let small = mpi.all_reduce_throughput(32 * 1024, 8, LinkClass::IntraPix);
        let large = mpi.all_reduce_throughput(4 * 1024 * 1024, 8, LinkClass::IntraPix);
        assert!(small > 0.0);
        assert!(large > small, "throughput should improve with buffer size");
    }

    #[test]
    #[should_panic]
    fn single_gpu_all_reduce_is_rejected() {
        let mpi = MpiLikeModel::default();
        let _ = mpi.all_reduce_time(1024, 1, LinkClass::Local);
    }
}
