//! Criterion micro-benchmarks of the daemon-kernel building blocks whose
//! costs appear in the Sec. 4.5 performance model: SQ submission, task-queue
//! reordering, spin-policy arithmetic, context checkout/checkin and the
//! per-step dispatch comparison (interpreted map-lookup vs compiled index).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dfccl::sq::SqCursor;
use dfccl::{OrderingPolicy, SpinPolicy, Sqe, SubmissionQueue, TaskQueue};
use dfccl_bench::hotpath::{dispatch_fixture, DispatchFixture};
use dfccl_collectives::{instr_ready, step_ready, DeviceBuffer, PendingSends};

fn bench_components(c: &mut Criterion) {
    let mut group = c.benchmark_group("daemon_components");
    group.sample_size(30);
    group.measurement_time(std::time::Duration::from_secs(1));
    group.warm_up_time(std::time::Duration::from_millis(200));

    group.bench_function("sq_push_read", |b| {
        let sq = SubmissionQueue::new(256, 1);
        let mut cursor = SqCursor::default();
        b.iter(|| {
            sq.try_push(Sqe {
                coll_id: 1,
                seq: 0,
                send: DeviceBuffer::zeroed(16),
                recv: DeviceBuffer::zeroed(16),
                exit: false,
            })
            .unwrap();
            sq.read_next(&mut cursor).unwrap()
        });
    });

    group.bench_function("task_queue_reorder_64", |b| {
        let mut q = TaskQueue::new();
        for i in 0..64u64 {
            q.push(i, (i % 7) as i32, 0);
        }
        b.iter(|| {
            q.reorder(OrderingPolicy::PriorityBased);
            q.reorder(OrderingPolicy::Fifo);
            q.len()
        });
    });

    group.bench_function("adaptive_spin_policy", |b| {
        let policy = SpinPolicy::adaptive_default();
        b.iter(|| {
            let mut t = 0u64;
            for pos in 0..32 {
                t = t.wrapping_add(policy.on_success(policy.initial_threshold(pos)));
            }
            t
        });
    });

    group.bench_function("context_checkout_checkin", |b| {
        let store = dfccl::context::ContextStore::new(8, 0.0, 0.0);
        store.enqueue_invocation(
            3,
            dfccl::context::DynamicContext::new(
                0,
                DeviceBuffer::zeroed(16),
                DeviceBuffer::zeroed(16),
            ),
        );
        b.iter(|| {
            let (ctx, _) = store.checkout_current(3).unwrap();
            store.checkin_incomplete(3, ctx)
        });
    });

    group.finish();
}

/// Per-step readiness dispatch: the interpreted path re-matches peer fields
/// and does `BTreeMap` connector lookups per poll; the compiled path indexes
/// a flat connector table with pre-resolved instruction indices.
fn bench_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("dispatch");
    group.sample_size(30);
    group.measurement_time(std::time::Duration::from_secs(1));
    group.warm_up_time(std::time::Duration::from_millis(200));

    // The same dense-mesh workload the perf_hotpath registration panel
    // measures: (n-1) × K connectors per direction, the deepest per-poll
    // map lookups (the MoE-style shape the compiled path is for).
    let DispatchFixture {
        plan,
        channels,
        program,
        table,
    } = dispatch_fixture(8, 4);
    let pending = PendingSends::default();

    group.bench_function("step_ready_map_lookup", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let step = &plan.steps[i % plan.len()];
            i += 1;
            black_box(step_ready(step, &channels, &pending))
        });
    });

    group.bench_function("instr_ready_index", |b| {
        let mut i = 0u32;
        b.iter(|| {
            let idx = i % program.len() as u32;
            i += 1;
            black_box(instr_ready(&program, idx, &table, &pending))
        });
    });

    group.finish();
}

criterion_group!(benches, bench_components, bench_dispatch);
criterion_main!(benches);
