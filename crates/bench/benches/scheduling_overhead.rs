//! Criterion micro-benchmarks of the daemon-kernel building blocks whose
//! costs appear in the Sec. 4.5 performance model: SQ submission, task-queue
//! reordering, spin-policy arithmetic and context checkout/checkin.

use criterion::{criterion_group, criterion_main, Criterion};
use dfccl::sq::SqCursor;
use dfccl::{OrderingPolicy, SpinPolicy, Sqe, SubmissionQueue, TaskQueue};
use dfccl_collectives::DeviceBuffer;

fn bench_components(c: &mut Criterion) {
    let mut group = c.benchmark_group("daemon_components");
    group.sample_size(30);
    group.measurement_time(std::time::Duration::from_secs(1));
    group.warm_up_time(std::time::Duration::from_millis(200));

    group.bench_function("sq_push_read", |b| {
        let sq = SubmissionQueue::new(256, 1);
        let mut cursor = SqCursor::default();
        b.iter(|| {
            sq.try_push(Sqe {
                coll_id: 1,
                seq: 0,
                send: DeviceBuffer::zeroed(16),
                recv: DeviceBuffer::zeroed(16),
                exit: false,
            })
            .unwrap();
            sq.read_next(&mut cursor).unwrap()
        });
    });

    group.bench_function("task_queue_reorder_64", |b| {
        let mut q = TaskQueue::new();
        for i in 0..64u64 {
            q.push(i, (i % 7) as i32);
        }
        b.iter(|| {
            q.reorder(OrderingPolicy::PriorityBased);
            q.reorder(OrderingPolicy::Fifo);
            q.len()
        });
    });

    group.bench_function("adaptive_spin_policy", |b| {
        let policy = SpinPolicy::adaptive_default();
        b.iter(|| {
            let mut t = 0u64;
            for pos in 0..32 {
                t = t.wrapping_add(policy.on_success(policy.initial_threshold(pos)));
            }
            t
        });
    });

    group.bench_function("context_checkout_checkin", |b| {
        let store = dfccl::context::ContextStore::new(8, 0.0, 0.0);
        store.enqueue_invocation(
            3,
            dfccl::context::DynamicContext::new(
                0,
                DeviceBuffer::zeroed(16),
                DeviceBuffer::zeroed(16),
            ),
        );
        b.iter(|| {
            let (ctx, _) = store.checkout_current(3).unwrap();
            store.checkin_incomplete(3, ctx)
        });
    });

    group.finish();
}

criterion_group!(benches, bench_components);
criterion_main!(benches);
