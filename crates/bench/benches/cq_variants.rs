//! Criterion micro-benchmark backing Fig. 7(c): CQE-write cost of the three
//! completion-queue designs, measured on the raw protocol (modelled
//! host-memory costs removed) and with the modelled costs applied.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dfccl::{build_cq, CqVariant, Cqe, HostMemCosts};

fn bench_cq_push_pop(c: &mut Criterion) {
    let mut group = c.benchmark_group("cq_push_pop");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(1));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for variant in [
        CqVariant::VanillaRing,
        CqVariant::OptimizedRing,
        CqVariant::OptimizedSlot,
    ] {
        group.bench_with_input(
            BenchmarkId::new("protocol_only", format!("{variant:?}")),
            &variant,
            |b, &variant| {
                let cq = build_cq(variant, 64, HostMemCosts::free());
                b.iter(|| {
                    cq.push(Cqe { coll_id: 7 });
                    cq.pop()
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("modelled_host_costs", format!("{variant:?}")),
            &variant,
            |b, &variant| {
                let cq = build_cq(variant, 64, HostMemCosts::default());
                b.iter(|| {
                    cq.push(Cqe { coll_id: 7 });
                    cq.pop()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_cq_push_pop);
criterion_main!(benches);
