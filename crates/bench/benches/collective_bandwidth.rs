//! Criterion micro-benchmark backing Fig. 8: library overhead of one
//! all-reduce on four simulated GPUs through the full DFCCL stack
//! (SQ → daemon kernel → primitives → CQ → callback), with zero-cost links so
//! the measurement isolates the library rather than the modelled wire time.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dfccl::DfcclDomain;
use dfccl_collectives::{DataType, DeviceBuffer, ReduceOp};
use gpu_sim::GpuId;

fn bench_all_reduce(c: &mut Criterion) {
    let gpus = 4usize;
    let devices: Vec<GpuId> = (0..gpus).map(GpuId).collect();
    let mut group = c.benchmark_group("dfccl_all_reduce");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));

    for &elems in &[1usize << 10, 1 << 14] {
        let domain = DfcclDomain::flat_for_testing(gpus);
        let ranks: Vec<Arc<dfccl::RankCtx>> = devices
            .iter()
            .map(|&g| Arc::new(domain.init_rank(g).unwrap()))
            .collect();
        for rank in &ranks {
            rank.register_all_reduce(1, elems, DataType::F32, ReduceOp::Sum, devices.clone(), 0)
                .unwrap();
        }
        group.throughput(Throughput::Bytes((elems * 4) as u64));
        group.bench_with_input(BenchmarkId::new("elems", elems), &elems, |b, &elems| {
            b.iter(|| {
                let mut handles = Vec::with_capacity(gpus);
                for rank in &ranks {
                    let send = DeviceBuffer::zeroed(elems * 4);
                    let recv = DeviceBuffer::zeroed(elems * 4);
                    handles.push(rank.run_awaitable(1, send, recv).unwrap());
                }
                for h in handles {
                    h.wait_for(1);
                }
            });
        });
        for rank in &ranks {
            rank.destroy();
        }
    }
    group.finish();
}

criterion_group!(benches, bench_all_reduce);
criterion_main!(benches);
