//! Scheduling-throughput micro-benchmark for the daemon hot path: domain-wide
//! collectives per second for 2/4/8 simulated GPUs, with batched SQ/CQ
//! draining versus the legacy per-entry path. The first entries of this
//! repository's performance trajectory; `perf_hotpath` emits the same
//! comparison as `BENCH_hotpath.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dfccl_bench::hotpath::{
    batched_config, scheduling_throughput, unbatched_config, HotpathWorkload,
};

fn bench_daemon_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("daemon_throughput");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for gpus in [2usize, 4, 8] {
        let workload = HotpathWorkload::standard(gpus);
        group.throughput(Throughput::Elements(workload.total_collectives()));
        group.bench_with_input(
            BenchmarkId::new("batched", format!("{gpus}gpus")),
            &workload,
            |b, &workload| {
                let config = batched_config();
                b.iter(|| scheduling_throughput(workload, config.clone()));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("unbatched", format!("{gpus}gpus")),
            &workload,
            |b, &workload| {
                let config = unbatched_config();
                b.iter(|| scheduling_throughput(workload, config.clone()));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_daemon_throughput);
criterion_main!(benches);
