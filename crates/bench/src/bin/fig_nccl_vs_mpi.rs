//! Regenerates the **Sec. 2.1** motivation numbers: NCCL-style on-GPU
//! all-reduce throughput vs. a CUDA-aware-MPI-style CPU-staged all-reduce.
//!
//! The paper's claim to reproduce: the on-GPU path overtakes the MPI path once
//! buffers exceed ~32 KB, with the advantage growing to several-fold (>6.7×
//! at the largest sizes).
//!
//! ```text
//! cargo run --release -p dfccl-bench --bin fig_nccl_vs_mpi -- [--min-bytes 1024] [--max-bytes 67108864]
//! ```

use dfccl_baseline::mpi_like::{nccl_style_all_reduce_time, MpiLikeModel};
use dfccl_bench::{arg_num, byte_sweep, fmt_bytes, print_row};
use dfccl_transport::{LinkClass, LinkModel};

fn main() {
    let min_bytes: usize = arg_num("--min-bytes", 1024);
    let max_bytes: usize = arg_num("--max-bytes", 64 << 20);
    let gpus: usize = arg_num("--gpus", 8);

    let mpi = MpiLikeModel::default();
    let link = LinkModel::table2_testbed();

    println!("Sec. 2.1 — modelled all-reduce throughput, on-GPU (NCCL-style) vs CPU-staged (MPI-style), {gpus} GPUs\n");
    let widths = [10, 18, 18, 12];
    print_row(
        &[
            "bytes".into(),
            "MPI GB/s".into(),
            "NCCL GB/s".into(),
            "NCCL/MPI".into(),
        ],
        &widths,
    );
    for bytes in byte_sweep(min_bytes, max_bytes) {
        let t_mpi = mpi.all_reduce_time(bytes, gpus, LinkClass::IntraPix);
        let t_nccl = nccl_style_all_reduce_time(&link, bytes, gpus, LinkClass::IntraPix);
        let bw = |t: std::time::Duration| bytes as f64 / t.as_secs_f64() / 1e9;
        print_row(
            &[
                fmt_bytes(bytes),
                format!("{:.3}", bw(t_mpi)),
                format!("{:.3}", bw(t_nccl)),
                format!("{:.2}x", t_mpi.as_secs_f64() / t_nccl.as_secs_f64()),
            ],
            &widths,
        );
    }
    println!("\nExpected shape: the ratio crosses 1 near tens of KB and grows to several-fold at MB sizes.");
}
