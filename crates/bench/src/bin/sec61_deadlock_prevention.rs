//! Regenerates the **Sec. 6.1** deadlock-prevention experiments.
//!
//! * Program 1: eight GPUs, each using a unique random launch order, invoke
//!   the same set of eight all-reduces (256 B – 1 MB) for N iterations.
//!   DFCCL completes every iteration (reporting preemptions per block); the
//!   NCCL-like baseline, issuing the same disordered orders on a single stream
//!   per GPU, deadlocks 100% of the time.
//! * Program 2: a `cudaDeviceSynchronize()` is inserted between the disordered
//!   all-reduces. DFCCL's daemon kernel quits voluntarily so the
//!   synchronizations drain and the all-reduces still complete; the baseline
//!   deadlocks.
//!
//! ```text
//! cargo run --release -p dfccl-bench --bin sec61_deadlock_prevention -- [--iterations 20] [--program 0|1|2]
//! ```

use std::sync::Arc;
use std::time::Duration;

use dfccl::{DfcclConfig, DfcclDomain};
use dfccl_baseline::{wait_all_or_deadlock, NcclDomain};
use dfccl_bench::arg_num;
use dfccl_collectives::{DataType, DeviceBuffer, ReduceOp};
use dfccl_transport::{LinkModel, Topology};
use gpu_sim::{GpuId, GpuSpec, StreamId};
use rand::seq::SliceRandom;
use rand::SeedableRng;

const GPUS: usize = 8;
/// Eight all-reduce buffer sizes from 256 B to 1 MB.
const SIZES: [usize; 8] = [
    256,
    1 << 10,
    4 << 10,
    16 << 10,
    64 << 10,
    128 << 10,
    512 << 10,
    1 << 20,
];

fn gpu_ids() -> Vec<GpuId> {
    (0..GPUS).map(GpuId).collect()
}

fn dfccl_program(iterations: usize, with_sync: bool) {
    let domain = DfcclDomain::new(
        Topology::single_server(),
        LinkModel::table2_compressed(200.0),
        GpuSpec::rtx_3090(),
        DfcclConfig::default(),
    );
    let ranks: Vec<Arc<dfccl::RankCtx>> = (0..GPUS)
        .map(|g| Arc::new(domain.init_rank(GpuId(g)).unwrap()))
        .collect();
    for (coll_id, size) in SIZES.iter().enumerate() {
        let count = size / 4;
        for rank in &ranks {
            rank.register_all_reduce(
                coll_id as u64,
                count,
                DataType::F32,
                ReduceOp::Sum,
                gpu_ids(),
                0,
            )
            .unwrap();
        }
    }
    let mut joins = Vec::new();
    for (g, rank) in ranks.iter().enumerate() {
        let rank = Arc::clone(rank);
        joins.push(std::thread::spawn(move || {
            let mut rng = rand::rngs::StdRng::seed_from_u64(g as u64 + 1);
            for _ in 0..iterations {
                // A unique random launch order per GPU per iteration.
                let mut order: Vec<u64> = (0..SIZES.len() as u64).collect();
                order.shuffle(&mut rng);
                let mut handles = Vec::new();
                for (k, coll_id) in order.iter().enumerate() {
                    let count = SIZES[*coll_id as usize] / 4;
                    let send = DeviceBuffer::from_f32(&vec![1.0; count]);
                    let recv = DeviceBuffer::zeroed(count * 4);
                    handles.push(rank.run_awaitable(*coll_id, send, recv).unwrap());
                    if with_sync && k == SIZES.len() / 2 {
                        // cudaDeviceSynchronize() between the collectives.
                        assert!(
                            rank.device_synchronize(Duration::from_secs(60)),
                            "device synchronization must complete under DFCCL"
                        );
                    }
                }
                for h in handles {
                    assert!(
                        h.wait_for_timeout(1, Duration::from_secs(120)),
                        "all-reduce timed out"
                    );
                }
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    println!(
        "  DFCCL: all {GPUS} GPUs completed {} all-reduces x {iterations} iterations, 0 deadlocks",
        SIZES.len()
    );
    let stats = ranks[0].stats();
    println!(
        "  GPU0: preemptions/block = {:.0}, voluntary quits = {}, daemon starts = {}, context saves = {}",
        ranks[0].preemptions_per_block(),
        stats.voluntary_quits,
        stats.daemon_starts,
        stats.context_saves,
    );
    for rank in ranks {
        rank.destroy();
    }
}

fn nccl_program(with_sync: bool) {
    let domain = NcclDomain::new(
        Topology::single_server(),
        LinkModel::table2_compressed(200.0),
        GpuSpec::rtx_3090(),
        32 * 1024,
    );
    let ranks: Vec<Arc<dfccl_baseline::NcclRank>> = (0..GPUS)
        .map(|g| Arc::new(domain.init_rank(GpuId(g)).unwrap()))
        .collect();
    for (coll_id, size) in SIZES.iter().enumerate() {
        for rank in &ranks {
            rank.register(
                coll_id as u64,
                dfccl_collectives::CollectiveDescriptor::all_reduce(
                    size / 4,
                    DataType::F32,
                    ReduceOp::Sum,
                    gpu_ids(),
                ),
            )
            .unwrap();
        }
    }
    let mut handles = Vec::new();
    let mut joins = Vec::new();
    for (g, rank) in ranks.iter().enumerate() {
        let rank = Arc::clone(rank);
        joins.push(std::thread::spawn(move || {
            let mut rng = rand::rngs::StdRng::seed_from_u64(g as u64 + 1);
            let mut order: Vec<u64> = (0..SIZES.len() as u64).collect();
            order.shuffle(&mut rng);
            let mut local = Vec::new();
            for (k, coll_id) in order.iter().enumerate() {
                let count = SIZES[*coll_id as usize] / 4;
                let send = DeviceBuffer::from_f32(&vec![1.0; count]);
                let recv = DeviceBuffer::zeroed(count * 4);
                // Single stream per GPU (the single-queue programming model).
                let stream = StreamId(1);
                local.push(
                    rank.launch_collective(*coll_id, stream, send, recv)
                        .unwrap(),
                );
                if with_sync && k == SIZES.len() / 2 {
                    let _ = rank.device_synchronize_timeout(Duration::from_millis(500));
                }
            }
            local
        }));
    }
    for j in joins {
        handles.extend(j.join().unwrap());
    }
    let outcome = wait_all_or_deadlock(&handles, &domain.engines(), Duration::from_secs(5));
    println!(
        "  NCCL-like baseline: {}",
        if outcome.is_deadlock() {
            "DEADLOCK (100% of attempts, as in the paper)"
        } else {
            "completed (unexpected)"
        }
    );
    domain.shutdown();
}

fn main() {
    let iterations: usize = arg_num("--iterations", 20);
    let program: usize = arg_num("--program", 0);

    if program == 0 || program == 1 {
        println!("Program 1 — disordered launch orders, no GPU synchronization");
        dfccl_program(iterations, false);
        nccl_program(false);
    }
    if program == 0 || program == 2 {
        println!(
            "\nProgram 2 — disordered launch orders with cudaDeviceSynchronize between collectives"
        );
        dfccl_program(iterations, true);
        nccl_program(true);
    }
    println!(
        "\nPaper reference: DFCCL never deadlocks (≈18,000 preemptions per block in program 1,"
    );
    println!(
        "≈360 voluntary quits per 200 iterations in program 2); NCCL deadlocks 100% of the time."
    );
}
