//! Regenerates **Fig. 11**: the effect of the adaptive spin-threshold policy.
//!
//! ResNet-50 data-parallel training on four GPUs is run twice with DFCCL:
//! once with the naive fixed spin threshold (10,000 polls, never adjusted) and
//! once with the adaptive stickiness policy (front of queue gets 100,000,
//! twenty-fold raise after a successful primitive). For each run the harness
//! prints, per collective id, the number of context switches (preemptions) and
//! the task-queue length observed when its SQE was fetched, plus the achieved
//! throughput. The paper's observation to reproduce: the naive policy shows
//! spiky context-switch counts / queue lengths and a throughput collapse, the
//! adaptive policy flattens both.
//!
//! ```text
//! cargo run --release -p dfccl-bench --bin fig11_adaptive_scheduling -- [--iterations 10]
//! ```

use std::sync::Arc;
use std::time::Instant;

use dfccl::{DfcclConfig, DfcclDomain, SpinPolicy};
use dfccl_bench::{arg_num, print_row};
use dfccl_collectives::DeviceBuffer;
use dfccl_transport::{LinkModel, Topology};
use dfccl_workloads::{data_parallel_plan, DnnModel};
use gpu_sim::{GpuId, GpuSpec};

const GPUS: usize = 4;

fn run(policy: SpinPolicy, iterations: usize, batch: usize) -> (f64, Vec<(u64, u64, u64)>) {
    let model = DnnModel::resnet50();
    let devices: Vec<GpuId> = (0..GPUS).map(GpuId).collect();
    let plan = data_parallel_plan(&model, &devices, batch);
    let domain = DfcclDomain::new(
        Topology::single_server(),
        LinkModel::table2_compressed(1_000.0),
        GpuSpec::rtx_3090(),
        DfcclConfig {
            spin: policy,
            ..DfcclConfig::default()
        },
    );
    let ranks: Vec<Arc<dfccl::RankCtx>> = devices
        .iter()
        .map(|&g| Arc::new(domain.init_rank(g).unwrap()))
        .collect();
    for pc in &plan.collectives {
        for rank in &ranks {
            rank.register(pc.coll_id, pc.desc.clone()).unwrap();
        }
    }
    let start = Instant::now();
    let mut joins = Vec::new();
    for (gpu_idx, rank) in ranks.iter().enumerate() {
        let rank = Arc::clone(rank);
        let plan = plan.clone();
        joins.push(std::thread::spawn(move || {
            for iter in 0..iterations {
                let mut handles = Vec::new();
                for (k, &ci) in plan.ready_order[gpu_idx].iter().enumerate() {
                    let pc = &plan.collectives[ci];
                    // GPU 2 lags slightly behind the others, the trigger of the
                    // Fig. 11 spike under the naive policy.
                    if gpu_idx == 2 && k == 0 && iter == 0 {
                        std::thread::sleep(std::time::Duration::from_millis(2));
                    }
                    let send = DeviceBuffer::zeroed(pc.desc.send_bytes(gpu_idx));
                    let recv = DeviceBuffer::zeroed(pc.desc.recv_bytes(gpu_idx));
                    handles.push(rank.run_awaitable(pc.coll_id, send, recv).unwrap());
                }
                for h in handles {
                    h.wait_for(1);
                }
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    let elapsed = start.elapsed();
    let samples = batch * GPUS * iterations;
    let throughput = samples as f64 / elapsed.as_secs_f64();

    let per_coll = ranks[0].per_collective_stats();
    let mut rows: Vec<(u64, u64, u64)> = per_coll
        .iter()
        .map(|(&id, s)| (id, s.preemptions, s.queue_len_at_fetch))
        .collect();
    rows.sort_unstable();
    for rank in ranks {
        rank.destroy();
    }
    (throughput, rows)
}

fn main() {
    let iterations: usize = arg_num("--iterations", 10);
    let batch: usize = arg_num("--batch", 96);

    println!(
        "Fig. 11 — impact of the adaptive spin-threshold policy (ResNet-50 DP, {GPUS} GPUs)\n"
    );
    let naive = run(SpinPolicy::naive_fixed(), iterations, batch);
    let adaptive = run(SpinPolicy::adaptive_default(), iterations, batch);

    println!(
        "throughput: naive fixed threshold = {:.1} samples/s, adaptive = {:.1} samples/s ({:.2}x)",
        naive.0,
        adaptive.0,
        adaptive.0 / naive.0.max(1e-9)
    );
    println!("\nper-collective statistics on GPU 0 (collective id, context switches, task-queue length at fetch):");
    let widths = [14, 22, 22, 22, 22];
    print_row(
        &[
            "collective".into(),
            "naive ctx switches".into(),
            "naive queue len".into(),
            "adaptive ctx switches".into(),
            "adaptive queue len".into(),
        ],
        &widths,
    );
    let adaptive_map: std::collections::HashMap<u64, (u64, u64)> =
        adaptive.1.iter().map(|&(id, p, q)| (id, (p, q))).collect();
    let mut naive_max = 0u64;
    let mut adaptive_max = 0u64;
    for (id, preempt, qlen) in &naive.1 {
        let (ap, aq) = adaptive_map.get(id).copied().unwrap_or((0, 0));
        naive_max = naive_max.max(*preempt);
        adaptive_max = adaptive_max.max(ap);
        print_row(
            &[
                id.to_string(),
                preempt.to_string(),
                qlen.to_string(),
                ap.to_string(),
                aq.to_string(),
            ],
            &widths,
        );
    }
    println!(
        "\npeak context switches per collective: naive = {naive_max}, adaptive = {adaptive_max}"
    );
    println!("Expected shape: the adaptive policy removes the naive policy's spikes and raises throughput.");
}
