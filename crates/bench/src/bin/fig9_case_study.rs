//! Regenerates **Fig. 9**: end-to-end latency vs. core execution time of an
//! all-gather with a small (4 KB) and a large (4 MB) buffer on eight GPUs,
//! DFCCL vs. the NCCL-like baseline.
//!
//! Core execution time is the part spent inside the collective itself
//! (preparing overheads + primitive execution for DFCCL; the kernel body for
//! NCCL); the difference to end-to-end latency is the I/O path (SQ/CQ and
//! callback for DFCCL, launch + completion observation for NCCL). The paper's
//! observation to reproduce: with a small buffer DFCCL's end-to-end latency is
//! a few µs *higher* than NCCL's even though its core execution is shorter;
//! with a large buffer the shorter core execution wins and DFCCL's end-to-end
//! latency drops below NCCL's.
//!
//! ```text
//! cargo run --release -p dfccl-bench --bin fig9_case_study -- [--iters 10] [--compression 100]
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use dfccl::{DfcclConfig, DfcclDomain};
use dfccl_baseline::NcclDomain;
use dfccl_bench::{arg_num, fmt_us, print_row};
use dfccl_collectives::{CollectiveDescriptor, DataType, DeviceBuffer};
use dfccl_transport::{LinkModel, Topology};
use gpu_sim::{GpuId, GpuSpec, StreamId};

const GPUS: usize = 8;

fn measure(bytes: usize, iters: usize, compression: f64) -> [(String, Duration, Duration); 2] {
    let devices: Vec<GpuId> = (0..GPUS).map(GpuId).collect();
    let count = bytes / 4;
    let desc = CollectiveDescriptor::all_gather(count, DataType::F32, devices.clone());
    let link = LinkModel::table2_compressed(compression);

    // --- DFCCL ---
    let domain = DfcclDomain::new(
        Topology::single_server(),
        link.clone(),
        GpuSpec::rtx_3090(),
        DfcclConfig::default(),
    );
    let ranks: Vec<Arc<dfccl::RankCtx>> = devices
        .iter()
        .map(|&g| Arc::new(domain.init_rank(g).unwrap()))
        .collect();
    for rank in &ranks {
        rank.register(1, desc.clone()).unwrap();
    }
    let start = Instant::now();
    for _ in 0..iters {
        let mut handles = Vec::new();
        for (i, rank) in ranks.iter().enumerate() {
            let send = DeviceBuffer::zeroed(desc.send_bytes(i));
            let recv = DeviceBuffer::zeroed(desc.recv_bytes(i));
            handles.push(rank.run_awaitable(1, send, recv).unwrap());
        }
        for h in handles {
            h.wait_for(1);
        }
    }
    let dfccl_e2e = start.elapsed() / iters as u32;
    // Core execution = preparing + primitive execution, from the daemon stats.
    let stats = ranks[0].stats();
    let per_collective_prims = stats.primitives_executed / stats.collectives_completed.max(1);
    let dfccl_core = stats.mean_preparing.unwrap_or_default()
        + stats.mean_primitive_exec.unwrap_or_default() * per_collective_prims as u32;
    for rank in &ranks {
        rank.destroy();
    }

    // --- NCCL-like baseline ---
    let ndomain = NcclDomain::new(
        Topology::single_server(),
        link,
        GpuSpec::rtx_3090(),
        32 * 1024,
    );
    let nranks: Vec<Arc<dfccl_baseline::NcclRank>> = devices
        .iter()
        .map(|&g| Arc::new(ndomain.init_rank(g).unwrap()))
        .collect();
    for rank in &nranks {
        rank.register(1, desc.clone()).unwrap();
    }
    let mut kernel_time = Duration::ZERO;
    let start = Instant::now();
    for _ in 0..iters {
        let mut handles = Vec::new();
        let launch = Instant::now();
        for (i, rank) in nranks.iter().enumerate() {
            let send = DeviceBuffer::zeroed(desc.send_bytes(i));
            let recv = DeviceBuffer::zeroed(desc.recv_bytes(i));
            handles.push(rank.launch_collective(1, StreamId(1), send, recv).unwrap());
        }
        for h in handles {
            h.wait_timeout(Duration::from_secs(60));
        }
        // Approximate the kernel body time as the time from launch to
        // completion minus the measured launch overhead of the engine.
        kernel_time += launch.elapsed();
    }
    let nccl_e2e = start.elapsed() / iters as u32;
    let nccl_core = (kernel_time / iters as u32).saturating_sub(Duration::from_micros(4));
    ndomain.shutdown();

    [
        ("NCCL".to_string(), nccl_e2e, nccl_core),
        ("DFCCL".to_string(), dfccl_e2e, dfccl_core),
    ]
}

fn main() {
    let iters: usize = arg_num("--iters", 10);
    let compression: f64 = arg_num("--compression", 100.0);
    println!("Fig. 9 — all-gather end-to-end latency vs. core execution time on {GPUS} GPUs");
    println!("(paper: 4 KB → 45.1/39.3 µs NCCL vs 49.4/38.9 µs DFCCL; 4 MB → 855.2/847.9 µs vs 851.8/828.0 µs)\n");
    let widths = [10, 10, 22, 22];
    print_row(
        &[
            "buffer".into(),
            "library".into(),
            "end-to-end latency µs".into(),
            "core execution µs".into(),
        ],
        &widths,
    );
    for (label, bytes) in [("4KB", 4 * 1024usize), ("4MB", 4 * 1024 * 1024)] {
        for (lib, e2e, core) in measure(bytes, iters, compression) {
            print_row(&[label.into(), lib, fmt_us(e2e), fmt_us(core)], &widths);
        }
    }
    println!("\nExpected shape: DFCCL's core execution is the shorter of the two at both sizes;");
    println!(
        "its I/O path makes it slightly slower end-to-end at 4 KB and slightly faster at 4 MB."
    );
}
