//! Regenerates **Fig. 8**: algorithm bandwidth and end-to-end latency of
//! collectives, DFCCL vs. the NCCL-like baseline, across buffer sizes.
//!
//! Three sub-experiments, as in the paper:
//!   (a) broadcast, 8 GPUs, single server;
//!   (b) all-reduce, 8 GPUs, single server;
//!   (c) all-reduce, 32 GPUs, four servers (pass `--gpus 32`).
//!
//! The absolute numbers come from the modelled link costs (compressed by
//! `--compression`); what must match the paper is the shape — flat
//! latency-dominated region for small buffers, bandwidth saturation for large
//! ones, and DFCCL tracking NCCL within a few percent (slightly worse latency
//! for small buffers, slightly better for large ones).
//!
//! ```text
//! cargo run --release -p dfccl-bench --bin fig8_bandwidth_latency -- \
//!     [--min-bytes 512] [--max-bytes 1048576] [--gpus 8] [--iters 3] [--compression 100]
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use dfccl::{DfcclConfig, DfcclDomain};
use dfccl_baseline::NcclDomain;
use dfccl_bench::{
    algo_bandwidth_gbps, arg_num, byte_sweep, fmt_bytes, fmt_us, modelled_completion_us, print_row,
};
use dfccl_collectives::{
    AlgorithmKind, AlgorithmSelector, CollectiveDescriptor, CollectiveKind, DataType, DeviceBuffer,
    ReduceOp,
};
use dfccl_transport::{LinkModel, Topology};
use gpu_sim::{GpuId, GpuSpec, StreamId};

fn topology_for(gpus: usize) -> Topology {
    match gpus {
        0..=8 => Topology::single_server(),
        9..=16 => Topology::two_servers(),
        _ => Topology::four_servers(),
    }
}

fn descriptor(kind: CollectiveKind, count: usize, devices: Vec<GpuId>) -> CollectiveDescriptor {
    match kind {
        CollectiveKind::Broadcast => {
            CollectiveDescriptor::broadcast(count, DataType::F32, 0, devices)
        }
        _ => CollectiveDescriptor::all_reduce(count, DataType::F32, ReduceOp::Sum, devices),
    }
}

/// One timed DFCCL collective across all ranks; returns wall time.
fn time_dfccl(
    ranks: &[Arc<dfccl::RankCtx>],
    desc: &CollectiveDescriptor,
    iters: usize,
) -> Duration {
    let coll_id = 1u64;
    let start = Instant::now();
    for _ in 0..iters {
        let mut handles = Vec::new();
        for (i, rank) in ranks.iter().enumerate() {
            let send = DeviceBuffer::zeroed(desc.send_bytes(i));
            let recv = DeviceBuffer::zeroed(desc.recv_bytes(i).max(4));
            handles.push(rank.run_awaitable(coll_id, send, recv).unwrap());
        }
        for h in handles {
            h.wait_for(1);
        }
    }
    start.elapsed() / iters as u32
}

/// One timed baseline collective across all ranks; returns wall time.
fn time_nccl(
    ranks: &[Arc<dfccl_baseline::NcclRank>],
    desc: &CollectiveDescriptor,
    iters: usize,
) -> Duration {
    let coll_id = 1u64;
    let start = Instant::now();
    for _ in 0..iters {
        let mut handles = Vec::new();
        for (i, rank) in ranks.iter().enumerate() {
            let send = DeviceBuffer::zeroed(desc.send_bytes(i));
            let recv = DeviceBuffer::zeroed(desc.recv_bytes(i).max(4));
            handles.push(
                rank.launch_collective(coll_id, StreamId(1), send, recv)
                    .unwrap(),
            );
        }
        for h in handles {
            h.wait_timeout(Duration::from_secs(120));
        }
    }
    start.elapsed() / iters as u32
}

fn run_panel(kind: CollectiveKind, gpus: usize, sizes: &[usize], iters: usize, compression: f64) {
    let devices: Vec<GpuId> = (0..gpus).map(GpuId).collect();
    let link = LinkModel::table2_compressed(compression);
    let topo = topology_for(gpus);

    println!(
        "\n=== {kind} on {gpus} GPUs ({} machines) ===",
        topo.machines().len()
    );
    let widths = [8, 14, 14, 14, 14];
    print_row(
        &[
            "bytes".into(),
            "NCCL bw GB/s".into(),
            "DFCCL bw GB/s".into(),
            "NCCL lat µs".into(),
            "DFCCL lat µs".into(),
        ],
        &widths,
    );

    for &bytes in sizes {
        let count = (bytes / 4).max(1);
        let desc = descriptor(kind, count, devices.clone());

        // DFCCL side.
        let domain = DfcclDomain::new(
            topo.clone(),
            link.clone(),
            GpuSpec::rtx_3090(),
            DfcclConfig::default(),
        );
        let ranks: Vec<Arc<dfccl::RankCtx>> = devices
            .iter()
            .map(|&g| Arc::new(domain.init_rank(g).unwrap()))
            .collect();
        for rank in &ranks {
            rank.register(1, desc.clone()).unwrap();
        }
        let t_dfccl = time_dfccl(&ranks, &desc, iters);
        for rank in &ranks {
            rank.destroy();
        }

        // NCCL-like side.
        let ndomain = NcclDomain::new(topo.clone(), link.clone(), GpuSpec::rtx_3090(), 32 * 1024);
        let nranks: Vec<Arc<dfccl_baseline::NcclRank>> = devices
            .iter()
            .map(|&g| Arc::new(ndomain.init_rank(g).unwrap()))
            .collect();
        for rank in &nranks {
            rank.register(1, desc.clone()).unwrap();
        }
        let t_nccl = time_nccl(&nranks, &desc, iters);
        ndomain.shutdown();

        print_row(
            &[
                fmt_bytes(bytes),
                format!("{:.3}", algo_bandwidth_gbps(bytes, t_nccl)),
                format!("{:.3}", algo_bandwidth_gbps(bytes, t_dfccl)),
                fmt_us(t_nccl),
                fmt_us(t_dfccl),
            ],
            &widths,
        );
    }
}

/// The ring-vs-tree-vs-hierarchical sweep: modelled completion times of the
/// all-reduce under each algorithm family (Table 2 link parameters, no time
/// compression), plus what the topology/payload selector would pick. The
/// estimates are deterministic — they show the algorithmic shape even on
/// hosts with fewer cores than simulated GPUs.
fn run_algorithm_panel(gpus: usize, sizes: &[usize]) {
    let topo = if gpus > 8 {
        Topology::two_eight_gpu_servers()
    } else {
        Topology::single_server()
    };
    let devices: Vec<GpuId> = (0..gpus).map(GpuId).collect();
    let selector = AlgorithmSelector::default();

    println!("\n=== all-reduce algorithm sweep on {gpus} GPUs (modelled µs) ===");
    let widths = [8, 12, 12, 14, 14];
    print_row(
        &["bytes", "ring µs", "tree µs", "hier µs", "selector"].map(String::from),
        &widths,
    );
    for &bytes in sizes {
        let count = (bytes / 4).max(1);
        let desc =
            CollectiveDescriptor::all_reduce(count, DataType::F32, ReduceOp::Sum, devices.clone());
        let fmt = |v: Option<f64>| v.map_or("-".to_string(), |us| format!("{us:.1}"));
        print_row(
            &[
                fmt_bytes(bytes),
                fmt(modelled_completion_us(&desc, AlgorithmKind::Ring, &topo)),
                fmt(modelled_completion_us(
                    &desc,
                    AlgorithmKind::DoubleBinaryTree,
                    &topo,
                )),
                fmt(modelled_completion_us(
                    &desc,
                    AlgorithmKind::Hierarchical,
                    &topo,
                )),
                selector.select(&desc, &topo).to_string(),
            ],
            &widths,
        );
    }
}

fn main() {
    let min_bytes: usize = arg_num("--min-bytes", 512);
    let max_bytes: usize = arg_num("--max-bytes", 1 << 20);
    let gpus: usize = arg_num("--gpus", 8);
    let iters: usize = arg_num("--iters", 3);
    let compression: f64 = arg_num("--compression", 100.0);
    let sizes = byte_sweep(min_bytes, max_bytes);

    println!("Fig. 8 — algorithm bandwidth and end-to-end latency vs. buffer size");
    println!("(link model compressed {compression}x; compare shapes, not absolute values)");

    // (a) broadcast on 8 GPUs, (b) all-reduce on 8 GPUs.
    run_panel(
        CollectiveKind::Broadcast,
        gpus.min(8),
        &sizes,
        iters,
        compression,
    );
    run_panel(
        CollectiveKind::AllReduce,
        gpus.min(8),
        &sizes,
        iters,
        compression,
    );
    // (c) all-reduce at scale (32 GPUs across four machines) when requested.
    if gpus > 8 {
        run_panel(CollectiveKind::AllReduce, gpus, &sizes, iters, compression);
    } else {
        println!("\n(pass --gpus 32 for the Fig. 8(c) four-server panel)");
    }

    // (d) the algorithm sweep: ring vs double binary tree vs hierarchical,
    // with the selection policy's choice per payload size.
    run_algorithm_panel(gpus.min(8), &sizes);
    if gpus > 8 {
        run_algorithm_panel(16, &sizes);
    }
}
