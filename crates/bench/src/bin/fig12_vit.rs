//! Regenerates **Fig. 12**: ViT training throughput under different
//! distributed training techniques, DFCCL vs. statically-sorted NCCL
//! (the OneFlow comparison of the paper).
//!
//! Four panels as in the paper: (a) data parallelism on 8 GPUs, (b) tensor
//! parallelism on 8 GPUs, (c) 3D hybrid on 16 GPUs with ViT-Base, (d) 3D
//! hybrid on 16 GPUs with ViT-Large. Expected shape: DFCCL within a few
//! percent of NCCL everywhere, ahead by up to ~8% for data parallelism.
//!
//! ```text
//! cargo run --release -p dfccl-bench --bin fig12_vit -- [--iterations 20] [--microbatch 128]
//! ```

use dfccl_baseline::StrategyKind;
use dfccl_bench::{arg_num, print_row};
use dfccl_workloads::{
    data_parallel_plan, tensor_parallel_plan, three_d_hybrid_plan, train, BackendKind, DnnModel,
    TrainerConfig, TrainingPlan,
};
use gpu_sim::GpuId;

fn panel(name: &str, plan: &TrainingPlan, global_batch: usize, iterations: usize) {
    let cfg = TrainerConfig {
        iterations,
        ..TrainerConfig::default()
    };
    let nccl = train(
        plan,
        BackendKind::NcclOrchestrated(StrategyKind::OneFlowStaticSort),
        &cfg,
        global_batch,
    );
    let dfccl = train(plan, BackendKind::Dfccl, &cfg, global_batch);

    let widths = [34, 14, 14, 10];
    print_row(
        &[name.into(), "NCCL".into(), "DFCCL".into(), "ratio".into()],
        &widths,
    );
    // Throughput curve samples (cumulative average), Fig. 12 style.
    let n_curve = nccl.cumulative_throughput();
    let d_curve = dfccl.cumulative_throughput();
    for frac in [0.25, 0.5, 1.0] {
        let idx = ((n_curve.len() as f64 * frac) as usize).saturating_sub(1);
        print_row(
            &[
                format!("  cumulative @ iter {}", idx + 1),
                format!("{:.1}", n_curve[idx]),
                format!("{:.1}", d_curve[idx]),
                format!("{:.2}x", d_curve[idx] / n_curve[idx].max(1e-9)),
            ],
            &widths,
        );
    }
    println!();
}

fn main() {
    let iterations: usize = arg_num("--iterations", 20);
    let microbatch: usize = arg_num("--microbatch", 128);
    let gpus8: Vec<GpuId> = (0..8).map(GpuId).collect();

    println!("Fig. 12 — ViT training throughput (samples/s), DFCCL vs statically-sorted NCCL\n");

    let base = DnnModel::vit_base();
    let large = DnnModel::vit_large();

    panel(
        "(a) ViT-Base, data parallelism, 8 GPUs",
        &data_parallel_plan(&base, &gpus8, microbatch),
        microbatch * 8,
        iterations,
    );
    panel(
        "(b) ViT-Base, tensor parallelism, 8 GPUs",
        &tensor_parallel_plan(&base, &gpus8, microbatch),
        microbatch,
        iterations,
    );
    panel(
        "(c) ViT-Base, 3D hybrid (2,2,4), 16 GPUs",
        &three_d_hybrid_plan(&base, 2, 2, 4, microbatch),
        microbatch * 2,
        iterations,
    );
    panel(
        "(d) ViT-Large, 3D hybrid (2,2,4), 16 GPUs",
        &three_d_hybrid_plan(&large, 2, 2, 4, microbatch),
        microbatch * 2,
        iterations,
    );
    println!(
        "Paper reference: DFCCL exceeds NCCL by up to 8.6% for DP and stays within ±3% elsewhere."
    );
}
