//! Regenerates **Fig. 10**: data-parallel ResNet-50 training throughput on
//! eight GPUs, DFCCL vs. NCCL orchestrated by OneFlow static sorting, KungFu
//! and Horovod, for the two per-GPU batch sizes of the paper's two servers
//! (48 on the 3080ti-server, 96 on the 3090-server).
//!
//! Expected shape (Fig. 10): DFCCL ≈ OneFlow static sorting (within ~1%), both
//! roughly 20% above KungFu and Horovod.
//!
//! ```text
//! cargo run --release -p dfccl-bench --bin fig10_resnet_dp -- [--iterations 20] [--gpus 8]
//! ```

use dfccl_baseline::StrategyKind;
use dfccl_bench::{arg_num, print_row};
use dfccl_workloads::{data_parallel_plan, train, BackendKind, DnnModel, TrainerConfig};
use gpu_sim::GpuId;

fn main() {
    let iterations: usize = arg_num("--iterations", 20);
    let gpus: usize = arg_num("--gpus", 8);
    let devices: Vec<GpuId> = (0..gpus).map(GpuId).collect();
    let model = DnnModel::resnet50();

    println!("Fig. 10 — ResNet-50 data-parallel training throughput (samples/s), {gpus} GPUs, {iterations} iterations");
    println!("(paper, 200 iterations: 3080ti-server 442.7/447.9/372.1/366.2; 3090-server 507.7/508.4/419.1/415.6)\n");

    let widths = [24, 16, 14, 14, 14, 14];
    print_row(
        &[
            "server (per-GPU batch)".into(),
            "metric".into(),
            "OneFlow".into(),
            "DFCCL".into(),
            "KungFu".into(),
            "Horovod".into(),
        ],
        &widths,
    );

    for (server, batch) in [("3080ti-server", 48usize), ("3090-server", 96usize)] {
        let plan = data_parallel_plan(&model, &devices, batch);
        let global_batch = batch * gpus;
        let cfg = TrainerConfig {
            iterations,
            ..TrainerConfig::default()
        };
        let backends = [
            BackendKind::NcclOrchestrated(StrategyKind::OneFlowStaticSort),
            BackendKind::Dfccl,
            BackendKind::NcclOrchestrated(StrategyKind::KungFu),
            BackendKind::NcclOrchestrated(StrategyKind::Horovod),
        ];
        let mut throughputs = Vec::new();
        for backend in backends {
            let report = train(&plan, backend, &cfg, global_batch);
            throughputs.push(report.throughput());
        }
        print_row(
            &[
                format!("{server} (batch {batch})"),
                "samples/s".into(),
                format!("{:.1}", throughputs[0]),
                format!("{:.1}", throughputs[1]),
                format!("{:.1}", throughputs[2]),
                format!("{:.1}", throughputs[3]),
            ],
            &widths,
        );
        print_row(
            &[
                "".into(),
                "vs OneFlow".into(),
                "1.00x".into(),
                format!("{:.2}x", throughputs[1] / throughputs[0]),
                format!("{:.2}x", throughputs[2] / throughputs[0]),
                format!("{:.2}x", throughputs[3] / throughputs[0]),
            ],
            &widths,
        );
    }
}
