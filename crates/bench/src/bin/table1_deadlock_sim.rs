//! Regenerates **Table 1**: deadlock ratios of the Sec. 2.4 simulator for the
//! single-queue and synchronization decision models under the 3D and free
//! grouping policies.
//!
//! The paper uses 32,000 rounds per row; by default this harness scales the
//! round count down (and skips the two 3,072-GPU rows unless `--full` is
//! passed) so it finishes in minutes on a laptop. Usage:
//!
//! ```text
//! cargo run --release -p dfccl-bench --bin table1_deadlock_sim -- [--rounds 2000] [--full] [--seed 1]
//! ```

use deadlock_sim::{estimate_deadlock_ratio, table1_rows};
use dfccl_bench::{arg_num, print_row};

fn main() {
    let base_rounds: usize = arg_num("--rounds", 2_000);
    let seed: u64 = arg_num("--seed", 1);
    let full = std::env::args().any(|a| a == "--full");

    println!("Table 1 — deadlock ratios from the Sec. 2.4 simulator");
    println!(
        "(paper values measured over 32,000 rounds; this run uses ~{base_rounds} rounds per row)\n"
    );
    let widths = [58, 10, 12, 12];
    print_row(
        &[
            "configuration".into(),
            "rounds".into(),
            "paper".into(),
            "measured".into(),
        ],
        &widths,
    );

    for row in table1_rows() {
        if !full && row.relative_cost > 10.0 {
            print_row(
                &[
                    row.label.into(),
                    "-".into(),
                    format!("{:.2}%", row.paper_ratio * 100.0),
                    "skipped (pass --full)".into(),
                ],
                &widths,
            );
            continue;
        }
        let rounds = ((base_rounds as f64 / row.relative_cost).ceil() as usize).clamp(50, 32_000);
        let ratio = estimate_deadlock_ratio(&row.config, rounds, seed);
        print_row(
            &[
                row.label.into(),
                rounds.to_string(),
                format!("{:.2}%", row.paper_ratio * 100.0),
                format!("{:.2}%", ratio * 100.0),
            ],
            &widths,
        );
    }
    println!("\nExpected shape: ratios far above the disorder/sync probabilities; the sync model");
    println!("is more sensitive to the sync probability than to disorder; ratios grow with scale,");
    println!("collective count and group overlap (Sec. 2.4.3 conclusions ❶-❺).");
}
