//! `perf_hotpath` — the scheduling-throughput trajectory benchmark.
//!
//! Measures domain-wide collectives/sec through the full DFCCL hot path
//! (invoker → SQ → daemon kernel → CQ → poller → callback) for 2/4/8
//! simulated GPUs, comparing batched SQ/CQ draining against the legacy
//! per-entry path, plus the Fig. 7(c) per-variant CQE-publication costs.
//! Results are printed as a table and written to `BENCH_hotpath.json` so
//! every future PR can track the trajectory.
//!
//! Usage:
//! ```text
//! perf_hotpath [--repeats 3] [--collectives 16] [--rounds 4] \
//!              [--replay-collectives 4096] [--replay-rounds 16] [--out BENCH_hotpath.json]
//! ```

use std::fmt::Write as _;

use dfccl::CqVariant;
use dfccl_bench::hotpath::{
    batched_config, best_multi_tenant_of, best_of, best_recovery_of, best_replay_of,
    cq_push_batched_cost_us, cq_push_cost_us, dispatch_cost, registration_throughput,
    spmd_hit_registration_throughput, unbatched_config, HotpathWorkload,
};
use dfccl_bench::{arg_num, arg_value, print_row};

const GPU_COUNTS: [usize; 3] = [2, 4, 8];
const REGISTRATION_GPU_COUNTS: [usize; 2] = [4, 8];
const REPLAY_GPU_COUNTS: [usize; 2] = [4, 8];

struct ModeResult {
    gpus: usize,
    batched: f64,
    unbatched: f64,
}

fn main() {
    let repeats: usize = arg_num("--repeats", 3).max(1);
    let collectives: u64 = arg_num("--collectives", 16).max(1);
    let rounds: u64 = arg_num("--rounds", 8).max(1);
    let out_path = arg_value("--out").unwrap_or_else(|| "BENCH_hotpath.json".to_string());

    println!("# perf_hotpath — daemon scheduling throughput (collectives/sec)");
    println!(
        "# workload: {collectives} collectives x {rounds} rounds of tiny all-reduces, best of {repeats}"
    );
    let widths = [6, 14, 14, 9];
    print_row(
        &["gpus", "batched", "unbatched", "speedup"].map(String::from),
        &widths,
    );

    let mut results = Vec::new();
    for gpus in GPU_COUNTS {
        let workload = HotpathWorkload {
            gpus,
            collectives,
            rounds,
            count: 16,
        };
        let batched = best_of(repeats, workload, &batched_config()).collectives_per_sec;
        let unbatched = best_of(repeats, workload, &unbatched_config()).collectives_per_sec;
        print_row(
            &[
                format!("{gpus}"),
                format!("{batched:.0}"),
                format!("{unbatched:.0}"),
                format!("{:.2}x", batched / unbatched),
            ],
            &widths,
        );
        results.push(ModeResult {
            gpus,
            batched,
            unbatched,
        });
    }

    // Fig. 7(c): per-variant CQE publication cost under the modelled
    // host-memory costs, unbatched and batched.
    println!();
    println!("# CQE publication cost (µs/CQE, modelled host-memory costs)");
    let cost_widths = [16, 12, 20];
    print_row(
        &["variant", "per-entry", "batched(16)/entry"].map(String::from),
        &cost_widths,
    );
    let variants = [
        ("vanilla_ring", CqVariant::VanillaRing),
        ("optimized_ring", CqVariant::OptimizedRing),
        ("optimized_slot", CqVariant::OptimizedSlot),
    ];
    let mut variant_costs = Vec::new();
    for (name, variant) in variants {
        let single = cq_push_cost_us(variant, 200);
        let batched = cq_push_batched_cost_us(variant, 16, 50);
        print_row(
            &[
                name.to_string(),
                format!("{single:.2}"),
                format!("{batched:.2}"),
            ],
            &cost_widths,
        );
        variant_costs.push((name, single, batched));
    }

    // Registration panel: cold vs plan-cache-hit registrations/sec, plus the
    // steady-state per-poll dispatch cost of the two execution paths.
    println!();
    println!("# registration throughput (registrations/sec) and per-poll dispatch cost (ns)");
    let reg_widths = [6, 12, 14, 9, 13, 11];
    print_row(
        &[
            "gpus",
            "cold",
            "cache-hit",
            "speedup",
            "interp ns",
            "compiled ns",
        ]
        .map(String::from),
        &reg_widths,
    );
    let registrations: u64 = arg_num("--registrations", 256).max(1);
    let mut reg_results = Vec::new();
    for gpus in REGISTRATION_GPU_COUNTS {
        // Best-of like the throughput panels: registration is pure CPU work,
        // but shared runners still jitter.
        let reg = (0..repeats)
            .map(|_| registration_throughput(gpus, registrations))
            .max_by(|a, b| a.speedup().partial_cmp(&b.speedup()).expect("finite"))
            .expect("at least one repeat");
        let disp = (0..repeats)
            .map(|_| dispatch_cost(gpus, 4))
            .min_by(|a, b| a.compiled_ns.partial_cmp(&b.compiled_ns).expect("finite"))
            .expect("at least one repeat");
        print_row(
            &[
                format!("{gpus}"),
                format!("{:.0}", reg.cold_per_sec),
                format!("{:.0}", reg.hit_per_sec),
                format!("{:.2}x", reg.speedup()),
                format!("{:.1}", disp.interpreted_ns),
                format!("{:.1}", disp.compiled_ns),
            ],
            &reg_widths,
        );
        reg_results.push((gpus, reg, disp));
    }
    let hit_speedup_ok = reg_results.iter().all(|(_, r, _)| r.speedup() >= 5.0);
    let dispatch_ok = reg_results
        .iter()
        .all(|(_, _, d)| d.compiled_ns <= d.interpreted_ns);
    println!();
    println!("plan-cache-hit speedup >= 5x at every scale: {hit_speedup_ok}");
    println!("compiled dispatch <= interpreted at every scale: {dispatch_ok}");

    // Graph-replay panel: a captured iteration of tiny all-reduces replayed as
    // one SQE per round, compared against the domain-wide cache-hit
    // registration rate — the fastest way to make the same collectives
    // runnable without a graph is re-registering them on every rank, and both
    // wall clocks then cover all ranks' work. Plus the fusion win at identical
    // total payload.
    println!();
    println!("# graph replay (recorded collectives/sec, wall clock spans all ranks)");
    let replay_collectives: u64 = arg_num("--replay-collectives", 16384).max(1);
    let replay_count: usize = arg_num("--replay-count", 4).max(1);
    let replay_rounds: u64 = arg_num("--replay-rounds", 16).max(1);
    let replay_widths = [6, 8, 14, 16, 14];
    print_row(
        &[
            "gpus",
            "nodes",
            "replayed/sec",
            "spmd-hit reg/s",
            "replay ratio",
        ]
        .map(String::from),
        &replay_widths,
    );
    let mut replay_results = Vec::new();
    for gpus in REPLAY_GPU_COUNTS {
        let replay = best_replay_of(
            repeats,
            gpus,
            replay_collectives,
            replay_count,
            replay_rounds,
            true,
        );
        let spmd_hit = (0..repeats)
            .map(|_| spmd_hit_registration_throughput(gpus, registrations))
            .fold(f64::NEG_INFINITY, f64::max);
        let ratio = replay.replayed_per_sec / spmd_hit;
        print_row(
            &[
                format!("{gpus}"),
                format!("{}", replay.graph_nodes),
                format!("{:.0}", replay.replayed_per_sec),
                format!("{spmd_hit:.0}"),
                format!("{ratio:.2}x"),
            ],
            &replay_widths,
        );
        replay_results.push((gpus, replay, spmd_hit, ratio));
    }

    // Fusion comparison: same recorded step (count × collectives), fused into
    // one node vs. kept as one node per collective (`fusion_threshold_bytes =
    // 0`). A smaller step than the replay arm keeps the unfused arm — which
    // pays full per-collective scheduling — from dominating the wall-clock.
    let fusion_collectives: u64 = arg_num("--fusion-collectives", 256).max(1);
    let fusion_rounds: u64 = arg_num("--fusion-rounds", 4).max(1);
    let fused = best_replay_of(
        repeats,
        8,
        fusion_collectives,
        replay_count,
        fusion_rounds,
        true,
    );
    let unfused = best_replay_of(
        repeats,
        8,
        fusion_collectives,
        replay_count,
        fusion_rounds,
        false,
    );
    let fusion_speedup = fused.replayed_per_sec / unfused.replayed_per_sec;
    println!();
    println!(
        "fused {} all-reduces -> {} node(s): {:.0}/sec vs unfused {:.0}/sec = {:.2}x",
        fusion_collectives,
        fused.graph_nodes,
        fused.replayed_per_sec,
        unfused.replayed_per_sec,
        fusion_speedup
    );
    let replay_ratio_at_8 = replay_results
        .iter()
        .find(|(g, _, _, _)| *g == 8)
        .map(|(_, _, _, ratio)| *ratio)
        .unwrap_or(f64::NAN);
    let replay_ok = replay_ratio_at_8 >= 3.0;
    let fusion_ok = fusion_speedup >= 2.0;
    println!("replay >= 3x cache-hit registration at 8 GPUs: {replay_ok}");
    println!("fused >= 2x unfused at same total payload: {fusion_ok}");

    // Telemetry panel: the hot path with the default event ring (counters +
    // bounded event stream) vs. events disabled (`telemetry_events = 0`,
    // counters only). The instrumentation is accepted if it costs at most 10%
    // of the uninstrumented scheduling rate at 4 GPUs.
    let telemetry_workload = HotpathWorkload {
        gpus: 4,
        collectives,
        rounds,
        count: 16,
    };
    let instrumented = best_of(repeats, telemetry_workload, &batched_config()).collectives_per_sec;
    let uninstrumented = best_of(
        repeats,
        telemetry_workload,
        &batched_config().with_telemetry(0),
    )
    .collectives_per_sec;
    // Clamp at zero: on noisy runners the instrumented arm can win the
    // best-of lottery outright, which is a 0% overhead, not a negative one.
    let telemetry_overhead_pct =
        ((uninstrumented - instrumented) / uninstrumented * 100.0).max(0.0);
    let telemetry_ok = telemetry_overhead_pct <= 10.0;
    println!();
    println!("# telemetry instrumentation overhead (4 GPUs, event ring vs counters-only)");
    println!(
        "instrumented {instrumented:.0}/sec vs uninstrumented {uninstrumented:.0}/sec = {telemetry_overhead_pct:.1}% overhead (bar <= 10%): {telemetry_ok}"
    );

    // Recovery panel: the same fault-free workload run plain vs under a
    // RecoveryCoordinator's supervision (watchdog progress probe + stall
    // bookkeeping). Standing recovery coverage is accepted if it costs at
    // most 5% of the unsupervised scheduling rate at 4 GPUs.
    let recovery_workload = HotpathWorkload {
        gpus: 4,
        collectives,
        rounds,
        count: 16,
    };
    let supervised =
        best_recovery_of(repeats, recovery_workload, &batched_config(), true).collectives_per_sec;
    let unsupervised =
        best_recovery_of(repeats, recovery_workload, &batched_config(), false).collectives_per_sec;
    // Clamp at zero like the telemetry panel: on noisy runners the supervised
    // arm can win the best-of lottery outright.
    let recovery_overhead_pct = ((unsupervised - supervised) / unsupervised * 100.0).max(0.0);
    let recovery_ok = recovery_overhead_pct <= 5.0;
    println!();
    println!("# recovery supervision overhead (4 GPUs, fault-free, watchdog + coordinator armed)");
    println!(
        "supervised {supervised:.0}/sec vs unsupervised {unsupervised:.0}/sec = {recovery_overhead_pct:.1}% overhead (bar <= 5%): {recovery_ok}"
    );

    // Tenancy panel: the staged service-mode scheduler must not tax the
    // single-tenant hot path. Three arms at 4 GPUs: the pre-refactor flat
    // scheduling path (`legacy_flat_scheduling`), the staged pipeline with
    // one (default) tenant — which takes the single-active-lane passthrough —
    // and a 4-tenant weighted-fair mix of the same total workload. Gate:
    // staged single-tenant throughput within 5% of the flat path.
    let tenancy_workload = HotpathWorkload {
        gpus: 4,
        collectives,
        rounds,
        count: 16,
    };
    let tenancy_tenants = 4usize;
    let flat_path = best_of(
        repeats,
        tenancy_workload,
        &batched_config().legacy_flat_scheduling(),
    )
    .collectives_per_sec;
    let staged_path = best_of(repeats, tenancy_workload, &batched_config()).collectives_per_sec;
    let multi_tenant = best_multi_tenant_of(
        repeats,
        tenancy_workload,
        &batched_config(),
        tenancy_tenants,
    )
    .collectives_per_sec;
    let staged_over_flat = staged_path / flat_path;
    let tenancy_ok = staged_over_flat >= 0.95;
    println!();
    println!("# tenancy panel (4 GPUs): staged service-mode daemon vs pre-refactor flat path");
    println!(
        "flat {flat_path:.0}/sec vs staged {staged_path:.0}/sec = {staged_over_flat:.3}x \
         (bar >= 0.95): {tenancy_ok}; {tenancy_tenants}-tenant weighted-fair {multi_tenant:.0}/sec"
    );

    let speedup_at_4 = results
        .iter()
        .find(|r| r.gpus == 4)
        .map(|r| r.batched / r.unbatched)
        .unwrap_or(f64::NAN);
    let ordering_ok =
        variant_costs[0].1 > variant_costs[1].1 && variant_costs[1].1 > variant_costs[2].1;
    println!();
    println!("speedup at 4 GPUs: {speedup_at_4:.2}x (target >= 1.5x)");
    println!(
        "Fig. 7(c) ordering (slot < optimized ring < vanilla ring): {}",
        if ordering_ok { "preserved" } else { "VIOLATED" }
    );

    // Hand-rolled JSON (no serialization dependency in this environment).
    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"hotpath\",\n");
    let _ = writeln!(
        json,
        "  \"workload\": {{\"collectives\": {collectives}, \"rounds\": {rounds}, \"count\": 16, \"repeats\": {repeats}}},"
    );
    json.push_str("  \"throughput\": [\n");
    for (i, r) in results.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"gpus\": {}, \"batched_collectives_per_sec\": {:.1}, \"unbatched_collectives_per_sec\": {:.1}, \"speedup\": {:.3}}}",
            r.gpus,
            r.batched,
            r.unbatched,
            r.batched / r.unbatched
        );
        json.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"speedup_at_4_gpus\": {speedup_at_4:.3},");
    json.push_str("  \"cq_variant_cost_us\": {\n");
    for (i, (name, single, batched)) in variant_costs.iter().enumerate() {
        let _ = write!(
            json,
            "    \"{name}\": {{\"per_entry\": {single:.3}, \"batched16_per_entry\": {batched:.3}}}"
        );
        json.push_str(if i + 1 < variant_costs.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("  },\n");
    json.push_str("  \"registration\": {\n");
    let _ = writeln!(json, "    \"registrations\": {registrations},");
    json.push_str("    \"throughput\": [\n");
    for (i, (gpus, reg, _)) in reg_results.iter().enumerate() {
        let _ = write!(
            json,
            "      {{\"gpus\": {}, \"cold_per_sec\": {:.1}, \"cache_hit_per_sec\": {:.1}, \"speedup\": {:.3}, \"cache\": {{\"hits\": {}, \"misses\": {}, \"size\": {}}}}}",
            gpus,
            reg.cold_per_sec,
            reg.hit_per_sec,
            reg.speedup(),
            reg.cache.hits,
            reg.cache.misses,
            reg.cache.size
        );
        json.push_str(if i + 1 < reg_results.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("    ],\n");
    json.push_str("    \"dispatch_ns_per_poll\": [\n");
    for (i, (gpus, _, disp)) in reg_results.iter().enumerate() {
        let _ = write!(
            json,
            "      {{\"gpus\": {}, \"interpreted\": {:.2}, \"compiled\": {:.2}}}",
            gpus, disp.interpreted_ns, disp.compiled_ns
        );
        json.push_str(if i + 1 < reg_results.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("    ],\n");
    let _ = writeln!(json, "    \"hit_speedup_at_least_5x\": {hit_speedup_ok},");
    let _ = writeln!(json, "    \"compiled_le_interpreted\": {dispatch_ok}");
    json.push_str("  },\n");
    json.push_str("  \"graph_replay\": {\n");
    let _ = writeln!(
        json,
        "    \"collectives\": {replay_collectives}, \"count\": {replay_count}, \"rounds\": {replay_rounds},"
    );
    json.push_str("    \"throughput\": [\n");
    for (i, (gpus, replay, spmd_hit, ratio)) in replay_results.iter().enumerate() {
        let _ = write!(
            json,
            "      {{\"gpus\": {}, \"replayed_per_sec\": {:.1}, \"graph_nodes\": {}, \"fused_nodes\": {}, \"spmd_cache_hit_per_sec\": {:.1}, \"ratio_vs_cache_hit_registration\": {:.3}}}",
            gpus, replay.replayed_per_sec, replay.graph_nodes, replay.fused_nodes, spmd_hit, ratio
        );
        json.push_str(if i + 1 < replay_results.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("    ],\n");
    let _ = writeln!(
        json,
        "    \"fusion\": {{\"collectives\": {}, \"rounds\": {}, \"fused_per_sec\": {:.1}, \"unfused_per_sec\": {:.1}, \"speedup\": {:.3}}},",
        fusion_collectives,
        fusion_rounds,
        fused.replayed_per_sec,
        unfused.replayed_per_sec,
        fusion_speedup
    );
    let _ = writeln!(
        json,
        "    \"replay_ge_3x_cache_hit_at_8gpus\": {replay_ok},"
    );
    let _ = writeln!(json, "    \"fused_ge_2x_unfused\": {fusion_ok}");
    json.push_str("  },\n");
    let _ = writeln!(
        json,
        "  \"telemetry\": {{\"gpus\": 4, \"instrumented_per_sec\": {instrumented:.1}, \"uninstrumented_per_sec\": {uninstrumented:.1}, \"overhead_pct\": {telemetry_overhead_pct:.2}, \"overhead_le_10pct\": {telemetry_ok}}},"
    );
    let _ = writeln!(
        json,
        "  \"recovery\": {{\"gpus\": 4, \"supervised_per_sec\": {supervised:.1}, \"unsupervised_per_sec\": {unsupervised:.1}, \"overhead_pct\": {recovery_overhead_pct:.2}, \"overhead_le_5pct\": {recovery_ok}}},"
    );
    let _ = writeln!(
        json,
        "  \"tenancy\": {{\"panel\": \"tenancy\", \"gpus\": 4, \"tenants\": {tenancy_tenants}, \"flat_per_sec\": {flat_path:.1}, \"staged_per_sec\": {staged_path:.1}, \"staged_over_flat\": {staged_over_flat:.3}, \"multi_tenant_per_sec\": {multi_tenant:.1}, \"staged_within_5pct\": {tenancy_ok}}},"
    );
    let _ = writeln!(json, "  \"fig7c_ordering_preserved\": {ordering_ok}");
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write benchmark JSON");
    println!("wrote {out_path}");

    if speedup_at_4 < 1.5 {
        eprintln!("WARNING: batched speedup at 4 GPUs below the 1.5x acceptance bar");
        std::process::exit(2);
    }
    if !ordering_ok {
        eprintln!("WARNING: CQ variant cost ordering violated");
        std::process::exit(3);
    }
    if !hit_speedup_ok {
        eprintln!("WARNING: plan-cache-hit registration speedup below the 5x acceptance bar");
        std::process::exit(2);
    }
    if !dispatch_ok {
        eprintln!("WARNING: compiled dispatch costs more per poll than interpreted");
        std::process::exit(2);
    }
    if !replay_ok {
        eprintln!("WARNING: graph replay below 3x cache-hit registration at 8 GPUs");
        std::process::exit(2);
    }
    if !fusion_ok {
        eprintln!("WARNING: fused small-all-reduce throughput below 2x unfused");
        std::process::exit(2);
    }
    if !telemetry_ok {
        eprintln!("WARNING: telemetry instrumentation overhead above the 10% acceptance bar");
        std::process::exit(2);
    }
    if !recovery_ok {
        eprintln!("WARNING: recovery supervision overhead above the 5% acceptance bar");
        std::process::exit(2);
    }
    if !tenancy_ok {
        eprintln!("WARNING: staged service-mode daemon regresses single-tenant throughput past 5%");
        std::process::exit(2);
    }
}
