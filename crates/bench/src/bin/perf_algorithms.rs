//! `perf_algorithms` — the collective-algorithm trajectory benchmark.
//!
//! Three measurements, written to `BENCH_algorithms.json`:
//!
//! 1. **Scheduling throughput per algorithm** — domain-wide collectives/sec
//!    through the full DFCCL hot path with the algorithm forced to ring,
//!    double binary tree, or hierarchical, at 4 and 8 simulated GPUs
//!    (hierarchical runs over a two-node split of the same GPU count).
//! 2. **Modelled crossover sweep** — the deterministic plan-cost estimate
//!    (Table 2 link parameters) of ring vs tree vs hierarchical all-reduce
//!    across payload sizes: the Fig. 8-style shape with the tree winning the
//!    latency-bound small end and ring/hierarchical the bandwidth-bound
//!    large end, independent of how many cores the host has.
//! 3. **Channel-striping sweep** — the modelled large-payload ring
//!    all-reduce at K ∈ {1, 2, 4} channels per edge (4 and 8 GPUs): each
//!    channel is an independent modelled lane, so K = 4 must deliver at
//!    least the K = 1 throughput (the panel's shape gate).
//!
//! Usage:
//! ```text
//! perf_algorithms [--repeats 3] [--collectives 8] [--rounds 4] [--out BENCH_algorithms.json]
//! ```

use std::fmt::Write as _;

use dfccl_bench::hotpath::{batched_config, best_of_over, HotpathWorkload};
use dfccl_bench::{
    arg_num, arg_value, byte_sweep, fmt_bytes, modelled_completion_us,
    modelled_completion_us_striped, print_row, upsert_json_key,
};
use dfccl_collectives::{AlgorithmKind, CollectiveDescriptor, DataType, ReduceOp};
use dfccl_transport::Topology;
use gpu_sim::GpuId;

const GPU_COUNTS: [usize; 2] = [4, 8];
const CHANNEL_COUNTS: [usize; 3] = [1, 2, 4];
/// Payload of the channels sweep: large enough to be bandwidth-bound.
const CHANNELS_SWEEP_BYTES: usize = 1 << 20;

fn estimate_us(desc: &CollectiveDescriptor, algo: AlgorithmKind, topo: &Topology) -> f64 {
    modelled_completion_us(desc, algo, topo).expect("algorithm supports the sweep descriptor")
}

fn main() {
    let repeats: usize = arg_num("--repeats", 3).max(1);
    let collectives: u64 = arg_num("--collectives", 8).max(1);
    let rounds: u64 = arg_num("--rounds", 4).max(1);
    let out_path = arg_value("--out").unwrap_or_else(|| "BENCH_algorithms.json".to_string());

    println!("# perf_algorithms — collectives/sec per algorithm (full DFCCL hot path)");
    println!(
        "# workload: {collectives} collectives x {rounds} rounds of tiny all-reduces, best of {repeats}"
    );
    let widths = [6, 12, 12, 14];
    print_row(
        &["gpus", "ring", "tree", "hierarchical"].map(String::from),
        &widths,
    );

    let algorithms = [
        AlgorithmKind::Ring,
        AlgorithmKind::DoubleBinaryTree,
        AlgorithmKind::Hierarchical,
    ];
    let mut throughput: Vec<(usize, Vec<f64>)> = Vec::new();
    for gpus in GPU_COUNTS {
        let workload = HotpathWorkload {
            gpus,
            collectives,
            rounds,
            count: 16,
        };
        let mut row = Vec::new();
        for algo in algorithms {
            // Hierarchical needs a multi-node topology; split the same GPUs
            // over two nodes. Ring/tree run on the flat single-node layout.
            let topo = match algo {
                AlgorithmKind::Hierarchical => Topology::uniform_cluster(2, gpus / 2),
                _ => Topology::flat(gpus),
            };
            let config = batched_config().with_algorithm(algo);
            let r = best_of_over(repeats, workload, &config, &topo);
            row.push(r.collectives_per_sec);
        }
        print_row(
            &[
                format!("{gpus}"),
                format!("{:.0}", row[0]),
                format!("{:.0}", row[1]),
                format!("{:.0}", row[2]),
            ],
            &widths,
        );
        throughput.push((gpus, row));
    }

    // Modelled crossover sweep (deterministic, core-count independent).
    println!();
    println!("# modelled all-reduce completion (µs, Table 2 link params, 8 GPUs / 2x4 for hier)");
    let sweep_widths = [8, 12, 12, 14];
    print_row(
        &["bytes", "ring µs", "tree µs", "hier µs"].map(String::from),
        &sweep_widths,
    );
    let flat8 = Topology::flat(8);
    let two_by_four = Topology::uniform_cluster(2, 4);
    let sizes = byte_sweep(256, 1 << 20);
    let mut sweep: Vec<(usize, f64, f64, f64)> = Vec::new();
    for &bytes in &sizes {
        let count = (bytes / 4).max(1);
        let desc = CollectiveDescriptor::all_reduce(
            count,
            DataType::F32,
            ReduceOp::Sum,
            (0..8).map(GpuId).collect(),
        );
        let ring = estimate_us(&desc, AlgorithmKind::Ring, &flat8);
        let tree = estimate_us(&desc, AlgorithmKind::DoubleBinaryTree, &flat8);
        let hier = estimate_us(&desc, AlgorithmKind::Hierarchical, &two_by_four);
        print_row(
            &[
                fmt_bytes(bytes),
                format!("{ring:.1}"),
                format!("{tree:.1}"),
                format!("{hier:.1}"),
            ],
            &sweep_widths,
        );
        sweep.push((bytes, ring, tree, hier));
    }

    let (_, small_ring, small_tree, _) = sweep.first().copied().expect("sweep non-empty");
    let (_, large_ring, large_tree, _) = sweep.last().copied().expect("sweep non-empty");
    let tree_wins_small = small_tree < small_ring;
    let ring_wins_large = large_ring < large_tree;
    println!();
    println!(
        "tree wins small payloads: {tree_wins_small}; ring wins large payloads: {ring_wins_large}"
    );

    // Channel-striping sweep: modelled large ring all-reduce at K channels.
    println!();
    println!(
        "# modelled {} ring all-reduce striped across K channels (µs / GB/s)",
        fmt_bytes(CHANNELS_SWEEP_BYTES)
    );
    let ch_widths = [6, 4, 12, 12];
    print_row(&["gpus", "K", "µs", "GB/s"].map(String::from), &ch_widths);
    let mut channels_sweep: Vec<(usize, usize, f64, f64)> = Vec::new();
    let mut channels_scaling_ok = true;
    for gpus in GPU_COUNTS {
        let topo = Topology::flat(gpus);
        let desc = CollectiveDescriptor::all_reduce(
            CHANNELS_SWEEP_BYTES / 4,
            DataType::F32,
            ReduceOp::Sum,
            (0..gpus).map(GpuId).collect(),
        );
        let mut by_k = Vec::new();
        for k in CHANNEL_COUNTS {
            let us = modelled_completion_us_striped(&desc, AlgorithmKind::Ring, &topo, k)
                .expect("ring schedules all-reduce");
            let gbps = CHANNELS_SWEEP_BYTES as f64 / (us * 1e3); // bytes/ns = GB/s
            print_row(
                &[
                    format!("{gpus}"),
                    format!("{k}"),
                    format!("{us:.1}"),
                    format!("{gbps:.2}"),
                ],
                &ch_widths,
            );
            channels_sweep.push((gpus, k, us, gbps));
            by_k.push((k, gbps));
        }
        let k1 = by_k.iter().find(|(k, _)| *k == 1).expect("K=1 in sweep").1;
        let k4 = by_k.iter().find(|(k, _)| *k == 4).expect("K=4 in sweep").1;
        if k4 < k1 {
            channels_scaling_ok = false;
        }
    }
    println!();
    println!("K=4 >= K=1 modelled throughput on large payloads: {channels_scaling_ok}");

    // Hand-rolled JSON (no serialization dependency in this environment).
    // Each panel is upserted into the existing document by key, so panels
    // owned by other harness binaries (e.g. perf_alltoall's
    // "alltoall_per_size") survive this run untouched.
    let mut throughput_panel = String::from("[\n");
    for (i, (gpus, row)) in throughput.iter().enumerate() {
        let _ = write!(
            throughput_panel,
            "    {{\"gpus\": {gpus}, \"ring_collectives_per_sec\": {:.1}, \"tree_collectives_per_sec\": {:.1}, \"hierarchical_collectives_per_sec\": {:.1}}}",
            row[0], row[1], row[2]
        );
        throughput_panel.push_str(if i + 1 < throughput.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    throughput_panel.push_str("  ]");
    let mut sweep_panel = String::from("[\n");
    for (i, (bytes, ring, tree, hier)) in sweep.iter().enumerate() {
        let _ = write!(
            sweep_panel,
            "    {{\"bytes\": {bytes}, \"ring\": {ring:.2}, \"tree\": {tree:.2}, \"hierarchical\": {hier:.2}}}"
        );
        sweep_panel.push_str(if i + 1 < sweep.len() { ",\n" } else { "\n" });
    }
    sweep_panel.push_str("  ]");
    let mut channels_panel = String::from("[\n");
    for (i, (gpus, k, us, gbps)) in channels_sweep.iter().enumerate() {
        let _ = write!(
            channels_panel,
            "    {{\"gpus\": {gpus}, \"channels\": {k}, \"bytes\": {CHANNELS_SWEEP_BYTES}, \"modelled_us\": {us:.2}, \"modelled_gbps\": {gbps:.3}}}"
        );
        channels_panel.push_str(if i + 1 < channels_sweep.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    channels_panel.push_str("  ]");

    let mut json = std::fs::read_to_string(&out_path).unwrap_or_else(|_| "{\n}\n".to_string());
    for (key, value) in [
        ("bench", "\"algorithms\"".to_string()),
        (
            "workload",
            format!(
                "{{\"collectives\": {collectives}, \"rounds\": {rounds}, \"count\": 16, \"repeats\": {repeats}}}"
            ),
        ),
        ("throughput", throughput_panel),
        ("modelled_sweep_us", sweep_panel),
        ("channels_sweep", channels_panel),
        ("tree_wins_small_payloads", tree_wins_small.to_string()),
        ("ring_wins_large_payloads", ring_wins_large.to_string()),
        (
            "channels_k4_at_least_k1",
            channels_scaling_ok.to_string(),
        ),
    ] {
        json = upsert_json_key(&json, key, &value);
    }

    std::fs::write(&out_path, &json).expect("write benchmark JSON");
    println!("wrote {out_path}");

    if !tree_wins_small || !ring_wins_large {
        eprintln!("WARNING: modelled ring/tree crossover has the wrong shape");
        std::process::exit(2);
    }
    if !channels_scaling_ok {
        eprintln!("WARNING: channel striping lost modelled throughput at K=4");
        std::process::exit(2);
    }
}
