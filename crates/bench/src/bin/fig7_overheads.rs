//! Regenerates **Fig. 7** (workload-independent time overheads) and the
//! **Sec. 6.2** memory-overhead accounting.
//!
//! * Fig. 7(b): mean SQE-read time, preparing overhead and CQE-write time while
//!   running all-reduces on eight GPUs.
//! * Fig. 7(c): CQE-write time of the three completion-queue designs.
//! * Sec. 6.2: shared/global memory reserved by the daemon kernel.
//!
//! ```text
//! cargo run --release -p dfccl-bench --bin fig7_overheads -- [--iterations 50]
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use dfccl::{build_cq, CqVariant, Cqe, DfcclConfig, DfcclDomain, HostMemCosts};
use dfccl_bench::{arg_num, fmt_us};
use dfccl_collectives::{DataType, DeviceBuffer, ReduceOp};
use dfccl_transport::{LinkModel, Topology};
use gpu_sim::{GpuId, GpuSpec};

const GPUS: usize = 8;

fn main() {
    let iterations: usize = arg_num("--iterations", 50);

    println!("Fig. 7(b) — workload-independent time overheads (all-reduce on {GPUS} GPUs)\n");
    let domain = DfcclDomain::new(
        Topology::single_server(),
        LinkModel::table2_compressed(500.0),
        GpuSpec::rtx_3090(),
        DfcclConfig::default(),
    );
    let devices: Vec<GpuId> = (0..GPUS).map(GpuId).collect();
    let ranks: Vec<Arc<dfccl::RankCtx>> = devices
        .iter()
        .map(|&g| Arc::new(domain.init_rank(g).unwrap()))
        .collect();
    let count = 64 * 1024;
    for rank in &ranks {
        rank.register_all_reduce(1, count, DataType::F32, ReduceOp::Sum, devices.clone(), 0)
            .unwrap();
    }
    let mut joins = Vec::new();
    for rank in &ranks {
        let rank = Arc::clone(rank);
        joins.push(std::thread::spawn(move || {
            for _ in 0..iterations {
                let send = DeviceBuffer::from_f32(&vec![1.0; count]);
                let recv = DeviceBuffer::zeroed(count * 4);
                let h = rank.run_awaitable(1, send, recv).unwrap();
                h.wait_for(1);
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    let stats = ranks[0].stats();
    println!("  measured on GPU 0 over {iterations} iterations (paper: 5.3 / 1.2 / 2.0 µs):");
    println!(
        "    read SQE:            {} µs",
        stats
            .mean_sqe_read
            .map(fmt_us)
            .unwrap_or_else(|| "-".into())
    );
    println!(
        "    preparing overheads: {} µs",
        stats
            .mean_preparing
            .map(fmt_us)
            .unwrap_or_else(|| "-".into())
    );
    println!(
        "    write CQE:           {} µs",
        stats
            .mean_cqe_write
            .map(fmt_us)
            .unwrap_or_else(|| "-".into())
    );

    println!("\nSec. 6.2 — workload-independent memory overheads");
    let usage = ranks[0].memory_usage();
    let cfg = domain.config();
    println!(
        "    shared memory per block (task queue + active context slots): {} KB",
        cfg.shared_mem_per_block / 1024
    );
    println!(
        "    global memory (context buffer x {} blocks + shared bookkeeping): {:.1} MB",
        cfg.daemon_blocks,
        usage.global_allocated as f64 / (1024.0 * 1024.0)
    );
    for rank in ranks {
        rank.destroy();
    }

    println!("\nFig. 7(c) — time to write one CQE to the three CQ designs");
    println!("  (modelled host-memory costs; paper: 6.9 / 4.8 / 2.0 µs)");
    for (name, variant) in [
        ("vanilla ring-buffer CQ", CqVariant::VanillaRing),
        ("optimized ring-buffer CQ", CqVariant::OptimizedRing),
        ("optimized CQ", CqVariant::OptimizedSlot),
    ] {
        let cq = build_cq(variant, 64, HostMemCosts::default());
        let samples = 200;
        let mut total = Duration::ZERO;
        for i in 0..samples {
            let start = Instant::now();
            assert!(cq.push(Cqe {
                coll_id: i as u64 % 32
            }));
            total += start.elapsed();
            cq.pop();
        }
        println!("    {:28} {} µs", name, fmt_us(total / samples as u32));
    }
}
