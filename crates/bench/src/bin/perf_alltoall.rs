//! `perf_alltoall` — per-size all-to-all throughput over the dense mesh.
//!
//! Two measurements per per-peer payload size, merged into the
//! `"alltoall_per_size"` panel of `BENCH_algorithms.json` (the other panels,
//! written by `perf_algorithms`, are preserved):
//!
//! 1. **Full-stack throughput** — all-to-alls/sec through the complete DFCCL
//!    hot path (SQ → daemon → pairwise plan over the n(n-1)-edge mesh → CQ →
//!    poller) at 4 simulated GPUs, plus the nccl-tests-style algorithm
//!    bandwidth derived from the bytes each rank moves.
//! 2. **Modelled completion** — the deterministic plan-cost estimate of the
//!    pairwise schedule under the Table 2 link parameters, which must grow
//!    monotonically with the payload (the shape gate CI relies on).
//!
//! Usage:
//! ```text
//! perf_alltoall [--repeats 3] [--rounds 8] [--gpus 4] [--out BENCH_algorithms.json]
//! ```

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use dfccl_bench::hotpath::batched_config;
use dfccl_bench::{
    arg_num, arg_value, byte_sweep, fmt_bytes, modelled_completion_us, print_row, upsert_json_key,
};
use dfccl_collectives::{AlgorithmKind, CollectiveDescriptor, DataType, DeviceBuffer};
use dfccl_transport::{LinkModel, Topology};
use gpu_sim::{GpuId, GpuSpec};

/// One full-stack measurement: every rank invokes the registered all-to-all
/// `rounds` times; the clock stops at the last completion on every rank.
fn measure_alltoall(gpus: usize, slice_elems: usize, rounds: u64) -> f64 {
    let domain = dfccl::DfcclDomain::new(
        Topology::flat(gpus),
        LinkModel::zero_cost(),
        GpuSpec::rtx_3090(),
        batched_config(),
    );
    let devices: Vec<GpuId> = (0..gpus).map(GpuId).collect();
    let ranks: Vec<_> = devices
        .iter()
        .map(|&g| Arc::new(domain.init_rank(g).expect("rank init")))
        .collect();
    for rank in &ranks {
        rank.register_all_to_all(1, slice_elems, DataType::F32, devices.clone(), 0)
            .expect("register all-to-all");
        assert_eq!(rank.algorithm_of(1), Some(AlgorithmKind::Pairwise));
    }
    let start = Instant::now();
    let mut invokers = Vec::new();
    for rank in &ranks {
        let rank = Arc::clone(rank);
        invokers.push(std::thread::spawn(move || {
            let bytes = slice_elems * gpus * 4;
            let handle = dfccl::CompletionHandle::new();
            for _ in 0..rounds {
                let send = DeviceBuffer::zeroed(bytes);
                let recv = DeviceBuffer::zeroed(bytes);
                loop {
                    match rank.run(1, send.clone(), recv.clone(), handle.completion_callback()) {
                        Ok(()) => break,
                        Err(dfccl::DfcclError::SubmissionQueueFull) => std::thread::yield_now(),
                        Err(e) => panic!("submission failed: {e}"),
                    }
                }
            }
            assert!(
                handle.wait_for_timeout(rounds, Duration::from_secs(120)),
                "all-to-all bench timed out"
            );
        }));
    }
    for j in invokers {
        j.join().expect("invoker panicked");
    }
    let elapsed = start.elapsed();
    for rank in &ranks {
        assert!(rank.collective_errors().is_empty());
        rank.destroy();
    }
    rounds as f64 / elapsed.as_secs_f64()
}

fn main() {
    let repeats: usize = arg_num("--repeats", 3).max(1);
    let rounds: u64 = arg_num("--rounds", 8).max(1);
    let gpus: usize = arg_num("--gpus", 4).max(2);
    let out_path = arg_value("--out").unwrap_or_else(|| "BENCH_algorithms.json".to_string());

    println!("# perf_alltoall — dense-mesh all-to-all, full DFCCL hot path at {gpus} GPUs");
    println!("# {rounds} rounds per size, best of {repeats}; modelled µs uses Table 2 links");
    let widths = [10, 14, 12, 14];
    print_row(
        &["per-peer", "a2a/sec", "algbw GB/s", "modelled µs"].map(String::from),
        &widths,
    );

    let topo = Topology::flat(gpus);
    let devices: Vec<GpuId> = (0..gpus).map(GpuId).collect();
    // Per-peer payload sweep: 256 B .. 64 KiB per (rank, peer) pair.
    let sizes = byte_sweep(256, 64 * 1024);
    let mut panel: Vec<(usize, f64, f64, f64)> = Vec::new();
    for &bytes in &sizes {
        let slice_elems = (bytes / 4).max(1);
        let best = (0..repeats)
            .map(|_| measure_alltoall(gpus, slice_elems, rounds))
            .fold(0.0f64, f64::max);
        // Bytes each rank puts on the wire per all-to-all: (n-1) slices.
        let desc = CollectiveDescriptor::all_to_all(slice_elems, DataType::F32, devices.clone());
        let wire = desc.wire_bytes_per_rank();
        let algbw = best * wire as f64 / 1e9;
        let modelled = modelled_completion_us(&desc, AlgorithmKind::Pairwise, &topo)
            .expect("pairwise schedules all-to-all");
        print_row(
            &[
                fmt_bytes(bytes),
                format!("{best:.0}"),
                format!("{algbw:.3}"),
                format!("{modelled:.1}"),
            ],
            &widths,
        );
        panel.push((bytes, best, algbw, modelled));
    }

    // Shape gate: the modelled completion must grow monotonically with the
    // payload — deterministic, so a regression here is a plan-shape bug, not
    // noise.
    let monotone = panel.windows(2).all(|w| w[1].3 >= w[0].3);
    // And an 8x payload growth must show real cost growth, not a flat line.
    let spread = panel.last().unwrap().3 > 2.0 * panel.first().unwrap().3;
    println!();
    println!("modelled completion monotone in payload: {monotone}; grows with size: {spread}");

    let mut value = String::from("[\n");
    for (i, (bytes, a2a_per_sec, algbw, modelled)) in panel.iter().enumerate() {
        let _ = write!(
            value,
            "    {{\"bytes_per_peer\": {bytes}, \"gpus\": {gpus}, \"alltoall_per_sec\": {a2a_per_sec:.1}, \"algbw_gbps\": {algbw:.4}, \"modelled_us\": {modelled:.2}}}"
        );
        value.push_str(if i + 1 < panel.len() { ",\n" } else { "\n" });
    }
    value.push_str("  ]");

    let existing = std::fs::read_to_string(&out_path).unwrap_or_else(|_| "{\n}\n".to_string());
    let merged = upsert_json_key(&existing, "alltoall_per_size", &value);
    std::fs::write(&out_path, &merged).expect("write benchmark JSON");
    println!("wrote the alltoall_per_size panel into {out_path}");

    if !monotone || !spread {
        eprintln!("WARNING: modelled all-to-all completion has the wrong shape");
        std::process::exit(2);
    }
}
