//! Regenerates **Fig. 13**: GPT-2 3D-hybrid training time per iteration with
//! Megatron-style manual orchestration of NCCL vs. DFCCL, on 8 and 16 GPUs.
//!
//! Expected shape: per-iteration times within ±4% of each other, and a
//! comparable coefficient of variation (paper: 1.4% DFCCL vs 1.5% NCCL on one
//! server, 4.3% vs 3.9% across two servers).
//!
//! ```text
//! cargo run --release -p dfccl-bench --bin fig13_gpt2 -- [--iterations 20] [--microbatch 18]
//! ```

use dfccl_baseline::StrategyKind;
use dfccl_bench::{arg_num, print_row};
use dfccl_workloads::{three_d_hybrid_plan, train, BackendKind, DnnModel, TrainerConfig};

fn main() {
    let iterations: usize = arg_num("--iterations", 20);
    let microbatch: usize = arg_num("--microbatch", 18);
    let model = DnnModel::gpt2();

    println!("Fig. 13 — GPT-2 3D-hybrid training, time per iteration (lower is better)\n");
    let widths = [34, 16, 16, 10];
    print_row(
        &[
            "configuration".into(),
            "NCCL ms/iter".into(),
            "DFCCL ms/iter".into(),
            "ratio".into(),
        ],
        &widths,
    );

    for (label, tp, dp, pp) in [
        ("(a) 8 GPUs, TP=2 DP=2 PP=2", 2usize, 2usize, 2usize),
        ("(b) 16 GPUs, TP=4 DP=2 PP=2", 4, 2, 2),
    ] {
        let plan = three_d_hybrid_plan(&model, tp, dp, pp, microbatch);
        let cfg = TrainerConfig {
            iterations,
            ..TrainerConfig::default()
        };
        let nccl = train(
            &plan,
            BackendKind::NcclOrchestrated(StrategyKind::MegatronManual),
            &cfg,
            microbatch * dp,
        );
        let dfccl = train(&plan, BackendKind::Dfccl, &cfg, microbatch * dp);
        let n_ms = nccl.mean_iteration().as_secs_f64() * 1e3;
        let d_ms = dfccl.mean_iteration().as_secs_f64() * 1e3;
        print_row(
            &[
                label.into(),
                format!("{n_ms:.2}"),
                format!("{d_ms:.2}"),
                format!("{:.2}x", d_ms / n_ms.max(1e-12)),
            ],
            &widths,
        );
        print_row(
            &[
                "    coefficient of variation".into(),
                format!("{:.1}%", nccl.coefficient_of_variation() * 100.0),
                format!("{:.1}%", dfccl.coefficient_of_variation() * 100.0),
                "".into(),
            ],
            &widths,
        );
    }
    println!("\nPaper reference: differences within ±4%, CoV 1.4-4.3%.");
}
