//! Scheduling-throughput harness for the daemon hot path.
//!
//! Drives the full submission→execution→completion pipeline — invoker
//! threads pushing SQEs, one daemon kernel per simulated GPU, batched CQ
//! publication, the event-driven poller — over zero-cost links, so the
//! measured rate is dominated by the *scheduling* machinery the paper's
//! Sec. 5 engineers (and this repository's perf trajectory tracks).
//!
//! The same harness backs the `daemon_throughput` criterion benchmark and the
//! `perf_hotpath` binary that emits `BENCH_hotpath.json`.

use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};

use dfccl::{
    CompletionHandle, CqVariant, DfcclConfig, DfcclDomain, DfcclError, PlanCacheStats,
    RecoveryCoordinator, RetryPolicy, TenantHandle, TenantQuota,
};
use dfccl_collectives::{
    instr_ready, step_ready, AlgorithmSelector, CollectiveDescriptor, CompiledProgram, DataType,
    DeviceBuffer, PendingSends, ReduceOp,
};
use dfccl_transport::{Communicator, CommunicatorId, LinkModel, Topology};
use gpu_sim::{GpuId, GpuSpec};

/// Workload shape for one throughput measurement.
#[derive(Debug, Clone, Copy)]
pub struct HotpathWorkload {
    /// Simulated GPUs (ranks).
    pub gpus: usize,
    /// Distinct registered collectives.
    pub collectives: u64,
    /// Invocations of each collective.
    pub rounds: u64,
    /// Elements per all-reduce (kept small so scheduling dominates).
    pub count: usize,
}

impl HotpathWorkload {
    /// The default shape: 16 collectives × 4 rounds of tiny all-reduces.
    pub fn standard(gpus: usize) -> Self {
        HotpathWorkload {
            gpus,
            collectives: 16,
            rounds: 4,
            count: 16,
        }
    }

    /// Total collective operations completed per run (domain-wide).
    pub fn total_collectives(&self) -> u64 {
        self.collectives * self.rounds
    }
}

/// Result of one throughput run.
#[derive(Debug, Clone, Copy)]
pub struct ThroughputResult {
    /// Domain-wide collective operations completed per second.
    pub collectives_per_sec: f64,
    /// Wall-clock time of the submission→completion phase.
    pub elapsed: Duration,
    /// Collective operations completed (domain-wide).
    pub completed: u64,
}

/// Factor applied to the modelled host-memory costs in the throughput
/// benchmark (both arms identically, so every ratio between variants and
/// between batched/unbatched cost components is preserved).
///
/// On the paper's hardware the host-memory operations *dominate* the daemon
/// control path (a CQE write alone is 2–6.9 µs while the on-GPU bookkeeping
/// is nanoseconds). In this reproduction the bookkeeping runs as ordinary
/// CPU code — thread scheduling, context switches, a simulated device — and
/// on the small shared machines that run CI it is inflated well past the
/// modelled host costs, which would make the benchmark measure the
/// simulator instead of the protocol. Scaling the modelled costs restores
/// the paper's host-op-dominated regime.
pub const HOST_COST_SCALE: f64 = 5.0;

/// The benchmark configuration of the batched (current) hot path: default
/// batching knobs over the optimized ring CQ with the paper-calibrated
/// host-memory costs (scaled by [`HOST_COST_SCALE`], see there).
///
/// Two further knobs diverge from the production defaults so the measurement
/// is meaningful on small shared machines (CI runs this on a single core):
/// a small *fixed* spin threshold — the adaptive policy's 100 k–10 M polls
/// busy-wait the core that the peer daemon needs, so the daemon must preempt
/// and park quickly for ranks to interleave — and a short park quantum so a
/// parked daemon re-checks connector progress promptly.
pub fn batched_config() -> DfcclConfig {
    use dfccl::{HostMemCosts, SpinPolicy};
    DfcclConfig {
        cq_variant: CqVariant::OptimizedRing,
        host_costs: HostMemCosts::default().scaled(HOST_COST_SCALE),
        spin: SpinPolicy::Fixed { threshold: 128 },
        restart_backoff: Duration::from_micros(5),
        connector_capacity: 64,
        ..DfcclConfig::default()
    }
}

/// The baseline arm: identical, but with SQ/CQ batching disabled (per-entry
/// fetch and publication — the legacy hot path).
pub fn unbatched_config() -> DfcclConfig {
    batched_config().unbatched()
}

/// Run one scheduling-throughput measurement: every rank submits
/// `collectives × rounds` tiny all-reduces (one invoker thread per rank) and
/// the clock stops when the last completion callback has fired on every rank.
pub fn scheduling_throughput(workload: HotpathWorkload, config: DfcclConfig) -> ThroughputResult {
    scheduling_throughput_over(workload, config, Topology::flat(workload.gpus))
}

/// [`scheduling_throughput`] over an explicit topology (e.g. a multi-node
/// cluster so the hierarchical algorithm is selectable).
pub fn scheduling_throughput_over(
    workload: HotpathWorkload,
    config: DfcclConfig,
    topology: Topology,
) -> ThroughputResult {
    assert!(workload.gpus >= 2, "an all-reduce needs at least two ranks");
    assert_eq!(
        topology.gpu_count(),
        workload.gpus,
        "topology/rank mismatch"
    );
    let domain = DfcclDomain::new(
        topology,
        LinkModel::zero_cost(),
        GpuSpec::rtx_3090(),
        config,
    );
    let devices: Vec<GpuId> = (0..workload.gpus).map(GpuId).collect();
    let ranks: Vec<_> = devices
        .iter()
        .map(|&g| Arc::new(domain.init_rank(g).expect("rank init")))
        .collect();
    for rank in &ranks {
        for c in 1..=workload.collectives {
            rank.register_all_reduce(
                c,
                workload.count,
                DataType::F32,
                ReduceOp::Sum,
                devices.clone(),
                0,
            )
            .expect("register");
        }
    }

    let per_rank = workload.total_collectives();
    let start = Instant::now();
    let mut invokers = Vec::new();
    for (g, rank) in ranks.iter().enumerate() {
        let rank = Arc::clone(rank);
        let wl = workload;
        invokers.push(std::thread::spawn(move || {
            let handle = CompletionHandle::new();
            let input = vec![(g + 1) as f32; wl.count];
            for _ in 0..wl.rounds {
                for c in 1..=wl.collectives {
                    let send = DeviceBuffer::from_f32(&input);
                    let recv = DeviceBuffer::zeroed(wl.count * 4);
                    // Retry on a momentarily full SQ: the benchmark must
                    // measure throughput, not fail on backpressure.
                    loop {
                        match rank.run(c, send.clone(), recv.clone(), handle.completion_callback())
                        {
                            Ok(()) => break,
                            Err(DfcclError::SubmissionQueueFull) => std::thread::yield_now(),
                            Err(e) => panic!("submission failed: {e}"),
                        }
                    }
                }
            }
            assert!(
                handle.wait_for_timeout(per_rank, Duration::from_secs(120)),
                "rank {g} timed out: {}/{} completions",
                handle.completions(),
                per_rank,
            );
        }));
    }
    for j in invokers {
        j.join().expect("invoker thread panicked");
    }
    let elapsed = start.elapsed();
    for rank in &ranks {
        assert!(
            rank.collective_errors().is_empty(),
            "collective errors during bench"
        );
        rank.destroy();
    }
    ThroughputResult {
        collectives_per_sec: per_rank as f64 / elapsed.as_secs_f64(),
        elapsed,
        completed: per_rank,
    }
}

/// [`scheduling_throughput`]'s workload executed fault-free, either plain or
/// with a [`RecoveryCoordinator`] supervising the run. Supervision wraps the
/// transport watchdog around the workload — a progress probe over
/// `edge_samples()` plus stall-deadline bookkeeping — so the delta between
/// the two arms is the price of standing recovery coverage on a healthy
/// domain (the recovery panel gates it at ≤ 5%).
///
/// Submission runs on the calling thread (round-robin across ranks, retrying
/// a momentarily full SQ) in **both** arms, so the only difference between
/// them is the supervisor: the supervised arm sits in
/// [`RecoveryCoordinator::supervise`] until every completion has fired, the
/// plain arm in a completion-handle wait.
pub fn recovery_supervised_throughput(
    workload: HotpathWorkload,
    config: DfcclConfig,
    supervised: bool,
) -> ThroughputResult {
    assert!(workload.gpus >= 2, "an all-reduce needs at least two ranks");
    let domain = DfcclDomain::new(
        Topology::flat(workload.gpus),
        LinkModel::zero_cost(),
        GpuSpec::rtx_3090(),
        config,
    );
    let devices: Vec<GpuId> = (0..workload.gpus).map(GpuId).collect();
    let ranks: Vec<_> = devices
        .iter()
        .map(|&g| domain.init_rank(g).expect("rank init"))
        .collect();
    for rank in &ranks {
        for c in 1..=workload.collectives {
            rank.register_all_reduce(
                c,
                workload.count,
                DataType::F32,
                ReduceOp::Sum,
                devices.clone(),
                0,
            )
            .expect("register");
        }
    }

    let per_rank = workload.total_collectives();
    let handles: Vec<CompletionHandle> = ranks.iter().map(|_| CompletionHandle::new()).collect();
    let start = Instant::now();
    for _ in 0..workload.rounds {
        for c in 1..=workload.collectives {
            for (g, rank) in ranks.iter().enumerate() {
                let send = DeviceBuffer::from_f32(&vec![(g + 1) as f32; workload.count]);
                let recv = DeviceBuffer::zeroed(workload.count * 4);
                loop {
                    match rank.run(
                        c,
                        send.clone(),
                        recv.clone(),
                        handles[g].completion_callback(),
                    ) {
                        Ok(()) => break,
                        Err(DfcclError::SubmissionQueueFull) => std::thread::yield_now(),
                        Err(e) => panic!("submission failed: {e}"),
                    }
                }
            }
        }
    }
    if supervised {
        let coordinator = RecoveryCoordinator::new(RetryPolicy::default());
        let rank_refs: Vec<&dfccl::RankCtx> = ranks.iter().collect();
        let done = || handles.iter().all(|h| h.completions() >= per_rank);
        let recoveries = coordinator
            .supervise(&rank_refs, &done, Duration::from_secs(1))
            .expect("fault-free supervision");
        assert_eq!(recoveries, 0, "a fault-free run must not trigger recovery");
    } else {
        for (g, handle) in handles.iter().enumerate() {
            assert!(
                handle.wait_for_timeout(per_rank, Duration::from_secs(120)),
                "rank {g} timed out: {}/{} completions",
                handle.completions(),
                per_rank,
            );
        }
    }
    let elapsed = start.elapsed();
    for rank in &ranks {
        assert!(
            rank.collective_errors().is_empty(),
            "collective errors during bench"
        );
        rank.destroy();
    }
    ThroughputResult {
        collectives_per_sec: per_rank as f64 / elapsed.as_secs_f64(),
        elapsed,
        completed: per_rank,
    }
}

/// Best-of wrapper for [`recovery_supervised_throughput`].
pub fn best_recovery_of(
    repeats: usize,
    workload: HotpathWorkload,
    config: &DfcclConfig,
    supervised: bool,
) -> ThroughputResult {
    assert!(repeats > 0);
    (0..repeats)
        .map(|_| recovery_supervised_throughput(workload, config.clone(), supervised))
        .max_by(|a, b| {
            a.collectives_per_sec
                .partial_cmp(&b.collectives_per_sec)
                .expect("throughput is finite")
        })
        .expect("at least one repeat")
}

/// [`scheduling_throughput`]'s workload spread across `tenants` service-mode
/// tenants: collective `c` is registered under tenant `c % tenants` (weights
/// alternating 1 and 2 so weighted-fair arbitration actually engages), and
/// every rank submits the same mixed stream. The completion rate is the
/// domain-wide figure of merit for the multi-tenant arm of the tenancy panel.
pub fn multi_tenant_throughput(
    workload: HotpathWorkload,
    config: DfcclConfig,
    tenants: usize,
) -> ThroughputResult {
    assert!(workload.gpus >= 2 && tenants >= 1);
    let domain = DfcclDomain::new(
        Topology::flat(workload.gpus),
        LinkModel::zero_cost(),
        GpuSpec::rtx_3090(),
        config,
    );
    let handles: Vec<TenantHandle> = (0..tenants)
        .map(|t| domain.tenant(TenantQuota::default().with_weight(1 + (t % 2) as u32)))
        .collect();
    let devices: Vec<GpuId> = (0..workload.gpus).map(GpuId).collect();
    let ranks: Vec<_> = devices
        .iter()
        .map(|&g| Arc::new(domain.init_rank(g).expect("rank init")))
        .collect();
    for rank in &ranks {
        for c in 1..=workload.collectives {
            rank.register_all_reduce_for(
                &handles[(c as usize - 1) % tenants],
                c,
                workload.count,
                DataType::F32,
                ReduceOp::Sum,
                devices.clone(),
                0,
            )
            .expect("register");
        }
    }
    let per_rank = workload.total_collectives();
    let start = Instant::now();
    let mut invokers = Vec::new();
    for (g, rank) in ranks.iter().enumerate() {
        let rank = Arc::clone(rank);
        let wl = workload;
        invokers.push(std::thread::spawn(move || {
            let handle = CompletionHandle::new();
            let input = vec![(g + 1) as f32; wl.count];
            for _ in 0..wl.rounds {
                for c in 1..=wl.collectives {
                    let send = DeviceBuffer::from_f32(&input);
                    let recv = DeviceBuffer::zeroed(wl.count * 4);
                    loop {
                        match rank.run(c, send.clone(), recv.clone(), handle.completion_callback())
                        {
                            Ok(()) => break,
                            Err(DfcclError::SubmissionQueueFull) => std::thread::yield_now(),
                            Err(e) => panic!("submission failed: {e}"),
                        }
                    }
                }
            }
            assert!(
                handle.wait_for_timeout(per_rank, Duration::from_secs(120)),
                "rank {g} timed out: {}/{} completions",
                handle.completions(),
                per_rank,
            );
        }));
    }
    for j in invokers {
        j.join().expect("invoker thread panicked");
    }
    let elapsed = start.elapsed();
    for rank in &ranks {
        assert!(
            rank.collective_errors().is_empty(),
            "collective errors during bench"
        );
        rank.destroy();
    }
    ThroughputResult {
        collectives_per_sec: per_rank as f64 / elapsed.as_secs_f64(),
        elapsed,
        completed: per_rank,
    }
}

/// Best-of wrapper for [`multi_tenant_throughput`].
pub fn best_multi_tenant_of(
    repeats: usize,
    workload: HotpathWorkload,
    config: &DfcclConfig,
    tenants: usize,
) -> ThroughputResult {
    assert!(repeats > 0);
    (0..repeats)
        .map(|_| multi_tenant_throughput(workload, config.clone(), tenants))
        .max_by(|a, b| {
            a.collectives_per_sec
                .partial_cmp(&b.collectives_per_sec)
                .expect("throughput is finite")
        })
        .expect("at least one repeat")
}

/// Run `repeats` measurements and keep the best (max throughput): scheduling
/// benchmarks are noise-sensitive on shared CI machines, and the best run is
/// the one closest to the machine-limited rate.
pub fn best_of(
    repeats: usize,
    workload: HotpathWorkload,
    config: &DfcclConfig,
) -> ThroughputResult {
    best_of_over(repeats, workload, config, &Topology::flat(workload.gpus))
}

/// [`best_of`] over an explicit topology.
pub fn best_of_over(
    repeats: usize,
    workload: HotpathWorkload,
    config: &DfcclConfig,
    topology: &Topology,
) -> ThroughputResult {
    assert!(repeats > 0);
    (0..repeats)
        .map(|_| scheduling_throughput_over(workload, config.clone(), topology.clone()))
        .max_by(|a, b| {
            a.collectives_per_sec
                .partial_cmp(&b.collectives_per_sec)
                .expect("throughput is finite")
        })
        .expect("at least one repeat")
}

/// Result of one registration-throughput measurement: registrations/sec with
/// every registration a distinct shape (cold — plan built, validated and
/// compiled each time) vs. every registration the same shape (plan-cache
/// hit — shared `Arc<Plan>`/`Arc<CompiledProgram>`, no plan construction).
#[derive(Debug, Clone, Copy)]
pub struct RegistrationResult {
    /// Registrations/sec when every registration is a new shape.
    pub cold_per_sec: f64,
    /// Registrations/sec when every registration hits the plan cache.
    pub hit_per_sec: f64,
    /// The domain plan cache's counters after both arms, straight from
    /// `DfcclDomain::cache_stats` — surfaced in the registration panel so the
    /// trajectory tracks cache behaviour, not just wall-clock rates.
    pub cache: PlanCacheStats,
}

impl RegistrationResult {
    /// Cache-hit speedup over cold registration.
    pub fn speedup(&self) -> f64 {
        self.hit_per_sec / self.cold_per_sec
    }
}

/// Measure registration throughput on one rank of a `gpus`-wide domain:
/// `registrations` all-reduces registered with distinct counts (every one a
/// plan-cache miss), then `registrations` with one fixed count (every one a
/// hit after the cold pass seeded the shape). A small chunk size keeps the
/// plans at a realistic couple-hundred instructions so the cold arm measures
/// genuine plan construction, not a degenerate two-step schedule.
pub fn registration_throughput(gpus: usize, registrations: u64) -> RegistrationResult {
    assert!(gpus >= 2 && registrations > 0);
    let config = DfcclConfig {
        chunk_elems: 64,
        ..DfcclConfig::for_testing()
    };
    let domain = DfcclDomain::new(
        Topology::flat(gpus),
        LinkModel::zero_cost(),
        GpuSpec::rtx_3090(),
        config,
    );
    let devices: Vec<GpuId> = (0..gpus).map(GpuId).collect();
    let ctx = domain.init_rank(GpuId(0)).expect("rank init");
    let base_count = 8 * 1024;

    // Cold arm: every count is distinct, so every registration misses.
    let start = Instant::now();
    for i in 0..registrations {
        ctx.register_all_reduce(
            1 + i,
            base_count + i as usize,
            DataType::F32,
            ReduceOp::Sum,
            devices.clone(),
            0,
        )
        .expect("cold register");
    }
    let cold = registrations as f64 / start.elapsed().as_secs_f64();

    // Hit arm: one fixed shape (seeded by cold registration i = 0), distinct
    // collective ids.
    let start = Instant::now();
    for i in 0..registrations {
        ctx.register_all_reduce(
            1_000_000 + i,
            base_count,
            DataType::F32,
            ReduceOp::Sum,
            devices.clone(),
            0,
        )
        .expect("hit register");
    }
    let hit = registrations as f64 / start.elapsed().as_secs_f64();

    assert_eq!(
        domain.plan_cache().hits(),
        registrations,
        "hit arm must be served from the plan cache"
    );
    let cache = domain.cache_stats();
    ctx.destroy();
    RegistrationResult {
        cold_per_sec: cold,
        hit_per_sec: hit,
        cache,
    }
}

/// Domain-wide cache-hit registration rate: every rank of the domain
/// registers the same `registrations` collectives (one warm-up shape seeds
/// the plan cache), and the rate counts *logical* collectives per second —
/// `registrations / elapsed`, with the wall clock covering all `gpus` ranks'
/// work. A collective is only runnable once every rank has registered it, so
/// this is the number a graph replay (whose wall clock likewise covers every
/// rank's submission and completion) is comparable against.
pub fn spmd_hit_registration_throughput(gpus: usize, registrations: u64) -> f64 {
    assert!(gpus >= 2 && registrations > 0);
    let config = DfcclConfig {
        chunk_elems: 64,
        ..DfcclConfig::for_testing()
    };
    let domain = DfcclDomain::new(
        Topology::flat(gpus),
        LinkModel::zero_cost(),
        GpuSpec::rtx_3090(),
        config,
    );
    let devices: Vec<GpuId> = (0..gpus).map(GpuId).collect();
    let ranks: Vec<_> = devices
        .iter()
        .map(|&g| domain.init_rank(g).expect("rank init"))
        .collect();
    let base_count = 8 * 1024;
    // Seed the shared plan cache so every timed registration hits.
    ranks[0]
        .register_all_reduce(
            1,
            base_count,
            DataType::F32,
            ReduceOp::Sum,
            devices.clone(),
            0,
        )
        .expect("seed register");
    let start = Instant::now();
    for i in 0..registrations {
        for ctx in &ranks {
            ctx.register_all_reduce(
                1_000_000 + i,
                base_count,
                DataType::F32,
                ReduceOp::Sum,
                devices.clone(),
                0,
            )
            .expect("spmd hit register");
        }
    }
    let rate = registrations as f64 / start.elapsed().as_secs_f64();
    for ctx in ranks {
        ctx.destroy();
    }
    rate
}

/// Result of one graph-replay throughput measurement.
#[derive(Debug, Clone, Copy)]
pub struct ReplayResult {
    /// Recorded collectives completed per second per rank: every replay
    /// completes the whole captured step, so one replay counts as
    /// `collectives` operations regardless of how many the fusion pass
    /// coalesced into fused nodes.
    pub replayed_per_sec: f64,
    /// Wall-clock time of the replay phase (capture excluded).
    pub elapsed: Duration,
    /// Nodes in each rank's captured graph after the fusion pass.
    pub graph_nodes: usize,
    /// How many of those nodes are fusions of several recorded collectives.
    pub fused_nodes: usize,
}

/// Measure graph-replay throughput: every rank registers `collectives` tiny
/// same-shape all-reduces of `count` f32 elements each, captures one iteration
/// invoking them all, then replays the graph `rounds` times (one invoker
/// thread per rank, each replay a single SQE with a single completion). With
/// `fusion` enabled the capture coalesces the whole step into one fused
/// all-reduce — the DDP-bucketing effect the panel quantifies; with it
/// disabled (`fusion_threshold_bytes = 0`) the graph holds one node per
/// recorded collective at the same total payload, isolating the fusion win
/// from the replay win.
/// How many identical captured graphs each rank keeps in flight (bounded by
/// `rounds`). See the pipelining comment in [`replay_throughput`].
const REPLAY_PIPELINE_DEPTH: usize = 4;

pub fn replay_throughput(
    gpus: usize,
    collectives: u64,
    count: usize,
    rounds: u64,
    fusion: bool,
) -> ReplayResult {
    assert!(gpus >= 2 && collectives > 0 && count > 0 && rounds > 0);
    let config = DfcclConfig {
        fusion_threshold_bytes: if fusion { 64 * 1024 } else { 0 },
        // The panel isolates submission-path overhead (SQE count, expansion,
        // per-collective scheduling), not chunk bandwidth: keep the whole
        // fused payload in one chunk so both arms pay the same execution
        // cost per byte and the difference is pure per-collective overhead.
        chunk_elems: 256 * 1024,
        ..batched_config()
    }
    // The double binary tree halves the all-reduce critical path vs. the
    // ring at 8 ranks (2·log₂ n stages vs. 2(n−1) steps). On the
    // simulator's serialized cores each sequential step costs a thread
    // wake-up, so the shorter critical path is what keeps this panel
    // measuring replay overhead rather than ring latency.
    .with_algorithm(dfccl_collectives::AlgorithmKind::DoubleBinaryTree);
    let domain = DfcclDomain::new(
        Topology::flat(gpus),
        LinkModel::zero_cost(),
        GpuSpec::rtx_3090(),
        config,
    );
    let devices: Vec<GpuId> = (0..gpus).map(GpuId).collect();
    let ranks: Vec<_> = devices
        .iter()
        .map(|&g| Arc::new(domain.init_rank(g).expect("rank init")))
        .collect();
    for rank in &ranks {
        for c in 1..=collectives {
            rank.register_all_reduce(c, count, DataType::F32, ReduceOp::Sum, devices.clone(), 0)
                .expect("register");
        }
    }
    // Capture several identical graphs per rank so replays can pipeline: the
    // in-flight guard serializes rounds of ONE graph, but a training loop
    // that double-buffers iterations keeps more than one captured step in
    // flight, and on the latency-bound single-collective path pipelining is
    // what lets the daemons batch work per wake-up (exactly like the
    // multi-collective submission bench). Same-id concurrency is safe: the
    // per-collective invocation queue is FIFO and every rank expands graphs
    // in the same order.
    let depth = REPLAY_PIPELINE_DEPTH.min(rounds as usize).max(1);
    let mut graphs: Vec<Vec<_>> = Vec::new();
    for (g, rank) in ranks.iter().enumerate() {
        let input = vec![(g + 1) as f32; count];
        let mut rank_graphs = Vec::new();
        for _ in 0..depth {
            let mut rec = rank.begin_capture().expect("capture");
            for c in 1..=collectives {
                rec.record(
                    c,
                    DeviceBuffer::from_f32(&input),
                    DeviceBuffer::zeroed(count * 4),
                )
                .expect("record");
            }
            rank_graphs.push(rec.finish().expect("finish capture"));
        }
        graphs.push(rank_graphs);
    }
    let graph_nodes = graphs[0][0].len();
    let fused_nodes = graphs[0][0].fused_nodes();
    if fusion {
        assert_eq!(
            (graph_nodes, fused_nodes),
            (1, 1),
            "the whole step must fuse into one node"
        );
    } else {
        assert_eq!(
            (graph_nodes as u64, fused_nodes),
            (collectives, 0),
            "fusion disabled must keep one node per collective"
        );
    }

    let start = Instant::now();
    let mut invokers = Vec::new();
    for (g, rank) in ranks.iter().enumerate() {
        let rank = Arc::clone(rank);
        let rank_graphs = graphs[g].clone();
        invokers.push(std::thread::spawn(move || {
            // Round-robin over the captured graphs; a slot is only resubmitted
            // once its previous replay completed (the in-flight guard demands
            // it), so at most `depth` replays are in flight per rank. Retry on
            // a momentarily full SQ like the submission bench.
            let handles: Vec<CompletionHandle> = (0..rank_graphs.len())
                .map(|_| CompletionHandle::new())
                .collect();
            let mut submitted = vec![0u64; rank_graphs.len()];
            for r in 0..rounds {
                let s = (r as usize) % rank_graphs.len();
                if submitted[s] > 0 {
                    assert!(
                        handles[s].wait_for_timeout(submitted[s], Duration::from_secs(120)),
                        "rank {g} replay slot {s} timed out"
                    );
                }
                loop {
                    match rank.replay(&rank_graphs[s], handles[s].completion_callback()) {
                        Ok(()) => break,
                        Err(DfcclError::SubmissionQueueFull) => std::thread::yield_now(),
                        Err(e) => panic!("replay failed: {e}"),
                    }
                }
                submitted[s] += 1;
            }
            for (s, handle) in handles.iter().enumerate() {
                assert!(
                    handle.wait_for_timeout(submitted[s], Duration::from_secs(120)),
                    "rank {g} replay slot {s} drain timed out"
                );
            }
        }));
    }
    for j in invokers {
        j.join().expect("replay thread panicked");
    }
    let elapsed = start.elapsed();
    for rank in &ranks {
        assert!(
            rank.collective_errors().is_empty(),
            "collective errors during replay bench"
        );
        rank.destroy();
    }
    ReplayResult {
        replayed_per_sec: (collectives * rounds) as f64 / elapsed.as_secs_f64(),
        elapsed,
        graph_nodes,
        fused_nodes,
    }
}

/// Best-of wrapper for [`replay_throughput`] (same rationale as [`best_of`]).
pub fn best_replay_of(
    repeats: usize,
    gpus: usize,
    collectives: u64,
    count: usize,
    rounds: u64,
    fusion: bool,
) -> ReplayResult {
    assert!(repeats > 0);
    (0..repeats)
        .map(|_| replay_throughput(gpus, collectives, count, rounds, fusion))
        .max_by(|a, b| {
            a.replayed_per_sec
                .partial_cmp(&b.replayed_per_sec)
                .expect("throughput is finite")
        })
        .expect("at least one repeat")
}

/// Per-readiness-check dispatch cost of the two execution paths, in
/// nanoseconds: interpreted (`step_ready` — `Option<peer>` matching plus
/// `BTreeMap` connector lookups per poll) vs. compiled (`instr_ready` —
/// index dispatch into the flat connector table). Deterministic CPU work
/// over a realistic striped plan, so the comparison is stable on shared CI
/// machines.
#[derive(Debug, Clone, Copy)]
pub struct DispatchCost {
    /// Mean ns per interpreted readiness check.
    pub interpreted_ns: f64,
    /// Mean ns per compiled readiness check.
    pub compiled_ns: f64,
}

/// Rank 0's execution state for the dispatch comparison: the plan and its
/// channels (the interpreted path's inputs) next to the compiled program and
/// its bound connector table (the index-dispatch inputs). Shared between
/// [`dispatch_cost`] and the `dispatch` criterion group in
/// `scheduling_overhead`, so both measure the same workload.
pub struct DispatchFixture {
    /// The interpreted plan.
    pub plan: dfccl_collectives::Plan,
    /// Rank 0's `(peer, channel)`-keyed connectors.
    pub channels: dfccl_transport::RankChannels,
    /// The compiled program.
    pub program: CompiledProgram,
    /// The program's connector indices bound to `channels`.
    pub table: dfccl_transport::ConnectorTable,
}

/// Build the dispatch workload for rank 0 of a `gpus`-rank all-to-all
/// striped over `channels` connectors per edge — the dense-mesh shape
/// (`(n-1) × K` connectors per direction) where per-poll map lookups are
/// deepest, i.e. the MoE-style workload the compilation layer is for.
pub fn dispatch_fixture(gpus: usize, channels: usize) -> DispatchFixture {
    let devices: Vec<GpuId> = (0..gpus).map(GpuId).collect();
    let desc = CollectiveDescriptor::all_to_all(2 * 1024, DataType::F32, devices);
    let topo = Topology::flat(gpus);
    let selector = AlgorithmSelector {
        channels,
        ..Default::default()
    };
    let plan = selector
        .build_plan(&desc, 0, 256, &topo)
        .expect("plan builds");
    let comm = Communicator::new(
        CommunicatorId(0),
        desc.devices.clone(),
        &Arc::new(topo),
        &Arc::new(LinkModel::zero_cost()),
        8,
    )
    .expect("communicator");
    let rank_channels = comm
        .channels(0, plan.send_edges(), plan.recv_edges())
        .expect("channels");
    let program = CompiledProgram::compile(&plan, desc.dtype);
    let table = program.bind(&rank_channels).expect("bind");
    DispatchFixture {
        plan,
        channels: rank_channels,
        program,
        table,
    }
}

/// Measure [`DispatchCost`] over [`dispatch_fixture`]'s workload.
pub fn dispatch_cost(gpus: usize, channels: usize) -> DispatchCost {
    let DispatchFixture {
        plan,
        channels: rank_channels,
        program,
        table,
    } = dispatch_fixture(gpus, channels);
    let pending = PendingSends::default();

    let rounds = 200u32;
    let start = Instant::now();
    for _ in 0..rounds {
        for step in &plan.steps {
            black_box(step_ready(step, &rank_channels, &pending));
        }
    }
    let interpreted_ns = start.elapsed().as_nanos() as f64 / (rounds as usize * plan.len()) as f64;

    let start = Instant::now();
    for _ in 0..rounds {
        for idx in 0..program.len() as u32 {
            black_box(instr_ready(&program, idx, &table, &pending));
        }
    }
    let compiled_ns = start.elapsed().as_nanos() as f64 / (rounds as usize * program.len()) as f64;

    DispatchCost {
        interpreted_ns,
        compiled_ns,
    }
}

/// Mean modelled cost of a single unbatched CQE publication per CQ variant
/// (the Fig. 7(c) comparison), in microseconds.
pub fn cq_push_cost_us(variant: CqVariant, samples: u32) -> f64 {
    let cq = dfccl::build_cq(variant, 64, dfccl::HostMemCosts::default());
    let mut total = Duration::ZERO;
    for i in 0..samples {
        let start = Instant::now();
        assert!(cq.push(dfccl::Cqe {
            coll_id: (i % 1024) as u64
        }));
        total += start.elapsed();
        cq.pop();
    }
    total.as_secs_f64() * 1e6 / samples as f64
}

/// Mean modelled cost per CQE of a batched publication (`push_n` with batches
/// of `batch`) per CQ variant, in microseconds.
pub fn cq_push_batched_cost_us(variant: CqVariant, batch: usize, samples: u32) -> f64 {
    let cq = dfccl::build_cq(variant, batch.max(1) * 4, dfccl::HostMemCosts::default());
    let entries: Vec<dfccl::Cqe> = (0..batch as u64)
        .map(|i| dfccl::Cqe { coll_id: i })
        .collect();
    let mut total = Duration::ZERO;
    let mut drain = Vec::with_capacity(batch);
    for _ in 0..samples {
        let start = Instant::now();
        assert_eq!(cq.push_n(&entries), batch);
        total += start.elapsed();
        drain.clear();
        cq.drain_into(&mut drain);
    }
    total.as_secs_f64() * 1e6 / (samples as usize * batch) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_harness_completes_a_tiny_workload() {
        let wl = HotpathWorkload {
            gpus: 2,
            collectives: 3,
            rounds: 2,
            count: 8,
        };
        // Cost-free config keeps this unit test fast.
        let result = scheduling_throughput(wl, DfcclConfig::for_testing());
        assert_eq!(result.completed, 6);
        assert!(result.collectives_per_sec > 0.0);
    }

    #[test]
    fn recovery_supervised_harness_completes_both_arms() {
        let wl = HotpathWorkload {
            gpus: 2,
            collectives: 3,
            rounds: 2,
            count: 8,
        };
        let plain = recovery_supervised_throughput(wl, DfcclConfig::for_testing(), false);
        assert_eq!(plain.completed, 6);
        assert!(plain.collectives_per_sec > 0.0);
        // The supervised arm must complete the same workload without a single
        // recovery (asserted inside the harness) — it is fault-free.
        let supervised = recovery_supervised_throughput(wl, DfcclConfig::for_testing(), true);
        assert_eq!(supervised.completed, 6);
        assert!(supervised.collectives_per_sec > 0.0);
    }

    #[test]
    fn unbatched_config_only_differs_in_batching() {
        let b = batched_config();
        let u = unbatched_config();
        assert_eq!(b.cq_variant, u.cq_variant);
        assert_eq!(u.sq_fetch_batch, 1);
        assert_eq!(u.cq_write_batch, 1);
        assert!(b.sq_fetch_batch > 1);
    }

    #[test]
    fn replay_throughput_measures_both_fusion_arms() {
        let fused = replay_throughput(2, 6, 16, 2, true);
        assert!(fused.replayed_per_sec > 0.0);
        assert_eq!((fused.graph_nodes, fused.fused_nodes), (1, 1));
        let unfused = replay_throughput(2, 6, 16, 2, false);
        assert!(unfused.replayed_per_sec > 0.0);
        assert_eq!((unfused.graph_nodes, unfused.fused_nodes), (6, 0));
    }

    #[test]
    fn spmd_hit_registration_counts_logical_collectives() {
        // 8 logical collectives registered on both ranks of a 2-GPU domain;
        // the rate must be positive and the call must not wedge or error.
        let rate = spmd_hit_registration_throughput(2, 8);
        assert!(rate > 0.0);
    }

    #[test]
    fn registration_throughput_measures_both_arms() {
        let r = registration_throughput(4, 32);
        assert!(r.cold_per_sec > 0.0 && r.hit_per_sec > 0.0);
        // The cache counters ride along for the panel: 32 hits from the hit
        // arm, 32 distinct shapes built and retained by the cold arm.
        assert_eq!(r.cache.hits, 32);
        assert_eq!(r.cache.misses, 32);
        assert_eq!(r.cache.size, 32);
        // The cache-hit arm skips plan building entirely; even on a noisy
        // machine it must not be slower than cold registration.
        assert!(
            r.speedup() > 1.0,
            "cache hits slower than cold: {:.0}/s vs {:.0}/s",
            r.hit_per_sec,
            r.cold_per_sec
        );
    }

    #[test]
    fn compiled_dispatch_is_not_more_expensive_than_interpreted() {
        let c = dispatch_cost(4, 4);
        assert!(c.interpreted_ns > 0.0 && c.compiled_ns > 0.0);
        assert!(
            c.compiled_ns <= c.interpreted_ns,
            "index dispatch ({:.1} ns) must not cost more than map lookups ({:.1} ns)",
            c.compiled_ns,
            c.interpreted_ns
        );
    }

    #[test]
    fn cq_cost_probes_reproduce_fig7c_ordering() {
        let vanilla = cq_push_cost_us(CqVariant::VanillaRing, 50);
        let ring = cq_push_cost_us(CqVariant::OptimizedRing, 50);
        let slot = cq_push_cost_us(CqVariant::OptimizedSlot, 50);
        assert!(vanilla > ring && ring > slot, "{vanilla} / {ring} / {slot}");
        // Batched ring publication beats its own unbatched cost.
        let ring_batched = cq_push_batched_cost_us(CqVariant::OptimizedRing, 16, 20);
        assert!(ring_batched < ring, "batched {ring_batched} vs {ring}");
    }
}
