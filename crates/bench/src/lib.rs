//! # dfccl-bench — the experiment harness
//!
//! One binary per table/figure of the paper (see `DESIGN.md` for the full
//! experiment index), plus Criterion micro-benchmarks. This library holds the
//! small shared utilities the harness binaries use: table printing, buffer
//! size sweeps, and common argument parsing.

use std::time::Duration;

use dfccl_collectives::{algorithm, estimate_completion_ns, AlgorithmKind, CollectiveDescriptor};
use dfccl_transport::{LinkModel, Topology};

pub mod hotpath;

/// Chunk size (elements) used by the modelled-cost sweeps, matching the
/// runtime's default `chunk_elems` granularity class.
pub const MODELLED_SWEEP_CHUNK_ELEMS: usize = 8 * 1024;

/// Modelled completion time of `desc` under `algo` over `topo` with the
/// Table 2 link parameters, in microseconds — the deterministic quantity the
/// algorithm sweeps and the crossover assertions share. `None` when the
/// algorithm cannot schedule the descriptor over this topology.
pub fn modelled_completion_us(
    desc: &CollectiveDescriptor,
    algo: AlgorithmKind,
    topo: &Topology,
) -> Option<f64> {
    modelled_completion_us_striped(desc, algo, topo, 1)
}

/// [`modelled_completion_us`] with the plans striped across `channels`
/// parallel connectors per edge — the quantity the `channels_sweep` panel
/// tracks. Each channel is an independent modelled lane, so K > 1 raises the
/// aggregate bandwidth of bandwidth-bound schedules.
pub fn modelled_completion_us_striped(
    desc: &CollectiveDescriptor,
    algo: AlgorithmKind,
    topo: &Topology,
    channels: usize,
) -> Option<f64> {
    let generator = algorithm(algo);
    if !generator.supports(desc, topo) {
        return None;
    }
    let plans: Vec<_> = (0..desc.num_ranks())
        .map(|r| {
            generator
                .build_plan_striped(desc, r, MODELLED_SWEEP_CHUNK_ELEMS, channels, topo)
                .expect("supported algorithm builds")
        })
        .collect();
    let ns = estimate_completion_ns(
        &plans,
        &desc.devices,
        topo,
        &LinkModel::table2_testbed(),
        desc.dtype,
    )
    .expect("acyclic plan set completes");
    Some(ns / 1_000.0)
}

/// Parse `--key value` style arguments from `std::env::args`, returning the
/// value for `key` if present.
pub fn arg_value(key: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Parse a `--key value` argument as a number, with a default.
pub fn arg_num<T: std::str::FromStr>(key: &str, default: T) -> T {
    arg_value(key)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The buffer-size sweep used by the NCCL-tests-style benchmarks (Fig. 8):
/// powers of two from `from` to `to` bytes inclusive.
pub fn byte_sweep(from: usize, to: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut b = from.max(1);
    while b <= to {
        out.push(b);
        b *= 2;
    }
    out
}

/// Format a byte count the way nccl-tests does (512, 1K, 4M, ...).
pub fn fmt_bytes(bytes: usize) -> String {
    if bytes >= 1024 * 1024 && bytes.is_multiple_of(1024 * 1024) {
        format!("{}M", bytes / (1024 * 1024))
    } else if bytes >= 1024 && bytes.is_multiple_of(1024) {
        format!("{}K", bytes / 1024)
    } else {
        format!("{bytes}")
    }
}

/// Format a duration in microseconds with two decimals.
pub fn fmt_us(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e6)
}

/// Algorithm bandwidth in GB/s as nccl-tests defines it: payload bytes divided
/// by end-to-end time.
pub fn algo_bandwidth_gbps(bytes: usize, elapsed: Duration) -> f64 {
    if elapsed.is_zero() {
        return 0.0;
    }
    bytes as f64 / elapsed.as_secs_f64() / 1e9
}

/// End index (exclusive) of the JSON value starting at `start` in `doc`:
/// bracket-matched for arrays/objects (string-aware; the emitted documents
/// never escape quotes), up to the next delimiter for scalars.
fn json_value_end(doc: &str, start: usize) -> usize {
    let bytes = doc.as_bytes();
    match bytes[start] {
        b'[' | b'{' => {
            let mut depth = 0usize;
            let mut in_str = false;
            for (i, &b) in bytes[start..].iter().enumerate() {
                match b {
                    b'"' => in_str = !in_str,
                    b'[' | b'{' if !in_str => depth += 1,
                    b']' | b'}' if !in_str => {
                        depth -= 1;
                        if depth == 0 {
                            return start + i + 1;
                        }
                    }
                    _ => {}
                }
            }
            doc.len()
        }
        b'"' => {
            let close = doc[start + 1..].find('"').map(|i| start + i + 2);
            close.unwrap_or(doc.len())
        }
        _ => {
            let mut i = start;
            while i < bytes.len() && !matches!(bytes[i], b',' | b'\n' | b'}' | b']') {
                i += 1;
            }
            i
        }
    }
}

/// Start offset of the value of top-level `key` in `doc`, if present. Only
/// keys at object depth 1 match — an identically named key nested inside a
/// value (e.g. `"gpus"` inside a panel row) is never spliced.
fn json_value_start(doc: &str, key: &str) -> Option<usize> {
    let needle = format!("\"{key}\"");
    let bytes = doc.as_bytes();
    let mut depth = 0usize;
    let mut in_str = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'"' if depth == 1 && !in_str => {
                // A string at top level is a key (our documents are objects of
                // key/value pairs); match it against the needle.
                if doc[i..].starts_with(&needle) {
                    let after = i + needle.len();
                    let colon = after + doc[after..].find(':')?;
                    let vstart = colon
                        + 1
                        + doc[colon + 1..]
                            .bytes()
                            .take_while(|b| b.is_ascii_whitespace())
                            .count();
                    return (vstart < doc.len()).then_some(vstart);
                }
                // Not our key: skip the whole string, then its value.
                let key_end = i + 1 + doc[i + 1..].find('"')? + 1;
                let colon = key_end + doc[key_end..].find(':')?;
                let vstart = colon
                    + 1
                    + doc[colon + 1..]
                        .bytes()
                        .take_while(|b| b.is_ascii_whitespace())
                        .count();
                i = json_value_end(doc, vstart);
                continue;
            }
            b'"' => in_str = !in_str,
            b'{' | b'[' if !in_str => depth += 1,
            b'}' | b']' if !in_str => depth = depth.saturating_sub(1),
            _ => {}
        }
        i += 1;
    }
    None
}

/// Insert or replace top-level `key` in a benchmark JSON document with the
/// pre-rendered `value`. Lets several harness binaries share one output file,
/// each owning its panel without clobbering the others'. An empty or
/// truncated document (no closing brace — e.g. an interrupted earlier run) is
/// rebuilt as a fresh object instead of panicking.
pub fn upsert_json_key(doc: &str, key: &str, value: &str) -> String {
    if let Some(start) = json_value_start(doc, key) {
        let end = json_value_end(doc, start);
        return format!("{}{}{}", &doc[..start], value, &doc[end..]);
    }
    let Some(close) = doc.rfind('}') else {
        return format!("{{\n  \"{key}\": {value}\n}}\n");
    };
    let before = doc[..close].trim_end();
    let comma = if before.ends_with('{') { "" } else { "," };
    format!("{before}{comma}\n  \"{key}\": {value}\n}}\n")
}

/// Print a row of right-aligned columns.
pub fn print_row(cols: &[String], widths: &[usize]) {
    let line: Vec<String> = cols
        .iter()
        .zip(widths.iter())
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect();
    println!("{}", line.join("  "));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_sweep_is_powers_of_two() {
        let s = byte_sweep(512, 4096);
        assert_eq!(s, vec![512, 1024, 2048, 4096]);
        assert!(byte_sweep(8, 4).is_empty());
    }

    #[test]
    fn byte_formatting_matches_nccl_tests_style() {
        assert_eq!(fmt_bytes(512), "512");
        assert_eq!(fmt_bytes(2048), "2K");
        assert_eq!(fmt_bytes(4 * 1024 * 1024), "4M");
        assert_eq!(fmt_bytes(1536), "1536");
    }

    #[test]
    fn bandwidth_and_time_formatting() {
        let bw = algo_bandwidth_gbps(1_000_000_000, Duration::from_secs(1));
        assert!((bw - 1.0).abs() < 1e-9);
        assert_eq!(algo_bandwidth_gbps(1, Duration::ZERO), 0.0);
        assert_eq!(fmt_us(Duration::from_micros(45)), "45.00");
    }

    #[test]
    fn arg_num_falls_back_to_default() {
        assert_eq!(arg_num("--definitely-not-passed", 42usize), 42);
    }

    #[test]
    fn json_upsert_inserts_into_empty_and_nonempty_objects() {
        let doc = upsert_json_key("{\n}\n", "panel", "[1, 2]");
        assert_eq!(doc, "{\n  \"panel\": [1, 2]\n}\n");
        let doc = upsert_json_key(&doc, "flag", "true");
        assert!(doc.contains("\"panel\": [1, 2],"));
        assert!(doc.contains("\"flag\": true"));
        assert!(doc.trim_end().ends_with('}'));
    }

    #[test]
    fn json_upsert_replaces_an_existing_key_in_place() {
        let doc = "{\n  \"a\": [{\"x\": 1}, {\"x\": 2}],\n  \"b\": 3\n}\n";
        let out = upsert_json_key(doc, "a", "[]");
        assert_eq!(out, "{\n  \"a\": [],\n  \"b\": 3\n}\n");
        let out = upsert_json_key(doc, "b", "7");
        assert!(out.contains("\"b\": 7"));
        assert!(out.contains("{\"x\": 2}"));
    }

    #[test]
    fn json_upsert_replaces_values_with_brackets_inside_strings() {
        let doc = "{\n  \"a\": [{\"x\": \"s]\"}, 2],\n  \"b\": \"str\",\n  \"c\": 1.5\n}\n";
        let out = upsert_json_key(doc, "a", "[]");
        assert_eq!(out, "{\n  \"a\": [],\n  \"b\": \"str\",\n  \"c\": 1.5\n}\n");
        let out = upsert_json_key(doc, "b", "\"other\"");
        assert!(out.contains("\"b\": \"other\""));
        assert!(out.contains("{\"x\": \"s]\"}"), "bracket in string spliced");
        let out = upsert_json_key(doc, "c", "2.5");
        assert!(out.contains("\"c\": 2.5"));
    }

    #[test]
    fn json_upsert_ignores_keys_nested_inside_values() {
        // "gpus" appears inside the panel rows; only a top-level "gpus" key
        // may be replaced.
        let doc = "{\n  \"panel\": [{\"gpus\": 4, \"x\": 1}],\n  \"gpus\": 8\n}\n";
        let out = upsert_json_key(doc, "gpus", "16");
        assert!(
            out.contains("{\"gpus\": 4, \"x\": 1}"),
            "nested value spliced"
        );
        assert!(out.contains("\"gpus\": 16"));
        assert!(!out.contains("\"gpus\": 8"));
        // With no top-level occurrence, upsert appends instead of corrupting
        // the nested one.
        let doc = "{\n  \"panel\": [{\"gpus\": 4}]\n}\n";
        let out = upsert_json_key(doc, "gpus", "2");
        assert!(out.contains("{\"gpus\": 4}"));
        assert!(out.contains("\n  \"gpus\": 2\n"));
    }

    #[test]
    fn json_upsert_never_splices_a_prefix_colliding_panel() {
        // Regression: key matching must anchor on the whole quoted key, so a
        // panel whose name is a prefix of another ("alltoall" vs
        // "alltoall_per_size") can never splice the longer panel.
        let doc = upsert_json_key("{\n}\n", "alltoall_per_size", "[{\"bytes\": 4}]");
        let out = upsert_json_key(&doc, "alltoall", "\"short\"");
        assert!(
            out.contains("\"alltoall_per_size\": [{\"bytes\": 4}]"),
            "longer panel spliced by its prefix: {out}"
        );
        assert!(out.contains("\"alltoall\": \"short\""));
        // Updating the shorter key again touches only it, wherever it sits.
        let out2 = upsert_json_key(&out, "alltoall", "\"updated\"");
        assert!(out2.contains("\"alltoall_per_size\": [{\"bytes\": 4}]"));
        assert!(out2.contains("\"alltoall\": \"updated\""));
        assert!(!out2.contains("\"short\""));
        // And updating the longer key touches only the longer one.
        let out3 = upsert_json_key(&out2, "alltoall_per_size", "[]");
        assert!(out3.contains("\"alltoall_per_size\": []"));
        assert!(out3.contains("\"alltoall\": \"updated\""));
    }

    #[test]
    fn json_upsert_never_splices_a_suffix_colliding_panel() {
        // "size" is a suffix of "alltoall_per_size"; "sweep" is a substring
        // of "channels_sweep". Neither may match inside the longer key.
        let mut doc = upsert_json_key("{\n}\n", "alltoall_per_size", "[1]");
        doc = upsert_json_key(&doc, "channels_sweep", "[2]");
        let out = upsert_json_key(&doc, "size", "9");
        assert!(out.contains("\"alltoall_per_size\": [1]"), "{out}");
        assert!(out.contains("\n  \"size\": 9\n"), "{out}");
        let out = upsert_json_key(&out, "sweep", "8");
        assert!(out.contains("\"channels_sweep\": [2]"), "{out}");
        assert!(out.contains("\n  \"sweep\": 8\n"), "{out}");
    }

    #[test]
    fn json_upsert_ignores_key_lookalikes_inside_string_values() {
        // A value string that contains a key lookalike must not be treated
        // as a key position: value strings are jumped over wholesale.
        let doc = "{\n  \"note\": \"the panel: key\",\n  \"panel\": [1]\n}\n";
        let out = upsert_json_key(doc, "panel", "[2]");
        assert!(out.contains("\"panel\": [2]"));
        assert!(out.contains("\"note\": \"the panel: key\""));
    }

    #[test]
    fn json_upsert_rebuilds_empty_or_truncated_documents() {
        // An interrupted earlier run can leave a zero-byte or truncated file;
        // the merge must produce a fresh object, not panic.
        for broken in ["", "   ", "{\n  \"a\": [1, 2"] {
            let out = upsert_json_key(broken, "panel", "[3]");
            assert!(out.contains("\"panel\": [3]"), "input {broken:?}");
            assert!(out.trim_end().ends_with('}'), "input {broken:?}");
        }
    }

    #[test]
    fn upserting_into_an_existing_document_preserves_foreign_panels() {
        let original = upsert_json_key("{\n}\n", "alltoall_per_size", "[{\"bytes\": 4}]");
        // Another binary later upserts its own keys into the same file.
        let merged = upsert_json_key(&original, "bench", "\"algorithms\"");
        assert!(merged.contains("\"bench\": \"algorithms\""));
        assert!(merged.contains("\"alltoall_per_size\": [{\"bytes\": 4}]"));
    }
}
