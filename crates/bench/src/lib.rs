//! # dfccl-bench — the experiment harness
//!
//! One binary per table/figure of the paper (see `DESIGN.md` for the full
//! experiment index), plus Criterion micro-benchmarks. This library holds the
//! small shared utilities the harness binaries use: table printing, buffer
//! size sweeps, and common argument parsing.

use std::time::Duration;

use dfccl_collectives::{algorithm, estimate_completion_ns, AlgorithmKind, CollectiveDescriptor};
use dfccl_transport::{LinkModel, Topology};

pub mod hotpath;

/// Chunk size (elements) used by the modelled-cost sweeps, matching the
/// runtime's default `chunk_elems` granularity class.
pub const MODELLED_SWEEP_CHUNK_ELEMS: usize = 8 * 1024;

/// Modelled completion time of `desc` under `algo` over `topo` with the
/// Table 2 link parameters, in microseconds — the deterministic quantity the
/// algorithm sweeps and the crossover assertions share. `None` when the
/// algorithm cannot schedule the descriptor over this topology.
pub fn modelled_completion_us(
    desc: &CollectiveDescriptor,
    algo: AlgorithmKind,
    topo: &Topology,
) -> Option<f64> {
    let generator = algorithm(algo);
    if !generator.supports(desc, topo) {
        return None;
    }
    let plans: Vec<_> = (0..desc.num_ranks())
        .map(|r| {
            generator
                .build_plan(desc, r, MODELLED_SWEEP_CHUNK_ELEMS, topo)
                .expect("supported algorithm builds")
        })
        .collect();
    let ns = estimate_completion_ns(
        &plans,
        &desc.devices,
        topo,
        &LinkModel::table2_testbed(),
        desc.dtype,
    )
    .expect("acyclic plan set completes");
    Some(ns / 1_000.0)
}

/// Parse `--key value` style arguments from `std::env::args`, returning the
/// value for `key` if present.
pub fn arg_value(key: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Parse a `--key value` argument as a number, with a default.
pub fn arg_num<T: std::str::FromStr>(key: &str, default: T) -> T {
    arg_value(key)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The buffer-size sweep used by the NCCL-tests-style benchmarks (Fig. 8):
/// powers of two from `from` to `to` bytes inclusive.
pub fn byte_sweep(from: usize, to: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut b = from.max(1);
    while b <= to {
        out.push(b);
        b *= 2;
    }
    out
}

/// Format a byte count the way nccl-tests does (512, 1K, 4M, ...).
pub fn fmt_bytes(bytes: usize) -> String {
    if bytes >= 1024 * 1024 && bytes.is_multiple_of(1024 * 1024) {
        format!("{}M", bytes / (1024 * 1024))
    } else if bytes >= 1024 && bytes.is_multiple_of(1024) {
        format!("{}K", bytes / 1024)
    } else {
        format!("{bytes}")
    }
}

/// Format a duration in microseconds with two decimals.
pub fn fmt_us(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e6)
}

/// Algorithm bandwidth in GB/s as nccl-tests defines it: payload bytes divided
/// by end-to-end time.
pub fn algo_bandwidth_gbps(bytes: usize, elapsed: Duration) -> f64 {
    if elapsed.is_zero() {
        return 0.0;
    }
    bytes as f64 / elapsed.as_secs_f64() / 1e9
}

/// Print a row of right-aligned columns.
pub fn print_row(cols: &[String], widths: &[usize]) {
    let line: Vec<String> = cols
        .iter()
        .zip(widths.iter())
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect();
    println!("{}", line.join("  "));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_sweep_is_powers_of_two() {
        let s = byte_sweep(512, 4096);
        assert_eq!(s, vec![512, 1024, 2048, 4096]);
        assert!(byte_sweep(8, 4).is_empty());
    }

    #[test]
    fn byte_formatting_matches_nccl_tests_style() {
        assert_eq!(fmt_bytes(512), "512");
        assert_eq!(fmt_bytes(2048), "2K");
        assert_eq!(fmt_bytes(4 * 1024 * 1024), "4M");
        assert_eq!(fmt_bytes(1536), "1536");
    }

    #[test]
    fn bandwidth_and_time_formatting() {
        let bw = algo_bandwidth_gbps(1_000_000_000, Duration::from_secs(1));
        assert!((bw - 1.0).abs() < 1e-9);
        assert_eq!(algo_bandwidth_gbps(1, Duration::ZERO), 0.0);
        assert_eq!(fmt_us(Duration::from_micros(45)), "45.00");
    }

    #[test]
    fn arg_num_falls_back_to_default() {
        assert_eq!(arg_num("--definitely-not-passed", 42usize), 42);
    }
}
