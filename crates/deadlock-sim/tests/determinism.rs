//! Determinism tests for the Table 1 simulator: `estimate_deadlock_ratio` is
//! a pure function of (config, rounds, seed), and the experiment matrix
//! itself is pinned so refactors cannot silently shift the headline ratios.

use deadlock_sim::{estimate_deadlock_ratio, table1_rows, DecisionModel};

/// Every row's label and paper-reported deadlock ratio, pinned. A change here
/// is a deliberate change to the reproduced experiment matrix, not a detail.
const TABLE1_SNAPSHOT: [(&str, f64); 18] = [
    ("single-queue 3D (4,4,4) disorder=1e-7", 0.0110),
    ("single-queue 3D (4,4,4) disorder=1e-6", 0.0997),
    ("single-queue 3D (8,6,64) disorder=1e-9", 0.0047),
    ("single-queue 3D (8,6,64) disorder=1e-8", 0.0359),
    ("single-queue free (1,8) disorder=1e-5", 0.0121),
    ("single-queue free (32,64) disorder=1e-6", 0.0098),
    ("single-queue free (32,64) disorder=1e-5", 0.0945),
    ("single-queue free (32,128) disorder=1e-6", 0.0172),
    ("sync 3D (4,4,4) disorder=2e-3 sync=4e-3", 0.0068),
    ("sync 3D (4,4,4) disorder=4e-3 sync=4e-3", 0.0138),
    ("sync 3D (4,4,4) disorder=4e-3 sync=2e-3", 0.0032),
    (
        "sync 3D (4,4,4) x2 collectives disorder=4e-3 sync=4e-3",
        0.0256,
    ),
    ("sync 3D (8,6,64) disorder=8e-4 sync=8e-4", 0.0156),
    ("sync free (32,64) disorder=4e-6 sync=4e-5", 0.0081),
    ("sync free (32,64) disorder=4e-5 sync=4e-5", 0.0116),
    ("sync free (32,64) disorder=4e-5 sync=8e-5", 0.0656),
    (
        "sync free (32,64) x2 collectives disorder=4e-5 sync=4e-5",
        0.0694,
    ),
    ("sync free (32,128) disorder=4e-5 sync=4e-5", 0.0234),
];

#[test]
fn table1_rows_snapshot_is_pinned() {
    let rows = table1_rows();
    assert_eq!(rows.len(), TABLE1_SNAPSHOT.len());
    for (row, (label, ratio)) in rows.iter().zip(TABLE1_SNAPSHOT) {
        assert_eq!(row.label, label);
        assert_eq!(row.paper_ratio, ratio, "{label}");
        assert!(row.relative_cost > 0.0, "{label}");
        // The model/probability pairing stays consistent.
        match row.config.model {
            DecisionModel::SingleQueue => assert_eq!(row.config.sync_prob, 0.0, "{label}"),
            DecisionModel::Synchronization => assert!(row.config.sync_prob > 0.0, "{label}"),
        }
    }
}

#[test]
fn estimate_deadlock_ratio_is_seed_stable_across_runs() {
    // Same (config, rounds, seed) -> bit-identical ratio, run after run.
    // Cheap rows only: the (1,8) free row and a (4,4,4) sync row.
    let rows = table1_rows();
    for (row, rounds) in [(&rows[4], 300), (&rows[9], 100)] {
        let a = estimate_deadlock_ratio(&row.config, rounds, 42);
        let b = estimate_deadlock_ratio(&row.config, rounds, 42);
        assert_eq!(a, b, "{} is not seed-stable", row.label);
    }
}

#[test]
fn estimate_depends_on_the_seed_not_on_ambient_state() {
    // Different base seeds sample different rounds; at least one of a small
    // family of seeds must produce a different estimate for a high-variance
    // row (all-equal would mean the seed is ignored).
    let rows = table1_rows();
    let row = &rows[9]; // sync 3D (4,4,4) disorder=4e-3 sync=4e-3
    let base = estimate_deadlock_ratio(&row.config, 60, 0);
    let varied = (1..6u64).any(|s| estimate_deadlock_ratio(&row.config, 60, s * 1_000) != base);
    assert!(varied, "estimates never varied with the seed");
}

#[test]
fn headline_estimates_are_pinned_for_fixed_seeds() {
    // The regression tripwire: these exact values must reproduce on any
    // machine (the RNG is seeded, the simulation has no ambient state). If a
    // refactor of the simulator moves them, Table 1 moved.
    let rows = table1_rows();
    let a = estimate_deadlock_ratio(&rows[4].config, 300, 42);
    assert_eq!(a, 7.0 / 300.0, "single-queue free (1,8): got {a}");
    let b = estimate_deadlock_ratio(&rows[9].config, 100, 42);
    assert_eq!(b, 1.0 / 100.0, "sync 3D (4,4,4): got {b}");
}
