//! The Table 1 experiment matrix: every configuration row of the paper's
//! simulation-based analysis, with the deadlock ratio the paper reports.
//!
//! The `table1_deadlock_sim` harness in `dfccl-bench` re-estimates each row's
//! deadlock ratio with this crate; `EXPERIMENTS.md` records measured vs.
//! paper values. The paper uses 32,000 rounds per row; the harness accepts a
//! round count so the large (3,072-GPU) rows stay tractable on a laptop.

use crate::grouping::GroupingPolicy;
use crate::sim::{DecisionModel, SimConfig};

/// One row of Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Human-readable row label.
    pub label: &'static str,
    /// The simulation configuration for this row.
    pub config: SimConfig,
    /// The deadlock ratio the paper reports (fraction, not percent).
    pub paper_ratio: f64,
    /// Relative cost of simulating one round (used to scale round counts).
    pub relative_cost: f64,
}

fn three_d(tp: usize, dp: usize, pp: usize) -> GroupingPolicy {
    GroupingPolicy::ThreeD {
        tp,
        dp,
        pp,
        tp_collectives: 400,
        dp_collectives: 1200,
    }
}

fn three_d_double(tp: usize, dp: usize, pp: usize) -> GroupingPolicy {
    GroupingPolicy::ThreeD {
        tp,
        dp,
        pp,
        tp_collectives: 800,
        dp_collectives: 2400,
    }
}

fn free_1_8() -> GroupingPolicy {
    GroupingPolicy::free_table1(8, 1, 8, 0, 0, 161, 161)
}

fn free_32_64(collectives_a: usize, collectives_b: usize) -> GroupingPolicy {
    GroupingPolicy::free_table1(64, 28, 3, 4, 8, collectives_a, collectives_b)
}

fn free_32_128(collectives_a: usize, collectives_b: usize) -> GroupingPolicy {
    GroupingPolicy::free_table1(128, 28, 5, 4, 10, collectives_a, collectives_b)
}

/// Every row of Table 1.
pub fn table1_rows() -> Vec<Table1Row> {
    let mut rows = Vec::new();
    let mut push = |label: &'static str,
                    grouping: GroupingPolicy,
                    model: DecisionModel,
                    disorder: f64,
                    sync: f64,
                    paper: f64,
                    cost: f64| {
        rows.push(Table1Row {
            label,
            config: SimConfig {
                grouping,
                model,
                disorder_prob: disorder,
                sync_prob: sync,
            },
            paper_ratio: paper,
            relative_cost: cost,
        });
    };

    // --- Single-queue model, 3D grouping ---
    push(
        "single-queue 3D (4,4,4) disorder=1e-7",
        three_d(4, 4, 4),
        DecisionModel::SingleQueue,
        1e-7,
        0.0,
        0.0110,
        1.0,
    );
    push(
        "single-queue 3D (4,4,4) disorder=1e-6",
        three_d(4, 4, 4),
        DecisionModel::SingleQueue,
        1e-6,
        0.0,
        0.0997,
        1.0,
    );
    push(
        "single-queue 3D (8,6,64) disorder=1e-9",
        three_d(8, 6, 64),
        DecisionModel::SingleQueue,
        1e-9,
        0.0,
        0.0047,
        48.0,
    );
    push(
        "single-queue 3D (8,6,64) disorder=1e-8",
        three_d(8, 6, 64),
        DecisionModel::SingleQueue,
        1e-8,
        0.0,
        0.0359,
        48.0,
    );
    // --- Single-queue model, free grouping ---
    push(
        "single-queue free (1,8) disorder=1e-5",
        free_1_8(),
        DecisionModel::SingleQueue,
        1e-5,
        0.0,
        0.0121,
        0.05,
    );
    push(
        "single-queue free (32,64) disorder=1e-6",
        free_32_64(400, 1200),
        DecisionModel::SingleQueue,
        1e-6,
        0.0,
        0.0098,
        0.6,
    );
    push(
        "single-queue free (32,64) disorder=1e-5",
        free_32_64(400, 1200),
        DecisionModel::SingleQueue,
        1e-5,
        0.0,
        0.0945,
        0.6,
    );
    push(
        "single-queue free (32,128) disorder=1e-6",
        free_32_128(400, 1200),
        DecisionModel::SingleQueue,
        1e-6,
        0.0,
        0.0172,
        1.0,
    );
    // --- Synchronization model, 3D grouping ---
    push(
        "sync 3D (4,4,4) disorder=2e-3 sync=4e-3",
        three_d(4, 4, 4),
        DecisionModel::Synchronization,
        2e-3,
        4e-3,
        0.0068,
        1.0,
    );
    push(
        "sync 3D (4,4,4) disorder=4e-3 sync=4e-3",
        three_d(4, 4, 4),
        DecisionModel::Synchronization,
        4e-3,
        4e-3,
        0.0138,
        1.0,
    );
    push(
        "sync 3D (4,4,4) disorder=4e-3 sync=2e-3",
        three_d(4, 4, 4),
        DecisionModel::Synchronization,
        4e-3,
        2e-3,
        0.0032,
        1.0,
    );
    push(
        "sync 3D (4,4,4) x2 collectives disorder=4e-3 sync=4e-3",
        three_d_double(4, 4, 4),
        DecisionModel::Synchronization,
        4e-3,
        4e-3,
        0.0256,
        2.0,
    );
    push(
        "sync 3D (8,6,64) disorder=8e-4 sync=8e-4",
        three_d(8, 6, 64),
        DecisionModel::Synchronization,
        8e-4,
        8e-4,
        0.0156,
        48.0,
    );
    // --- Synchronization model, free grouping ---
    push(
        "sync free (32,64) disorder=4e-6 sync=4e-5",
        free_32_64(400, 1200),
        DecisionModel::Synchronization,
        4e-6,
        4e-5,
        0.0081,
        0.6,
    );
    push(
        "sync free (32,64) disorder=4e-5 sync=4e-5",
        free_32_64(400, 1200),
        DecisionModel::Synchronization,
        4e-5,
        4e-5,
        0.0116,
        0.6,
    );
    push(
        "sync free (32,64) disorder=4e-5 sync=8e-5",
        free_32_64(400, 1200),
        DecisionModel::Synchronization,
        4e-5,
        8e-5,
        0.0656,
        0.6,
    );
    push(
        "sync free (32,64) x2 collectives disorder=4e-5 sync=4e-5",
        free_32_64(800, 2400),
        DecisionModel::Synchronization,
        4e-5,
        4e-5,
        0.0694,
        1.2,
    );
    push(
        "sync free (32,128) disorder=4e-5 sync=4e-5",
        free_32_128(400, 1200),
        DecisionModel::Synchronization,
        4e-5,
        4e-5,
        0.0234,
        1.0,
    );
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::estimate_deadlock_ratio;

    #[test]
    fn table1_has_all_eighteen_rows() {
        let rows = table1_rows();
        assert_eq!(rows.len(), 18);
        assert!(rows
            .iter()
            .all(|r| r.paper_ratio > 0.0 && r.paper_ratio < 0.15));
        assert!(rows
            .iter()
            .any(|r| r.config.model == DecisionModel::SingleQueue));
        assert!(rows
            .iter()
            .any(|r| r.config.model == DecisionModel::Synchronization));
    }

    #[test]
    fn sync_rows_have_sync_probability_and_single_queue_rows_do_not() {
        for row in table1_rows() {
            match row.config.model {
                DecisionModel::SingleQueue => {
                    assert_eq!(row.config.sync_prob, 0.0, "{}", row.label)
                }
                DecisionModel::Synchronization => {
                    assert!(row.config.sync_prob > 0.0, "{}", row.label)
                }
            }
        }
    }

    #[test]
    fn a_small_row_produces_a_nonzero_ratio_quickly() {
        // The (4,4,4) sync row with the largest probabilities should show a
        // non-trivial deadlock ratio already with a few hundred rounds.
        let row = &table1_rows()[9];
        let ratio = estimate_deadlock_ratio(&row.config, 300, 42);
        assert!(ratio > 0.0, "expected nonzero ratio for {}", row.label);
        assert!(ratio < 0.2, "ratio implausibly high: {ratio}");
    }
}
