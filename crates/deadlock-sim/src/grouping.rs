//! GPU grouping policies: 3D (TP/DP/PP) hybrid parallelism and free grouping.

use serde::{Deserialize, Serialize};

/// One GPU group with its own collective list.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Group {
    /// Group identifier (also the high bits of its collectives' global ids).
    pub id: usize,
    /// GPUs participating in this group.
    pub gpus: Vec<usize>,
    /// Number of collectives planned for this group in one round.
    pub collectives: usize,
}

/// How GPUs are organised into groups.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum GroupingPolicy {
    /// The 3D grouping of tensor/data/pipeline hybrid parallelism (Fig. 3):
    /// GPUs holding the same model part in different TP groups form a DP group
    /// within each PP stage. Every GPU belongs to exactly one TP group and one
    /// DP group.
    ThreeD {
        /// Tensor-parallel group size.
        tp: usize,
        /// Data-parallel group size.
        dp: usize,
        /// Pipeline-parallel group size (number of stages).
        pp: usize,
        /// Collectives per TP group per round.
        tp_collectives: usize,
        /// Collectives per DP group per round.
        dp_collectives: usize,
    },
    /// Explicit groups (the "free grouping policy").
    Free {
        /// The groups, with their GPU lists and collective counts.
        groups: Vec<Group>,
    },
}

impl GroupingPolicy {
    /// Total number of GPUs involved.
    pub fn gpu_count(&self) -> usize {
        match self {
            GroupingPolicy::ThreeD { tp, dp, pp, .. } => tp * dp * pp,
            GroupingPolicy::Free { groups } => groups
                .iter()
                .flat_map(|g| g.gpus.iter().copied())
                .max()
                .map_or(0, |m| m + 1),
        }
    }

    /// Materialise the groups.
    ///
    /// For the 3D policy, GPU indices are laid out as
    /// `gpu = pp_idx * (tp * dp) + dp_idx * tp + tp_idx`: a TP group varies
    /// `tp_idx`, a DP group varies `dp_idx`.
    pub fn build_groups(&self) -> Vec<Group> {
        match self {
            GroupingPolicy::ThreeD {
                tp,
                dp,
                pp,
                tp_collectives,
                dp_collectives,
            } => {
                let mut groups = Vec::new();
                let mut id = 0;
                // TP groups: one per (pp stage, dp replica).
                for p in 0..*pp {
                    for d in 0..*dp {
                        let gpus = (0..*tp).map(|t| p * tp * dp + d * tp + t).collect();
                        groups.push(Group {
                            id,
                            gpus,
                            collectives: *tp_collectives,
                        });
                        id += 1;
                    }
                }
                // DP groups: one per (pp stage, tp shard).
                for p in 0..*pp {
                    for t in 0..*tp {
                        let gpus = (0..*dp).map(|d| p * tp * dp + d * tp + t).collect();
                        groups.push(Group {
                            id,
                            gpus,
                            collectives: *dp_collectives,
                        });
                        id += 1;
                    }
                }
                groups
            }
            GroupingPolicy::Free { groups } => groups.clone(),
        }
    }

    /// The free-grouping configuration used in Table 1: `group_count` groups
    /// where the first `small_groups` have `small_size` GPUs each and the rest
    /// have `large_size` GPUs; half of the groups get `collectives_a`
    /// collectives, the other half `collectives_b`. GPUs are assigned to
    /// groups round-robin so that groups overlap on GPUs (a GPU may belong to
    /// one to several groups), mirroring the irregular Pathways-like scenario.
    pub fn free_table1(
        gpu_count: usize,
        small_groups: usize,
        small_size: usize,
        large_groups: usize,
        large_size: usize,
        collectives_a: usize,
        collectives_b: usize,
    ) -> Self {
        let total_groups = small_groups + large_groups;
        let mut groups = Vec::with_capacity(total_groups);
        let mut next_gpu = 0usize;
        for id in 0..total_groups {
            let size = if id < small_groups {
                small_size
            } else {
                large_size
            };
            let gpus: Vec<usize> = (0..size).map(|k| (next_gpu + k) % gpu_count).collect();
            next_gpu = (next_gpu + size) % gpu_count;
            let collectives = if id % 2 == 0 {
                collectives_a
            } else {
                collectives_b
            };
            groups.push(Group {
                id,
                gpus,
                collectives,
            });
        }
        GroupingPolicy::Free { groups }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn three_d_4_4_4_matches_table1_shape() {
        let policy = GroupingPolicy::ThreeD {
            tp: 4,
            dp: 4,
            pp: 4,
            tp_collectives: 400,
            dp_collectives: 1200,
        };
        assert_eq!(policy.gpu_count(), 64);
        let groups = policy.build_groups();
        // Table 1: 32 groups over 64 GPUs.
        assert_eq!(groups.len(), 32);
        // Every GPU belongs to exactly two groups (one TP, one DP).
        let mut membership: HashMap<usize, usize> = HashMap::new();
        for g in &groups {
            for &gpu in &g.gpus {
                *membership.entry(gpu).or_default() += 1;
            }
        }
        assert_eq!(membership.len(), 64);
        assert!(membership.values().all(|&c| c == 2));
        // Collective counts are 400 (TP) and 1200 (DP).
        assert_eq!(groups.iter().filter(|g| g.collectives == 400).count(), 16);
        assert_eq!(groups.iter().filter(|g| g.collectives == 1200).count(), 16);
    }

    #[test]
    fn three_d_8_6_64_matches_gpt3_scale() {
        let policy = GroupingPolicy::ThreeD {
            tp: 8,
            dp: 6,
            pp: 64,
            tp_collectives: 400,
            dp_collectives: 1200,
        };
        assert_eq!(policy.gpu_count(), 3072);
        let groups = policy.build_groups();
        // 64*6 TP groups + 64*8 DP groups = 896 groups (Table 1).
        assert_eq!(groups.len(), 896);
    }

    #[test]
    fn tp_and_dp_groups_are_orthogonal() {
        let policy = GroupingPolicy::ThreeD {
            tp: 2,
            dp: 2,
            pp: 1,
            tp_collectives: 3,
            dp_collectives: 5,
        };
        let groups = policy.build_groups();
        assert_eq!(groups.len(), 4);
        // TP groups: {0,1}, {2,3}; DP groups: {0,2}, {1,3}.
        let sets: Vec<Vec<usize>> = groups.iter().map(|g| g.gpus.clone()).collect();
        assert!(sets.contains(&vec![0, 1]));
        assert!(sets.contains(&vec![2, 3]));
        assert!(sets.contains(&vec![0, 2]));
        assert!(sets.contains(&vec![1, 3]));
    }

    #[test]
    fn free_grouping_single_group() {
        let policy = GroupingPolicy::Free {
            groups: vec![Group {
                id: 0,
                gpus: (0..8).collect(),
                collectives: 161,
            }],
        };
        assert_eq!(policy.gpu_count(), 8);
        assert_eq!(policy.build_groups().len(), 1);
    }

    #[test]
    fn free_table1_32_64_has_expected_sizes() {
        // 28 groups of three GPUs and four groups of eight GPUs over 64 GPUs.
        let policy = GroupingPolicy::free_table1(64, 28, 3, 4, 8, 400, 1200);
        let groups = policy.build_groups();
        assert_eq!(groups.len(), 32);
        assert_eq!(groups.iter().filter(|g| g.gpus.len() == 3).count(), 28);
        assert_eq!(groups.iter().filter(|g| g.gpus.len() == 8).count(), 4);
        // Half the groups have 400 collectives, half 1200.
        assert_eq!(groups.iter().filter(|g| g.collectives == 400).count(), 16);
        assert_eq!(groups.iter().filter(|g| g.collectives == 1200).count(), 16);
        // GPUs are covered with overlap varying between groups.
        let mut membership = vec![0usize; 64];
        for g in &groups {
            for &gpu in &g.gpus {
                membership[gpu] += 1;
            }
        }
        assert!(membership.iter().any(|&m| m >= 1));
    }
}
