//! The dependency graph of Sec. 2.4.1 / Fig. 2 and its cycle check.
//!
//! Nodes are collective *parts* — (GPU, collective) pairs. Two kinds of
//! directed edges exist:
//!
//! 1. an **executing** collective part points to all its **invoked** (not yet
//!    executing) counterparts on other GPUs — it waits for them;
//! 2. an **invoked** collective part points to all executing collective parts
//!    on the same GPU — it waits for them to release resources (or to let a
//!    pending synchronization clear).
//!
//! A deadlock corresponds to a cycle in this graph.

use std::collections::{HashMap, HashSet};

use crate::sim::{Event, RoundState};

/// A materialised dependency graph.
#[derive(Debug, Default)]
pub struct DependencyGraph {
    /// Node list: (gpu, collective).
    pub nodes: Vec<(usize, usize)>,
    /// Adjacency by node index.
    pub edges: HashMap<usize, Vec<usize>>,
}

impl DependencyGraph {
    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.values().map(Vec::len).sum()
    }
}

/// Build the dependency graph for the (possibly stalled) state of one round.
/// Successful collectives are omitted: they are executing on every GPU, have
/// no invoked counterparts, and therefore can never participate in a cycle.
pub fn build_dependency_graph(state: &RoundState) -> DependencyGraph {
    let gpu_count = state.events.len();
    // Which (gpu, coll) parts have been released (are executing).
    let mut released: Vec<HashSet<usize>> = vec![HashSet::new(); gpu_count];
    for (gpu, rel) in released.iter_mut().enumerate() {
        for event in &state.events[gpu][..state.frontier[gpu]] {
            if let Event::Invoke(c) = event {
                rel.insert(*c);
            }
        }
    }
    let mut graph = DependencyGraph::default();
    let mut node_index: HashMap<(usize, usize), usize> = HashMap::new();
    let mut node_of = |graph: &mut DependencyGraph, gpu: usize, coll: usize| -> usize {
        *node_index.entry((gpu, coll)).or_insert_with(|| {
            graph.nodes.push((gpu, coll));
            graph.nodes.len() - 1
        })
    };
    // Executing, unsuccessful collectives per GPU (targets of type-2 edges).
    let mut executing_per_gpu: Vec<Vec<usize>> = vec![Vec::new(); gpu_count];
    for (coll, gpus) in state.coll_gpus.iter().enumerate() {
        if state.successful[coll] {
            continue;
        }
        for &g in gpus {
            if released[g].contains(&coll) {
                executing_per_gpu[g].push(coll);
            }
        }
    }
    for (coll, gpus) in state.coll_gpus.iter().enumerate() {
        if state.successful[coll] {
            continue;
        }
        for &g in gpus {
            let from = node_of(&mut graph, g, coll);
            if released[g].contains(&coll) {
                // Type-1 edges: executing part waits for invoked counterparts.
                for &peer in gpus {
                    if peer != g && !released[peer].contains(&coll) {
                        let to = node_of(&mut graph, peer, coll);
                        graph.edges.entry(from).or_default().push(to);
                    }
                }
            } else {
                // Type-2 edges: invoked part waits for executing parts on the
                // same GPU.
                for &other in &executing_per_gpu[g] {
                    if other != coll {
                        let to = node_of(&mut graph, g, other);
                        graph.edges.entry(from).or_default().push(to);
                    }
                }
            }
        }
    }
    graph
}

/// Whether the graph contains a directed cycle (iterative three-colour DFS).
pub fn has_cycle(graph: &DependencyGraph) -> bool {
    #[derive(Clone, Copy, PartialEq)]
    enum Colour {
        White,
        Grey,
        Black,
    }
    let n = graph.nodes.len();
    let mut colour = vec![Colour::White; n];
    for start in 0..n {
        if colour[start] != Colour::White {
            continue;
        }
        // Stack of (node, next-child-index).
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        colour[start] = Colour::Grey;
        while let Some(&mut (node, ref mut child)) = stack.last_mut() {
            let children = graph.edges.get(&node).map(Vec::as_slice).unwrap_or(&[]);
            if *child < children.len() {
                let next = children[*child];
                *child += 1;
                match colour[next] {
                    Colour::Grey => return true,
                    Colour::White => {
                        colour[next] = Colour::Grey;
                        stack.push((next, 0));
                    }
                    Colour::Black => {}
                }
            } else {
                colour[node] = Colour::Black;
                stack.pop();
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{run_round_state, DecisionModel, Event};

    #[test]
    fn empty_graph_has_no_cycle() {
        let g = DependencyGraph::default();
        assert!(!has_cycle(&g));
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn self_loop_free_chain_has_no_cycle() {
        let mut g = DependencyGraph {
            nodes: vec![(0, 0), (1, 0), (1, 1)],
            ..Default::default()
        };
        g.edges.insert(0, vec![1]);
        g.edges.insert(1, vec![2]);
        assert!(!has_cycle(&g));
    }

    #[test]
    fn explicit_cycle_is_detected() {
        let mut g = DependencyGraph {
            nodes: vec![(0, 0), (0, 1), (1, 1), (1, 0)],
            ..Default::default()
        };
        g.edges.insert(0, vec![1]);
        g.edges.insert(1, vec![2]);
        g.edges.insert(2, vec![3]);
        g.edges.insert(3, vec![0]);
        assert!(has_cycle(&g));
    }

    #[test]
    fn graph_of_successful_round_is_empty() {
        let coll_gpus = vec![vec![0, 1]];
        let events = vec![vec![Event::Invoke(0)], vec![Event::Invoke(0)]];
        let state = run_round_state(events, coll_gpus, DecisionModel::SingleQueue);
        assert!(state.all_successful());
        let g = build_dependency_graph(&state);
        assert_eq!(g.node_count(), 0);
        assert!(!has_cycle(&g));
    }

    #[test]
    fn fig1c_cycle_matches_paper_structure() {
        // GPU 0 invokes A (0) then B (1); GPU 1 invokes B then A; single queue.
        let coll_gpus = vec![vec![0, 1], vec![0, 1]];
        let events = vec![
            vec![Event::Invoke(0), Event::Invoke(1)],
            vec![Event::Invoke(1), Event::Invoke(0)],
        ];
        let state = run_round_state(events, coll_gpus, DecisionModel::SingleQueue);
        let g = build_dependency_graph(&state);
        // Four parts, four edges, one cycle: A0 -> A1 -> B1 -> B0 -> A0.
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert!(has_cycle(&g));
    }
}
