//! # deadlock-sim — the quantitative deadlock simulator of Sec. 2.4
//!
//! The simulator answers: *given how often GPUs invoke collectives in
//! different orders (the disorder probability) and how often they issue GPU
//! synchronization (the synchronization probability), how likely is a
//! deadlock?* It drives Table 1 of the paper.
//!
//! Model summary:
//!
//! * GPUs are organised into **groups** ([`grouping`]); each group has its own
//!   list of collectives, and a GPU invokes the union of the collectives of
//!   all groups it belongs to. Two grouping policies are provided: the 3D
//!   (TP/DP/PP) policy of hybrid-parallel training and a free policy.
//! * Each GPU gets a synthesized **event sequence** (collective invocations,
//!   possibly perturbed by disorder, plus random synchronization events).
//! * Two **deadlock decision models** ([`sim::DecisionModel`]): the
//!   single-queue model (one executing collective per GPU at a time) and the
//!   synchronization model (unlimited concurrency, but a synchronization
//!   suspends the GPU until every executing collective before it succeeds).
//! * A collective becomes *successful* once it is executing on every GPU of
//!   its group. A round deadlocks if the system reaches a state where no
//!   further transition is possible while collectives remain unsuccessful —
//!   equivalently, when the dependency graph of Fig. 2 contains a cycle
//!   ([`graph`]).

pub mod graph;
pub mod grouping;
pub mod sim;
pub mod table1;

pub use graph::{build_dependency_graph, has_cycle, DependencyGraph};
pub use grouping::{Group, GroupingPolicy};
pub use sim::{estimate_deadlock_ratio, simulate_round, DecisionModel, RoundOutcome, SimConfig};
pub use table1::{table1_rows, Table1Row};
