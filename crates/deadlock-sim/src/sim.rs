//! The round simulator: event synthesis, state transition, deadlock decision.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::grouping::{Group, GroupingPolicy};

/// The deadlock decision model in force (Sec. 2.4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecisionModel {
    /// One executing collective per GPU; a collective executes only when no
    /// executing or invoked collective precedes it on that GPU.
    SingleQueue,
    /// Unlimited executing collectives; random synchronization events suspend
    /// a GPU until every executing collective before them succeeds.
    Synchronization,
}

/// Configuration of one simulation experiment.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// GPU grouping policy.
    pub grouping: GroupingPolicy,
    /// Decision model.
    pub model: DecisionModel,
    /// Probability that two adjacent collective invocations on a GPU are
    /// swapped (applied independently at every position on every GPU).
    pub disorder_prob: f64,
    /// Probability that a synchronization event is inserted after a collective
    /// invocation (synchronization model only).
    pub sync_prob: f64,
}

/// Outcome of one simulated round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoundOutcome {
    /// Every collective became successful.
    AllSuccessful,
    /// Progress stalled with unsuccessful collectives remaining.
    Deadlock,
}

/// One event in a GPU's synthesized sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// Invoke the collective with this global index.
    Invoke(usize),
    /// Issue a GPU synchronization.
    Sync,
}

/// Fully expanded per-round state, exposed so the dependency-graph check and
/// the tests can inspect it.
#[derive(Debug)]
pub struct RoundState {
    /// Per-GPU event sequences.
    pub events: Vec<Vec<Event>>,
    /// Per-GPU frontier: number of leading events already released
    /// (collectives executing / synchronizations cleared).
    pub frontier: Vec<usize>,
    /// For every collective (global index): the GPUs of its group.
    pub coll_gpus: Vec<Vec<usize>>,
    /// For every collective: how many of its GPUs have released it.
    pub executing_on: Vec<usize>,
    /// For every collective: whether it is successful.
    pub successful: Vec<bool>,
    /// Per-GPU count of released-but-unsuccessful collectives.
    pub pending: Vec<usize>,
}

impl RoundState {
    /// Whether every collective is successful.
    pub fn all_successful(&self) -> bool {
        self.successful.iter().all(|&s| s)
    }
}

/// Synthesize the per-GPU event sequences for one round.
///
/// Each GPU's canonical order is the global-index order of the collectives of
/// all groups it belongs to. Disorder swaps adjacent invocations with the
/// configured probability; the synchronization model additionally inserts
/// synchronization events.
pub fn synthesize_events(
    groups: &[Group],
    gpu_count: usize,
    config: &SimConfig,
    rng: &mut StdRng,
) -> (Vec<Vec<Event>>, Vec<Vec<usize>>) {
    // Assign global indices: group g's k-th collective has a unique index.
    let mut coll_gpus: Vec<Vec<usize>> = Vec::new();
    let mut per_gpu_colls: Vec<Vec<usize>> = vec![Vec::new(); gpu_count];
    for group in groups {
        for _k in 0..group.collectives {
            let idx = coll_gpus.len();
            coll_gpus.push(group.gpus.clone());
            for &gpu in &group.gpus {
                per_gpu_colls[gpu].push(idx);
            }
        }
    }
    let mut events: Vec<Vec<Event>> = Vec::with_capacity(gpu_count);
    for colls in per_gpu_colls.iter() {
        // Canonical order: ascending global index (identical on every GPU).
        let mut order = colls.clone();
        order.sort_unstable();
        // Disordered invocation: independent adjacent swaps.
        if config.disorder_prob > 0.0 {
            for i in 0..order.len().saturating_sub(1) {
                if rng.gen_bool(config.disorder_prob.min(1.0)) {
                    order.swap(i, i + 1);
                }
            }
        }
        let mut seq = Vec::with_capacity(order.len() * 2);
        for idx in order {
            seq.push(Event::Invoke(idx));
            if config.model == DecisionModel::Synchronization
                && config.sync_prob > 0.0
                && rng.gen_bool(config.sync_prob.min(1.0))
            {
                seq.push(Event::Sync);
            }
        }
        events.push(seq);
    }
    (events, coll_gpus)
}

/// Run the state-transition fixed point for one round and decide the outcome.
pub fn run_round_state(
    events: Vec<Vec<Event>>,
    coll_gpus: Vec<Vec<usize>>,
    model: DecisionModel,
) -> RoundState {
    let gpu_count = events.len();
    let coll_count = coll_gpus.len();
    let mut state = RoundState {
        events,
        frontier: vec![0; gpu_count],
        coll_gpus,
        executing_on: vec![0; coll_count],
        successful: vec![false; coll_count],
        pending: vec![0; gpu_count],
    };
    // Work-list of GPUs whose frontier may be able to advance.
    let mut work: Vec<usize> = (0..gpu_count).collect();
    while let Some(gpu) = work.pop() {
        loop {
            let f = state.frontier[gpu];
            let Some(&event) = state.events[gpu].get(f) else {
                break;
            };
            match event {
                Event::Invoke(coll) => {
                    // Single-queue: only one in flight at a time.
                    if model == DecisionModel::SingleQueue && state.pending[gpu] > 0 {
                        break;
                    }
                    state.frontier[gpu] = f + 1;
                    state.pending[gpu] += 1;
                    state.executing_on[coll] += 1;
                    if state.executing_on[coll] == state.coll_gpus[coll].len()
                        && !state.successful[coll]
                    {
                        state.successful[coll] = true;
                        for &g in &state.coll_gpus[coll].clone() {
                            state.pending[g] -= 1;
                            if g != gpu {
                                work.push(g);
                            }
                        }
                    }
                }
                Event::Sync => {
                    // A synchronization clears only when every executing
                    // collective before it on this GPU is successful.
                    if state.pending[gpu] > 0 {
                        break;
                    }
                    state.frontier[gpu] = f + 1;
                }
            }
        }
    }
    state
}

/// Simulate a single round with the given seed.
pub fn simulate_round(config: &SimConfig, seed: u64) -> RoundOutcome {
    let groups = config.grouping.build_groups();
    let gpu_count = config.grouping.gpu_count();
    let mut rng = StdRng::seed_from_u64(seed);
    let (events, coll_gpus) = synthesize_events(&groups, gpu_count, config, &mut rng);
    let state = run_round_state(events, coll_gpus, config.model);
    if state.all_successful() {
        RoundOutcome::AllSuccessful
    } else {
        RoundOutcome::Deadlock
    }
}

/// Estimate the deadlock ratio over `rounds` independent rounds.
pub fn estimate_deadlock_ratio(config: &SimConfig, rounds: usize, base_seed: u64) -> f64 {
    assert!(rounds > 0, "need at least one round");
    let deadlocks = (0..rounds)
        .filter(|&r| {
            simulate_round(config, base_seed.wrapping_add(r as u64)) == RoundOutcome::Deadlock
        })
        .count();
    deadlocks as f64 / rounds as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{build_dependency_graph, has_cycle};
    use crate::grouping::Group;
    use proptest::prelude::*;

    fn two_gpu_two_coll() -> (Vec<Vec<usize>>, Vec<Group>) {
        let groups = vec![
            Group {
                id: 0,
                gpus: vec![0, 1],
                collectives: 1,
            },
            Group {
                id: 1,
                gpus: vec![0, 1],
                collectives: 1,
            },
        ];
        let coll_gpus = vec![vec![0, 1], vec![0, 1]];
        (coll_gpus, groups)
    }

    #[test]
    fn consistent_order_never_deadlocks_single_queue() {
        let (coll_gpus, _) = two_gpu_two_coll();
        // Both GPUs invoke collective 0 then 1.
        let events = vec![
            vec![Event::Invoke(0), Event::Invoke(1)],
            vec![Event::Invoke(0), Event::Invoke(1)],
        ];
        let state = run_round_state(events, coll_gpus, DecisionModel::SingleQueue);
        assert!(state.all_successful());
    }

    #[test]
    fn disordered_single_queue_deadlocks() {
        let (coll_gpus, _) = two_gpu_two_coll();
        // Fig. 1(c): GPU 0 invokes A then B, GPU 1 invokes B then A.
        let events = vec![
            vec![Event::Invoke(0), Event::Invoke(1)],
            vec![Event::Invoke(1), Event::Invoke(0)],
        ];
        let state = run_round_state(events, coll_gpus, DecisionModel::SingleQueue);
        assert!(!state.all_successful());
        let graph = build_dependency_graph(&state);
        assert!(has_cycle(&graph), "a stalled round must contain a cycle");
    }

    #[test]
    fn disorder_without_sync_is_fine_in_the_sync_model() {
        let (coll_gpus, _) = two_gpu_two_coll();
        // Fig. 1(b): unlimited concurrency absorbs the disorder.
        let events = vec![
            vec![Event::Invoke(0), Event::Invoke(1)],
            vec![Event::Invoke(1), Event::Invoke(0)],
        ];
        let state = run_round_state(events, coll_gpus, DecisionModel::Synchronization);
        assert!(state.all_successful());
    }

    #[test]
    fn disorder_with_sync_between_collectives_deadlocks() {
        let (coll_gpus, _) = two_gpu_two_coll();
        // Fig. 1(d): a synchronization between the two disordered invocations.
        let events = vec![
            vec![Event::Invoke(0), Event::Sync, Event::Invoke(1)],
            vec![Event::Invoke(1), Event::Sync, Event::Invoke(0)],
        ];
        let state = run_round_state(events, coll_gpus, DecisionModel::Synchronization);
        assert!(!state.all_successful());
        assert!(has_cycle(&build_dependency_graph(&state)));
    }

    #[test]
    fn fig2_example_deadlocks_in_the_sync_model() {
        // Four GPUs, five collectives A..E invoked in the orders of Fig. 2,
        // with a synchronization after the third invocation on every GPU.
        // A=0, B=1, C=2, D=3, E=4; all collectives span all four GPUs.
        let coll_gpus = vec![vec![0, 1, 2, 3]; 5];
        let events = vec![
            vec![
                Event::Invoke(0),
                Event::Invoke(1),
                Event::Invoke(2),
                Event::Sync,
                Event::Invoke(3),
                Event::Invoke(4),
            ],
            vec![
                Event::Invoke(1),
                Event::Invoke(2),
                Event::Invoke(3),
                Event::Sync,
                Event::Invoke(0),
                Event::Invoke(4),
            ],
            vec![
                Event::Invoke(0),
                Event::Invoke(2),
                Event::Invoke(3),
                Event::Sync,
                Event::Invoke(1),
                Event::Invoke(4),
            ],
            vec![
                Event::Invoke(0),
                Event::Invoke(1),
                Event::Invoke(3),
                Event::Sync,
                Event::Invoke(2),
                Event::Invoke(4),
            ],
        ];
        let state = run_round_state(events, coll_gpus, DecisionModel::Synchronization);
        assert!(!state.all_successful());
        assert!(has_cycle(&build_dependency_graph(&state)));
    }

    #[test]
    fn zero_probabilities_never_deadlock() {
        let config = SimConfig {
            grouping: GroupingPolicy::ThreeD {
                tp: 2,
                dp: 2,
                pp: 2,
                tp_collectives: 20,
                dp_collectives: 30,
            },
            model: DecisionModel::Synchronization,
            disorder_prob: 0.0,
            sync_prob: 0.0,
        };
        assert_eq!(estimate_deadlock_ratio(&config, 20, 1), 0.0);
        let sq = SimConfig {
            model: DecisionModel::SingleQueue,
            ..config
        };
        assert_eq!(estimate_deadlock_ratio(&sq, 20, 1), 0.0);
    }

    #[test]
    fn high_probabilities_deadlock_frequently() {
        let config = SimConfig {
            grouping: GroupingPolicy::free_table1(8, 2, 3, 2, 4, 30, 60),
            model: DecisionModel::Synchronization,
            disorder_prob: 0.2,
            sync_prob: 0.2,
        };
        let ratio = estimate_deadlock_ratio(&config, 50, 7);
        assert!(ratio > 0.5, "ratio was {ratio}");
    }

    #[test]
    fn deadlock_ratio_grows_with_sync_probability() {
        let base = SimConfig {
            grouping: GroupingPolicy::free_table1(16, 4, 3, 2, 8, 50, 100),
            model: DecisionModel::Synchronization,
            disorder_prob: 0.002,
            sync_prob: 0.002,
        };
        let low = estimate_deadlock_ratio(&base, 200, 11);
        let high = estimate_deadlock_ratio(
            &SimConfig {
                sync_prob: 0.02,
                ..base.clone()
            },
            200,
            11,
        );
        assert!(high >= low, "low={low} high={high}");
    }

    #[test]
    fn single_queue_is_sensitive_to_tiny_disorder() {
        let config = SimConfig {
            grouping: GroupingPolicy::ThreeD {
                tp: 2,
                dp: 2,
                pp: 2,
                tp_collectives: 100,
                dp_collectives: 200,
            },
            model: DecisionModel::SingleQueue,
            disorder_prob: 1e-3,
            sync_prob: 0.0,
        };
        let ratio = estimate_deadlock_ratio(&config, 200, 3);
        // The deadlock ratio is orders of magnitude above the disorder
        // probability (conclusion ❶ of Sec. 2.4.3).
        assert!(ratio > 10.0 * 1e-3, "ratio was {ratio}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Whatever the random configuration, a stalled round always contains
        /// a dependency-graph cycle, and a fully successful round never does.
        #[test]
        fn stall_iff_cycle(
            seed in 0u64..10_000,
            disorder in 0.0f64..0.3,
            sync in 0.0f64..0.3,
            single_queue in proptest::bool::ANY,
        ) {
            let model = if single_queue {
                DecisionModel::SingleQueue
            } else {
                DecisionModel::Synchronization
            };
            let config = SimConfig {
                grouping: GroupingPolicy::free_table1(6, 2, 2, 2, 3, 8, 12),
                model,
                disorder_prob: disorder,
                sync_prob: sync,
            };
            let groups = config.grouping.build_groups();
            let mut rng = StdRng::seed_from_u64(seed);
            let (events, coll_gpus) =
                synthesize_events(&groups, config.grouping.gpu_count(), &config, &mut rng);
            let state = run_round_state(events, coll_gpus, model);
            let cycle = has_cycle(&build_dependency_graph(&state));
            prop_assert_eq!(!state.all_successful(), cycle);
        }
    }
}
