//! Executing primitives against a rank's connectors and local buffers.
//!
//! The executor is deliberately split into two calls:
//!
//! * [`step_ready`] — whether the connector conditions the primitive needs
//!   (free slot towards the send peer, available chunk from the recv peer)
//!   currently hold. This is the condition a primitive busy-waits on. DFCCL's
//!   daemon kernel polls it up to a spin threshold and preempts the
//!   collective when the bound is exceeded; the NCCL-like baseline polls it
//!   forever.
//! * [`execute_ready_step`] — runs the primitive once the conditions hold.
//!   The primitive consumes at most one chunk, produces at most one chunk, and
//!   never blocks, so a collective can be suspended before or after any
//!   primitive without losing data (the context is just the index of the next
//!   primitive to run). This holds for every algorithm family — preemption
//!   safety is a property of the primitive contract, not of the schedule.
//!
//! Peers are explicit on each step, and the channels are a per-peer connector
//! map, so the same executor drives ring, tree and hierarchical schedules.
//!
//! ## The staging slots
//!
//! A fused primitive (`RecvReduceSend` and friends) consumes a chunk *and*
//! publishes one. If its readiness required both a waiting chunk and a free
//! send slot, a ring of such primitives over 1-slot connectors would deadlock
//! immediately: every rank's fused step waits for a send slot that only its
//! successor's fused step can free. The executor therefore gates fused
//! primitives on their *recv* condition only and stages the outbound chunk in
//! a [`PendingSend`] slot when the connector is full — the moral equivalent
//! of NCCL's sender-side intermediate buffer.
//!
//! Staging (and the flow control it implements) is **per channel**
//! ([`PendingSends`] holds at most one staged chunk per [`ChannelId`]): a
//! chunk staged on channel `c` must be flushed before the next channel-`c`
//! primitive runs — which preserves FIFO order on every channel-`c` edge —
//! but it never gates a primitive riding a different channel, so one stalled
//! channel cannot head-of-line-block another. The slots are part of the
//! dynamic context, so preemption remains safe at every primitive boundary
//! and a suspended collective resumes with all of its channels' staged
//! chunks intact.

use dfccl_transport::{ChannelId, ChunkMsg, Connector, ConnectorTable, RankChannels, SendError};

use crate::buffer::DeviceBuffer;
use crate::collective::CollectiveDescriptor;
use crate::datatype::DataType;
use crate::primitive::{PrimitiveKind, PrimitiveStep, SrcBuf};
use crate::program::CompiledProgram;
use crate::redop::{reduce_into, ReduceOp};
use crate::CollectiveError;

/// Result of attempting one primitive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// The primitive executed.
    Completed,
    /// The connector conditions were not met; nothing was consumed or produced.
    NotReady,
}

/// Errors raised during primitive execution. These indicate a broken plan or a
/// corrupted connector stream, not a transient condition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The incoming chunk's payload size does not match the primitive's range.
    PayloadSizeMismatch { expected: usize, actual: usize },
    /// The incoming chunk belongs to a different collective.
    CollectiveMismatch { expected: u64, actual: u64 },
    /// A reducing primitive was executed without a reduce operator.
    MissingReduceOp,
    /// The step addresses a peer the rank's channels were not built for —
    /// the plan and the registered channels disagree.
    MissingPeerConnector { peer: usize },
    /// The step's kind requires a peer but the plan named none.
    MalformedStep(&'static str),
    /// The plan or buffers were inconsistent with the descriptor.
    Collective(CollectiveError),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::PayloadSizeMismatch { expected, actual } => {
                write!(
                    f,
                    "payload size mismatch: expected {expected} bytes, got {actual}"
                )
            }
            ExecError::CollectiveMismatch { expected, actual } => {
                write!(
                    f,
                    "chunk for collective {actual} arrived on connector of collective {expected}"
                )
            }
            ExecError::MissingReduceOp => write!(f, "reducing primitive without a reduce operator"),
            ExecError::MissingPeerConnector { peer } => {
                write!(
                    f,
                    "no connector to peer rank {peer} in this rank's channels"
                )
            }
            ExecError::MalformedStep(what) => write!(f, "malformed step: {what}"),
            ExecError::Collective(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<CollectiveError> for ExecError {
    fn from(e: CollectiveError) -> Self {
        ExecError::Collective(e)
    }
}

/// A chunk a fused primitive produced while its send connector was full,
/// staged until the connector drains. At most one exists per channel of an
/// in-flight collective invocation; it is part of the preemption context.
#[derive(Debug, Clone, PartialEq)]
pub struct PendingSend {
    /// Destination rank.
    pub peer: usize,
    /// The channel whose connector towards `peer` was full.
    pub channel: ChannelId,
    /// The staged chunk.
    pub msg: ChunkMsg,
}

/// The per-channel staging slots of one in-flight collective invocation: at
/// most one staged chunk per channel, so a stalled channel holds back only
/// its own primitives. Part of the dynamic context saved across preemptions.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PendingSends {
    slots: Vec<PendingSend>,
}

impl PendingSends {
    /// Whether no chunk is staged on any channel.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Number of channels with a staged chunk.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// The chunk staged on `channel`, if any.
    pub fn on(&self, channel: ChannelId) -> Option<&PendingSend> {
        self.slots.iter().find(|p| p.channel == channel)
    }

    /// Stage a chunk on its channel. The executor flushes a channel's slot
    /// before running another primitive on that channel, so at most one chunk
    /// is ever staged per channel.
    pub fn stage(&mut self, pending: PendingSend) {
        debug_assert!(
            self.on(pending.channel).is_none(),
            "channel {} already has a staged chunk",
            pending.channel
        );
        self.slots.push(pending);
    }

    /// Remove and return the chunk staged on `channel`, if any.
    pub fn take(&mut self, channel: ChannelId) -> Option<PendingSend> {
        let idx = self.slots.iter().position(|p| p.channel == channel)?;
        Some(self.slots.remove(idx))
    }

    /// The channels that currently hold a staged chunk.
    pub fn channels(&self) -> Vec<ChannelId> {
        self.slots.iter().map(|p| p.channel).collect()
    }

    /// Drop every staged chunk but keep the slot storage, so a recycled
    /// dynamic context re-stages without reallocating.
    pub fn clear(&mut self) {
        self.slots.clear();
    }
}

/// Try to publish the chunk staged on one channel. Returns `true` when that
/// channel's slot is clear (nothing was staged, or the flush succeeded).
pub fn flush_pending_channel(
    channels: &RankChannels,
    pending: &mut PendingSends,
    channel: ChannelId,
) -> Result<bool, ExecError> {
    let Some(p) = pending.take(channel) else {
        return Ok(true);
    };
    let conn = channels
        .send_on(p.peer, p.channel)
        .ok_or(ExecError::MissingPeerConnector { peer: p.peer })?;
    match conn.try_send(p.msg) {
        Ok(()) => Ok(true),
        Err(SendError::Full(msg)) | Err(SendError::Faulted(msg)) => {
            // Full ring and faulted link are handled identically: the chunk
            // stays staged and is retried once the connector reports ready
            // again (a flaky link heals on its own; a dead one keeps the
            // slot occupied until the watchdog names the edge).
            pending.stage(PendingSend {
                peer: p.peer,
                channel: p.channel,
                msg,
            });
            Ok(false)
        }
    }
}

/// Try to publish every staged chunk, one attempt per channel. Returns `true`
/// when all slots are clear.
pub fn flush_pending(
    channels: &RankChannels,
    pending: &mut PendingSends,
) -> Result<bool, ExecError> {
    let mut all_clear = true;
    for channel in pending.channels() {
        all_clear &= flush_pending_channel(channels, pending, channel)?;
    }
    Ok(all_clear)
}

/// Whether the conditions required to make progress on `step` currently hold:
/// a chunk staged on the step's channel needs its connector to drain;
/// otherwise `step` needs its own connector conditions. A fused primitive is
/// gated on its *recv* condition only — its send half can always be staged
/// (see the module docs on the staging slots). Chunks staged on *other*
/// channels never gate this step: flow control is per channel.
///
/// A peer the channels were not built for counts as "ready": executing the
/// step then surfaces [`ExecError::MissingPeerConnector`] instead of spinning
/// on a condition that can never change.
pub fn step_ready(step: &PrimitiveStep, channels: &RankChannels, pending: &PendingSends) -> bool {
    if let Some(p) = pending.on(step.channel) {
        return channels
            .send_on(p.peer, p.channel)
            .is_none_or(|c| c.send_ready());
    }
    let recv_ok = match step.recv_from {
        None => true,
        Some(p) => channels
            .recv_on(p, step.channel)
            .is_none_or(|c| c.recv_ready()),
    };
    // A pure Send has nothing to stage behind: gate it on the free slot. A
    // fused primitive is recv-gated; its output is staged if the slot is full.
    let send_ok = step.kind.has_recv()
        || match step.send_to {
            None => true,
            Some(p) => channels
                .send_on(p, step.channel)
                .is_none_or(|c| c.send_ready()),
        };
    send_ok && recv_ok
}

fn resolve_send<'c>(
    step: &PrimitiveStep,
    channels: &'c RankChannels,
) -> Result<Option<&'c Connector>, ExecError> {
    if !step.kind.has_send() {
        return Ok(None);
    }
    let peer = step.send_to.ok_or(ExecError::MalformedStep(
        "send primitive without a send peer",
    ))?;
    channels
        .send_on(peer, step.channel)
        .map(|c| Some(c.as_ref()))
        .ok_or(ExecError::MissingPeerConnector { peer })
}

fn resolve_recv<'c>(
    step: &PrimitiveStep,
    channels: &'c RankChannels,
) -> Result<Option<&'c Connector>, ExecError> {
    if !step.kind.has_recv() {
        return Ok(None);
    }
    let peer = step.recv_from.ok_or(ExecError::MalformedStep(
        "recv primitive without a recv peer",
    ))?;
    channels
        .recv_on(peer, step.channel)
        .map(|c| Some(c.as_ref()))
        .ok_or(ExecError::MissingPeerConnector { peer })
}

/// Execute `step`, assuming [`step_ready`] was just observed to be true.
///
/// A chunk staged on the step's own channel is flushed first; if it cannot be
/// flushed the call returns [`StepOutcome::NotReady`] (per-edge FIFO order
/// requires the staged chunk to leave before this step's output rides the
/// same channel). Chunks staged on other channels are flushed
/// opportunistically and never block this step. If the step's own conditions
/// no longer hold (e.g. the caller skipped the readiness check), the call
/// returns [`StepOutcome::NotReady`] without consuming anything. A fused
/// primitive whose send connector is full completes by staging its output
/// chunk in `pending`.
#[allow(clippy::too_many_arguments)]
pub fn execute_ready_step(
    coll_id: u64,
    step: &PrimitiveStep,
    channels: &RankChannels,
    dtype: DataType,
    op: Option<ReduceOp>,
    send_buf: &DeviceBuffer,
    recv_buf: &DeviceBuffer,
    pending: &mut PendingSends,
) -> Result<StepOutcome, ExecError> {
    // Opportunistic: drain whatever other channels can flush right now.
    flush_pending(channels, pending)?;
    if pending.on(step.channel).is_some() {
        return Ok(StepOutcome::NotReady);
    }
    let elem = dtype.size_bytes();
    let send_conn = resolve_send(step, channels)?;
    let recv_conn = resolve_recv(step, channels)?;

    // Re-check readiness defensively; never consume a chunk we cannot process
    // to completion.
    if !step_ready(step, channels, pending) {
        return Ok(StepOutcome::NotReady);
    }

    // The local operand buffer: ring schedules read the original contribution
    // from the send buffer; tree/hierarchical schedules also read partials
    // accumulated in the recv buffer.
    let local_buf = match step.src_buf {
        SrcBuf::Send => send_buf,
        SrcBuf::Recv => recv_buf,
    };

    // Gather the incoming chunk, if the primitive receives.
    let incoming: Option<Vec<u8>> = if let Some(conn) = recv_conn {
        match conn.try_recv() {
            Some(msg) => {
                if msg.coll_id != coll_id {
                    return Err(ExecError::CollectiveMismatch {
                        expected: coll_id,
                        actual: msg.coll_id,
                    });
                }
                Some(msg.data)
            }
            // Lost a race we cannot lose in SPSC usage; treat as not ready.
            None => return Ok(StepOutcome::NotReady),
        }
    } else {
        None
    };

    // Compute the data this primitive produces (locally and/or over the wire).
    let data: Vec<u8> = match step.kind {
        PrimitiveKind::Send | PrimitiveKind::Copy => {
            let src = step.src.expect("Send/Copy primitives carry a src range");
            local_buf.read_range(src.byte_offset(elem), src.byte_len(elem))
        }
        PrimitiveKind::Recv | PrimitiveKind::RecvCopySend => {
            let data = incoming.expect("receiving primitive consumed a chunk");
            let expected = step
                .dst
                .expect("Recv/RecvCopySend primitives carry a dst range")
                .byte_len(elem);
            if data.len() != expected {
                return Err(ExecError::PayloadSizeMismatch {
                    expected,
                    actual: data.len(),
                });
            }
            data
        }
        PrimitiveKind::RecvReduceSend
        | PrimitiveKind::RecvReduceCopy
        | PrimitiveKind::RecvReduceCopySend => {
            let src = step.src.expect("reducing primitives carry a src range");
            let mut local = local_buf.read_range(src.byte_offset(elem), src.byte_len(elem));
            let data = incoming.expect("receiving primitive consumed a chunk");
            if data.len() != local.len() {
                return Err(ExecError::PayloadSizeMismatch {
                    expected: local.len(),
                    actual: data.len(),
                });
            }
            let op = op.ok_or(ExecError::MissingReduceOp)?;
            reduce_into(&mut local, &data, dtype, op);
            local
        }
    };

    // Local copy into the recv buffer.
    if step.kind.has_copy() {
        let dst = step.dst.expect("copying primitives carry a dst range");
        recv_buf.write_range(dst.byte_offset(elem), &data);
    }

    // Publish over the wire, staging the chunk if the connector is full.
    if let Some(conn) = send_conn {
        let msg = ChunkMsg {
            coll_id,
            chunk_index: step.chunk_index,
            step: step.step,
            data,
        };
        if let Err(SendError::Full(msg)) | Err(SendError::Faulted(msg)) = conn.try_send(msg) {
            pending.stage(PendingSend {
                peer: step.send_to.expect("send primitive carries a peer"),
                channel: step.channel,
                msg,
            });
        }
    }

    Ok(StepOutcome::Completed)
}

// ---------------------------------------------------------------------------
// Index-based dispatch: the compiled-program twins of `step_ready` /
// `execute_ready_step`. Connectors are resolved by plain table index (no map
// lookups); byte ranges were pre-multiplied at compile time. The interpreted
// entry points above remain the oracle for tests and the baselines.
// ---------------------------------------------------------------------------

/// Whether the conditions required to make progress on instruction `idx` of
/// `program` currently hold — the index-dispatch twin of [`step_ready`]. A
/// chunk staged on the instruction's channel needs its connector to drain; a
/// fused primitive is gated on its recv condition only (see the module docs
/// on the staging slots).
#[inline]
pub fn instr_ready(
    program: &CompiledProgram,
    idx: u32,
    table: &ConnectorTable,
    pending: &PendingSends,
) -> bool {
    let instr = program.instr(idx);
    if let Some(p) = pending.on(instr.channel) {
        // Staged chunks only ever come from instructions whose send edge is
        // in the program; a missing edge counts as "ready" so the execute
        // path surfaces the error instead of spinning forever.
        return match program.send_conn_for(p.peer, p.channel) {
            Some(ci) => table.send(ci).send_ready(),
            None => true,
        };
    }
    let recv_ok = !instr.kind.has_recv() || table.recv(instr.recv_conn).recv_ready();
    let send_ok =
        instr.kind.has_recv() || !instr.kind.has_send() || table.send(instr.send_conn).send_ready();
    send_ok && recv_ok
}

/// Try to publish every staged chunk through the compiled connector table,
/// one attempt per channel. Returns `true` when all slots are clear.
pub fn flush_pending_compiled(
    program: &CompiledProgram,
    table: &ConnectorTable,
    pending: &mut PendingSends,
) -> Result<bool, ExecError> {
    let mut all_clear = true;
    for channel in pending.channels() {
        let Some(p) = pending.take(channel) else {
            continue;
        };
        let ci = program
            .send_conn_for(p.peer, p.channel)
            .ok_or(ExecError::MissingPeerConnector { peer: p.peer })?;
        match table.send(ci).try_send(p.msg) {
            Ok(()) => {}
            Err(SendError::Full(msg)) | Err(SendError::Faulted(msg)) => {
                pending.stage(PendingSend {
                    peer: p.peer,
                    channel: p.channel,
                    msg,
                });
                all_clear = false;
            }
        }
    }
    Ok(all_clear)
}

/// Execute instruction `idx` of `program`, assuming [`instr_ready`] was just
/// observed to be true — the index-dispatch twin of [`execute_ready_step`],
/// with identical semantics (staged-chunk flushing, defensive readiness
/// re-check, recv-gated fused primitives that stage their output when the
/// send connector is full).
#[allow(clippy::too_many_arguments)]
pub fn execute_ready_instr(
    coll_id: u64,
    program: &CompiledProgram,
    idx: u32,
    table: &ConnectorTable,
    op: Option<ReduceOp>,
    send_buf: &DeviceBuffer,
    recv_buf: &DeviceBuffer,
    pending: &mut PendingSends,
) -> Result<StepOutcome, ExecError> {
    // Opportunistic: drain whatever other channels can flush right now.
    flush_pending_compiled(program, table, pending)?;
    let instr = *program.instr(idx);
    if pending.on(instr.channel).is_some() {
        return Ok(StepOutcome::NotReady);
    }

    // Re-check readiness defensively; never consume a chunk we cannot
    // process to completion.
    if !instr_ready(program, idx, table, pending) {
        return Ok(StepOutcome::NotReady);
    }

    let local_buf = match instr.src_buf {
        SrcBuf::Send => send_buf,
        SrcBuf::Recv => recv_buf,
    };

    // Gather the incoming chunk, if the primitive receives.
    let incoming: Option<Vec<u8>> = if instr.kind.has_recv() {
        match table.recv(instr.recv_conn).try_recv() {
            Some(msg) => {
                if msg.coll_id != coll_id {
                    return Err(ExecError::CollectiveMismatch {
                        expected: coll_id,
                        actual: msg.coll_id,
                    });
                }
                Some(msg.data)
            }
            // Lost a race we cannot lose in SPSC usage; treat as not ready.
            None => return Ok(StepOutcome::NotReady),
        }
    } else {
        None
    };

    // Compute the data this primitive produces (locally and/or over the wire).
    let data: Vec<u8> = match instr.kind {
        PrimitiveKind::Send | PrimitiveKind::Copy => {
            let src = instr.src.expect("Send/Copy instructions carry a src range");
            local_buf.read_range(src.off, src.len)
        }
        PrimitiveKind::Recv | PrimitiveKind::RecvCopySend => {
            let data = incoming.expect("receiving instruction consumed a chunk");
            let expected = instr
                .dst
                .expect("Recv/RecvCopySend instructions carry a dst range")
                .len;
            if data.len() != expected {
                return Err(ExecError::PayloadSizeMismatch {
                    expected,
                    actual: data.len(),
                });
            }
            data
        }
        PrimitiveKind::RecvReduceSend
        | PrimitiveKind::RecvReduceCopy
        | PrimitiveKind::RecvReduceCopySend => {
            let src = instr.src.expect("reducing instructions carry a src range");
            let mut local = local_buf.read_range(src.off, src.len);
            let data = incoming.expect("receiving instruction consumed a chunk");
            if data.len() != local.len() {
                return Err(ExecError::PayloadSizeMismatch {
                    expected: local.len(),
                    actual: data.len(),
                });
            }
            let op = op.ok_or(ExecError::MissingReduceOp)?;
            reduce_into(&mut local, &data, program.dtype(), op);
            local
        }
    };

    // Local copy into the recv buffer.
    if instr.kind.has_copy() {
        let dst = instr.dst.expect("copying instructions carry a dst range");
        recv_buf.write_range(dst.off, &data);
    }

    // Publish over the wire, staging the chunk if the connector is full.
    if instr.kind.has_send() {
        let msg = ChunkMsg {
            coll_id,
            chunk_index: instr.chunk_index,
            step: instr.step,
            data,
        };
        if let Err(SendError::Full(msg)) | Err(SendError::Faulted(msg)) =
            table.send(instr.send_conn).try_send(msg)
        {
            pending.stage(PendingSend {
                peer: instr.send_peer as usize,
                channel: instr.channel,
                msg,
            });
        }
    }

    Ok(StepOutcome::Completed)
}

/// Run a compiled program to completion lane-wise by busy-waiting: every
/// pass polls each lane's head instruction and executes the ready ones, so a
/// stalled channel never blocks another lane's progress. The compiled twin
/// of [`run_plan_blocking`]; used as the execution harness for the
/// compiled-vs-interpreted bit-exactness tests. Returns `Ok(false)` if
/// aborted.
pub fn run_program_blocking(
    coll_id: u64,
    program: &CompiledProgram,
    table: &ConnectorTable,
    op: Option<ReduceOp>,
    send_buf: &DeviceBuffer,
    recv_buf: &DeviceBuffer,
    should_abort: &dyn Fn() -> bool,
) -> Result<bool, ExecError> {
    let mut cursors = vec![0u32; program.lane_count()];
    let mut pending = PendingSends::default();
    loop {
        if should_abort() {
            return Ok(false);
        }
        let mut progressed = false;
        let mut remaining = false;
        for (li, lane) in program.lanes().iter().enumerate() {
            let cur = cursors[li] as usize;
            if cur >= lane.len() {
                continue;
            }
            remaining = true;
            let idx = lane.instr_ids()[cur];
            if !program.instr_eligible(idx, &cursors) || !instr_ready(program, idx, table, &pending)
            {
                continue;
            }
            match execute_ready_instr(
                coll_id,
                program,
                idx,
                table,
                op,
                send_buf,
                recv_buf,
                &mut pending,
            )? {
                StepOutcome::Completed => {
                    cursors[li] += 1;
                    progressed = true;
                }
                StepOutcome::NotReady => {}
            }
        }
        if !remaining {
            // The last instructions may have staged output chunks; the
            // program is only complete once every channel's chunk is on the
            // wire.
            if flush_pending_compiled(program, table, &mut pending)? {
                return Ok(true);
            }
        }
        if !progressed {
            // Busy-wait, but let other ranks' threads run (see
            // `run_plan_blocking`).
            std::thread::yield_now();
        }
    }
}

/// Run an entire plan to completion by busy-waiting on every primitive, the
/// way an NCCL kernel would. `should_abort` is polled while waiting so
/// deadlocked scenarios can be torn down; returns `Ok(false)` if aborted.
#[allow(clippy::too_many_arguments)]
pub fn run_plan_blocking(
    coll_id: u64,
    plan: &[PrimitiveStep],
    channels: &RankChannels,
    dtype: DataType,
    op: Option<ReduceOp>,
    send_buf: &DeviceBuffer,
    recv_buf: &DeviceBuffer,
    should_abort: &dyn Fn() -> bool,
) -> Result<bool, ExecError> {
    let mut pending = PendingSends::default();
    for step in plan {
        loop {
            if should_abort() {
                return Ok(false);
            }
            if step_ready(step, channels, &pending) {
                match execute_ready_step(
                    coll_id,
                    step,
                    channels,
                    dtype,
                    op,
                    send_buf,
                    recv_buf,
                    &mut pending,
                )? {
                    StepOutcome::Completed => break,
                    StepOutcome::NotReady => continue,
                }
            }
            // Busy-wait, but let other ranks' threads run: on machines with
            // fewer cores than ranks a pure spin starves the very peer that
            // would make this step ready.
            std::thread::yield_now();
        }
    }
    // The last primitives may have staged output chunks; the collective is
    // only complete once every channel's chunk is on the wire.
    while !flush_pending(channels, &mut pending)? {
        if should_abort() {
            return Ok(false);
        }
        std::thread::yield_now();
    }
    Ok(true)
}

/// Validate that user-supplied buffers match what the descriptor requires for
/// `rank`. Shared by DFCCL's API layer and the baseline executor.
pub fn validate_buffers(
    desc: &CollectiveDescriptor,
    rank: usize,
    send_buf: &DeviceBuffer,
    recv_buf: &DeviceBuffer,
) -> Result<(), CollectiveError> {
    let expected_send = desc.send_bytes(rank);
    if send_buf.len() < expected_send {
        return Err(CollectiveError::BufferSizeMismatch {
            expected: expected_send,
            actual: send_buf.len(),
        });
    }
    let expected_recv = desc.recv_bytes(rank);
    if recv_buf.len() < expected_recv {
        return Err(CollectiveError::BufferSizeMismatch {
            expected: expected_recv,
            actual: recv_buf.len(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::ElemRange;
    use crate::collective::CollectiveKind;
    use crate::plan::{algorithm, AlgorithmKind};
    use crate::ring::build_plan;
    use dfccl_transport::{Communicator, CommunicatorId, LinkModel, Topology};
    use gpu_sim::GpuId;
    use std::sync::Arc;

    fn make_comm(n: usize) -> Arc<Communicator> {
        Communicator::new(
            CommunicatorId(0),
            (0..n).map(GpuId).collect(),
            &Arc::new(Topology::flat(n)),
            &Arc::new(LinkModel::zero_cost()),
            16,
        )
        .unwrap()
    }

    /// Ring channels for `rank` in a 2-ring: send to and recv from the peer.
    fn pair_channels(comm: &Arc<Communicator>, rank: usize) -> RankChannels {
        comm.rank_channels(rank).unwrap()
    }

    fn send_step() -> PrimitiveStep {
        PrimitiveStep {
            kind: PrimitiveKind::Send,
            src: Some(ElemRange::new(0, 1)),
            src_buf: SrcBuf::Send,
            dst: None,
            send_to: Some(1),
            recv_from: None,
            chunk_index: 0,
            step: 0,
            channel: ChannelId(0),
        }
    }

    fn recv_step(from: usize) -> PrimitiveStep {
        PrimitiveStep {
            kind: PrimitiveKind::Recv,
            src: None,
            src_buf: SrcBuf::Send,
            dst: Some(ElemRange::new(0, 1)),
            send_to: None,
            recv_from: Some(from),
            chunk_index: 0,
            step: 0,
            channel: ChannelId(0),
        }
    }

    /// Run a collective across `n` ranks with `algo`, one thread per rank,
    /// and return each rank's recv buffer as f32.
    fn run_collective_with(
        desc: &CollectiveDescriptor,
        inputs: Vec<Vec<f32>>,
        chunk: usize,
        algo: AlgorithmKind,
    ) -> Vec<Vec<f32>> {
        let n = desc.num_ranks();
        let comm = make_comm(n);
        let topo = Topology::flat(n);
        let mut joins = Vec::new();
        for (rank, input) in inputs.into_iter().enumerate() {
            let desc = desc.clone();
            let plan = algorithm(algo)
                .build_plan(&desc, rank, chunk, &topo)
                .unwrap();
            let channels = comm
                .channels(rank, plan.send_edges(), plan.recv_edges())
                .unwrap();
            joins.push(std::thread::spawn(move || {
                let send = DeviceBuffer::from_f32(&input);
                let recv = DeviceBuffer::zeroed(desc.recv_bytes(rank).max(4));
                let done = run_plan_blocking(
                    42,
                    &plan.steps,
                    &channels,
                    desc.dtype,
                    desc.op,
                    &send,
                    &recv,
                    &|| false,
                )
                .unwrap();
                assert!(done);
                recv.to_f32_vec()
            }));
        }
        joins.into_iter().map(|j| j.join().unwrap()).collect()
    }

    fn run_collective(
        desc: &CollectiveDescriptor,
        inputs: Vec<Vec<f32>>,
        chunk: usize,
    ) -> Vec<Vec<f32>> {
        run_collective_with(desc, inputs, chunk, AlgorithmKind::Ring)
    }

    #[test]
    fn all_reduce_produces_the_sum_on_every_rank() {
        let n = 4;
        let count = 37; // not divisible by n, exercises uneven slices
        let desc = CollectiveDescriptor::all_reduce(
            count,
            DataType::F32,
            ReduceOp::Sum,
            (0..n).map(GpuId).collect(),
        );
        let inputs: Vec<Vec<f32>> = (0..n)
            .map(|r| (0..count).map(|i| (r * count + i) as f32).collect())
            .collect();
        let expected: Vec<f32> = (0..count)
            .map(|i| (0..n).map(|r| (r * count + i) as f32).sum())
            .collect();
        let outputs = run_collective(&desc, inputs, 8);
        for (rank, out) in outputs.iter().enumerate() {
            assert_eq!(out, &expected, "rank {rank}");
        }
    }

    #[test]
    fn tree_all_reduce_produces_the_sum_on_every_rank() {
        // Same workload as the ring test, scheduled over the double binary
        // tree — identical results from a different plan shape.
        for n in [2usize, 3, 5, 8] {
            let count = 37;
            let desc = CollectiveDescriptor::all_reduce(
                count,
                DataType::F32,
                ReduceOp::Sum,
                (0..n).map(GpuId).collect(),
            );
            let inputs: Vec<Vec<f32>> = (0..n)
                .map(|r| (0..count).map(|i| (r * count + i) as f32).collect())
                .collect();
            let expected: Vec<f32> = (0..count)
                .map(|i| (0..n).map(|r| (r * count + i) as f32).sum())
                .collect();
            let outputs = run_collective_with(&desc, inputs, 8, AlgorithmKind::DoubleBinaryTree);
            for (rank, out) in outputs.iter().enumerate() {
                assert_eq!(out, &expected, "n {n} rank {rank}");
            }
        }
    }

    #[test]
    fn tree_broadcast_copies_root_data_everywhere() {
        for n in [2usize, 4, 7] {
            let count = 21;
            let root = n - 1;
            let desc = CollectiveDescriptor::broadcast(
                count,
                DataType::F32,
                root,
                (0..n).map(GpuId).collect(),
            );
            let inputs: Vec<Vec<f32>> = (0..n)
                .map(|r| {
                    (0..count)
                        .map(|i| if r == root { i as f32 * 3.0 } else { -1.0 })
                        .collect()
                })
                .collect();
            let expected: Vec<f32> = (0..count).map(|i| i as f32 * 3.0).collect();
            let outputs = run_collective_with(&desc, inputs, 4, AlgorithmKind::DoubleBinaryTree);
            for (rank, out) in outputs.iter().enumerate() {
                assert_eq!(out, &expected, "n {n} rank {rank}");
            }
        }
    }

    #[test]
    fn all_reduce_max_on_two_ranks() {
        let desc = CollectiveDescriptor::all_reduce(
            5,
            DataType::F32,
            ReduceOp::Max,
            vec![GpuId(0), GpuId(1)],
        );
        let inputs = vec![
            vec![1.0, 9.0, -3.0, 4.0, 0.0],
            vec![2.0, 8.0, -1.0, 4.5, -7.0],
        ];
        let outputs = run_collective(&desc, inputs, 2);
        assert_eq!(outputs[0], vec![2.0, 9.0, -1.0, 4.5, 0.0]);
        assert_eq!(outputs[1], outputs[0]);
    }

    #[test]
    fn all_gather_concatenates_contributions() {
        let n = 3;
        let count = 4;
        let desc =
            CollectiveDescriptor::all_gather(count, DataType::F32, (0..n).map(GpuId).collect());
        let inputs: Vec<Vec<f32>> = (0..n)
            .map(|r| (0..count).map(|i| (100 * r + i) as f32).collect())
            .collect();
        let expected: Vec<f32> = inputs.concat();
        let outputs = run_collective(&desc, inputs, 3);
        for out in outputs {
            assert_eq!(out, expected);
        }
    }

    #[test]
    fn reduce_scatter_gives_each_rank_its_slice() {
        let n = 3;
        let count = 5;
        let desc = CollectiveDescriptor::reduce_scatter(
            count,
            DataType::F32,
            ReduceOp::Sum,
            (0..n).map(GpuId).collect(),
        );
        let inputs: Vec<Vec<f32>> = (0..n)
            .map(|r| (0..count * n).map(|i| (r + i) as f32).collect())
            .collect();
        let outputs = run_collective(&desc, inputs, 2);
        for (rank, out) in outputs.iter().enumerate() {
            let expected: Vec<f32> = (0..count)
                .map(|i| (0..n).map(|r| (r + rank * count + i) as f32).sum::<f32>())
                .collect();
            assert_eq!(out, &expected, "rank {rank}");
        }
    }

    #[test]
    fn reduce_delivers_sum_to_the_root_only() {
        let n = 4;
        let count = 6;
        let root = 2;
        let desc = CollectiveDescriptor::reduce(
            count,
            DataType::F32,
            ReduceOp::Sum,
            root,
            (0..n).map(GpuId).collect(),
        );
        let inputs: Vec<Vec<f32>> = (0..n)
            .map(|r| (0..count).map(|i| ((r + 1) * (i + 1)) as f32).collect())
            .collect();
        let expected: Vec<f32> = (0..count)
            .map(|i| (0..n).map(|r| ((r + 1) * (i + 1)) as f32).sum())
            .collect();
        let outputs = run_collective(&desc, inputs, 4);
        assert_eq!(outputs[root], expected);
    }

    #[test]
    fn broadcast_copies_root_data_everywhere() {
        let n = 4;
        let count = 9;
        let root = 1;
        let desc = CollectiveDescriptor::broadcast(
            count,
            DataType::F32,
            root,
            (0..n).map(GpuId).collect(),
        );
        let inputs: Vec<Vec<f32>> = (0..n)
            .map(|r| {
                (0..count)
                    .map(|i| if r == root { i as f32 * 2.0 } else { -1.0 })
                    .collect()
            })
            .collect();
        let expected: Vec<f32> = (0..count).map(|i| i as f32 * 2.0).collect();
        let outputs = run_collective(&desc, inputs, 4);
        for (rank, out) in outputs.iter().enumerate() {
            assert_eq!(out, &expected, "rank {rank}");
        }
    }

    #[test]
    fn step_ready_tracks_connector_state() {
        let comm = make_comm(2);
        let ch0 = pair_channels(&comm, 0);
        let send_step = send_step();
        let recv_from_1 = recv_step(1);
        assert!(step_ready(&send_step, &ch0, &PendingSends::default()));
        assert!(!step_ready(&recv_from_1, &ch0, &PendingSends::default()));
        // Fill the send connector completely: send becomes not-ready.
        let send = DeviceBuffer::from_f32(&[1.0]);
        let recv = DeviceBuffer::zeroed(4);
        let capacity = ch0.send_to(1).unwrap().capacity();
        for _ in 0..capacity {
            execute_ready_step(
                1,
                &send_step,
                &ch0,
                DataType::F32,
                None,
                &send,
                &recv,
                &mut PendingSends::default(),
            )
            .unwrap();
        }
        assert!(!step_ready(&send_step, &ch0, &PendingSends::default()));
        // And the peer now has data to receive.
        let ch1 = pair_channels(&comm, 1);
        assert!(step_ready(&recv_step(0), &ch1, &PendingSends::default()));
    }

    #[test]
    fn execute_not_ready_consumes_nothing() {
        let comm = make_comm(2);
        let ch0 = pair_channels(&comm, 0);
        let send = DeviceBuffer::zeroed(4);
        let recv = DeviceBuffer::zeroed(4);
        let out = execute_ready_step(
            1,
            &recv_step(1),
            &ch0,
            DataType::F32,
            None,
            &send,
            &recv,
            &mut PendingSends::default(),
        )
        .unwrap();
        assert_eq!(out, StepOutcome::NotReady);
    }

    #[test]
    fn missing_peer_connector_is_an_error_not_a_hang() {
        let comm = make_comm(3);
        // Channels only cover peer 1, but the step addresses peer 2.
        let ch0 = comm
            .channels(0, &[(1, ChannelId(0))], &[(1, ChannelId(0))])
            .unwrap();
        let mut stray = send_step();
        stray.send_to = Some(2);
        // step_ready must not spin on a connector that can never appear.
        assert!(step_ready(&stray, &ch0, &PendingSends::default()));
        let send = DeviceBuffer::from_f32(&[1.0]);
        let recv = DeviceBuffer::zeroed(4);
        let err = execute_ready_step(
            1,
            &stray,
            &ch0,
            DataType::F32,
            None,
            &send,
            &recv,
            &mut PendingSends::default(),
        )
        .unwrap_err();
        assert_eq!(err, ExecError::MissingPeerConnector { peer: 2 });
    }

    #[test]
    fn step_without_required_peer_is_malformed() {
        let comm = make_comm(2);
        let ch0 = pair_channels(&comm, 0);
        let mut bad = send_step();
        bad.send_to = None;
        let send = DeviceBuffer::from_f32(&[1.0]);
        let recv = DeviceBuffer::zeroed(4);
        let err = execute_ready_step(
            1,
            &bad,
            &ch0,
            DataType::F32,
            None,
            &send,
            &recv,
            &mut PendingSends::default(),
        )
        .unwrap_err();
        assert!(matches!(err, ExecError::MalformedStep(_)));
    }

    #[test]
    fn src_buf_recv_reads_the_recv_buffer() {
        // A Send with SrcBuf::Recv must publish the recv buffer's bytes —
        // the accumulation pattern tree and hierarchical schedules rely on.
        let comm = make_comm(2);
        let ch0 = pair_channels(&comm, 0);
        let ch1 = pair_channels(&comm, 1);
        let send = DeviceBuffer::from_f32(&[1.0]);
        let recv = DeviceBuffer::from_f32(&[42.0]);
        let mut step = send_step();
        step.src_buf = SrcBuf::Recv;
        execute_ready_step(
            1,
            &step,
            &ch0,
            DataType::F32,
            None,
            &send,
            &recv,
            &mut PendingSends::default(),
        )
        .unwrap();
        let out = DeviceBuffer::zeroed(4);
        execute_ready_step(
            1,
            &recv_step(0),
            &ch1,
            DataType::F32,
            None,
            &DeviceBuffer::zeroed(4),
            &out,
            &mut PendingSends::default(),
        )
        .unwrap();
        assert_eq!(out.to_f32_vec(), vec![42.0]);
    }

    #[test]
    fn mismatched_collective_id_is_detected() {
        let comm = make_comm(2);
        let ch0 = pair_channels(&comm, 0);
        let ch1 = pair_channels(&comm, 1);
        // Rank 0 sends under collective id 7.
        ch0.send_to(1)
            .unwrap()
            .try_send(ChunkMsg {
                coll_id: 7,
                chunk_index: 0,
                step: 0,
                data: vec![0u8; 4],
            })
            .unwrap();
        let send = DeviceBuffer::zeroed(4);
        let recv = DeviceBuffer::zeroed(4);
        let err = execute_ready_step(
            9,
            &recv_step(0),
            &ch1,
            DataType::F32,
            None,
            &send,
            &recv,
            &mut PendingSends::default(),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            ExecError::CollectiveMismatch {
                expected: 9,
                actual: 7
            }
        ));
    }

    #[test]
    fn payload_size_mismatch_is_detected() {
        let comm = make_comm(2);
        let ch0 = pair_channels(&comm, 0);
        let ch1 = pair_channels(&comm, 1);
        ch0.send_to(1)
            .unwrap()
            .try_send(ChunkMsg {
                coll_id: 1,
                chunk_index: 0,
                step: 0,
                data: vec![0u8; 8],
            })
            .unwrap();
        let step = recv_step(0); // expects 4 bytes
        let send = DeviceBuffer::zeroed(4);
        let recv = DeviceBuffer::zeroed(4);
        let err = execute_ready_step(
            1,
            &step,
            &ch1,
            DataType::F32,
            None,
            &send,
            &recv,
            &mut PendingSends::default(),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            ExecError::PayloadSizeMismatch {
                expected: 4,
                actual: 8
            }
        ));
    }

    #[test]
    fn reducing_step_without_op_is_an_error() {
        let comm = make_comm(2);
        let ch0 = pair_channels(&comm, 0);
        let ch1 = pair_channels(&comm, 1);
        ch0.send_to(1)
            .unwrap()
            .try_send(ChunkMsg {
                coll_id: 1,
                chunk_index: 0,
                step: 0,
                data: vec![0u8; 4],
            })
            .unwrap();
        let step = PrimitiveStep {
            kind: PrimitiveKind::RecvReduceCopy,
            src: Some(ElemRange::new(0, 1)),
            src_buf: SrcBuf::Send,
            dst: Some(ElemRange::new(0, 1)),
            send_to: None,
            recv_from: Some(0),
            chunk_index: 0,
            step: 0,
            channel: ChannelId(0),
        };
        let send = DeviceBuffer::zeroed(4);
        let recv = DeviceBuffer::zeroed(4);
        let err = execute_ready_step(
            1,
            &step,
            &ch1,
            DataType::F32,
            None,
            &send,
            &recv,
            &mut PendingSends::default(),
        )
        .unwrap_err();
        assert_eq!(err, ExecError::MissingReduceOp);
    }

    #[test]
    fn validate_buffers_checks_sizes() {
        let desc = CollectiveDescriptor::all_gather(4, DataType::F32, vec![GpuId(0), GpuId(1)]);
        let good_send = DeviceBuffer::zeroed(16);
        let good_recv = DeviceBuffer::zeroed(32);
        assert!(validate_buffers(&desc, 0, &good_send, &good_recv).is_ok());
        let small_recv = DeviceBuffer::zeroed(16);
        assert!(matches!(
            validate_buffers(&desc, 0, &good_send, &small_recv),
            Err(CollectiveError::BufferSizeMismatch { expected: 32, .. })
        ));
        let small_send = DeviceBuffer::zeroed(8);
        assert!(validate_buffers(&desc, 0, &small_send, &good_recv).is_err());
    }

    #[test]
    fn abort_stops_a_blocking_run() {
        let comm = make_comm(2);
        let ch0 = pair_channels(&comm, 0);
        let desc = CollectiveDescriptor::all_reduce(
            4,
            DataType::F32,
            ReduceOp::Sum,
            vec![GpuId(0), GpuId(1)],
        );
        let plan = build_plan(&desc, 0, 4).unwrap();
        let send = DeviceBuffer::from_f32(&[1.0; 4]);
        let recv = DeviceBuffer::zeroed(16);
        // The peer never participates, so without the abort this would hang.
        let done = run_plan_blocking(
            1,
            &plan.steps,
            &ch0,
            DataType::F32,
            Some(ReduceOp::Sum),
            &send,
            &recv,
            &|| true,
        )
        .unwrap();
        assert!(!done);
    }

    #[test]
    fn collective_kinds_all_run_with_odd_chunk_sizes() {
        // Smoke test: every kind completes with a chunk size that does not
        // divide the slice size evenly. Dense-mesh kinds run their pairwise
        // schedule; everything else runs the ring.
        for kind in CollectiveKind::ALL {
            let n = 3;
            let count = 7;
            let devices: Vec<GpuId> = (0..n).map(GpuId).collect();
            let desc = match kind {
                CollectiveKind::AllReduce => {
                    CollectiveDescriptor::all_reduce(count, DataType::F32, ReduceOp::Sum, devices)
                }
                CollectiveKind::AllGather => {
                    CollectiveDescriptor::all_gather(count, DataType::F32, devices)
                }
                CollectiveKind::ReduceScatter => CollectiveDescriptor::reduce_scatter(
                    count,
                    DataType::F32,
                    ReduceOp::Sum,
                    devices,
                ),
                CollectiveKind::Reduce => {
                    CollectiveDescriptor::reduce(count, DataType::F32, ReduceOp::Sum, 0, devices)
                }
                CollectiveKind::Broadcast => {
                    CollectiveDescriptor::broadcast(count, DataType::F32, 0, devices)
                }
                CollectiveKind::AllToAll => {
                    CollectiveDescriptor::all_to_all(count, DataType::F32, devices)
                }
                CollectiveKind::SendRecv => {
                    CollectiveDescriptor::send_recv(count, DataType::F32, GpuId(0), GpuId(1))
                }
            };
            let algo = match kind {
                CollectiveKind::AllToAll | CollectiveKind::SendRecv => AlgorithmKind::Pairwise,
                _ => AlgorithmKind::Ring,
            };
            let inputs: Vec<Vec<f32>> = (0..desc.num_ranks())
                .map(|r| (0..desc.send_elems(r)).map(|i| (r + i) as f32).collect())
                .collect();
            let _ = run_collective_with(&desc, inputs, 3, algo);
        }
    }

    #[test]
    fn all_to_all_transposes_slices_across_ranks() {
        // Each rank sends slice j to rank j; rank r ends up with everyone's
        // slice r, concatenated in source order.
        let n = 4;
        let count = 5;
        let desc =
            CollectiveDescriptor::all_to_all(count, DataType::F32, (0..n).map(GpuId).collect());
        let inputs: Vec<Vec<f32>> = (0..n)
            .map(|r| (0..count * n).map(|i| (100 * r + i) as f32).collect())
            .collect();
        let outputs = run_collective_with(&desc, inputs.clone(), 2, AlgorithmKind::Pairwise);
        for (rank, out) in outputs.iter().enumerate() {
            let expected: Vec<f32> = (0..n)
                .flat_map(|src| inputs[src][rank * count..(rank + 1) * count].to_vec())
                .collect();
            assert_eq!(out, &expected, "rank {rank}");
        }
    }

    #[test]
    fn send_recv_delivers_the_payload_to_the_receiver() {
        let desc = CollectiveDescriptor::send_recv(9, DataType::F32, GpuId(0), GpuId(1));
        let inputs = vec![(0..9).map(|i| i as f32 * 1.5).collect::<Vec<f32>>(), vec![]];
        let outputs = run_collective_with(&desc, inputs.clone(), 4, AlgorithmKind::Pairwise);
        assert_eq!(outputs[1], inputs[0]);
    }
}
