//! Executing primitives against a rank's connectors and local buffers.
//!
//! The executor is deliberately split into two calls:
//!
//! * [`step_ready`] — whether the connector conditions the primitive needs
//!   (free send slot, available recv chunk) currently hold. This is the
//!   condition a primitive busy-waits on. DFCCL's daemon kernel polls it up to
//!   a spin threshold and preempts the collective when the bound is exceeded;
//!   the NCCL-like baseline polls it forever.
//! * [`execute_ready_step`] — runs the primitive once the conditions hold.
//!   The primitive consumes at most one chunk, produces at most one chunk, and
//!   never blocks, so a collective can be suspended before or after any
//!   primitive without losing data (the context is just the index of the next
//!   primitive to run).

use dfccl_transport::{ChunkMsg, RankChannels, SendError};

use crate::buffer::DeviceBuffer;
use crate::collective::CollectiveDescriptor;
use crate::datatype::DataType;
use crate::primitive::{PrimitiveKind, PrimitiveStep};
use crate::redop::{reduce_into, ReduceOp};
use crate::CollectiveError;

/// Result of attempting one primitive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// The primitive executed.
    Completed,
    /// The connector conditions were not met; nothing was consumed or produced.
    NotReady,
}

/// Errors raised during primitive execution. These indicate a broken plan or a
/// corrupted connector stream, not a transient condition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The incoming chunk's payload size does not match the primitive's range.
    PayloadSizeMismatch { expected: usize, actual: usize },
    /// The incoming chunk belongs to a different collective.
    CollectiveMismatch { expected: u64, actual: u64 },
    /// A reducing primitive was executed without a reduce operator.
    MissingReduceOp,
    /// The send connector was full even though readiness was checked; this can
    /// only happen if another producer shares the connector, which violates
    /// the per-collective connector ownership invariant.
    ConnectorProtocolViolation,
    /// The plan or buffers were inconsistent with the descriptor.
    Collective(CollectiveError),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::PayloadSizeMismatch { expected, actual } => {
                write!(
                    f,
                    "payload size mismatch: expected {expected} bytes, got {actual}"
                )
            }
            ExecError::CollectiveMismatch { expected, actual } => {
                write!(
                    f,
                    "chunk for collective {actual} arrived on connector of collective {expected}"
                )
            }
            ExecError::MissingReduceOp => write!(f, "reducing primitive without a reduce operator"),
            ExecError::ConnectorProtocolViolation => {
                write!(
                    f,
                    "send connector full after readiness check (shared connector?)"
                )
            }
            ExecError::Collective(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<CollectiveError> for ExecError {
    fn from(e: CollectiveError) -> Self {
        ExecError::Collective(e)
    }
}

/// Whether the connector conditions required by `step` currently hold.
pub fn step_ready(step: &PrimitiveStep, channels: &RankChannels) -> bool {
    let send_ok = !step.kind.has_send() || channels.send.send_ready();
    let recv_ok = !step.kind.has_recv() || channels.recv.recv_ready();
    send_ok && recv_ok
}

/// Execute `step`, assuming [`step_ready`] was just observed to be true.
///
/// If the conditions no longer hold (e.g. the caller skipped the readiness
/// check), the call returns [`StepOutcome::NotReady`] without consuming
/// anything, except in the pathological case where the send connector is
/// filled by a foreign producer between the check and the push.
pub fn execute_ready_step(
    coll_id: u64,
    step: &PrimitiveStep,
    channels: &RankChannels,
    dtype: DataType,
    op: Option<ReduceOp>,
    send_buf: &DeviceBuffer,
    recv_buf: &DeviceBuffer,
) -> Result<StepOutcome, ExecError> {
    let elem = dtype.size_bytes();

    // Re-check readiness defensively; never consume a chunk we cannot process
    // to completion.
    if !step_ready(step, channels) {
        return Ok(StepOutcome::NotReady);
    }

    // Gather the incoming chunk, if the primitive receives.
    let incoming: Option<Vec<u8>> = if step.kind.has_recv() {
        match channels.recv.try_recv() {
            Some(msg) => {
                if msg.coll_id != coll_id {
                    return Err(ExecError::CollectiveMismatch {
                        expected: coll_id,
                        actual: msg.coll_id,
                    });
                }
                Some(msg.data)
            }
            // Lost a race we cannot lose in SPSC usage; treat as not ready.
            None => return Ok(StepOutcome::NotReady),
        }
    } else {
        None
    };

    // Compute the data this primitive produces (locally and/or over the wire).
    let data: Vec<u8> = match step.kind {
        PrimitiveKind::Send | PrimitiveKind::Copy => {
            let src = step.src.expect("Send/Copy primitives carry a src range");
            send_buf.read_range(src.byte_offset(elem), src.byte_len(elem))
        }
        PrimitiveKind::Recv | PrimitiveKind::RecvCopySend => {
            let data = incoming.expect("receiving primitive consumed a chunk");
            let expected = step
                .dst
                .expect("Recv/RecvCopySend primitives carry a dst range")
                .byte_len(elem);
            if data.len() != expected {
                return Err(ExecError::PayloadSizeMismatch {
                    expected,
                    actual: data.len(),
                });
            }
            data
        }
        PrimitiveKind::RecvReduceSend
        | PrimitiveKind::RecvReduceCopy
        | PrimitiveKind::RecvReduceCopySend => {
            let src = step.src.expect("reducing primitives carry a src range");
            let mut local = send_buf.read_range(src.byte_offset(elem), src.byte_len(elem));
            let data = incoming.expect("receiving primitive consumed a chunk");
            if data.len() != local.len() {
                return Err(ExecError::PayloadSizeMismatch {
                    expected: local.len(),
                    actual: data.len(),
                });
            }
            let op = op.ok_or(ExecError::MissingReduceOp)?;
            reduce_into(&mut local, &data, dtype, op);
            local
        }
    };

    // Local copy into the recv buffer.
    if step.kind.has_copy() {
        let dst = step.dst.expect("copying primitives carry a dst range");
        recv_buf.write_range(dst.byte_offset(elem), &data);
    }

    // Publish over the wire.
    if step.kind.has_send() {
        let msg = ChunkMsg {
            coll_id,
            chunk_index: step.chunk_index,
            step: step.step,
            data,
        };
        if let Err(SendError::Full(_)) = channels.send.try_send(msg) {
            return Err(ExecError::ConnectorProtocolViolation);
        }
    }

    Ok(StepOutcome::Completed)
}

/// Run an entire plan to completion by busy-waiting on every primitive, the
/// way an NCCL kernel would. `should_abort` is polled while waiting so
/// deadlocked scenarios can be torn down; returns `Ok(false)` if aborted.
#[allow(clippy::too_many_arguments)]
pub fn run_plan_blocking(
    coll_id: u64,
    plan: &[PrimitiveStep],
    channels: &RankChannels,
    dtype: DataType,
    op: Option<ReduceOp>,
    send_buf: &DeviceBuffer,
    recv_buf: &DeviceBuffer,
    should_abort: &dyn Fn() -> bool,
) -> Result<bool, ExecError> {
    for step in plan {
        loop {
            if should_abort() {
                return Ok(false);
            }
            if step_ready(step, channels) {
                match execute_ready_step(coll_id, step, channels, dtype, op, send_buf, recv_buf)? {
                    StepOutcome::Completed => break,
                    StepOutcome::NotReady => continue,
                }
            }
            std::hint::spin_loop();
        }
    }
    Ok(true)
}

/// Validate that user-supplied buffers match what the descriptor requires for
/// `rank`. Shared by DFCCL's API layer and the baseline executor.
pub fn validate_buffers(
    desc: &CollectiveDescriptor,
    rank: usize,
    send_buf: &DeviceBuffer,
    recv_buf: &DeviceBuffer,
) -> Result<(), CollectiveError> {
    let expected_send = desc.send_bytes(rank);
    if send_buf.len() < expected_send {
        return Err(CollectiveError::BufferSizeMismatch {
            expected: expected_send,
            actual: send_buf.len(),
        });
    }
    let expected_recv = desc.recv_bytes(rank);
    if recv_buf.len() < expected_recv {
        return Err(CollectiveError::BufferSizeMismatch {
            expected: expected_recv,
            actual: recv_buf.len(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collective::CollectiveKind;
    use crate::ring::build_plan;
    use dfccl_transport::{Communicator, CommunicatorId, LinkModel, Topology};
    use gpu_sim::GpuId;
    use std::sync::Arc;

    fn make_comm(n: usize) -> Arc<Communicator> {
        Communicator::new_ring(
            CommunicatorId(0),
            (0..n).map(GpuId).collect(),
            &Topology::flat(n),
            &Arc::new(LinkModel::zero_cost()),
            16,
        )
        .unwrap()
    }

    /// Run a collective across `n` ranks, one thread per rank, and return each
    /// rank's recv buffer as f32.
    fn run_collective(
        desc: &CollectiveDescriptor,
        inputs: Vec<Vec<f32>>,
        chunk: usize,
    ) -> Vec<Vec<f32>> {
        let n = desc.num_ranks();
        let comm = make_comm(n);
        let mut joins = Vec::new();
        for (rank, input) in inputs.into_iter().enumerate() {
            let desc = desc.clone();
            let channels = comm.rank_channels(rank).unwrap();
            joins.push(std::thread::spawn(move || {
                let send = DeviceBuffer::from_f32(&input);
                let recv = DeviceBuffer::zeroed(desc.recv_bytes(rank).max(4));
                let plan = build_plan(&desc, rank, chunk).unwrap();
                let done = run_plan_blocking(
                    42,
                    &plan,
                    &channels,
                    desc.dtype,
                    desc.op,
                    &send,
                    &recv,
                    &|| false,
                )
                .unwrap();
                assert!(done);
                recv.to_f32_vec()
            }));
        }
        joins.into_iter().map(|j| j.join().unwrap()).collect()
    }

    #[test]
    fn all_reduce_produces_the_sum_on_every_rank() {
        let n = 4;
        let count = 37; // not divisible by n, exercises uneven slices
        let desc = CollectiveDescriptor::all_reduce(
            count,
            DataType::F32,
            ReduceOp::Sum,
            (0..n).map(GpuId).collect(),
        );
        let inputs: Vec<Vec<f32>> = (0..n)
            .map(|r| (0..count).map(|i| (r * count + i) as f32).collect())
            .collect();
        let expected: Vec<f32> = (0..count)
            .map(|i| (0..n).map(|r| (r * count + i) as f32).sum())
            .collect();
        let outputs = run_collective(&desc, inputs, 8);
        for (rank, out) in outputs.iter().enumerate() {
            assert_eq!(out, &expected, "rank {rank}");
        }
    }

    #[test]
    fn all_reduce_max_on_two_ranks() {
        let desc = CollectiveDescriptor::all_reduce(
            5,
            DataType::F32,
            ReduceOp::Max,
            vec![GpuId(0), GpuId(1)],
        );
        let inputs = vec![
            vec![1.0, 9.0, -3.0, 4.0, 0.0],
            vec![2.0, 8.0, -1.0, 4.5, -7.0],
        ];
        let outputs = run_collective(&desc, inputs, 2);
        assert_eq!(outputs[0], vec![2.0, 9.0, -1.0, 4.5, 0.0]);
        assert_eq!(outputs[1], outputs[0]);
    }

    #[test]
    fn all_gather_concatenates_contributions() {
        let n = 3;
        let count = 4;
        let desc =
            CollectiveDescriptor::all_gather(count, DataType::F32, (0..n).map(GpuId).collect());
        let inputs: Vec<Vec<f32>> = (0..n)
            .map(|r| (0..count).map(|i| (100 * r + i) as f32).collect())
            .collect();
        let expected: Vec<f32> = inputs.concat();
        let outputs = run_collective(&desc, inputs, 3);
        for out in outputs {
            assert_eq!(out, expected);
        }
    }

    #[test]
    fn reduce_scatter_gives_each_rank_its_slice() {
        let n = 3;
        let count = 5;
        let desc = CollectiveDescriptor::reduce_scatter(
            count,
            DataType::F32,
            ReduceOp::Sum,
            (0..n).map(GpuId).collect(),
        );
        let inputs: Vec<Vec<f32>> = (0..n)
            .map(|r| (0..count * n).map(|i| (r + i) as f32).collect())
            .collect();
        let outputs = run_collective(&desc, inputs, 2);
        for (rank, out) in outputs.iter().enumerate() {
            let expected: Vec<f32> = (0..count)
                .map(|i| (0..n).map(|r| (r + rank * count + i) as f32).sum::<f32>())
                .collect();
            assert_eq!(out, &expected, "rank {rank}");
        }
    }

    #[test]
    fn reduce_delivers_sum_to_the_root_only() {
        let n = 4;
        let count = 6;
        let root = 2;
        let desc = CollectiveDescriptor::reduce(
            count,
            DataType::F32,
            ReduceOp::Sum,
            root,
            (0..n).map(GpuId).collect(),
        );
        let inputs: Vec<Vec<f32>> = (0..n)
            .map(|r| (0..count).map(|i| ((r + 1) * (i + 1)) as f32).collect())
            .collect();
        let expected: Vec<f32> = (0..count)
            .map(|i| (0..n).map(|r| ((r + 1) * (i + 1)) as f32).sum())
            .collect();
        let outputs = run_collective(&desc, inputs, 4);
        assert_eq!(outputs[root], expected);
    }

    #[test]
    fn broadcast_copies_root_data_everywhere() {
        let n = 4;
        let count = 9;
        let root = 1;
        let desc = CollectiveDescriptor::broadcast(
            count,
            DataType::F32,
            root,
            (0..n).map(GpuId).collect(),
        );
        let inputs: Vec<Vec<f32>> = (0..n)
            .map(|r| {
                (0..count)
                    .map(|i| if r == root { i as f32 * 2.0 } else { -1.0 })
                    .collect()
            })
            .collect();
        let expected: Vec<f32> = (0..count).map(|i| i as f32 * 2.0).collect();
        let outputs = run_collective(&desc, inputs, 4);
        for (rank, out) in outputs.iter().enumerate() {
            assert_eq!(out, &expected, "rank {rank}");
        }
    }

    #[test]
    fn step_ready_tracks_connector_state() {
        let comm = make_comm(2);
        let ch0 = comm.rank_channels(0).unwrap();
        let send_step = PrimitiveStep {
            kind: PrimitiveKind::Send,
            src: Some(crate::chunk::ElemRange::new(0, 1)),
            dst: None,
            chunk_index: 0,
            step: 0,
        };
        let recv_step = PrimitiveStep {
            kind: PrimitiveKind::Recv,
            src: None,
            dst: Some(crate::chunk::ElemRange::new(0, 1)),
            chunk_index: 0,
            step: 0,
        };
        assert!(step_ready(&send_step, &ch0));
        assert!(!step_ready(&recv_step, &ch0));
        // Fill the send connector completely: send becomes not-ready.
        let send = DeviceBuffer::from_f32(&[1.0]);
        let recv = DeviceBuffer::zeroed(4);
        for _ in 0..ch0.send.capacity() {
            execute_ready_step(1, &send_step, &ch0, DataType::F32, None, &send, &recv).unwrap();
        }
        assert!(!step_ready(&send_step, &ch0));
        // And the peer now has data to receive.
        let ch1 = comm.rank_channels(1).unwrap();
        assert!(step_ready(&recv_step, &ch1));
    }

    #[test]
    fn execute_not_ready_consumes_nothing() {
        let comm = make_comm(2);
        let ch0 = comm.rank_channels(0).unwrap();
        let recv_step = PrimitiveStep {
            kind: PrimitiveKind::Recv,
            src: None,
            dst: Some(crate::chunk::ElemRange::new(0, 1)),
            chunk_index: 0,
            step: 0,
        };
        let send = DeviceBuffer::zeroed(4);
        let recv = DeviceBuffer::zeroed(4);
        let out =
            execute_ready_step(1, &recv_step, &ch0, DataType::F32, None, &send, &recv).unwrap();
        assert_eq!(out, StepOutcome::NotReady);
    }

    #[test]
    fn mismatched_collective_id_is_detected() {
        let comm = make_comm(2);
        let ch0 = comm.rank_channels(0).unwrap();
        let ch1 = comm.rank_channels(1).unwrap();
        // Rank 0 sends under collective id 7.
        ch0.send
            .try_send(ChunkMsg {
                coll_id: 7,
                chunk_index: 0,
                step: 0,
                data: vec![0u8; 4],
            })
            .unwrap();
        let recv_step = PrimitiveStep {
            kind: PrimitiveKind::Recv,
            src: None,
            dst: Some(crate::chunk::ElemRange::new(0, 1)),
            chunk_index: 0,
            step: 0,
        };
        let send = DeviceBuffer::zeroed(4);
        let recv = DeviceBuffer::zeroed(4);
        let err =
            execute_ready_step(9, &recv_step, &ch1, DataType::F32, None, &send, &recv).unwrap_err();
        assert!(matches!(
            err,
            ExecError::CollectiveMismatch {
                expected: 9,
                actual: 7
            }
        ));
    }

    #[test]
    fn payload_size_mismatch_is_detected() {
        let comm = make_comm(2);
        let ch0 = comm.rank_channels(0).unwrap();
        let ch1 = comm.rank_channels(1).unwrap();
        ch0.send
            .try_send(ChunkMsg {
                coll_id: 1,
                chunk_index: 0,
                step: 0,
                data: vec![0u8; 8],
            })
            .unwrap();
        let recv_step = PrimitiveStep {
            kind: PrimitiveKind::Recv,
            src: None,
            dst: Some(crate::chunk::ElemRange::new(0, 1)), // expects 4 bytes
            chunk_index: 0,
            step: 0,
        };
        let send = DeviceBuffer::zeroed(4);
        let recv = DeviceBuffer::zeroed(4);
        let err =
            execute_ready_step(1, &recv_step, &ch1, DataType::F32, None, &send, &recv).unwrap_err();
        assert!(matches!(
            err,
            ExecError::PayloadSizeMismatch {
                expected: 4,
                actual: 8
            }
        ));
    }

    #[test]
    fn reducing_step_without_op_is_an_error() {
        let comm = make_comm(2);
        let ch0 = comm.rank_channels(0).unwrap();
        let ch1 = comm.rank_channels(1).unwrap();
        ch0.send
            .try_send(ChunkMsg {
                coll_id: 1,
                chunk_index: 0,
                step: 0,
                data: vec![0u8; 4],
            })
            .unwrap();
        let step = PrimitiveStep {
            kind: PrimitiveKind::RecvReduceCopy,
            src: Some(crate::chunk::ElemRange::new(0, 1)),
            dst: Some(crate::chunk::ElemRange::new(0, 1)),
            chunk_index: 0,
            step: 0,
        };
        let send = DeviceBuffer::zeroed(4);
        let recv = DeviceBuffer::zeroed(4);
        let err =
            execute_ready_step(1, &step, &ch1, DataType::F32, None, &send, &recv).unwrap_err();
        assert_eq!(err, ExecError::MissingReduceOp);
    }

    #[test]
    fn validate_buffers_checks_sizes() {
        let desc = CollectiveDescriptor::all_gather(4, DataType::F32, vec![GpuId(0), GpuId(1)]);
        let good_send = DeviceBuffer::zeroed(16);
        let good_recv = DeviceBuffer::zeroed(32);
        assert!(validate_buffers(&desc, 0, &good_send, &good_recv).is_ok());
        let small_recv = DeviceBuffer::zeroed(16);
        assert!(matches!(
            validate_buffers(&desc, 0, &good_send, &small_recv),
            Err(CollectiveError::BufferSizeMismatch { expected: 32, .. })
        ));
        let small_send = DeviceBuffer::zeroed(8);
        assert!(validate_buffers(&desc, 0, &small_send, &good_recv).is_err());
    }

    #[test]
    fn abort_stops_a_blocking_run() {
        let comm = make_comm(2);
        let ch0 = comm.rank_channels(0).unwrap();
        let desc = CollectiveDescriptor::all_reduce(
            4,
            DataType::F32,
            ReduceOp::Sum,
            vec![GpuId(0), GpuId(1)],
        );
        let plan = build_plan(&desc, 0, 4).unwrap();
        let send = DeviceBuffer::from_f32(&[1.0; 4]);
        let recv = DeviceBuffer::zeroed(16);
        // The peer never participates, so without the abort this would hang.
        let done = run_plan_blocking(
            1,
            &plan,
            &ch0,
            DataType::F32,
            Some(ReduceOp::Sum),
            &send,
            &recv,
            &|| true,
        )
        .unwrap();
        assert!(!done);
    }

    #[test]
    fn collective_kinds_all_run_with_odd_chunk_sizes() {
        // Smoke test: every kind completes with a chunk size that does not
        // divide the slice size evenly.
        for kind in CollectiveKind::ALL {
            let n = 3;
            let count = 7;
            let devices: Vec<GpuId> = (0..n).map(GpuId).collect();
            let desc = match kind {
                CollectiveKind::AllReduce => {
                    CollectiveDescriptor::all_reduce(count, DataType::F32, ReduceOp::Sum, devices)
                }
                CollectiveKind::AllGather => {
                    CollectiveDescriptor::all_gather(count, DataType::F32, devices)
                }
                CollectiveKind::ReduceScatter => CollectiveDescriptor::reduce_scatter(
                    count,
                    DataType::F32,
                    ReduceOp::Sum,
                    devices,
                ),
                CollectiveKind::Reduce => {
                    CollectiveDescriptor::reduce(count, DataType::F32, ReduceOp::Sum, 0, devices)
                }
                CollectiveKind::Broadcast => {
                    CollectiveDescriptor::broadcast(count, DataType::F32, 0, devices)
                }
            };
            let inputs: Vec<Vec<f32>> = (0..n)
                .map(|r| (0..desc.send_elems(r)).map(|i| (r + i) as f32).collect())
                .collect();
            let _ = run_collective(&desc, inputs, 3);
        }
    }
}
